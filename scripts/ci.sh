#!/usr/bin/env sh
# CI gate: the tier-1 build/test pass plus a fleet smoke run through the
# CLI (16 copies embedded and recognized end to end, with stage-level
# metrics captured), a quick fleet bench emitting BENCH_fleet.json, the
# trace/scan equivalence gate, and a quick recognition bench emitting
# BENCH_recognize.json. Both bench payloads are copied back to the repo
# root so the checked-in snapshots never go stale relative to the code.
# Offline-safe: the workspace has no external dependencies.
set -eu

cd "$(dirname "$0")/.."
ROOT=$(pwd)

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> warnings gate: clippy is clean across the workspace"
cargo clippy --all-targets -- -D warnings

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> fault-injection gate: deterministic fault/retry/resume tests"
cargo test -q --test fleet_pipeline fault_

echo "==> fleet smoke: 16-copy embed/recognize round trip with metrics"
BIN=target/release/pathmark
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT

"$BIN" demo --out "$SMOKE/demo.pmvm"
i=0
while [ "$i" -lt 16 ]; do
    printf '{"job_id":"copy-%03d"}\n' "$i"
    i=$((i + 1))
done > "$SMOKE/manifest.jsonl"

"$BIN" fleet embed --program "$SMOKE/demo.pmvm" \
    --manifest "$SMOKE/manifest.jsonl" --out-dir "$SMOKE/copies" \
    --workers 4 --seed 7 --input 12 --bits 128 \
    --retries 2 --job-timeout 60000 \
    --metrics "$SMOKE/embed-metrics.jsonl" --metrics-format jsonl

count=$(ls "$SMOKE/copies"/*.pmvm | wc -l)
[ "$count" -eq 16 ] || { echo "expected 16 copies, got $count" >&2; exit 1; }
grep -q '"attempts":1' "$SMOKE/copies/report.jsonl" \
    || { echo "embed report missing attempts field" >&2; exit 1; }
[ ! -e "$SMOKE/copies/report.jsonl.partial" ] \
    || { echo "finalized report left a .partial sidecar behind" >&2; exit 1; }

echo "==> fleet resume: a second run settles instantly and changes nothing"
"$BIN" fleet embed --program "$SMOKE/demo.pmvm" \
    --manifest "$SMOKE/manifest.jsonl" --out-dir "$SMOKE/copies" \
    --workers 4 --seed 7 --input 12 --bits 128 --resume 2>&1 \
    | grep -q "16 resumed" \
    || { echo "resume run did not skip the settled jobs" >&2; exit 1; }

for stage in trace encrypt codegen queue_wait job_run; do
    grep -q "\"stage\":\"$stage\"" "$SMOKE/embed-metrics.jsonl" \
        || { echo "embed metrics missing $stage spans" >&2; exit 1; }
done
grep -q '"counter":"cache_miss"' "$SMOKE/embed-metrics.jsonl" \
    || { echo "embed metrics missing trace-cache counters" >&2; exit 1; }

"$BIN" fleet recognize --dir "$SMOKE/copies" \
    --manifest "$SMOKE/copies/report.jsonl" \
    --workers 4 --seed 7 --input 12 --bits 128 \
    --metrics "$SMOKE/rec-metrics.json" --metrics-format summary \
    > "$SMOKE/recognized.jsonl"

ok=$(grep -c '"status":"ok"' "$SMOKE/recognized.jsonl")
[ "$ok" -eq 16 ] || { echo "expected 16 recognized copies, got $ok" >&2; exit 1; }

for stage in scan vote; do
    grep -q "\"$stage\":{\"count\"" "$SMOKE/rec-metrics.json" \
        || { echo "recognize metrics summary missing $stage" >&2; exit 1; }
done

echo "==> fleet bench: quick mode emits well-formed BENCH_fleet.json"
( cd "$SMOKE" && "$ROOT/target/release/fleet" --quick > /dev/null )
for want in '"bench":"fleet"' '"quick":true' '"generated_unix":' \
    '"embed":[{"mode":"serial"' '"recognize":[{"mode":"serial"'; do
    grep -qF "$want" "$SMOKE/BENCH_fleet.json" \
        || { echo "BENCH_fleet.json missing $want" >&2; exit 1; }
done
cp "$SMOKE/BENCH_fleet.json" "$ROOT/BENCH_fleet.json"

echo "==> trace/scan equivalence gate: fast paths == references, serial == sharded"
# Every fast path must stay bit-identical to its naive reference: the
# predecoded interpreter to the enum-walking one over randomized
# programs, the packed streaming trace sink to Vec<TraceEvent> +
# BitString::from_trace over randomized event streams and end-to-end
# embed/recognize runs, the packed rolling-window scan to the
# bit-at-a-time reference, and the sharded scan to the serial one for
# every shard count and on degenerate inputs.
cargo test -q -p stackvm --lib predecoded_engine_matches_reference
cargo test -q -p pathmark-core --lib packed_sink_matches_from_trace_reference
cargo test -q -p pathmark-core --lib packed_sink_traces_match_vec_collector_on_random_keys
cargo test -q -p pathmark-core --lib packed_windows_match_naive_reference
cargo test -q -p pathmark-fleet --lib sharded_matches_serial_for_all_shard_counts
cargo test -q -p pathmark-fleet --lib degenerate_bitstrings_are_handled

echo "==> recognition bench: quick mode emits well-formed BENCH_recognize.json"
( cd "$SMOKE" && "$ROOT/target/release/recognize" --quick > /dev/null )
for want in '"bench":"recognize"' '"quick":true' '"generated_unix":' \
    '"mode":"serial"' '"mode":"sharded"' '"stages":{"trace":' \
    '"queue_wait":' '"windows":{"scanned":' '"pool":{"jobs":'; do
    grep -qF "$want" "$SMOKE/BENCH_recognize.json" \
        || { echo "BENCH_recognize.json missing $want" >&2; exit 1; }
done
cp "$SMOKE/BENCH_recognize.json" "$ROOT/BENCH_recognize.json"

echo "==> ci.sh: all green"
