#!/usr/bin/env sh
# CI gate: the tier-1 build/test pass plus a fleet smoke run through the
# CLI (16 copies embedded and recognized end to end). Offline-safe: the
# workspace has no external dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> fleet smoke: 16-copy embed/recognize round trip"
BIN=target/release/pathmark
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT

"$BIN" demo --out "$SMOKE/demo.pmvm"
i=0
while [ "$i" -lt 16 ]; do
    printf '{"job_id":"copy-%03d"}\n' "$i"
    i=$((i + 1))
done > "$SMOKE/manifest.jsonl"

"$BIN" fleet embed --program "$SMOKE/demo.pmvm" \
    --manifest "$SMOKE/manifest.jsonl" --out-dir "$SMOKE/copies" \
    --workers 4 --seed 7 --input 12 --bits 128

count=$(ls "$SMOKE/copies"/*.pmvm | wc -l)
[ "$count" -eq 16 ] || { echo "expected 16 copies, got $count" >&2; exit 1; }

"$BIN" fleet recognize --dir "$SMOKE/copies" \
    --manifest "$SMOKE/copies/report.jsonl" \
    --workers 4 --seed 7 --input 12 --bits 128 > "$SMOKE/recognized.jsonl"

ok=$(grep -c '"status":"ok"' "$SMOKE/recognized.jsonl")
[ "$ok" -eq 16 ] || { echo "expected 16 recognized copies, got $ok" >&2; exit 1; }

echo "==> ci.sh: all green"
