#!/usr/bin/env sh
# CI gate: the tier-1 build/test pass plus a fleet smoke run through the
# CLI (16 copies embedded and recognized end to end, with stage-level
# metrics captured), a quick fleet bench emitting BENCH_fleet.json, the
# trace/scan equivalence gate, and a quick recognition bench emitting
# BENCH_recognize.json. Both bench payloads are copied back to the repo
# root so the checked-in snapshots never go stale relative to the code.
# Offline-safe: the workspace has no external dependencies.
set -eu

cd "$(dirname "$0")/.."
ROOT=$(pwd)

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> warnings gate: clippy is clean across the workspace"
cargo clippy --all-targets -- -D warnings

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> fault-injection gate: deterministic fault/retry/resume tests"
cargo test -q --test fleet_pipeline fault_

echo "==> fleet smoke: 16-copy embed/recognize round trip with metrics"
BIN=target/release/pathmark
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT

"$BIN" demo --out "$SMOKE/demo.pmvm"
i=0
while [ "$i" -lt 16 ]; do
    printf '{"job_id":"copy-%03d"}\n' "$i"
    i=$((i + 1))
done > "$SMOKE/manifest.jsonl"

"$BIN" fleet embed --program "$SMOKE/demo.pmvm" \
    --manifest "$SMOKE/manifest.jsonl" --out-dir "$SMOKE/copies" \
    --workers 4 --seed 7 --input 12 --bits 128 \
    --retries 2 --job-timeout 60000 \
    --metrics "$SMOKE/embed-metrics.jsonl" --metrics-format jsonl

count=$(ls "$SMOKE/copies"/*.pmvm | wc -l)
[ "$count" -eq 16 ] || { echo "expected 16 copies, got $count" >&2; exit 1; }
grep -q '"attempts":1' "$SMOKE/copies/report.jsonl" \
    || { echo "embed report missing attempts field" >&2; exit 1; }
[ ! -e "$SMOKE/copies/report.jsonl.partial" ] \
    || { echo "finalized report left a .partial sidecar behind" >&2; exit 1; }

echo "==> fleet resume: a second run settles instantly and changes nothing"
"$BIN" fleet embed --program "$SMOKE/demo.pmvm" \
    --manifest "$SMOKE/manifest.jsonl" --out-dir "$SMOKE/copies" \
    --workers 4 --seed 7 --input 12 --bits 128 --resume 2>&1 \
    | grep -q "16 resumed" \
    || { echo "resume run did not skip the settled jobs" >&2; exit 1; }

for stage in trace encrypt codegen queue_wait job_run; do
    grep -q "\"stage\":\"$stage\"" "$SMOKE/embed-metrics.jsonl" \
        || { echo "embed metrics missing $stage spans" >&2; exit 1; }
done
grep -q '"counter":"cache_miss"' "$SMOKE/embed-metrics.jsonl" \
    || { echo "embed metrics missing trace-cache counters" >&2; exit 1; }

"$BIN" fleet recognize --dir "$SMOKE/copies" \
    --manifest "$SMOKE/copies/report.jsonl" \
    --workers 4 --seed 7 --input 12 --bits 128 \
    --metrics "$SMOKE/rec-metrics.json" --metrics-format summary \
    > "$SMOKE/recognized.jsonl"

ok=$(grep -c '"status":"ok"' "$SMOKE/recognized.jsonl")
[ "$ok" -eq 16 ] || { echo "expected 16 recognized copies, got $ok" >&2; exit 1; }

for stage in scan_roll scan_decrypt vote; do
    grep -q "\"$stage\":{\"count\"" "$SMOKE/rec-metrics.json" \
        || { echo "recognize metrics summary missing $stage" >&2; exit 1; }
done

echo "==> fleet bench: quick mode emits well-formed BENCH_fleet.json"
( cd "$SMOKE" && "$ROOT/target/release/fleet" --quick > /dev/null )
for want in '"bench":"fleet"' '"quick":true' '"generated_unix":' \
    '"embed":[{"mode":"serial"' '"recognize":[{"mode":"serial"'; do
    grep -qF "$want" "$SMOKE/BENCH_fleet.json" \
        || { echo "BENCH_fleet.json missing $want" >&2; exit 1; }
done
cp "$SMOKE/BENCH_fleet.json" "$ROOT/BENCH_fleet.json"

echo "==> trace/scan equivalence gate: fast paths == references, serial == sharded"
# Every fast path must stay bit-identical to its naive reference: the
# predecoded AND compiled interpreters to the enum-walking one over
# randomized programs (plus the compile-budget fallback contract), the
# packed streaming trace sink to Vec<TraceEvent> +
# BitString::from_trace over randomized event streams and end-to-end
# embed/recognize runs, the packed rolling-window scan to the
# bit-at-a-time reference, and the sharded scan to the serial one for
# every shard count and on degenerate inputs.
cargo test -q -p stackvm --lib execution_tiers_match_reference
cargo test -q -p stackvm --lib compiled_tier_falls_back_over_the_compile_budget
cargo test -q -p pathmark-core --lib packed_sink_matches_from_trace_reference
cargo test -q -p pathmark-core --lib packed_sink_traces_match_vec_collector_on_random_keys
cargo test -q -p pathmark-core --lib packed_windows_match_naive_reference
cargo test -q -p pathmark-fleet --lib sharded_matches_serial_for_all_shard_counts
cargo test -q -p pathmark-fleet --lib degenerate_bitstrings_are_handled
# The batched decrypt lanes against the serial cipher oracle, and the
# periodic pre-reject against the push-every-window reference scan
# (marked traces plus adversarial all-runs bitstrings).
cargo test -q -p pathmark-crypto --lib batch_decrypt_matches_serial_oracle
cargo test -q -p pathmark-core --lib periodic_prereject_matches_reference_scan

echo "==> fused-equivalence gate: streaming scan == two-phase scan"
# The fused trace->scan pipeline must produce the same Survivors table
# and the same Recognition as the two-phase path: on marked traces, and
# on adversarial hand-built bitstrings against the detector-free
# reference scan. (The 150-generated-program suite covering all three
# execution tiers — crates/pathmark-core/tests/fused_scan.rs — already
# ran under tier-1 `cargo test -q` above.)
cargo test -q -p pathmark-core --lib fused_scan_matches_two_phase_on_marked_traces
cargo test -q -p pathmark-core --lib streamed_scan_matches_reference_on_adversarial_bitstrings

echo "==> recognition bench: quick mode emits well-formed BENCH_recognize.json"
( cd "$SMOKE" && "$ROOT/target/release/recognize" --quick > /dev/null )
for want in '"bench":"recognize"' '"quick":true' '"generated_unix":' \
    '"mode":"serial"' '"mode":"sharded"' '"stages":{"trace":' \
    '"scan_roll":' '"scan_decrypt":' \
    '"tier":"reference"' '"tier":"predecoded"' '"tier":"compiled"' \
    '"skip_rate":' '"decrypts_per_copy":' \
    '"queue_wait":' '"windows":{"scanned":' '"pool":{"jobs":'; do
    grep -qF "$want" "$SMOKE/BENCH_recognize.json" \
        || { echo "BENCH_recognize.json missing $want" >&2; exit 1; }
done

echo "==> trace-tier gate: the compiled tracer must beat predecoded, run and baseline alike"
trace_ms() {
    # Serial-row trace-stage ms for tier $2 in payload $1; payloads
    # predating the tier column fall back to their first serial row
    # (which ran the predecoded engine).
    row=$(grep -o "\"mode\":\"serial\",\"tier\":\"$2\"[^}]*" "$1" | head -1)
    if [ -z "$row" ]; then
        row=$(grep -o '"mode":"serial"[^}]*' "$1" | head -1)
    fi
    printf '%s\n' "$row" | grep -o '"trace":[0-9.]*' | cut -d: -f2
}
run_compiled=$(trace_ms "$SMOKE/BENCH_recognize.json" compiled)
run_predecoded=$(trace_ms "$SMOKE/BENCH_recognize.json" predecoded)
base_predecoded=$(trace_ms "$ROOT/BENCH_recognize.json" predecoded)
awk "BEGIN { exit !($run_compiled < $run_predecoded) }" \
    || { echo "compiled trace ms $run_compiled not below predecoded $run_predecoded" >&2; exit 1; }
awk "BEGIN { exit !($run_compiled < $base_predecoded) }" \
    || { echo "compiled trace ms $run_compiled not below checked-in predecoded baseline $base_predecoded" >&2; exit 1; }

echo "==> skip-rate gate: pre-reject must not regress below the checked-in baseline"
json_skip_rate() {
    # First (= serial) row's skip rate; payloads predating the
    # skip_rate field fall back to the windows counters.
    rate=$(grep -o '"skip_rate":[0-9.]*' "$1" | head -1 | cut -d: -f2)
    if [ -z "$rate" ]; then
        scanned=$(grep -o '"scanned":[0-9]*' "$1" | head -1 | cut -d: -f2)
        skipped=$(grep -o '"skipped":[0-9]*' "$1" | head -1 | cut -d: -f2)
        rate=$(awk "BEGIN { printf \"%.4f\", $skipped / $scanned }")
    fi
    printf '%s\n' "$rate"
}
base_rate=$(json_skip_rate "$ROOT/BENCH_recognize.json")
new_rate=$(json_skip_rate "$SMOKE/BENCH_recognize.json")
awk "BEGIN { exit !($new_rate >= $base_rate - 0.005) }" \
    || { echo "serial skip rate regressed: $new_rate < baseline $base_rate" >&2; exit 1; }

echo "==> trace+scan gate: serial compiled trace+scan must not regress vs the checked-in baseline"
# The end-to-end per-copy recognition cost that matters is trace + scan
# (roll + decrypt); it must stay strictly below the checked-in
# baseline modulo the container's run-to-run jitter (a 5% allowance,
# in the same spirit as the skip-rate gate's 0.005 — the snapshot is
# refreshed on every green run, so without the allowance the gate
# would ratchet itself onto the noise floor). Older payloads report
# the scan as one '"scan"' stage, newer ones split it into
# '"scan_roll"' + '"scan_decrypt"' — sum whichever the payload has.
serial_compiled_stage_ms() {
    # Stage $2 ms of the serial compiled row in payload $1 (empty if
    # the payload has no such stage).
    grep -o '"mode":"serial","tier":"compiled"[^}]*' "$1" | head -1 \
        | grep -o "\"$2\":[0-9.]*" | cut -d: -f2
}
trace_scan_ms() {
    t=$(serial_compiled_stage_ms "$1" trace)
    roll=$(serial_compiled_stage_ms "$1" scan_roll)
    dec=$(serial_compiled_stage_ms "$1" scan_decrypt)
    if [ -z "$roll" ]; then
        roll=$(serial_compiled_stage_ms "$1" scan)
        dec=0
    fi
    awk "BEGIN { printf \"%.3f\", $t + $roll + $dec }"
}
base_ts=$(trace_scan_ms "$ROOT/BENCH_recognize.json")
new_ts=$(trace_scan_ms "$SMOKE/BENCH_recognize.json")
awk "BEGIN { exit !($new_ts < $base_ts * 1.05) }" \
    || { echo "serial compiled trace+scan ms $new_ts regressed vs checked-in baseline $base_ts" >&2; exit 1; }
cp "$SMOKE/BENCH_recognize.json" "$ROOT/BENCH_recognize.json"

echo "==> serve smoke: daemon on a unix socket survives kill -9 and resumes bit-identically"
# The daemon fingerprints the same 16 copies as the fleet smoke above,
# through `pathmark connect` over a unix socket. Halfway through we
# kill -9 it, restart with --resume and a byte-capped journal, resubmit
# over TWO CONCURRENT connections, kill -9 again (now with a compacted
# segment on disk), resume once more, and require the finalized journal
# reports to match the batch reports byte for byte once wall_ms is
# normalized — and the marked copies to match byte for byte, full stop.
# Along the way: a control ping on its own connection must round-trip
# while the recognize batch is in flight, and the restarts reclaim the
# dead daemon's stale socket file themselves.
SOCK="$SMOKE/serve.sock"
JOURNAL="$SMOKE/serve/journal"
mkdir -p "$SMOKE/serve"

# Wait until the daemon answers a ping. Checking for the socket file is
# not enough: a kill -9 leaves the previous daemon's stale file behind,
# and the restart reclaims it only once it is actually up.
serve_wait_ready() {
    n=0
    until printf '{"op":"ping"}\n' | "$BIN" connect --socket "$SOCK" 2>/dev/null \
        | grep -q '"op":"ping"'; do
        n=$((n + 1))
        [ "$n" -lt 300 ] || { echo "serve daemon never answered on $SOCK" >&2; exit 1; }
        sleep 0.1
    done
}

serve_embed_lines() {
    # $1..$2 inclusive job indices
    j="$1"
    while [ "$j" -le "$2" ]; do
        printf '{"op":"embed","tenant":"ci","job_id":"copy-%03d","host":"%s","out_dir":"%s"}\n' \
            "$j" "$SMOKE/demo.pmvm" "$SMOKE/serve/copies"
        j=$((j + 1))
    done
}

OPEN_LINE='{"op":"open","tenant":"ci","seed":7,"input":"12","bits":128}'

"$BIN" serve --journal "$JOURNAL" --socket "$SOCK" --workers 4 --max-inflight 64 &
SERVE_PID=$!
serve_wait_ready

{ printf '%s\n' "$OPEN_LINE"; serve_embed_lines 0 7; } \
    | "$BIN" connect --socket "$SOCK" > "$SMOKE/serve-first.jsonl"
fresh=$(grep -c '"disposition":"fresh"' "$SMOKE/serve-first.jsonl")
[ "$fresh" -eq 8 ] || { echo "expected 8 fresh serve embeds, got $fresh" >&2; exit 1; }

# Feed the second half and kill -9 the daemon mid-stream.
serve_embed_lines 8 15 \
    | "$BIN" connect --socket "$SOCK" > "$SMOKE/serve-cut.jsonl" 2>/dev/null &
CUT_PID=$!
sleep 0.2
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
wait "$CUT_PID" 2>/dev/null || true
[ -e "$JOURNAL.intents.jsonl" ] \
    || { echo "crashed daemon left no intents journal to resume from" >&2; exit 1; }

# No `rm -f "$SOCK"`: the kill -9 left a stale socket file behind, and
# reclaiming it (after probing that no daemon answers) is the restart's
# own job now. A byte cap small enough that the first half's intents
# already exceed it forces journal rotation on this run.
"$BIN" serve --journal "$JOURNAL" --socket "$SOCK" --workers 4 --max-inflight 64 \
    --resume --journal-max-bytes 1024 &
SERVE_PID=$!
serve_wait_ready

# Resubmit every embed over two concurrent connections — the daemon is
# no longer one-client-at-a-time. Each connect returns once its own
# jobs have settled.
{ printf '%s\n' "$OPEN_LINE"; serve_embed_lines 0 7; } \
    | "$BIN" connect --socket "$SOCK" > "$SMOKE/serve-resume-a.jsonl" &
RESUB_A=$!
{ printf '%s\n' "$OPEN_LINE"; serve_embed_lines 8 15; } \
    | "$BIN" connect --socket "$SOCK" > "$SMOKE/serve-resume-b.jsonl" &
RESUB_B=$!
wait "$RESUB_A"
wait "$RESUB_B"
cat "$SMOKE/serve-resume-a.jsonl" "$SMOKE/serve-resume-b.jsonl" > "$SMOKE/serve-resume.jsonl"
resumed=$(grep -c '"disposition":"resumed"' "$SMOKE/serve-resume.jsonl")
[ "$resumed" -ge 8 ] || { echo "expected >= 8 resumed answers, got $resumed" >&2; exit 1; }

# Kill -9 again. Everything has settled, so the rotation above folded
# the whole journal into the compacted segment — the next resume reads
# the segment first, then the live tail.
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
[ -e "$JOURNAL.intents.compact.jsonl" ] \
    || { echo "byte-capped journal never rotated a compacted segment" >&2; exit 1; }

"$BIN" serve --journal "$JOURNAL" --socket "$SOCK" --workers 4 --max-inflight 64 \
    --resume --journal-max-bytes 1024 \
    --metrics "$SMOKE/serve-metrics.jsonl" --metrics-format jsonl &
SERVE_PID=$!
serve_wait_ready

# Every answer on this daemon comes out of the rotated journal.
{ printf '%s\n' "$OPEN_LINE"; serve_embed_lines 0 15; } \
    | "$BIN" connect --socket "$SOCK" > "$SMOKE/serve-compact.jsonl"
resumed=$(grep -c '"disposition":"resumed"' "$SMOKE/serve-compact.jsonl")
[ "$resumed" -eq 16 ] \
    || { echo "expected 16 resumed answers from the compacted journal, got $resumed" >&2; exit 1; }

# Recognize all 16 copies on the warm daemon; while that batch is in
# flight, a control ping on a second connection must round-trip within
# a deadline instead of waiting for the batch's connection to close.
{
    j=0
    while [ "$j" -lt 16 ]; do
        printf '{"op":"recognize","tenant":"ci","job_id":"copy-%03d","program":"%s/copy-%03d.pmvm"}\n' \
            "$j" "$SMOKE/serve/copies" "$j"
        j=$((j + 1))
    done
} | "$BIN" connect --socket "$SOCK" >> "$SMOKE/serve-compact.jsonl" &
REC_PID=$!
PING_T0=$(date +%s)
printf '{"op":"ping"}\n' | "$BIN" connect --socket "$SOCK" > "$SMOKE/serve-ping.jsonl"
PING_T1=$(date +%s)
[ $((PING_T1 - PING_T0)) -le 10 ] \
    || { echo "control ping took $((PING_T1 - PING_T0))s with a batch in flight" >&2; exit 1; }
grep '"op":"ping"' "$SMOKE/serve-ping.jsonl" | grep -q '"status":"ok"' \
    || { echo "control ping was not answered" >&2; exit 1; }
wait "$REC_PID"

# Drain and finalize.
printf '{"op":"stats"}\n{"op":"shutdown"}\n' \
    | "$BIN" connect --socket "$SOCK" >> "$SMOKE/serve-compact.jsonl"
wait "$SERVE_PID"

grep '"op":"stats"' "$SMOKE/serve-compact.jsonl" | grep -q '"shed":0' \
    || { echo "stats response missing or reported shed jobs" >&2; exit 1; }
grep '"op":"stats"' "$SMOKE/serve-compact.jsonl" | grep -q '"tenant_shed":0' \
    || { echo "stats response missing or reported tenant-fairness sheds" >&2; exit 1; }
grep '"op":"stats"' "$SMOKE/serve-compact.jsonl" | grep -q '"connections":' \
    || { echo "stats response missing the connections gauge" >&2; exit 1; }
grep '"op":"stats"' "$SMOKE/serve-compact.jsonl" | grep -q '"journal_rotations":' \
    || { echo "stats response missing the rotation counter" >&2; exit 1; }
grep '"op":"stats"' "$SMOKE/serve-compact.jsonl" | grep -q '"report_rotations":' \
    || { echo "stats response missing the report-rotation counter" >&2; exit 1; }
grep '"op":"stats"' "$SMOKE/serve-compact.jsonl" | grep -q '"decode_cache_hits":' \
    || { echo "stats response missing decode-cache fields" >&2; exit 1; }
grep '"op":"shutdown"' "$SMOKE/serve-compact.jsonl" | grep -q '"status":"ok"' \
    || { echo "shutdown was not acknowledged cleanly" >&2; exit 1; }
[ ! -e "$JOURNAL.intents.jsonl" ] \
    || { echo "finalized journal left the intents file behind" >&2; exit 1; }
[ ! -e "$JOURNAL.intents.compact.jsonl" ] \
    || { echo "finalized journal left the compacted segment behind" >&2; exit 1; }
grep -q '"counter":"resumed"' "$SMOKE/serve-metrics.jsonl" \
    || { echo "serve metrics missing the resumed counter" >&2; exit 1; }

norm='s/"wall_ms":[0-9]*/"wall_ms":0/'
sed "$norm" "$SMOKE/copies/report.jsonl" > "$SMOKE/batch-embed.norm"
sed "$norm" "$JOURNAL.embed.jsonl" > "$SMOKE/serve-embed.norm"
cmp -s "$SMOKE/batch-embed.norm" "$SMOKE/serve-embed.norm" \
    || { echo "serve embed report differs from batch (modulo wall_ms)" >&2; exit 1; }
sed "$norm" "$SMOKE/recognized.jsonl" > "$SMOKE/batch-rec.norm"
sed "$norm" "$JOURNAL.recognize.jsonl" > "$SMOKE/serve-rec.norm"
cmp -s "$SMOKE/batch-rec.norm" "$SMOKE/serve-rec.norm" \
    || { echo "serve recognize report differs from batch (modulo wall_ms)" >&2; exit 1; }
j=0
while [ "$j" -lt 16 ]; do
    copy=$(printf 'copy-%03d.pmvm' "$j")
    cmp -s "$SMOKE/copies/$copy" "$SMOKE/serve/copies/$copy" \
        || { echo "marked copy $copy differs between serve and batch" >&2; exit 1; }
    j=$((j + 1))
done

echo "==> ci.sh: all green"
