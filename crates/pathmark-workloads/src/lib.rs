//! Benchmark workloads for the path-based watermarking experiments.
//!
//! The paper evaluates on:
//!
//! * **CaffeineMark** — a tiny (~9 KB) micro-benchmark suite in which "a
//!   high percentage of the instructions are executed frequently";
//! * **Jess** — a ~300 KB rule-engine interpreter with "a lower
//!   percentage of frequently executed code";
//! * **SPECint-2000** — ten programs (`eon` and `perl` were omitted by
//!   the authors) for the native experiments.
//!
//! None of those artifacts can be run on this substrate, so [`java`]
//! and [`native`] provide synthetic stand-ins with the *properties the
//! experiments actually exercise*: the contrast between hot/small and
//! cold/large bytecode for Figure 8, and a spread of native program
//! sizes, loop structures, and cold regions for Figure 9 (see
//! `DESIGN.md` for the substitution rationale).

pub mod java;
pub mod native;
