//! Ten SPECint-2000-like native programs.
//!
//! The paper's native experiments run ten SPECint benchmarks (`eon` and
//! `perl` omitted). Real SPEC sources and inputs are unavailable here,
//! so each program is a synthetic stand-in that mirrors the *shape* that
//! matters to Figure 9: a distinctive hot kernel (compression loop,
//! board search, graph relaxation, token scanning, …), an initialization
//! pass over a data segment, cold once-executed control flow (anchor and
//! tamper-proofing candidates), and a large cold code region standing in
//! for the rest of a real binary's functions. Program text and data
//! sizes are spread over roughly an order of magnitude, as in SPEC.
//!
//! Every program reads one input value `n` (the iteration count): the
//! *training* input is small, the *reference* input large — the same
//! profile-then-measure protocol the paper uses.

use nativesim::asm::{Assembler, ImageBuilder, Label};
use nativesim::reg::Operand::{Imm, Reg as R};
use nativesim::reg::{AluOp, Cc, Mem, Reg};
use nativesim::Image;
use pathmark_crypto::Prng;

/// A named native workload with its training and reference inputs.
#[derive(Debug, Clone)]
pub struct NativeWorkload {
    /// SPEC-like display name.
    pub name: &'static str,
    /// The executable image.
    pub image: Image,
    /// Small profiling input (the paper's SPEC *training* input).
    pub training_input: Vec<u32>,
    /// Large measurement input (the paper's SPEC *reference* input).
    pub reference_input: Vec<u32>,
}

struct Spec {
    name: &'static str,
    cold_before: usize,
    cold_after: usize,
    /// log2 of the number of u32 words in the data segment.
    data_log2: u32,
    training_n: u32,
    reference_n: u32,
    kernel: fn(&mut Assembler, u32, u32),
}

const SPECS: &[Spec] = &[
    Spec { name: "bzip2", cold_before: 300, cold_after: 600, data_log2: 15, training_n: 60, reference_n: 1500, kernel: kernel_bzip2 },
    Spec { name: "crafty", cold_before: 900, cold_after: 1700, data_log2: 13, training_n: 40, reference_n: 800, kernel: kernel_crafty },
    Spec { name: "gap", cold_before: 500, cold_after: 900, data_log2: 14, training_n: 60, reference_n: 1500, kernel: kernel_gap },
    Spec { name: "gcc", cold_before: 1500, cold_after: 3000, data_log2: 14, training_n: 50, reference_n: 1000, kernel: kernel_gcc },
    Spec { name: "gzip", cold_before: 250, cold_after: 450, data_log2: 15, training_n: 60, reference_n: 1500, kernel: kernel_gzip },
    Spec { name: "mcf", cold_before: 140, cold_after: 420, data_log2: 16, training_n: 50, reference_n: 1200, kernel: kernel_mcf },
    Spec { name: "parser", cold_before: 550, cold_after: 1000, data_log2: 13, training_n: 60, reference_n: 1500, kernel: kernel_parser },
    Spec { name: "twolf", cold_before: 400, cold_after: 700, data_log2: 14, training_n: 50, reference_n: 1200, kernel: kernel_twolf },
    Spec { name: "vortex", cold_before: 900, cold_after: 1700, data_log2: 15, training_n: 50, reference_n: 1000, kernel: kernel_vortex },
    Spec { name: "vpr", cold_before: 300, cold_after: 550, data_log2: 13, training_n: 60, reference_n: 1500, kernel: kernel_vpr },
];

/// All ten workloads, in the order the paper's figures list them.
pub fn all() -> Vec<NativeWorkload> {
    SPECS.iter().map(build_workload).collect()
}

/// Builds one workload by name (`"bzip2"`, `"gcc"`, …).
pub fn by_name(name: &str) -> Option<NativeWorkload> {
    SPECS.iter().find(|s| s.name == name).map(build_workload)
}

fn build_workload(spec: &Spec) -> NativeWorkload {
    NativeWorkload {
        name: spec.name,
        image: build_image(spec),
        training_input: vec![spec.training_n],
        reference_input: vec![spec.reference_n],
    }
}

/// The shared program skeleton (see module docs).
fn build_image(spec: &Spec) -> Image {
    let mut rng = Prng::from_seed(0x5AEC ^ spec.name.len() as u64 ^ (spec.data_log2 as u64) << 8);
    let data_words: u32 = 1 << spec.data_log2;
    let mut b = ImageBuilder::new();
    let data_base = b.data_zeroed(data_words as usize * 4);
    let a = b.text();

    let main = a.label();
    let work = a.label();
    let loop_top = a.label();
    let loop_end = a.label();
    let epilogue = a.label();
    let fin = a.label();
    let kernel = a.label();
    let init = a.label();

    // entry
    a.in_(Reg::Eax);
    a.jmp(main);
    emit_cold_library(a, spec.cold_before, &mut rng);

    // the hot kernel (argument in eax, accumulates into edi) — placed
    // mid-text, like any other function of a real binary
    a.bind(kernel);
    (spec.kernel)(a, data_base, data_words);

    // init: two phases with once-executed section-transition jumps
    // (real initialization code is full of such edges; they are also
    // what a *second* watermarking pass would pick as its anchor).
    a.bind(init);
    let init_top = a.label();
    let init_phase2 = a.label();
    let fold_top = a.label();
    let fold_done = a.label();
    let init_done = a.label();
    // phase 1: data[k] = (k·40503 >> 3) & 0xFFFF
    a.mov_ri(Reg::Eax, 0);
    a.bind(init_top);
    a.cmp(R(Reg::Eax), Imm(data_words as i32));
    a.jcc(Cc::Ge, init_phase2);
    a.mov_rr(Reg::Ebx, Reg::Eax);
    a.alu_ri(AluOp::Imul, Reg::Ebx, 40503);
    a.alu_ri(AluOp::Shr, Reg::Ebx, 3);
    a.alu_ri(AluOp::And, Reg::Ebx, 0xFFFF);
    a.mov_mr(Mem::indexed(data_base, Reg::Eax, 4), Reg::Ebx);
    a.alu_ri(AluOp::Add, Reg::Eax, 1);
    a.jmp(init_top);
    a.bind(init_phase2);
    a.jmp(fold_top); // once-executed phase transition
    // phase 2: fold the first 64 cells into data[0]
    a.bind(fold_top);
    a.mov_ri(Reg::Eax, 1);
    a.mov_ri(Reg::Ebx, 0);
    let fold_loop = a.label();
    a.bind(fold_loop);
    a.cmp(R(Reg::Eax), Imm(64));
    a.jcc(Cc::Ge, fold_done);
    a.alu_rm(AluOp::Xor, Reg::Ebx, Mem::indexed(data_base, Reg::Eax, 4));
    a.alu_ri(AluOp::Add, Reg::Eax, 1);
    a.jmp(fold_loop);
    a.bind(fold_done);
    a.mov_mr(Mem::abs(data_base), Reg::Ebx);
    a.jmp(init_done); // once-executed phase transition
    a.bind(init_done);
    a.ret();

    a.bind(main);
    a.mov_rr(Reg::Esi, Reg::Eax);
    a.mov_ri(Reg::Edi, 0);
    a.call(init);
    a.jmp(work); // anchor edge: executed once, slots on both sides
    a.bind(work);
    a.mov_ri(Reg::Ecx, 0);
    a.bind(loop_top);
    a.cmp(R(Reg::Ecx), R(Reg::Esi));
    a.jcc(Cc::Ge, loop_end);
    a.push(R(Reg::Ecx));
    a.mov_rr(Reg::Eax, Reg::Ecx);
    a.call(kernel);
    a.pop(Reg::Ecx);
    a.alu_ri(AluOp::Add, Reg::Ecx, 1);
    a.jmp(loop_top);
    a.bind(loop_end);
    a.jmp(epilogue); // cold, once: tamper-proofing candidate
    a.bind(epilogue);
    a.out(R(Reg::Edi));
    a.jmp(fin); // cold, once: tamper-proofing candidate
    emit_cold_library(a, spec.cold_after, &mut rng);
    a.bind(fin);
    a.halt();

    b.finish().expect("workload image builds")
}

/// Emits `count` small never-executed functions — the cold bulk of a
/// real binary, and the supply of legal call-slot positions the
/// embedder threads its chain through.
fn emit_cold_library(a: &mut Assembler, count: usize, rng: &mut Prng) {
    const SCRATCH: [Reg; 4] = [Reg::Eax, Reg::Ebx, Reg::Ecx, Reg::Edx];
    for _ in 0..count {
        let body = 2 + rng.index(5);
        for _ in 0..body {
            let r = SCRATCH[rng.index(4)];
            match rng.index(4) {
                0 => a.mov_ri(r, rng.next_u32() as i32),
                1 => a.alu_ri(AluOp::Add, r, rng.range(1 << 16) as i32),
                2 => a.alu_ri(AluOp::Xor, r, rng.next_u32() as i32),
                _ => a.alu_rr(AluOp::Sub, r, SCRATCH[rng.index(4)]),
            }
        }
        a.ret();
    }
}

/// Shared helper: a bounded inner loop `for k in 0..limit` with the body
/// emitted by `body(asm, k_reg)`.
fn inner_loop(a: &mut Assembler, k: Reg, limit: i32, body: impl FnOnce(&mut Assembler, Label)) {
    let top = a.label();
    let done = a.label();
    a.mov_ri(k, 0);
    a.bind(top);
    a.cmp(R(k), Imm(limit));
    a.jcc(Cc::Ge, done);
    body(a, done);
    a.alu_ri(AluOp::Add, k, 1);
    a.jmp(top);
    a.bind(done);
    a.ret();
}

/// bzip2: run-length scanning over a sliding 64-word window.
fn kernel_bzip2(a: &mut Assembler, data: u32, words: u32) {
    let mask = (words - 1) as i32;
    a.alu_ri(AluOp::Imul, Reg::Eax, 37);
    a.alu_ri(AluOp::And, Reg::Eax, mask);
    a.mov_rr(Reg::Ebx, Reg::Eax); // base
    a.mov_ri(Reg::Eax, -1); // prev sentinel
    inner_loop(a, Reg::Ecx, 64, |a, _done| {
        a.mov_rr(Reg::Edx, Reg::Ebx);
        a.alu_rr(AluOp::Add, Reg::Edx, Reg::Ecx);
        a.alu_ri(AluOp::And, Reg::Edx, mask);
        a.mov_rm(Reg::Edx, Mem::indexed(data, Reg::Edx, 4));
        let diff = a.label();
        a.cmp(R(Reg::Edx), R(Reg::Eax));
        a.jcc(Cc::Ne, diff);
        a.alu_ri(AluOp::Add, Reg::Edi, 1);
        a.bind(diff);
        a.mov_rr(Reg::Eax, Reg::Edx);
    });
}

/// gzip: rolling-hash match finding.
fn kernel_gzip(a: &mut Assembler, data: u32, words: u32) {
    let mask = (words - 1) as i32;
    a.alu_ri(AluOp::Imul, Reg::Eax, 101);
    a.alu_ri(AluOp::And, Reg::Eax, mask);
    a.mov_rr(Reg::Ebx, Reg::Eax);
    a.mov_ri(Reg::Eax, 0); // hash
    inner_loop(a, Reg::Ecx, 48, |a, _| {
        a.mov_rr(Reg::Edx, Reg::Ebx);
        a.alu_rr(AluOp::Add, Reg::Edx, Reg::Ecx);
        a.alu_ri(AluOp::And, Reg::Edx, mask);
        a.mov_rm(Reg::Edx, Mem::indexed(data, Reg::Edx, 4));
        a.alu_ri(AluOp::Imul, Reg::Eax, 31);
        a.alu_rr(AluOp::Add, Reg::Eax, Reg::Edx);
        a.alu_ri(AluOp::And, Reg::Eax, 0x00FF_FFFF);
        let nomatch = a.label();
        a.test(R(Reg::Eax), Imm(0xFFF));
        a.jcc(Cc::Ne, nomatch);
        a.alu_ri(AluOp::Add, Reg::Edi, 3); // "match found"
        a.bind(nomatch);
    });
}

/// crafty: 8×8 board scan with nested loops and attack counting.
fn kernel_crafty(a: &mut Assembler, data: u32, words: u32) {
    let mask = (words - 1) as i32;
    a.alu_ri(AluOp::And, Reg::Eax, mask & !63);
    a.mov_rr(Reg::Ebx, Reg::Eax); // board base
    let rank_top = a.label();
    let rank_done = a.label();
    a.mov_ri(Reg::Eax, 0); // rank
    a.bind(rank_top);
    a.cmp(R(Reg::Eax), Imm(8));
    a.jcc(Cc::Ge, rank_done);
    {
        // file loop in ecx; square value in edx
        let file_top = a.label();
        let file_done = a.label();
        a.mov_ri(Reg::Ecx, 0);
        a.bind(file_top);
        a.cmp(R(Reg::Ecx), Imm(8));
        a.jcc(Cc::Ge, file_done);
        a.mov_rr(Reg::Edx, Reg::Eax);
        a.alu_ri(AluOp::Shl, Reg::Edx, 3);
        a.alu_rr(AluOp::Add, Reg::Edx, Reg::Ecx);
        a.alu_rr(AluOp::Add, Reg::Edx, Reg::Ebx);
        a.alu_ri(AluOp::And, Reg::Edx, mask);
        a.mov_rm(Reg::Edx, Mem::indexed(data, Reg::Edx, 4));
        let empty = a.label();
        a.test(R(Reg::Edx), Imm(7));
        a.jcc(Cc::E, empty);
        a.alu_ri(AluOp::And, Reg::Edx, 15);
        a.alu_rr(AluOp::Add, Reg::Edi, Reg::Edx);
        a.bind(empty);
        a.alu_ri(AluOp::Add, Reg::Ecx, 1);
        a.jmp(file_top);
        a.bind(file_done);
    }
    a.alu_ri(AluOp::Add, Reg::Eax, 1);
    a.jmp(rank_top);
    a.bind(rank_done);
    a.ret();
}

/// gap: modular arithmetic chains (computer-algebra flavored).
fn kernel_gap(a: &mut Assembler, data: u32, words: u32) {
    let mask = (words - 1) as i32;
    a.mov_rr(Reg::Ebx, Reg::Eax);
    a.alu_ri(AluOp::And, Reg::Ebx, mask);
    a.mov_ri(Reg::Eax, 3); // t
    inner_loop(a, Reg::Ecx, 32, |a, _| {
        // t = (t*t + data[(base+k) & mask]) mod 65521   (mod via mask-free
        // folding: t - (t >> 16)·65521 approximated with shifts + and)
        a.alu_rr(AluOp::Imul, Reg::Eax, Reg::Eax);
        a.mov_rr(Reg::Edx, Reg::Ebx);
        a.alu_rr(AluOp::Add, Reg::Edx, Reg::Ecx);
        a.alu_ri(AluOp::And, Reg::Edx, mask);
        a.mov_rm(Reg::Edx, Mem::indexed(data, Reg::Edx, 4));
        a.alu_rr(AluOp::Add, Reg::Eax, Reg::Edx);
        a.alu_ri(AluOp::And, Reg::Eax, 0xFFFF);
        let skip = a.label();
        a.cmp(R(Reg::Eax), Imm(0xFFF1));
        a.jcc(Cc::B, skip);
        a.alu_ri(AluOp::Sub, Reg::Eax, 0xFFF1);
        a.bind(skip);
        a.alu_rr(AluOp::Add, Reg::Edi, Reg::Eax);
        a.alu_ri(AluOp::And, Reg::Edi, 0x0FFF_FFFF);
    });
}

/// gcc: three sequential "passes" over an IR window (analysis,
/// transform, emit) — the biggest text section of the suite.
fn kernel_gcc(a: &mut Assembler, data: u32, words: u32) {
    let mask = (words - 1) as i32;
    a.alu_ri(AluOp::Imul, Reg::Eax, 53);
    a.alu_ri(AluOp::And, Reg::Eax, mask);
    a.mov_rr(Reg::Ebx, Reg::Eax);
    // pass 1: count "pseudo-ops" with a data-dependent predicate
    let p1 = a.label();
    let p1_done = a.label();
    a.mov_ri(Reg::Ecx, 0);
    a.bind(p1);
    a.cmp(R(Reg::Ecx), Imm(24));
    a.jcc(Cc::Ge, p1_done);
    a.mov_rr(Reg::Edx, Reg::Ebx);
    a.alu_rr(AluOp::Add, Reg::Edx, Reg::Ecx);
    a.alu_ri(AluOp::And, Reg::Edx, mask);
    a.mov_rm(Reg::Edx, Mem::indexed(data, Reg::Edx, 4));
    let not_op = a.label();
    a.test(R(Reg::Edx), Imm(3));
    a.jcc(Cc::Ne, not_op);
    a.alu_ri(AluOp::Add, Reg::Edi, 1);
    a.bind(not_op);
    a.alu_ri(AluOp::Add, Reg::Ecx, 1);
    a.jmp(p1);
    a.bind(p1_done);
    // pass 2: "transform" — rewrite cells (store back)
    let p2 = a.label();
    let p2_done = a.label();
    a.mov_ri(Reg::Ecx, 0);
    a.bind(p2);
    a.cmp(R(Reg::Ecx), Imm(24));
    a.jcc(Cc::Ge, p2_done);
    a.mov_rr(Reg::Edx, Reg::Ebx);
    a.alu_rr(AluOp::Add, Reg::Edx, Reg::Ecx);
    a.alu_ri(AluOp::And, Reg::Edx, mask);
    a.mov_rm(Reg::Eax, Mem::indexed(data, Reg::Edx, 4));
    a.alu_ri(AluOp::Xor, Reg::Eax, 0x55);
    a.alu_ri(AluOp::And, Reg::Eax, 0xFFFF);
    a.mov_mr(Mem::indexed(data, Reg::Edx, 4), Reg::Eax);
    a.alu_ri(AluOp::Add, Reg::Ecx, 1);
    a.jmp(p2);
    a.bind(p2_done);
    // pass 3: "emit" — checksum
    inner_loop(a, Reg::Ecx, 24, |a, _| {
        a.mov_rr(Reg::Edx, Reg::Ebx);
        a.alu_rr(AluOp::Add, Reg::Edx, Reg::Ecx);
        a.alu_ri(AluOp::And, Reg::Edx, mask);
        a.mov_rm(Reg::Edx, Mem::indexed(data, Reg::Edx, 4));
        a.alu_rr(AluOp::Xor, Reg::Edi, Reg::Edx);
    });
}

/// mcf: network-simplex-flavored relaxation with data writes.
fn kernel_mcf(a: &mut Assembler, data: u32, words: u32) {
    let mask = (words - 1) as i32;
    a.alu_ri(AluOp::Imul, Reg::Eax, 2246822519u32 as i32);
    a.alu_ri(AluOp::And, Reg::Eax, mask);
    a.mov_rr(Reg::Ebx, Reg::Eax);
    inner_loop(a, Reg::Ecx, 40, |a, _| {
        // u = data[(base+k) & mask]; v_idx = (base + k*7 + 1) & mask
        a.mov_rr(Reg::Edx, Reg::Ebx);
        a.alu_rr(AluOp::Add, Reg::Edx, Reg::Ecx);
        a.alu_ri(AluOp::And, Reg::Edx, mask);
        a.mov_rm(Reg::Eax, Mem::indexed(data, Reg::Edx, 4)); // u
        a.alu_ri(AluOp::Add, Reg::Eax, 13); // u + w
        a.mov_rr(Reg::Edx, Reg::Ecx);
        a.alu_ri(AluOp::Imul, Reg::Edx, 7);
        a.alu_rr(AluOp::Add, Reg::Edx, Reg::Ebx);
        a.alu_ri(AluOp::Add, Reg::Edx, 1);
        a.alu_ri(AluOp::And, Reg::Edx, mask);
        // if u + w < data[v]: data[v] = u + w (relax), edi++
        let no_relax = a.label();
        a.cmp(R(Reg::Eax), Operand_mem(data, Reg::Edx));
        a.jcc(Cc::Ae, no_relax);
        a.mov_mr(Mem::indexed(data, Reg::Edx, 4), Reg::Eax);
        a.alu_ri(AluOp::Add, Reg::Edi, 1);
        a.bind(no_relax);
    });
}

/// parser: token classification over a text window.
fn kernel_parser(a: &mut Assembler, data: u32, words: u32) {
    let mask = (words - 1) as i32;
    a.alu_ri(AluOp::Imul, Reg::Eax, 17);
    a.alu_ri(AluOp::And, Reg::Eax, mask);
    a.mov_rr(Reg::Ebx, Reg::Eax);
    inner_loop(a, Reg::Ecx, 56, |a, _| {
        a.mov_rr(Reg::Edx, Reg::Ebx);
        a.alu_rr(AluOp::Add, Reg::Edx, Reg::Ecx);
        a.alu_ri(AluOp::And, Reg::Edx, mask);
        a.mov_rm(Reg::Eax, Mem::indexed(data, Reg::Edx, 4));
        a.alu_ri(AluOp::And, Reg::Eax, 7); // token class
        // chained classification: word / number / punctuation / other
        let is_num = a.label();
        let is_punct = a.label();
        let classified = a.label();
        a.cmp(R(Reg::Eax), Imm(3));
        a.jcc(Cc::L, is_num);
        a.cmp(R(Reg::Eax), Imm(6));
        a.jcc(Cc::L, is_punct);
        a.alu_ri(AluOp::Add, Reg::Edi, 5); // "word"
        a.jmp(classified);
        a.bind(is_num);
        a.alu_ri(AluOp::Add, Reg::Edi, 1);
        a.jmp(classified);
        a.bind(is_punct);
        a.alu_ri(AluOp::Add, Reg::Edi, 2);
        a.bind(classified);
    });
}

/// twolf: simulated-annealing-style accept/reject with cell swaps.
fn kernel_twolf(a: &mut Assembler, data: u32, words: u32) {
    let mask = (words - 1) as i32;
    a.alu_ri(AluOp::Imul, Reg::Eax, 69069);
    a.alu_ri(AluOp::Add, Reg::Eax, 1);
    a.mov_rr(Reg::Ebx, Reg::Eax); // rng state
    inner_loop(a, Reg::Ecx, 36, |a, _| {
        a.alu_ri(AluOp::Imul, Reg::Ebx, 1664525);
        a.alu_ri(AluOp::Add, Reg::Ebx, 1013904223u32 as i32);
        a.mov_rr(Reg::Edx, Reg::Ebx);
        a.alu_ri(AluOp::Shr, Reg::Edx, 16);
        a.alu_ri(AluOp::And, Reg::Edx, mask);
        let reject = a.label();
        a.test(R(Reg::Ebx), Imm(0x6000)); // "temperature" gate
        a.jcc(Cc::Ne, reject);
        // accept: swap-ish update data[x] ^= x
        a.mov_rm(Reg::Eax, Mem::indexed(data, Reg::Edx, 4));
        a.alu_rr(AluOp::Xor, Reg::Eax, Reg::Edx);
        a.alu_ri(AluOp::And, Reg::Eax, 0xFFFF);
        a.mov_mr(Mem::indexed(data, Reg::Edx, 4), Reg::Eax);
        a.alu_ri(AluOp::Add, Reg::Edi, 1);
        a.bind(reject);
    });
}

/// vortex: object-database insert / probe over a hash region.
fn kernel_vortex(a: &mut Assembler, data: u32, words: u32) {
    let mask = (words - 1) as i32;
    a.mov_rr(Reg::Ebx, Reg::Eax); // key seed
    inner_loop(a, Reg::Ecx, 28, |a, _| {
        // key = (seed*2654435761 + k*97) & mask
        a.mov_rr(Reg::Edx, Reg::Ebx);
        a.alu_ri(AluOp::Imul, Reg::Edx, 40503);
        a.mov_rr(Reg::Eax, Reg::Ecx);
        a.alu_ri(AluOp::Imul, Reg::Eax, 97);
        a.alu_rr(AluOp::Add, Reg::Edx, Reg::Eax);
        a.alu_ri(AluOp::And, Reg::Edx, mask);
        // probe up to 2 slots for a zero cell
        let occupied = a.label();
        let stored = a.label();
        a.mov_rm(Reg::Eax, Mem::indexed(data, Reg::Edx, 4));
        a.test(R(Reg::Eax), Imm(1));
        a.jcc(Cc::Ne, occupied);
        a.mov_mr(Mem::indexed(data, Reg::Edx, 4), Reg::Ecx);
        a.alu_ri(AluOp::Add, Reg::Edi, 2);
        a.jmp(stored);
        a.bind(occupied);
        a.alu_rr(AluOp::Add, Reg::Edi, Reg::Eax);
        a.alu_ri(AluOp::And, Reg::Edi, 0x0FFF_FFFF);
        a.bind(stored);
    });
}

/// vpr: placement-cost evaluation (sum of absolute coordinate deltas).
fn kernel_vpr(a: &mut Assembler, data: u32, words: u32) {
    let mask = (words - 1) as i32;
    a.alu_ri(AluOp::Imul, Reg::Eax, 193);
    a.alu_ri(AluOp::And, Reg::Eax, mask);
    a.mov_rr(Reg::Ebx, Reg::Eax);
    inner_loop(a, Reg::Ecx, 44, |a, _| {
        a.mov_rr(Reg::Edx, Reg::Ebx);
        a.alu_rr(AluOp::Add, Reg::Edx, Reg::Ecx);
        a.alu_ri(AluOp::And, Reg::Edx, mask);
        a.mov_rm(Reg::Eax, Mem::indexed(data, Reg::Edx, 4));
        a.alu_ri(AluOp::Add, Reg::Edx, 9);
        a.alu_ri(AluOp::And, Reg::Edx, mask);
        a.alu_rm(AluOp::Sub, Reg::Eax, Mem::indexed(data, Reg::Edx, 4));
        // |delta|
        let positive = a.label();
        a.cmp(R(Reg::Eax), Imm(0));
        a.jcc(Cc::Ge, positive);
        a.alu_ri(AluOp::Xor, Reg::Eax, -1);
        a.alu_ri(AluOp::Add, Reg::Eax, 1);
        a.bind(positive);
        a.alu_rr(AluOp::Add, Reg::Edi, Reg::Eax);
        a.alu_ri(AluOp::And, Reg::Edi, 0x0FFF_FFFF);
    });
}

/// Convenience: a memory operand `data[reg*4]`.
#[allow(non_snake_case)]
fn Operand_mem(data: u32, reg: Reg) -> nativesim::reg::Operand {
    nativesim::reg::Operand::Mem(Mem::indexed(data, reg, 4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nativesim::cpu::Machine;

    fn run(image: &Image, input: Vec<u32>) -> nativesim::cpu::Outcome {
        Machine::load(image)
            .with_input(input)
            .run(200_000_000)
            .expect("workload runs")
    }

    #[test]
    fn all_ten_workloads_run_on_both_inputs() {
        let ws = all();
        assert_eq!(ws.len(), 10);
        for w in &ws {
            let t = run(&w.image, w.training_input.clone());
            let r = run(&w.image, w.reference_input.clone());
            assert_eq!(t.output.len(), 1, "{}", w.name);
            assert_eq!(r.output.len(), 1, "{}", w.name);
            assert!(
                r.instructions > t.instructions * 2,
                "{}: reference ({}) must dwarf training ({})",
                w.name,
                r.instructions,
                t.instructions
            );
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for w in all() {
            let a = run(&w.image, w.reference_input.clone());
            let b = run(&w.image, w.reference_input.clone());
            assert_eq!(a.output, b.output, "{}", w.name);
            assert_eq!(a.instructions, b.instructions, "{}", w.name);
        }
    }

    #[test]
    fn sizes_span_an_order_of_magnitude() {
        let sizes: Vec<(usize, &str)> = all()
            .iter()
            .map(|w| (w.image.size(), w.name))
            .collect();
        let min = sizes.iter().min().unwrap().0;
        let max = sizes.iter().max().unwrap().0;
        assert!(max > min * 3, "sizes {sizes:?}");
        assert!(min > 20_000, "even the smallest image is nontrivial");
    }

    #[test]
    fn by_name_finds_programs() {
        assert!(by_name("gcc").is_some());
        assert!(by_name("mcf").is_some());
        assert!(by_name("eon").is_none(), "eon was omitted, as in the paper");
    }

    #[test]
    fn workloads_accept_native_watermarks() {
        use pathmark_core::key::WatermarkKey;
        use pathmark_core::native::{embed_native, NativeConfig};
        for w in [by_name("mcf").unwrap(), by_name("parser").unwrap()] {
            let key = WatermarkKey::new(
                0xFEED,
                w.training_input.iter().map(|&v| v as i64).collect(),
            );
            let config = NativeConfig {
                training_inputs: vec![w.reference_input.clone()],
                ..NativeConfig::default()
            };
            let mut rng = Prng::from_seed(1);
            let bits: Vec<bool> = (0..128).map(|_| rng.chance(0.5)).collect();
            let mark = embed_native(&w.image, &bits, &key, &config)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            // Marked program must behave identically on both inputs.
            for input in [w.training_input.clone(), w.reference_input.clone()] {
                let orig = run(&w.image, input.clone());
                let marked = run(&mark.image, input.clone());
                assert_eq!(orig.output, marked.output, "{}", w.name);
            }
        }
    }
}
