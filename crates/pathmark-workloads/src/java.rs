//! Bytecode workloads: the CaffeineMark-like micro-suite and the
//! Jess-like interpreter.

use pathmark_crypto::Prng;
use stackvm::builder::{FunctionBuilder, ProgramBuilder};
use stackvm::insn::{BinOp, Cond};
use stackvm::{FuncId, Program};

/// A named bytecode workload with a reasonable secret-input sequence.
#[derive(Debug, Clone)]
pub struct JavaWorkload {
    /// Display name.
    pub name: &'static str,
    /// The program.
    pub program: Program,
    /// A secret input that exercises the program thoroughly while
    /// keeping traces tractable.
    pub secret_input: Vec<i64>,
}

/// Both bytecode workloads, in the order the paper reports them.
pub fn all() -> Vec<JavaWorkload> {
    vec![
        JavaWorkload {
            name: "caffeinemark",
            program: caffeinemark(),
            secret_input: vec![12],
        },
        JavaWorkload {
            name: "jess",
            program: jess_like(),
            secret_input: vec![40],
        },
    ]
}

/// The CaffeineMark-like suite: six small kernels (sieve, loop, logic,
/// array/"string", recursive method, fixed-point arithmetic), all hot —
/// "a high percentage of the instructions … are executed frequently".
pub fn caffeinemark() -> Program {
    let mut pb = ProgramBuilder::new();
    let sieve = pb.add_function(build_sieve());
    let loop_k = pb.add_function(build_loop_kernel());
    let logic = pb.add_function(build_logic_kernel());
    let array = pb.add_function(build_array_kernel());
    let fib = build_fib(&mut pb);
    let sqrt = pb.add_function(build_fixed_sqrt());
    let calibrate = pb.add_function(build_calibrate());

    let mut main = FunctionBuilder::new("main", 0, 1);
    let ok = main.new_label();
    main.read_input().store(0);
    main.load(0).if_zero(Cond::Gt, ok);
    main.push(12).store(0);
    main.bind(ok);
    // One-time self-calibration pass (the real CaffeineMark runs a
    // setup/calibration phase before its timed kernels).
    main.load(0).call(calibrate).pop();
    main.load(0).push(8).mul().call(sieve).print();
    main.load(0).push(4).mul().call(loop_k).print();
    main.load(0).push(16).mul().call(logic).print();
    main.load(0).push(4).mul().call(array).print();
    main.load(0).push(8).rem().push(10).add().call(fib).print();
    main.load(0).call(sqrt).print();
    main.ret_void();
    let main_id = pb.add_function(main.finish().expect("main builds"));
    pb.finish(main_id).expect("caffeinemark verifies")
}

fn build_sieve() -> stackvm::Function {
    // sieve(n): count of primes below n, by Eratosthenes over an array.
    let mut f = FunctionBuilder::new("sieve", 1, 4); // arr=1 i=2 j=3 count=4
    let ret0 = f.new_label();
    let outer = f.new_label();
    let inner = f.new_label();
    let next = f.new_label();
    let done = f.new_label();
    f.load(0).push(2).if_cmp(Cond::Lt, ret0);
    f.load(0).new_array().store(1);
    f.push(0).store(4);
    f.push(2).store(2);
    f.bind(outer);
    f.load(2).load(0).if_cmp(Cond::Ge, done);
    f.load(1).load(2).aload().if_zero(Cond::Ne, next);
    f.iinc(4, 1);
    f.load(2).load(2).add().store(3);
    f.bind(inner);
    f.load(3).load(0).if_cmp(Cond::Ge, next);
    f.load(1).load(3).push(1).astore();
    f.load(3).load(2).add().store(3);
    f.goto(inner);
    f.bind(next);
    f.iinc(2, 1).goto(outer);
    f.bind(done);
    f.load(4).ret();
    f.bind(ret0);
    f.push(0).ret();
    f.finish().expect("sieve builds")
}

fn build_loop_kernel() -> stackvm::Function {
    // loop(n): nested-loop arithmetic, Σ_{i<n} Σ_{j<i} (i·j & 7).
    let mut f = FunctionBuilder::new("loop_kernel", 1, 3); // i=1 j=2 acc=3
    let outer = f.new_label();
    let inner = f.new_label();
    let nexti = f.new_label();
    let done = f.new_label();
    f.push(0).store(3);
    f.push(0).store(1);
    f.bind(outer);
    f.load(1).load(0).if_cmp(Cond::Ge, done);
    f.push(0).store(2);
    f.bind(inner);
    f.load(2).load(1).if_cmp(Cond::Ge, nexti);
    f.load(3).load(1).load(2).mul().push(7).bin(BinOp::And).add().store(3);
    f.iinc(2, 1).goto(inner);
    f.bind(nexti);
    f.iinc(1, 1).goto(outer);
    f.bind(done);
    f.load(3).ret();
    f.finish().expect("loop kernel builds")
}

fn build_logic_kernel() -> stackvm::Function {
    // logic(n): xorshift-flavored bit twiddling with a data-dependent
    // branch.
    let mut f = FunctionBuilder::new("logic_kernel", 1, 3); // x=1 c=2 i=3
    let top = f.new_label();
    let even = f.new_label();
    let done = f.new_label();
    f.push(0x2F).store(1);
    f.push(0).store(2);
    f.push(0).store(3);
    f.bind(top);
    f.load(3).load(0).if_cmp(Cond::Ge, done);
    f.load(1).push(1).bin(BinOp::Shl);
    f.load(1).push(3).bin(BinOp::Shr);
    f.bin(BinOp::Xor).push(0xFFFF).bin(BinOp::And).store(1);
    f.load(1).push(1).bin(BinOp::And).if_zero(Cond::Eq, even);
    f.iinc(2, 1);
    f.bind(even);
    f.iinc(3, 1).goto(top);
    f.bind(done);
    f.load(2).ret();
    f.finish().expect("logic kernel builds")
}

fn build_array_kernel() -> stackvm::Function {
    // array(n): fill, reverse in place, weighted checksum — the
    // "string" kernel analogue (strings are char arrays).
    let mut f = FunctionBuilder::new("array_kernel", 1, 5); // arr=1 i=2 acc=3 tmp=4
    let ret0 = f.new_label();
    let fill = f.new_label();
    let rev = f.new_label();
    let sum_top = f.new_label();
    let sum_done = f.new_label();
    let rev_done = f.new_label();
    let fill_done = f.new_label();
    f.load(0).if_zero(Cond::Le, ret0);
    f.load(0).new_array().store(1);
    f.push(0).store(2);
    f.bind(fill);
    f.load(2).load(0).if_cmp(Cond::Ge, fill_done);
    f.load(1).load(2);
    f.load(2).push(31).mul().push(7).add().push(127).bin(BinOp::And);
    f.astore();
    f.iinc(2, 1).goto(fill);
    f.bind(fill_done);
    f.push(0).store(2);
    f.bind(rev);
    f.load(2).load(0).push(2).div().if_cmp(Cond::Ge, rev_done);
    // tmp = arr[i]
    f.load(1).load(2).aload().store(4);
    // arr[i] = arr[n-1-i]
    f.load(1).load(2);
    f.load(1).load(0).push(1).sub().load(2).sub().aload();
    f.astore();
    // arr[n-1-i] = tmp
    f.load(1).load(0).push(1).sub().load(2).sub().load(4).astore();
    f.iinc(2, 1).goto(rev);
    f.bind(rev_done);
    f.push(0).store(3);
    f.push(0).store(2);
    f.bind(sum_top);
    f.load(2).load(0).if_cmp(Cond::Ge, sum_done);
    f.load(3).load(1).load(2).aload().load(2).push(1).add().mul().add().store(3);
    f.iinc(2, 1).goto(sum_top);
    f.bind(sum_done);
    f.load(3).ret();
    f.bind(ret0);
    f.push(0).ret();
    f.finish().expect("array kernel builds")
}

fn build_fib(pb: &mut ProgramBuilder) -> FuncId {
    // fib(n): the call-heavy "method" kernel.
    let id = pb.declare_function("fib");
    let mut f = FunctionBuilder::new("fib", 1, 0);
    let base = f.new_label();
    f.load(0).push(2).if_cmp(Cond::Lt, base);
    f.load(0).push(1).sub().call(id);
    f.load(0).push(2).sub().call(id);
    f.add().ret();
    f.bind(base);
    f.load(0).ret();
    pb.set_function(id, f.finish().expect("fib builds"));
    id
}

fn build_calibrate() -> stackvm::Function {
    // A once-executed straight-line ladder of ~120 small conditional
    // blocks: the benchmark's setup phase, and incidentally the kind of
    // cold-but-visited code real programs are full of.
    let mut f = FunctionBuilder::new("calibrate", 1, 1);
    f.push(0).store(1);
    for k in 0..120i64 {
        let skip = f.new_label();
        let cond = match k % 3 {
            0 => Cond::Gt,
            1 => Cond::Ne,
            _ => Cond::Le,
        };
        f.load(0).push(k % 17).if_cmp(cond, skip);
        f.load(1).push(k * 3 + 1).add().store(1);
        f.bind(skip);
    }
    f.load(1).ret();
    f.finish().expect("calibrate builds")
}

fn build_fixed_sqrt() -> stackvm::Function {
    // sqrt(n): Newton iterations in fixed point — the "float" kernel
    // analogue (this VM is integer-only, like early embedded JVMs).
    let mut f = FunctionBuilder::new("fixed_sqrt", 1, 3); // v=1 x=2 i=3
    let ret0 = f.new_label();
    let top = f.new_label();
    let done = f.new_label();
    f.load(0).if_zero(Cond::Le, ret0);
    f.load(0).push(1000).mul().push(1).add().store(1);
    f.load(1).store(2);
    f.push(0).store(3);
    f.bind(top);
    f.load(3).push(16).if_cmp(Cond::Ge, done);
    f.load(2).load(1).load(2).div().add().push(2).div().store(2);
    f.iinc(3, 1).goto(top);
    f.bind(done);
    f.load(2).ret();
    f.bind(ret0);
    f.push(0).ret();
    f.finish().expect("sqrt builds")
}

/// Number of "rule" functions in the Jess-like workload.
pub const JESS_RULES: usize = 64;
/// Number of cold utility functions in the Jess-like workload.
pub const JESS_UTILS: usize = 200;

/// The Jess-like workload: a rule-engine-shaped program that is much
/// larger than the micro-suite and whose code is mostly *cold* — every
/// rule and utility runs once during initialization, and only eight
/// rules run in the hot loop. This reproduces the property Figure 8
/// turns on: the frequency-weighted embedder finds plenty of cold
/// insertion sites, so watermarking barely slows the program down.
pub fn jess_like() -> Program {
    let mut rng = Prng::from_seed(0x4A45_5353); // "JESS"
    let mut pb = ProgramBuilder::new();
    let acc = pb.add_static("acc");

    let mut rules = Vec::with_capacity(JESS_RULES);
    for k in 0..JESS_RULES {
        rules.push(pb.add_function(build_rule(&format!("rule_{k}"), 70, &mut rng)));
    }
    let mut utils = Vec::with_capacity(JESS_UTILS);
    for k in 0..JESS_UTILS {
        utils.push(pb.add_function(build_rule(&format!("util_{k}"), 44, &mut rng)));
    }

    // init: run every rule and utility once (rule "compilation").
    let mut init = FunctionBuilder::new("init", 0, 0);
    for (k, &fid) in rules.iter().chain(utils.iter()).enumerate() {
        init.get_static(acc);
        init.push(k as i64 * 17 + 3);
        init.call(fid);
        init.add();
        init.put_static(acc);
    }
    init.ret_void();
    let init_id = pb.add_function(init.finish().expect("init builds"));

    // main: hot loop over eight of the rules.
    let mut main = FunctionBuilder::new("main", 0, 3); // i=0 iters=1 h=2
    let ok = main.new_label();
    let loop_top = main.new_label();
    let loop_done = main.new_label();
    main.read_input().store(1);
    main.load(1).if_zero(Cond::Gt, ok);
    main.push(40).store(1);
    main.bind(ok);
    main.call(init_id);
    main.push(0).store(0);
    main.bind(loop_top);
    main.load(0).load(1).if_cmp(Cond::Ge, loop_done);
    main.load(0).push(40503).mul().push(7).bin(BinOp::And).store(2);
    let case_labels: Vec<_> = (0..8).map(|_| main.new_label()).collect();
    let dispatch_done = main.new_label();
    let cases: Vec<(i64, stackvm::builder::Label)> = case_labels
        .iter()
        .enumerate()
        .map(|(k, &l)| (k as i64, l))
        .collect();
    main.load(2);
    main.switch(&cases, dispatch_done);
    for (k, &l) in case_labels.iter().enumerate() {
        main.bind(l);
        main.get_static(acc);
        main.load(0);
        main.call(rules[k * 7 % JESS_RULES]);
        main.bin(BinOp::Xor);
        main.put_static(acc);
        main.goto(dispatch_done);
    }
    main.bind(dispatch_done);
    main.iinc(0, 1).goto(loop_top);
    main.bind(loop_done);
    main.get_static(acc).print().ret_void();
    let main_id = pb.add_function(main.finish().expect("main builds"));
    pb.finish(main_id).expect("jess-like verifies")
}

/// Generates one rule/utility body: a pseudo-random straight-line
/// computation over the argument with occasional data-dependent skips.
fn build_rule(name: &str, ops: usize, rng: &mut Prng) -> stackvm::Function {
    let mut f = FunctionBuilder::new(name, 1, 1); // t=1
    f.load(0).store(1);
    for _ in 0..ops {
        let c = rng.range(1 << 12) as i64 + 1;
        match rng.index(6) {
            0 => {
                f.load(1).push(c).add().store(1);
            }
            1 => {
                f.load(1).push(c).mul().store(1);
            }
            2 => {
                f.load(1).push(c).bin(BinOp::Xor).store(1);
            }
            3 => {
                f.load(1).push(c).sub().store(1);
            }
            4 => {
                f.load(1).push(c | 1).bin(BinOp::Or).push(0x00FF_FFFF).bin(BinOp::And).store(1);
            }
            _ => {
                // if (t < c) t += c' — a cold data-dependent branch.
                let skip = f.new_label();
                let c2 = rng.range(1 << 10) as i64;
                f.load(1).push(c).if_cmp(Cond::Ge, skip);
                f.load(1).push(c2).add().store(1);
                f.bind(skip);
            }
        }
    }
    f.load(1).ret();
    f.finish().expect("rule builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stackvm::interp::Vm;
    use stackvm::trace::TraceConfig;

    #[test]
    fn caffeinemark_runs_and_is_deterministic() {
        let p = caffeinemark();
        let a = Vm::new(&p).with_input(vec![12]).run().unwrap();
        let b = Vm::new(&p).with_input(vec![12]).run().unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.output.len(), 6, "six kernels print one value each");
        // Sanity: sieve(96) counts primes below 96 = 24.
        assert_eq!(a.output[0], 24);
        // fib(12 % 8 + 10) = fib(14) = 377.
        assert_eq!(a.output[4], 377);
    }

    #[test]
    fn caffeinemark_defaults_on_empty_input() {
        let p = caffeinemark();
        let out = Vm::new(&p).run().unwrap();
        assert_eq!(out.output.len(), 6);
    }

    #[test]
    fn caffeinemark_is_hot() {
        // Most visited blocks should have high visit counts: the
        // property that makes watermark insertion expensive here.
        let p = caffeinemark();
        let out = Vm::new(&p)
            .with_input(vec![12])
            .with_trace(TraceConfig::full())
            .run()
            .unwrap();
        let freq = out.trace.block_frequencies();
        let hot_visits: u64 = freq.values().filter(|&&c| c >= 16).sum();
        let cold_visits: u64 = freq.values().filter(|&&c| c < 16).sum();
        assert!(
            hot_visits > cold_visits * 20,
            "execution is dominated by hot blocks: {hot_visits} vs {cold_visits}"
        );
    }

    #[test]
    fn jess_runs_and_is_deterministic() {
        let p = jess_like();
        let a = Vm::new(&p).with_input(vec![40]).run().unwrap();
        let b = Vm::new(&p).with_input(vec![40]).run().unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.output.len(), 1);
    }

    #[test]
    fn jess_is_much_larger_and_colder_than_caffeinemark() {
        let caffeine = caffeinemark();
        let jess = jess_like();
        assert!(
            jess.byte_size() > caffeine.byte_size() * 10,
            "jess {} vs caffeine {}",
            jess.byte_size(),
            caffeine.byte_size()
        );
        let out = Vm::new(&jess)
            .with_input(vec![40])
            .with_trace(TraceConfig::full())
            .run()
            .unwrap();
        let freq = out.trace.block_frequencies();
        let cold = freq.values().filter(|&&c| c <= 2).count();
        assert!(
            cold * 2 > freq.len(),
            "most visited blocks are cold: {cold}/{}",
            freq.len()
        );
    }

    #[test]
    fn workload_list_is_complete() {
        let ws = all();
        assert_eq!(ws.len(), 2);
        for w in &ws {
            let out = Vm::new(&w.program)
                .with_input(w.secret_input.clone())
                .run()
                .unwrap();
            assert!(!out.output.is_empty(), "{} produces output", w.name);
        }
    }

    #[test]
    fn workloads_accept_watermarks() {
        use pathmark_core::java::{Embedder, JavaConfig};
        use pathmark_core::key::{Watermark, WatermarkKey};
        for w in all() {
            let key = WatermarkKey::new(0x1234, w.secret_input.clone());
            let config = JavaConfig::for_watermark_bits(128).with_pieces(10);
            let watermark = Watermark::random_for(&config, &key);
            let marked = Embedder::builder(key.clone(), config)
                .build()
                .unwrap_or_else(|e| panic!("{}: {e}", w.name))
                .embed(&w.program, &watermark)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let orig = Vm::new(&w.program)
                .with_input(w.secret_input.clone())
                .run()
                .unwrap();
            let new = Vm::new(&marked.program)
                .with_input(w.secret_input.clone())
                .run()
                .unwrap();
            assert_eq!(orig.output, new.output, "{}", w.name);
        }
    }
}
