//! Randomized-property suite for the fused streaming scan: across 150
//! generated programs (the same deterministic xorshift generator the
//! stackvm suite uses — no external property-testing crates) and all
//! three execution tiers, the fused trace→scan pipeline must reproduce
//! the two-phase reference **bit for bit**: the same trace bit-string,
//! the same survivor table (values, multiplicities, first offsets), and
//! the same recognition. A slice of the programs is watermarked first so
//! the suite also covers survivor-dense traces where the periodic
//! pre-reject engages.

use pathmark_core::java::{Embedder, JavaConfig, Recognizer};
use pathmark_core::key::{Watermark, WatermarkKey};
use pathmark_core::ScanMode;
use stackvm::builder::{FunctionBuilder, ProgramBuilder};
use stackvm::insn::{BinOp, Cond};
use stackvm::{ExecTier, Program};

/// A small deterministic generator state (verification-friendly: all
/// branches are forward, so every generated program terminates).
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Generates a random straight-line-with-forward-branches program:
/// several leaf functions plus a main that calls them.
fn generate(seed: u64) -> Program {
    let mut g = Gen::new(seed);
    let mut pb = ProgramBuilder::new();
    let statics = (0..1 + g.below(3))
        .map(|i| pb.add_static(format!("s{i}")))
        .collect::<Vec<_>>();

    let nfuncs = 1 + g.below(4) as usize;
    let mut funcs: Vec<(stackvm::FuncId, u16)> = Vec::new();
    for fi in 0..nfuncs {
        let params = g.below(3) as u16;
        let mut f = FunctionBuilder::new(format!("f{fi}"), params, 3);
        let locals = params + 3;
        let segments = 2 + g.below(6);
        for _ in 0..segments {
            let a = (g.below(locals as u64)) as u16;
            let b = (g.below(locals as u64)) as u16;
            let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::And, BinOp::Or, BinOp::Xor];
            let op = ops[g.below(ops.len() as u64) as usize];
            f.load(a).load(b).bin(op).store(a);
            if g.below(3) == 0 {
                let s = statics[g.below(statics.len() as u64) as usize];
                f.get_static(s).push(g.next() as i32 as i64).add().put_static(s);
            }
            if g.below(2) == 0 {
                let skip = f.new_label();
                let conds = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge];
                let c = conds[g.below(4) as usize];
                f.load(a).push(g.below(16) as i64).if_cmp(c, skip);
                f.iinc(b, 1);
                f.bind(skip);
            }
        }
        f.load((g.below(locals as u64)) as u16).ret();
        let id = pb.add_function(f.finish().expect("generated function builds"));
        funcs.push((id, params));
    }
    let mut main = FunctionBuilder::new("main", 0, 1);
    for &(id, params) in &funcs {
        for p in 0..params {
            main.push((p as i64 + 1) * (g.below(9) as i64 + 1));
        }
        main.call(id).print();
    }
    main.ret_void();
    let main_id = pb.add_function(main.finish().expect("generated main builds"));
    pb.finish(main_id).expect("generated program verifies")
}

const CASES: u64 = 150;

#[test]
fn fused_scan_matches_two_phase_on_generated_programs() {
    let key = WatermarkKey::new(0x5CA7, vec![2, 1, 3]);
    let config = JavaConfig::for_watermark_bits(64).with_pieces(10);
    let embedder = Embedder::builder(key.clone(), config.clone())
        .build()
        .unwrap();
    // One warm session pair per tier, shared across all programs, so
    // the key-derived crypto is not re-derived 900 times.
    let tiers = [ExecTier::Reference, ExecTier::Predecoded, ExecTier::Compiled];
    let sessions: Vec<(Recognizer, Recognizer)> = tiers
        .iter()
        .map(|&tier| {
            let fused = Recognizer::builder(key.clone(), config.clone())
                .exec_tier(tier)
                .build()
                .unwrap();
            let two_phase = Recognizer::builder(key.clone(), config.clone())
                .exec_tier(tier)
                .scan_mode(ScanMode::TwoPhase)
                .build()
                .unwrap();
            assert_eq!(fused.scan_mode(), ScanMode::Fused);
            assert_eq!(two_phase.scan_mode(), ScanMode::TwoPhase);
            (fused, two_phase)
        })
        .collect();

    let mut marked_cases = 0usize;
    let mut recognized = 0usize;
    for case in 0..CASES {
        let seed = Gen::new(case).next();
        let mut program = generate(seed);
        // Watermark every fifth program: marked traces are where the
        // periodic pre-reject actually engages, so the fused scan's
        // run-extension machinery gets exercised, not just its
        // random-window fall-through.
        let mut expected = None;
        if case % 5 == 0 {
            let watermark = Watermark::random_for(&config, &key);
            let marked = embedder.embed(&program, &watermark).expect("embed");
            program = marked.program;
            expected = Some(watermark);
            marked_cases += 1;
        }

        for (tier, (fused, two_phase)) in tiers.iter().zip(&sessions) {
            // The materialized trace and the survivor table must be
            // bit-identical between the streaming and two-phase scans.
            let scan = fused.trace_survivors(&program).expect("fused trace");
            let bits = two_phase.trace_bits(&program).expect("two-phase trace");
            assert_eq!(scan.bits, bits, "seed {seed}, {tier} tier: trace bits");
            assert_eq!(
                scan.survivors,
                two_phase.window_survivors(&bits, 0, usize::MAX),
                "seed {seed}, {tier} tier: survivor table"
            );
            assert_eq!(scan.scanned, bits.num_windows() as u64, "seed {seed}");
            assert!(scan.skipped <= scan.scanned, "seed {seed}");

            // And so must the recognition built on top of them.
            let a = fused.recognize(&program).expect("fused recognize");
            let b = two_phase.recognize(&program).expect("two-phase recognize");
            assert_eq!(a, b, "seed {seed}, {tier} tier: recognition");
            if let Some(watermark) = &expected {
                assert_eq!(
                    a.watermark.as_ref(),
                    Some(watermark.value()),
                    "seed {seed}, {tier} tier"
                );
                recognized += 1;
            }
        }
    }
    assert_eq!(marked_cases, 30, "every fifth case is watermarked");
    assert_eq!(recognized, marked_cases * tiers.len());
}
