//! Baseline watermarking schemes from the paper's related-work
//! comparison (Section 6), implemented so the resilience contrast can be
//! *measured* rather than asserted.
//!
//! * [`davidson_myhrvold`] — "Davidson and Myhrvold [9] embed the
//!   watermark by reordering basic blocks. It is easily subverted by
//!   permuting the order of the blocks." A *static* scheme: the mark is
//!   the permutation in which a function's basic blocks are laid out.
//! * [`stern_frequency`] — "Stern et al. [19] embed the watermark in the
//!   relative frequencies of instructions using a spread spectrum
//!   technique. The data-rate is low and the scheme is easily subverted
//!   by inserting redundant instructions." Modeled as a sign vector over
//!   instruction-frequency deviations.
//!
//! Both are deliberately faithful to their *failure modes*: the
//! comparison bench (`pathmark-bench`, `tables` target) shows them dying
//! under exactly the transformations path-based watermarks shrug off.

pub mod davidson_myhrvold {
    //! Basic-block-order watermarking (US Patent 5,559,884).
    //!
    //! The watermark is an integer `W < (n-1)!` encoded as the
    //! permutation of the non-entry basic blocks of a chosen function,
    //! in the factorial number system. Embedding reorders the blocks
    //! (inserting gotos to preserve semantics); recognition reads the
    //! layout order back and decodes the permutation index.

    use pathmark_math::bigint::BigUint;
    use stackvm::cfg::Cfg;
    use stackvm::insn::Insn;
    use stackvm::{FuncId, Program};

    use crate::WatermarkError;

    /// Capacity in watermark values of a function with `blocks` basic
    /// blocks: `(blocks - 1)!` (entry block stays first).
    pub fn capacity(blocks: usize) -> BigUint {
        let movable = blocks.saturating_sub(1) as u64;
        (1..=movable).fold(BigUint::one(), |acc, k| &acc * &BigUint::from(k))
    }

    /// Block fingerprint: the instruction sequence with branch targets
    /// normalized away (relocation rewrites them).
    fn block_fingerprint(f: &stackvm::Function, block: &stackvm::cfg::Block) -> Vec<String> {
        f.code[block.start..block.end]
            .iter()
            .map(|i| {
                let mut j = i.clone();
                j.map_targets(|_| 0);
                format!("{j:?}")
            })
            .collect()
    }

    /// Whether a function's blocks are pairwise distinguishable by
    /// content — a precondition for the scheme's recognizer, which
    /// identifies blocks by fingerprint.
    pub fn blocks_distinct(f: &stackvm::Function) -> bool {
        let cfg = Cfg::build(f);
        let mut prints: Vec<Vec<String>> = cfg
            .blocks
            .iter()
            .map(|b| block_fingerprint(f, b))
            .collect();
        let n = prints.len();
        prints.sort();
        prints.dedup();
        prints.len() == n
    }

    /// Picks the usable function with the largest capacity (≥ 3 blocks,
    /// all distinguishable by content).
    pub fn best_function(program: &Program) -> Option<(FuncId, usize)> {
        program
            .iter_functions()
            .filter(|(_, f)| blocks_distinct(f))
            .map(|(id, f)| (id, Cfg::build(f).len()))
            .filter(|&(_, blocks)| blocks >= 3)
            .max_by_key(|&(_, blocks)| blocks)
    }

    /// Embeds `w` into the block order of `func`.
    ///
    /// # Errors
    ///
    /// [`WatermarkError::WatermarkTooLarge`] if `w >= (blocks-1)!`.
    pub fn embed(
        program: &mut Program,
        func: FuncId,
        w: &BigUint,
    ) -> Result<(), WatermarkError> {
        let f = program.function_mut(func);
        let cfg = Cfg::build(f);
        let movable = cfg.len().saturating_sub(1);
        if *w >= capacity(cfg.len()) {
            return Err(WatermarkError::WatermarkTooLarge {
                got_bits: w.bits(),
                max_bits: capacity(cfg.len()).bits().saturating_sub(1),
            });
        }
        // Factorial-number-system digits of w: digit i in 0..=movable-1-i.
        let mut digits = Vec::with_capacity(movable);
        let mut rest = w.clone();
        for i in 0..movable {
            let base = (movable - i) as u64;
            let (q, r) = rest.divrem_u64(base).expect("base >= 1");
            digits.push(r as usize);
            rest = q;
        }
        // Lehmer decode: digits -> permutation of 1..=movable.
        let mut pool: Vec<usize> = (1..=movable).collect();
        let order: Vec<usize> = digits.iter().map(|&d| pool.remove(d)).collect();

        // Lay out: entry block, then blocks in `order`, patching broken
        // fall-throughs with gotos (old-leader targets remapped at end).
        let mut sequence = vec![0usize];
        sequence.extend(order);
        let mut new_code: Vec<Insn> = Vec::new();
        let mut new_start = vec![usize::MAX; cfg.len()];
        for (pos, &b) in sequence.iter().enumerate() {
            new_start[b] = new_code.len();
            let block = &cfg.blocks[b];
            for pc in block.start..block.end {
                new_code.push(f.code[pc].clone());
            }
            let last = new_code.last().expect("non-empty block");
            if !last.is_terminator() && block.end < f.code.len() {
                // Patch the fall-through edge only when the layout broke
                // it.
                let old_next = cfg.block_of[block.end];
                if sequence.get(pos + 1) != Some(&old_next) {
                    new_code.push(Insn::Goto(block.end)); // old pc; remapped below
                }
            }
        }
        for insn in &mut new_code {
            insn.map_targets(|old| new_start[cfg.block_of[old]]);
        }
        f.code = new_code;
        stackvm::verify::verify_function(program, program.function(func))?;
        Ok(())
    }

    /// Reads the watermark back from the block layout: the permutation
    /// of blocks (identified by their *content*) relative to the
    /// canonical order recorded at embed time is not available to a
    /// blind recognizer, so — as in the original scheme — recognition
    /// compares against the original program.
    ///
    /// Returns the recovered `w`, assuming `original` is the pre-embed
    /// program (the scheme is *informed*, one of its weaknesses).
    pub fn recognize(
        original: &Program,
        marked: &Program,
        func: FuncId,
    ) -> Option<BigUint> {
        let canon = Cfg::build(original.function(func));
        let laid = Cfg::build(marked.function(func));
        if canon.len() < 3 {
            return None;
        }
        // Identify blocks by instruction content (excluding targets,
        // which relocation rewrites).
        let fingerprint = block_fingerprint;
        let canon_prints: Vec<Vec<String>> = canon
            .blocks
            .iter()
            .map(|b| fingerprint(original.function(func), b))
            .collect();
        // For each laid-out block (in order, skipping the entry), find
        // its canonical index.
        let mut order = Vec::new();
        for lb in laid.blocks.iter() {
            let print = {
                let f = marked.function(func);
                // Trailing patch-gotos may have been appended; compare on
                // the canonical block length prefix.
                let mut p = fingerprint(f, lb);
                if p.last().map(|s| s.starts_with("Goto")) == Some(true) {
                    p.pop();
                }
                p
            };
            if print.is_empty() {
                continue; // a pure fall-through-patch goto block
            }
            let matched = canon_prints.iter().position(|cp| {
                cp == &print || {
                    let mut cp2 = cp.clone();
                    if cp2.last().map(|s| s.starts_with("Goto")) == Some(true) {
                        cp2.pop();
                    }
                    cp2 == print
                }
            })?;
            order.push(matched);
        }
        if order.len() != canon.len() || order.first() != Some(&0) {
            return None;
        }
        // Lehmer encode the non-entry order back into w.
        let movable = order.len() - 1;
        let mut pool: Vec<usize> = (1..=movable).collect();
        let mut w = BigUint::zero();
        let mut place = BigUint::one();
        let mut digits = Vec::new();
        for &b in &order[1..] {
            let d = pool.iter().position(|&x| x == b)?;
            pool.remove(d);
            digits.push(d);
        }
        for (i, &d) in digits.iter().enumerate() {
            w = &w + &(&place * &BigUint::from(d as u64));
            place = &place * &BigUint::from((movable - i) as u64);
        }
        Some(w)
    }
}

pub mod stern_frequency {
    //! Spread-spectrum instruction-frequency watermarking (Stern et
    //! al., IH 1999), in miniature: the mark is a ±1 chip sequence added
    //! to the frequencies of selected instruction kinds.

    use stackvm::insn::{BinOp, Insn};
    use stackvm::Program;

    /// The instruction kinds whose frequencies carry chips.
    pub const CARRIERS: [BinOp; 4] = [BinOp::Add, BinOp::Xor, BinOp::And, BinOp::Or];

    fn frequencies(program: &Program) -> [i64; 4] {
        let mut freq = [0i64; 4];
        for f in &program.functions {
            for insn in &f.code {
                if let Insn::Bin(op) = insn {
                    if let Some(i) = CARRIERS.iter().position(|c| c == op) {
                        freq[i] += 1;
                    }
                }
            }
        }
        freq
    }

    /// Embeds a 4-chip sign vector by padding carrier frequencies with
    /// dead (opaque) occurrences: chip +1 bumps the carrier count by
    /// `strength`, chip −1 leaves it.
    pub fn embed(program: &mut Program, chips: [bool; 4], strength: usize) {
        let main = program.entry;
        let f = program.function_mut(main);
        let scratch = stackvm::edit::reserve_locals(f, 1);
        let mut snippet = Vec::new();
        for (i, &chip) in chips.iter().enumerate() {
            if !chip {
                continue;
            }
            for _ in 0..strength {
                snippet.push(Insn::Load(scratch));
                snippet.push(Insn::Const(0));
                snippet.push(Insn::Bin(CARRIERS[i]));
                snippet.push(Insn::Store(scratch));
            }
        }
        stackvm::edit::insert_snippet(f, 0, snippet);
    }

    /// Recognizes by comparing frequencies against the original
    /// (informed, like the original scheme): chip i is +1 when the
    /// carrier count grew by at least `strength / 2`.
    pub fn recognize(original: &Program, marked: &Program, strength: usize) -> [bool; 4] {
        let base = frequencies(original);
        let now = frequencies(marked);
        let mut chips = [false; 4];
        for i in 0..4 {
            chips[i] = now[i] - base[i] >= strength as i64 / 2;
        }
        chips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathmark_math::bigint::BigUint;
    use stackvm::builder::{FunctionBuilder, ProgramBuilder};
    use stackvm::insn::Cond;
    use stackvm::interp::Vm;
    use stackvm::Program;

    fn subject() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 2);
        let a = f.new_label();
        let b = f.new_label();
        let c = f.new_label();
        let out = f.new_label();
        f.push(0).store(0);
        f.load(0).if_zero(Cond::Ne, a);
        f.iinc(1, 1).goto(b);
        f.bind(a);
        f.iinc(1, 2).goto(c);
        f.bind(b);
        f.iinc(1, 4).goto(c);
        f.bind(c);
        f.load(1).push(3).if_cmp(Cond::Gt, out);
        f.iinc(1, 8);
        f.bind(out);
        f.load(1).print().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        pb.finish(main).unwrap()
    }

    #[test]
    fn dm_round_trips_and_preserves_semantics() {
        let original = subject();
        let baseline = Vm::new(&original).run().unwrap().output;
        let (func, blocks) = davidson_myhrvold::best_function(&original).unwrap();
        let cap = davidson_myhrvold::capacity(blocks);
        assert!(cap > BigUint::from(1u64), "enough blocks to encode");
        for w in [0u64, 1, 3] {
            let w = BigUint::from(w);
            if w >= cap {
                continue;
            }
            let mut marked = original.clone();
            davidson_myhrvold::embed(&mut marked, func, &w).unwrap();
            assert_eq!(Vm::new(&marked).run().unwrap().output, baseline);
            let got = davidson_myhrvold::recognize(&original, &marked, func);
            assert_eq!(got, Some(w));
        }
    }

    #[test]
    fn dm_dies_under_block_reordering() {
        // The attack Section 6 names: "easily subverted by permuting the
        // order of the blocks."
        let original = subject();
        let (func, _) = davidson_myhrvold::best_function(&original).unwrap();
        let w = BigUint::from(2u64);
        let mut marked = original.clone();
        davidson_myhrvold::embed(&mut marked, func, &w).unwrap();
        pathmark_attacks_reorder(&mut marked);
        let got = davidson_myhrvold::recognize(&original, &marked, func);
        assert_ne!(got, Some(w), "block reordering must destroy DM");
    }

    /// Local stand-in for the attacks crate (which depends on this
    /// crate; no circular dev-dependency): a fixed block rotation.
    fn pathmark_attacks_reorder(program: &mut Program) {
        use stackvm::cfg::Cfg;
        use stackvm::insn::Insn;
        for f in &mut program.functions {
            let cfg = Cfg::build(f);
            if cfg.len() < 4 {
                continue;
            }
            // Rotate the non-entry blocks by two.
            let mut sequence: Vec<usize> = (1..cfg.len()).collect();
            let rot = 2 % sequence.len().max(1);
            sequence.rotate_left(rot);
            sequence.insert(0, 0);
            let mut new_code = Vec::new();
            let mut new_start = vec![usize::MAX; cfg.len()];
            for &b in &sequence {
                new_start[b] = new_code.len();
                let block = &cfg.blocks[b];
                for pc in block.start..block.end {
                    new_code.push(f.code[pc].clone());
                }
                let last: &Insn = new_code.last().expect("non-empty");
                if !last.is_terminator() && block.end < f.code.len() {
                    new_code.push(Insn::Goto(block.end));
                }
            }
            for insn in &mut new_code {
                insn.map_targets(|old| new_start[cfg.block_of[old]]);
            }
            f.code = new_code;
        }
    }

    #[test]
    fn stern_round_trips_and_dies_under_redundant_insertion() {
        let original = subject();
        let chips = [true, false, true, true];
        let mut marked = original.clone();
        stern_frequency::embed(&mut marked, chips, 8);
        assert_eq!(
            Vm::new(&marked).run().unwrap().output,
            Vm::new(&original).run().unwrap().output
        );
        assert_eq!(stern_frequency::recognize(&original, &marked, 8), chips);
        // Attack: insert redundant carrier instructions (Section 6:
        // "easily subverted by inserting redundant instructions").
        let f = marked.function_mut(marked.entry);
        let scratch = stackvm::edit::reserve_locals(f, 1);
        let mut flood = Vec::new();
        for _ in 0..40 {
            for op in stern_frequency::CARRIERS {
                flood.push(stackvm::insn::Insn::Load(scratch));
                flood.push(stackvm::insn::Insn::Const(0));
                flood.push(stackvm::insn::Insn::Bin(op));
                flood.push(stackvm::insn::Insn::Store(scratch));
            }
        }
        stackvm::edit::insert_snippet(f, 0, flood);
        let got = stern_frequency::recognize(&original, &marked, 8);
        assert_ne!(got, chips, "redundant insertion must destroy Stern");
    }
}
