//! Watermark keys and values.

use pathmark_crypto::{Prng, Xtea};
use pathmark_math::bigint::BigUint;
use pathmark_math::primes::generate_primes;

/// The secret watermarking key.
///
/// The key has two halves, mirroring the paper:
///
/// * a **secret input sequence** `I = I_0, I_1, …` on which the program
///   is executed during tracing, embedding and recognition ("the only
///   restriction is that the trace be reproducible", Section 3.1);
/// * a **numeric secret** from which the prime set, the block-cipher
///   key, the perfect-hash seed and every embedding-time random choice
///   are derived deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatermarkKey {
    /// The numeric secret.
    pub seed: u64,
    /// The secret input sequence for bytecode programs.
    pub input: Vec<i64>,
}

impl WatermarkKey {
    /// Creates a key.
    pub fn new(seed: u64, input: Vec<i64>) -> Self {
        WatermarkKey { seed, input }
    }

    /// The secret input as 32-bit values, for native programs.
    pub fn native_input(&self) -> Vec<u32> {
        self.input.iter().map(|&v| v as u32).collect()
    }

    /// The block cipher derived from this key (Section 3.2 step 2).
    pub fn cipher(&self) -> Xtea {
        Xtea::from_seed(self.seed ^ 0x0054_4541_204b_4559)
    }

    /// A deterministic PRNG for embedding-time choices.
    pub fn prng(&self) -> Prng {
        Prng::from_seed(self.seed ^ 0x454d_4245_4444)
    }

    /// The prime set `p_1, …, p_r` for a given configuration.
    pub fn primes(&self, prime_bits: u32, count: usize) -> Vec<u64> {
        generate_primes(self.seed ^ 0x5052_494d_4553, prime_bits, count)
    }
}

/// A watermark value: the integer `W` identifying one distributed copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Watermark {
    value: BigUint,
    bits: usize,
}

impl Watermark {
    /// Wraps an explicit value, recording its nominal bit width.
    pub fn from_value(value: BigUint, bits: usize) -> Self {
        Watermark { value, bits }
    }

    /// Draws a uniformly random watermark of `bits` bits (top bit set),
    /// from the given generator.
    pub fn random(bits: usize, rng: &mut Prng) -> Self {
        assert!(bits > 0, "watermark must have at least one bit");
        let mut bytes = vec![0u8; bits.div_ceil(8)];
        rng.fill_bytes(&mut bytes);
        let mut value = BigUint::from_bytes_le(&bytes);
        // Trim to exactly `bits` bits and force the top bit.
        let excess = value.bits().saturating_sub(bits);
        if excess > 0 {
            value = &value >> excess;
        }
        value.set_bit(bits - 1);
        Watermark { value, bits }
    }

    /// Draws a random watermark sized for a Java configuration, seeded
    /// from the key (so examples and tests are reproducible).
    pub fn random_for(config: &crate::java::JavaConfig, key: &WatermarkKey) -> Self {
        let mut rng = Prng::from_seed(key.seed ^ 0x574d);
        Watermark::random(config.watermark_bits, &mut rng)
    }

    /// The integer value `W`.
    pub fn value(&self) -> &BigUint {
        &self.value
    }

    /// The nominal bit width (128, 256, 512 … in the paper's
    /// experiments).
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The watermark as a little-endian-first bit vector of exactly
    /// [`Self::bits`] bits — the form the native scheme embeds.
    pub fn to_bits(&self) -> Vec<bool> {
        (0..self.bits).map(|i| self.value.bit(i)).collect()
    }

    /// Reassembles a watermark from the bit vector produced by
    /// [`Self::to_bits`] (and by native extraction).
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut value = BigUint::zero();
        for (i, &b) in bits.iter().enumerate() {
            if b {
                value.set_bit(i);
            }
        }
        Watermark {
            value,
            bits: bits.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_derivations_are_deterministic() {
        let a = WatermarkKey::new(7, vec![1, 2]);
        let b = WatermarkKey::new(7, vec![1, 2]);
        assert_eq!(a.cipher(), b.cipher());
        assert_eq!(a.primes(20, 5), b.primes(20, 5));
        let c = WatermarkKey::new(8, vec![1, 2]);
        assert_ne!(a.primes(20, 5), c.primes(20, 5));
        assert_eq!(a.native_input(), vec![1u32, 2]);
    }

    #[test]
    fn random_watermark_has_exact_width() {
        let mut rng = Prng::from_seed(3);
        for bits in [1usize, 8, 64, 128, 512, 768] {
            let w = Watermark::random(bits, &mut rng);
            assert_eq!(w.value().bits(), bits, "width {bits}");
            assert_eq!(w.bits(), bits);
        }
    }

    #[test]
    fn bit_vector_round_trip() {
        let mut rng = Prng::from_seed(4);
        let w = Watermark::random(100, &mut rng);
        let bits = w.to_bits();
        assert_eq!(bits.len(), 100);
        let back = Watermark::from_bits(&bits);
        assert_eq!(back.value(), w.value());
        assert_eq!(back.bits(), 100);
    }

    #[test]
    fn from_bits_preserves_leading_zero_width() {
        let bits = vec![true, false, false, false]; // value 1, width 4
        let w = Watermark::from_bits(&bits);
        assert_eq!(w.bits(), 4);
        assert_eq!(w.value(), &BigUint::from(1u64));
    }
}
