//! A fast, non-cryptographic hasher for the pipeline's hot maps.
//!
//! `std`'s default `SipHash` is keyed against collision flooding, which
//! the trace decoder does not need: its keys are branch sites of the
//! *owner's own program*, not attacker-chosen values (an attacker
//! perturbs the trace, never the recognizer's hash seeds). Decoding a
//! trace performs one map lookup per dynamic branch — hundreds of
//! thousands per copy — so the ~5× cheaper multiply-fold below
//! ([FxHash], the rustc/Firefox scheme) measurably moves the
//! recognition wall clock.
//!
//! [FxHash]: https://nnethercote.github.io/perf-book/hashing.html

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap`/`HashSet` state plugging [`FxHasher`] in for SipHash.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Multiply-fold hasher: each written word is xor-folded into the state
/// and diffused by one odd-constant multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

/// The golden-ratio multiplier, 2^64 / φ rounded to odd.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.fold(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn distinct_keys_hash_distinctly_in_practice() {
        let mut seen = std::collections::HashSet::new();
        for v in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(v);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "no collisions on a dense range");
    }

    #[test]
    fn works_as_map_state() {
        let mut map: HashMap<(u32, usize), u64, FxBuildHasher> = HashMap::default();
        for i in 0..100u32 {
            map.insert((i, i as usize * 7), i as u64);
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.get(&(40, 280)), Some(&40));
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), b.finish());
    }
}
