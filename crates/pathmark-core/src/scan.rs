//! Columnar survivor tables for the two-phase window scan.
//!
//! Phase one of recognition (`Recognizer::window_survivors`) reduces a
//! trace bit-string to the *distinct* surviving 64-bit window values of
//! a scan range; phase two decrypts each value once. [`Survivors`] is
//! the currency between the phases: a sorted columnar table with one
//! row per distinct value and three parallel columns —
//!
//! * **values** — the distinct window values, strictly ascending;
//! * **multiplicities** — how many scan offsets produced each value
//!   (exact, including offsets the pre-reject bulk-accounted without
//!   rolling through them);
//! * **first offsets** — the lowest scan offset at which each value was
//!   observed in the range.
//!
//! The layout is deliberately struct-of-arrays rather than a vector of
//! per-window structs: phase two streams the `values` column through
//! the batched cipher ([`pathmark_crypto::Xtea::decrypt_batch`]) in
//! contiguous lanes, and the sorted order makes shard merging a linear
//! column merge. The discipline mirrors the sorted columnar execution
//! tables of trace-based proof systems, and is the layout a GPU/offload
//! backend would consume unchanged.
//!
//! Tables are **concatenable across shards**: disjoint scan ranges of
//! one bit-string each produce a table, and [`Survivors::merge`] folds
//! them into the table a single full-range scan would have produced
//! (multiplicities sum, first offsets take the minimum) — the
//! serial/sharded bit-identity the fleet's shard merge relies on.

/// How a recognition session turns a traced program into a survivor
/// table.
///
/// * [`ScanMode::Fused`] (the default) streams the window scan *into*
///   the trace sink: the rolling window, both pre-rejects, and the
///   survivor accumulation run as branch bits arrive, so the packed
///   words are never re-walked by a second pass.
/// * [`ScanMode::TwoPhase`] materializes the full [`crate::bitstring::BitString`]
///   first and scans it afterwards — the property-tested oracle, and
///   the only shape that supports sharded window ranges and
///   pre-traced/attacked bit-strings.
///
/// The two modes are bit-identical: same [`Survivors`] table, same
/// recognition (CI property-gates this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// Stream the survivor scan inside the trace sink (one pass).
    #[default]
    Fused,
    /// Trace to a full bit-string, then scan it (the oracle path).
    TwoPhase,
}

impl ScanMode {
    /// The wire name (`"fused"` / `"two-phase"`), as accepted by
    /// [`ScanMode::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            ScanMode::Fused => "fused",
            ScanMode::TwoPhase => "two-phase",
        }
    }

    /// Parses a wire name; `None` for anything unknown.
    pub fn parse(name: &str) -> Option<ScanMode> {
        match name {
            "fused" => Some(ScanMode::Fused),
            "two-phase" => Some(ScanMode::TwoPhase),
            _ => None,
        }
    }
}

impl std::fmt::Display for ScanMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A sorted columnar table of distinct surviving window values; see the
/// module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Survivors {
    values: Vec<u64>,
    multiplicities: Vec<u64>,
    first_offsets: Vec<u64>,
}

impl Survivors {
    /// An empty table.
    pub fn new() -> Survivors {
        Survivors::default()
    }

    /// Builds a table from unsorted `(value, multiplicity, first
    /// offset)` entries: sorts by value and folds duplicate values
    /// together (multiplicities sum, first offsets take the minimum).
    ///
    /// Surviving window values are close to uniform (they are 64 bits
    /// of branch history dense enough to escape the constant-run
    /// reject), so the sort first scatters entries into 256 buckets by
    /// top byte and comparison-sorts each small bucket — near-linear on
    /// real traces, and merely a full sort in the adversarial
    /// one-bucket case.
    pub fn from_entries(entries: Vec<(u64, u64, u64)>) -> Survivors {
        let mut counts = [0usize; 256];
        for &(value, _, _) in &entries {
            counts[(value >> 56) as usize] += 1;
        }
        let mut starts = [0usize; 256];
        let mut total = 0usize;
        for (bucket, &count) in counts.iter().enumerate() {
            starts[bucket] = total;
            total += count;
        }
        let mut sorted: Vec<(u64, u64, u64)> = vec![(0, 0, 0); entries.len()];
        let mut cursor = starts;
        for entry in entries {
            let bucket = (entry.0 >> 56) as usize;
            sorted[cursor[bucket]] = entry;
            cursor[bucket] += 1;
        }
        for (bucket, &start) in starts.iter().enumerate() {
            sorted[start..start + counts[bucket]].sort_unstable();
        }
        let entries = sorted;
        let mut table = Survivors {
            values: Vec::with_capacity(entries.len()),
            multiplicities: Vec::with_capacity(entries.len()),
            first_offsets: Vec::with_capacity(entries.len()),
        };
        for (value, multiplicity, first_offset) in entries {
            match table.values.last() {
                Some(&v) if v == value => {
                    let last = table.values.len() - 1;
                    table.multiplicities[last] += multiplicity;
                    table.first_offsets[last] = table.first_offsets[last].min(first_offset);
                }
                _ => {
                    table.values.push(value);
                    table.multiplicities.push(multiplicity);
                    table.first_offsets.push(first_offset);
                }
            }
        }
        table
    }

    /// Folds shard tables (from disjoint scan ranges) into the table a
    /// single full-range scan would produce: values from all shards,
    /// multiplicities summed, first offsets minimized.
    pub fn merge(shards: impl IntoIterator<Item = Survivors>) -> Survivors {
        let mut entries: Vec<(u64, u64, u64)> = Vec::new();
        for shard in shards {
            entries.reserve(shard.len());
            for i in 0..shard.len() {
                entries.push((
                    shard.values[i],
                    shard.multiplicities[i],
                    shard.first_offsets[i],
                ));
            }
        }
        Survivors::from_entries(entries)
    }

    /// Number of distinct surviving values (table rows).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The distinct window values, strictly ascending.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Per-value occurrence counts, parallel to [`Survivors::values`].
    pub fn multiplicities(&self) -> &[u64] {
        &self.multiplicities
    }

    /// Per-value lowest scan offset, parallel to [`Survivors::values`].
    pub fn first_offsets(&self) -> &[u64] {
        &self.first_offsets
    }

    /// Total windows accounted, `sum(multiplicities)`.
    pub fn total_windows(&self) -> u64 {
        self.multiplicities.iter().sum()
    }

    /// Iterates rows as `(value, multiplicity, first offset)`, in
    /// ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.values
            .iter()
            .zip(&self.multiplicities)
            .zip(&self.first_offsets)
            .map(|((&v, &m), &f)| (v, m, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_entries_sorts_and_folds_duplicates() {
        let table = Survivors::from_entries(vec![
            (30, 2, 700),
            (10, 1, 500),
            (30, 5, 40),
            (20, 3, 600),
            (10, 4, 90),
        ]);
        assert_eq!(table.len(), 3);
        assert_eq!(table.values(), &[10, 20, 30]);
        assert_eq!(table.multiplicities(), &[5, 3, 7]);
        assert_eq!(table.first_offsets(), &[90, 600, 40]);
        assert_eq!(table.total_windows(), 15);
        assert_eq!(
            table.iter().collect::<Vec<_>>(),
            vec![(10, 5, 90), (20, 3, 600), (30, 7, 40)]
        );
    }

    #[test]
    fn merge_equals_single_table_of_all_entries() {
        use pathmark_crypto::Prng;
        let mut rng = Prng::from_seed(0x5CA2);
        let entries: Vec<(u64, u64, u64)> = (0..400)
            .map(|_| (rng.range(50), 1 + rng.range(4), rng.range(10_000)))
            .collect();
        let whole = Survivors::from_entries(entries.clone());
        // Split into shards at random points; each shard builds its own
        // table; merging must reproduce the whole-range table exactly.
        for shards in [1usize, 2, 3, 7] {
            let chunk = entries.len().div_ceil(shards);
            let parts: Vec<Survivors> = entries
                .chunks(chunk)
                .map(|c| Survivors::from_entries(c.to_vec()))
                .collect();
            assert_eq!(Survivors::merge(parts), whole, "{shards} shards");
        }
    }

    #[test]
    fn empty_tables_merge_to_empty() {
        let merged = Survivors::merge(vec![Survivors::new(), Survivors::default()]);
        assert!(merged.is_empty());
        assert_eq!(merged.len(), 0);
        assert_eq!(merged.total_windows(), 0);
        assert_eq!(merged, Survivors::from_entries(Vec::new()));
    }
}
