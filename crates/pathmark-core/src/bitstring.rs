//! The trace bit-string of Section 3.1, stored packed.
//!
//! > "For each conditional branch instruction *i* that occurs in the
//! > trace, we find its first occurrence, and find the block *j* that
//! > immediately follows that occurrence in the trace. Then we decode the
//! > trace into a string of bits by scanning the trace from beginning to
//! > end and writing down a 0 whenever a conditional branch is
//! > immediately followed by the same instruction by which it was first
//! > followed, and a 1 otherwise."
//!
//! The resulting string is invariant under code reordering, branch-sense
//! inversion, and insertion/deletion of non-branch instructions; adding
//! or removing branches has only local effect — the properties the
//! paper's resilience argument rests on.
//!
//! # Packed layout
//!
//! Bits are stored in `u64` words, bit `i` at `words[i / 64]`, position
//! `i % 64` (LSB-first). Unused high bits of the last word are always
//! zero. Recognition's hot loop (Section 3.3 decrypts *every* sliding
//! 64-bit window) reads this layout directly:
//!
//! * [`BitString::window_u64`] is a constant-time two-word extract, so
//!   the scan no longer gathers 64 `bool`s per offset;
//! * [`BitString::windows`] rolls the window one bit per offset;
//! * [`BitString::next_set_bit`] / [`BitString::next_clear_bit`] find
//!   run boundaries a word at a time, letting the scan skip constant
//!   all-zero/all-one stretches without touching the cipher.
//!
//! The words live behind an `Arc`, so cloning a `BitString` — e.g. to
//! hand shards of one trace to a worker pool — shares the storage
//! instead of copying the whole string.

use std::collections::HashMap;
use std::sync::Arc;

use stackvm::trace::{Site, Trace, TraceSink};

use crate::hash::FxBuildHasher;

/// The decoded bit-string of a trace, packed 64 bits to a word.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitString {
    /// Bit `i` lives at `words[i / 64] >> (i % 64) & 1`; bits past
    /// `len` in the last word are zero.
    words: Arc<[u64]>,
    len: usize,
}

/// Incremental builder: packs bits into words as they are appended, so
/// decoding a trace never materializes a `Vec<bool>`.
#[derive(Debug, Clone, Default)]
pub struct BitStringBuilder {
    words: Vec<u64>,
    /// Accumulator for the word in progress; flushed to `words` every
    /// 64th push so the hot path never touches the vector.
    cur: u64,
    len: usize,
}

impl BitStringBuilder {
    /// An empty builder.
    pub fn new() -> BitStringBuilder {
        BitStringBuilder::default()
    }

    /// A builder expecting about `bits` bits.
    pub fn with_capacity(bits: usize) -> BitStringBuilder {
        BitStringBuilder {
            words: Vec::with_capacity(bits.div_ceil(64)),
            cur: 0,
            len: 0,
        }
    }

    /// Appends one bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        self.cur |= (bit as u64) << (self.len % 64);
        self.len += 1;
        if self.len.is_multiple_of(64) {
            self.words.push(self.cur);
            self.cur = 0;
        }
    }

    /// Number of bits appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bit has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Freezes the builder into an immutable, sharable [`BitString`].
    pub fn finish(mut self) -> BitString {
        if !self.len.is_multiple_of(64) {
            self.words.push(self.cur);
        }
        BitString {
            words: self.words.into(),
            len: self.len,
        }
    }

    /// The fully packed words so far (the word in progress excluded):
    /// exactly `len() / 64` words, each one final. The streaming scan
    /// reads its lookback windows out of these while the trace is still
    /// being written.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// The 64-bit window starting at bit `offset` of a packed word slice
/// holding `len` bits (LSB-first, unused high bits of the last word
/// zero); `None` past the end. The shared kernel behind
/// [`BitString::window_u64`] and the streaming scanner's lookback reads
/// over a [`BitStringBuilder`]'s completed words.
#[inline]
pub fn window_from_words(words: &[u64], len: usize, offset: usize) -> Option<u64> {
    if offset + 64 > len {
        return None;
    }
    let (w, s) = (offset / 64, (offset % 64) as u32);
    let lo = words[w] >> s;
    // When the window is word-aligned (s == 0) the high word may not
    // exist (offset + 64 == len at a word boundary) and contributes
    // nothing; otherwise offset + 64 > 64·(w + 1) guarantees it does.
    let hi = if s == 0 { 0 } else { words[w + 1] << (64 - s) };
    Some(lo | hi)
}

/// The first bit at or after `from` violating `period` in a packed word
/// slice holding `len` bits: the smallest `q >= max(from, period)` with
/// `bit(q) != bit(q - period)`, or `len` when the bits are
/// `period`-periodic to the end. The shared word-parallel kernel behind
/// [`BitString::next_period_mismatch`] and the streaming scanner's
/// run extension — each packed word is XORed against the word `period`
/// bits back (two shifted reads), and the difference words are
/// classified **four at a time** with a single OR-reduction, so
/// skipping a megabit periodic stretch costs a few thousand word
/// operations rather than a million bit reads.
///
/// # Panics
///
/// Panics if `period == 0`.
pub fn period_mismatch_in_words(words: &[u64], len: usize, from: usize, period: usize) -> usize {
    assert!(period > 0, "period must be at least 1");
    let bit = |i: usize| (words[i / 64] >> (i % 64)) & 1;
    let mut q = from.max(period);
    // Scalar prologue: advance to a word boundary so the word loop
    // below never reads a packed word below index 0.
    while q < len && !q.is_multiple_of(64) {
        if bit(q) != bit(q - period) {
            return q;
        }
        q += 1;
    }
    if q >= len {
        return len;
    }
    let (dw, db) = (period / 64, (period % 64) as u32);
    // diff(k) = words[k] XOR (the 64 bits starting `period` bits
    // before word k), nonzero iff word k contains a violation. With
    // q word-aligned and q >= period, `k > dw` whenever `db > 0`,
    // so both source words exist.
    let diff = |k: usize| {
        let prev = if db == 0 {
            words[k - dw]
        } else {
            (words[k - dw] << db) | (words[k - dw - 1] >> (64 - db))
        };
        words[k] ^ prev
    };
    let hit = |k: usize, d: u64| k * 64 + d.trailing_zeros() as usize;
    let mut k = q / 64;
    // Classify four words (256 bits) per step: one OR-reduction
    // decides "any violation here?", and only a hit pays for the
    // per-word inspection.
    while k + 4 <= words.len() {
        let (d0, d1, d2, d3) = (diff(k), diff(k + 1), diff(k + 2), diff(k + 3));
        if d0 | d1 | d2 | d3 != 0 {
            let (j, d) = [d0, d1, d2, d3]
                .into_iter()
                .enumerate()
                .find(|&(_, d)| d != 0)
                .expect("the OR-reduction saw a set bit");
            // Zero padding past `len` in the last word XORs against
            // real earlier bits; a hit landing there is phantom.
            return hit(k + j, d).min(len);
        }
        k += 4;
    }
    while k < words.len() {
        let d = diff(k);
        if d != 0 {
            return hit(k, d).min(len);
        }
        k += 1;
    }
    len
}

impl Extend<bool> for BitStringBuilder {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for bit in iter {
            self.push(bit);
        }
    }
}

/// A [`TraceSink`] that folds the first-followed-by rule inline: every
/// dynamic branch becomes a packed bit the moment the interpreter reports
/// it, so the recognize path never materializes a `Vec<TraceEvent>`
/// (32 bytes/event) only to re-walk it through [`BitString::from_trace`].
///
/// Must observe the same branch sequence [`BitString::from_trace`] would
/// read from a collected trace — the `packed_sink_matches_from_trace`
/// property tests (here and in `java::recognize`) gate that equivalence
/// in CI.
#[derive(Debug, Clone, Default)]
pub struct PackedTraceSink {
    follow: FirstFollow,
    bits: BitStringBuilder,
}

/// The first-followed-by classifier shared by every streaming trace
/// sink ([`PackedTraceSink`] and the fused
/// [`crate::scanner::StreamingScanSink`]): per branch site, remembers
/// the first follower ever observed and classifies each subsequent
/// occurrence against it.
///
/// When built [`for_program`](FirstFollow::for_program), branch site
/// `(func, pc)` maps to slot `offsets[func] + pc` of a dense table,
/// whose value is the recorded reference follower plus one (`0` = site
/// unseen) — a flat-array read instead of a hash, which is most of the
/// per-event cost on the recognition hot path. Sites outside the
/// program's shape (or follower indices too big for the table) spill
/// to the hash map; a site's state lives in exactly one place — the
/// dense table if it is in range, the spill map otherwise — so mixing
/// lookups never double-records a site.
#[derive(Debug, Clone, Default)]
pub struct FirstFollow {
    offsets: Vec<usize>,
    dense: Vec<u32>,
    spill: HashMap<Site, usize, FxBuildHasher>,
}

impl FirstFollow {
    /// An empty classifier; every branch site goes through the hash map.
    pub fn new() -> FirstFollow {
        FirstFollow::default()
    }

    /// A classifier with a dense first-follow table sized for
    /// `program`'s code layout.
    pub fn for_program(program: &stackvm::Program) -> FirstFollow {
        let mut offsets = Vec::with_capacity(program.functions.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for f in &program.functions {
            total += f.code.len();
            offsets.push(total);
        }
        FirstFollow {
            offsets,
            dense: vec![0; total],
            ..FirstFollow::default()
        }
    }

    /// The trace bit of one dynamic branch — the from_trace rule: first
    /// occurrence fixes the reference follower and reads as `false`,
    /// deviations read as `true`.
    #[inline]
    pub fn classify(&mut self, site: Site, next: usize) -> bool {
        let f = site.func.0 as usize;
        if f + 1 < self.offsets.len() && next < u32::MAX as usize {
            let (base, end) = (self.offsets[f], self.offsets[f + 1]);
            if site.pc < end - base {
                let slot = &mut self.dense[base + site.pc];
                let follower = next as u32 + 1;
                if *slot == 0 {
                    *slot = follower;
                    return false;
                }
                return *slot != follower;
            }
        }
        match self.spill.get(&site) {
            None => {
                self.spill.insert(site, next);
                false
            }
            Some(&reference) => next != reference,
        }
    }
}

impl PackedTraceSink {
    /// An empty sink; every branch site goes through the hash map.
    pub fn new() -> PackedTraceSink {
        PackedTraceSink::default()
    }

    /// A sink with a dense first-follow table sized for `program` (see
    /// [`FirstFollow::for_program`]); the observable bit-sequence is
    /// identical to [`PackedTraceSink::new`].
    pub fn for_program(program: &stackvm::Program) -> PackedTraceSink {
        PackedTraceSink {
            follow: FirstFollow::for_program(program),
            bits: BitStringBuilder::new(),
        }
    }

    /// Freezes the accumulated bits into a [`BitString`].
    pub fn finish(self) -> BitString {
        self.bits.finish()
    }
}

impl TraceSink for PackedTraceSink {
    fn enter_block(&mut self, _site: Site) {}

    #[inline]
    fn branch(&mut self, site: Site, next: usize) {
        let bit = self.follow.classify(site, next);
        self.bits.push(bit);
    }

    fn snapshot(&mut self, _site: Site, _locals: &[i64], _statics: &[i64]) {}
}

impl FromIterator<bool> for BitString {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> BitString {
        let mut b = BitStringBuilder::new();
        b.extend(iter);
        b.finish()
    }
}

impl BitString {
    /// Decodes a trace (its dynamic conditional-branch sequence) into
    /// bits by the first-followed-by rule.
    pub fn from_trace(trace: &Trace) -> BitString {
        // One lookup per dynamic branch — the FxHash state keeps this
        // linear pass from being dominated by SipHash (see [`crate::hash`]).
        let mut first_follow: HashMap<Site, usize, FxBuildHasher> = HashMap::default();
        let mut bits = BitStringBuilder::new();
        for (site, next) in trace.branch_sequence() {
            match first_follow.get(&site) {
                None => {
                    first_follow.insert(site, next);
                    bits.push(false); // first occurrence: followed by its own reference
                }
                Some(&reference) => bits.push(next != reference),
            }
        }
        bits.finish()
    }

    /// Builds a bit-string directly from bits (tests and experiments).
    pub fn from_bits(bits: Vec<bool>) -> BitString {
        bits.into_iter().collect()
    }

    /// The bit at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range for {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// The bits unpacked into a `Vec<bool>`, in trace order (tests and
    /// experiments that perturb individual bits).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.bit(i)).collect()
    }

    /// The packed words, bit `i` at `words[i / 64]`, LSB-first; unused
    /// high bits of the last word are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the string is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of sliding 64-bit windows, `max(len - 63, 0)`.
    pub fn num_windows(&self) -> usize {
        self.len.saturating_sub(63)
    }

    /// The 64-bit word starting at `offset`, first bit least
    /// significant; `None` past the end. Constant-time: one or two word
    /// reads, never a per-bit gather.
    pub fn window_u64(&self, offset: usize) -> Option<u64> {
        window_from_words(&self.words, self.len, offset)
    }

    /// Index of the first **1** bit at or after `from`, if any.
    ///
    /// Scans a word at a time over the packed storage, so skipping a
    /// megabit all-zero run costs a few thousand word reads, not a
    /// million bit reads.
    pub fn next_set_bit(&self, from: usize) -> Option<usize> {
        self.next_matching_bit(from, |w| w)
    }

    /// Index of the first **0** bit at or after `from`, if any.
    pub fn next_clear_bit(&self, from: usize) -> Option<usize> {
        self.next_matching_bit(from, |w| !w)
    }

    /// Shared word-at-a-time search: `lens` maps a raw word so that the
    /// sought bit value reads as 1.
    fn next_matching_bit(&self, from: usize, lens: impl Fn(u64) -> u64) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut w = from / 64;
        // Mask off bits before `from` in the first word.
        let mut word = lens(self.words[w]) & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                let i = w * 64 + word.trailing_zeros() as usize;
                // `lens = !w` turns the zero padding past `len` into
                // phantom set bits; reject hits beyond the string.
                return (i < self.len).then_some(i);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = lens(self.words[w]);
        }
    }

    /// Index of the first bit at or after `from` that **violates**
    /// period `period`: the smallest `q >= max(from, period)` with
    /// `bit(q) != bit(q - period)`, or `len()` when the string is
    /// `period`-periodic all the way to its end.
    ///
    /// This is the scan engine's widened pre-reject classifier
    /// (generalizing the constant-run case, which is exactly
    /// `period == 1`): inside a maximal violation-free stretch every
    /// sliding window repeats the window one period earlier, so the
    /// whole stretch can be accounted in bulk without rolling through
    /// it. Delegates to the shared word-parallel
    /// [`period_mismatch_in_words`] kernel (four words per step), which
    /// the streaming scanner also runs over a builder's completed
    /// words — the `period_mismatch_matches_naive_reference` property
    /// test gates the kernel against the scalar definition.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn next_period_mismatch(&self, from: usize, period: usize) -> usize {
        period_mismatch_in_words(&self.words, self.len, from, period)
    }

    /// Iterates over every sliding 64-bit window `B_0 = b_0…b_63`,
    /// `B_1 = b_1…b_64`, … (Section 3.3, step one of recognition) by
    /// rolling: each step shifts the previous window right one bit and
    /// inserts the next bit at the top.
    pub fn windows(&self) -> Windows<'_> {
        Windows {
            bits: self,
            offset: 0,
            window: self.window_u64(0).unwrap_or(0),
        }
    }
}

/// Rolling iterator over sliding 64-bit windows; see
/// [`BitString::windows`].
#[derive(Debug, Clone)]
pub struct Windows<'a> {
    bits: &'a BitString,
    offset: usize,
    window: u64,
}

impl Iterator for Windows<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.offset >= self.bits.num_windows() {
            return None;
        }
        let current = self.window;
        let incoming = self.offset + 64;
        if incoming < self.bits.len {
            let bit = (self.bits.words[incoming / 64] >> (incoming % 64)) & 1;
            self.window = (current >> 1) | (bit << 63);
        }
        self.offset += 1;
        Some(current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.bits.num_windows() - self.offset.min(self.bits.num_windows());
        (left, Some(left))
    }
}

impl ExactSizeIterator for Windows<'_> {}

impl std::fmt::Display for BitString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.len {
            f.write_str(if self.bit(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stackvm::program::FuncId;
    use stackvm::trace::TraceEvent;

    fn branch(func: u32, pc: usize, next: usize) -> TraceEvent {
        TraceEvent::Branch {
            site: Site {
                func: FuncId(func),
                pc,
            },
            next,
        }
    }

    #[test]
    fn first_occurrence_is_zero() {
        let t = Trace {
            events: vec![branch(0, 5, 10)],
        };
        let bs = BitString::from_trace(&t);
        assert_eq!(bs.to_bools(), &[false]);
    }

    #[test]
    fn deviation_from_reference_is_one() {
        let t = Trace {
            events: vec![
                branch(0, 5, 10), // reference: next = 10
                branch(0, 5, 10), // same -> 0
                branch(0, 5, 6),  // different -> 1
                branch(0, 5, 10), // same -> 0
            ],
        };
        let bs = BitString::from_trace(&t);
        assert_eq!(bs.to_string(), "0010");
    }

    #[test]
    fn branches_are_tracked_per_site() {
        let t = Trace {
            events: vec![
                branch(0, 5, 10),
                branch(1, 5, 99), // same pc, different function: own reference
                branch(0, 5, 99), // differs from ITS reference (10) -> 1
                branch(1, 5, 99), // matches its reference -> 0
            ],
        };
        let bs = BitString::from_trace(&t);
        assert_eq!(bs.to_string(), "0010");
    }

    #[test]
    fn branch_sense_inversion_invariance() {
        // The defining property: if an attacker negates the predicate and
        // swaps the targets, the *following block* per occurrence is
        // unchanged, so the bit-string is unchanged. Simulate by keeping
        // the next-block sequence identical.
        let original = Trace {
            events: vec![branch(0, 5, 10), branch(0, 5, 6), branch(0, 5, 10)],
        };
        // After inversion the branch instruction still sits at pc 5 and
        // the executed successor blocks are the same blocks.
        let inverted = original.clone();
        assert_eq!(
            BitString::from_trace(&original),
            BitString::from_trace(&inverted)
        );
    }

    #[test]
    fn windows_slide_one_bit() {
        let mut bits = vec![false; 70];
        bits[0] = true; // window 0 = 1, window 1 = 0
        bits[65] = true; // appears in windows 2..=6
        let bs = BitString::from_bits(bits);
        let ws: Vec<u64> = bs.windows().collect();
        assert_eq!(ws.len(), 70 - 63);
        assert_eq!(ws[0], 1);
        assert_eq!(ws[1], 0);
        assert_eq!(ws[2], 1u64 << 63);
        assert_eq!(bs.window_u64(7), None);
    }

    #[test]
    fn short_strings_have_no_windows() {
        let bs = BitString::from_bits(vec![true; 63]);
        assert_eq!(bs.windows().count(), 0);
        assert!(!bs.is_empty());
        assert_eq!(bs.len(), 63);
        assert_eq!(bs.num_windows(), 0);
    }

    #[test]
    fn display_renders_bits() {
        let bs = BitString::from_bits(vec![false, true, true, false]);
        assert_eq!(bs.to_string(), "0110");
    }

    /// Reference implementation of `window_u64` over unpacked bools.
    fn naive_window(bits: &[bool], offset: usize) -> Option<u64> {
        if offset + 64 > bits.len() {
            return None;
        }
        let mut w = 0u64;
        for (k, &b) in bits[offset..offset + 64].iter().enumerate() {
            if b {
                w |= 1u64 << k;
            }
        }
        Some(w)
    }

    #[test]
    fn packed_windows_match_naive_reference() {
        use pathmark_crypto::Prng;
        let mut rng = Prng::from_seed(0xB17);
        for len in [0usize, 1, 63, 64, 65, 127, 128, 129, 1000] {
            let bools: Vec<bool> = (0..len).map(|_| rng.chance(0.5)).collect();
            let bs = BitString::from_bits(bools.clone());
            assert_eq!(bs.len(), len);
            for off in 0..=len {
                assert_eq!(bs.window_u64(off), naive_window(&bools, off), "len {len} off {off}");
            }
            let rolled: Vec<u64> = bs.windows().collect();
            let naive: Vec<u64> = (0..len.saturating_sub(63))
                .map(|off| naive_window(&bools, off).unwrap())
                .collect();
            assert_eq!(rolled, naive, "len {len}");
            assert_eq!(bs.to_bools(), bools);
        }
    }

    #[test]
    fn packed_sink_matches_from_trace_reference() {
        use pathmark_crypto::Prng;
        use stackvm::trace::TraceSink;
        let mut rng = Prng::from_seed(0x51CC);
        for round in 0..50 {
            // A handful of sites, revisited often enough that both the
            // first-occurrence and the deviation arms get exercised.
            let events: Vec<TraceEvent> = (0..rng.range(400))
                .map(|_| {
                    branch(rng.range(3) as u32, rng.index(5), rng.index(4))
                })
                .collect();
            let trace = Trace { events };
            let mut sink = PackedTraceSink::new();
            // A dense-table sink whose program shape covers only part
            // of the random site space (func 0 pcs 0..4, func 1 pcs
            // 0..2 of funcs 0..3 × pcs 0..5), so every event stream
            // exercises both the flat-array path and the spill map.
            let mut dense = PackedTraceSink::for_program(&tiny_program());
            for (site, next) in trace.branch_sequence() {
                sink.branch(site, next);
                dense.branch(site, next);
            }
            let reference = BitString::from_trace(&trace);
            assert_eq!(sink.finish(), reference, "round {round}");
            assert_eq!(dense.finish(), reference, "dense, round {round}");
        }
    }

    fn tiny_program() -> stackvm::Program {
        use stackvm::builder::{FunctionBuilder, ProgramBuilder};
        let mut pb = ProgramBuilder::new();
        let mut f0 = FunctionBuilder::new("f0", 0, 1);
        f0.push(1).store(0).load(0).pop().ret_void(); // pcs 0..=4
        let mut f1 = FunctionBuilder::new("f1", 0, 0);
        f1.push(0).pop().ret_void(); // pcs 0..=2
        let main = pb.add_function(f0.finish().unwrap());
        pb.add_function(f1.finish().unwrap());
        pb.finish_unverified(main)
    }

    #[test]
    fn next_set_and_clear_bit_find_run_boundaries() {
        let mut bools = vec![false; 300];
        bools[0] = true;
        bools[130] = true;
        bools[131] = true;
        let bs = BitString::from_bits(bools);
        assert_eq!(bs.next_set_bit(0), Some(0));
        assert_eq!(bs.next_set_bit(1), Some(130));
        assert_eq!(bs.next_set_bit(131), Some(131));
        assert_eq!(bs.next_set_bit(132), None);
        assert_eq!(bs.next_set_bit(10_000), None);
        assert_eq!(bs.next_clear_bit(0), Some(1));
        assert_eq!(bs.next_clear_bit(130), Some(132));

        let ones = BitString::from_bits(vec![true; 70]);
        assert_eq!(ones.next_clear_bit(0), None, "padding is not a phantom 0");
        assert_eq!(ones.next_set_bit(69), Some(69));
        assert_eq!(BitString::default().next_set_bit(0), None);
    }

    /// Reference implementation of `next_period_mismatch`: a plain
    /// bit-at-a-time walk.
    fn naive_period_mismatch(bits: &[bool], from: usize, period: usize) -> usize {
        let mut q = from.max(period);
        while q < bits.len() {
            if bits[q] != bits[q - period] {
                return q;
            }
            q += 1;
        }
        bits.len()
    }

    #[test]
    fn period_mismatch_matches_naive_reference() {
        use pathmark_crypto::Prng;
        let mut rng = Prng::from_seed(0x9E12);
        for len in [0usize, 1, 63, 64, 65, 120, 128, 129, 257, 700] {
            // Random strings exercise dense violations; periodic tilings
            // with planted flips exercise long violation-free stretches
            // crossing word boundaries.
            let random: Vec<bool> = (0..len).map(|_| rng.chance(0.5)).collect();
            let mut tiled: Vec<bool> = (0..len).map(|i| (i % 5) < 2).collect();
            if len > 10 {
                let flip = rng.index(len);
                tiled[flip] = !tiled[flip];
            }
            for bools in [random, tiled] {
                let bs = BitString::from_bits(bools.clone());
                for period in [1usize, 2, 3, 7, 63, 64, 65, 100, 128, 130, 1000] {
                    for from in [0usize, 1, period, period + 1, 64, 65, 128, len / 2, len] {
                        assert_eq!(
                            bs.next_period_mismatch(from, period),
                            naive_period_mismatch(&bools, from, period),
                            "len {len} period {period} from {from}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn period_mismatch_constant_runs_agree_with_flip_search() {
        // period == 1 is the constant-run case: on an all-constant
        // stretch the first mismatch is the first flipped bit.
        let mut bools = vec![false; 300];
        bools[130] = true;
        bools[131] = true;
        let bs = BitString::from_bits(bools);
        assert_eq!(bs.next_period_mismatch(1, 1), 130);
        assert_eq!(bs.next_period_mismatch(131, 1), 132, "1->0 edge");
        assert_eq!(bs.next_period_mismatch(133, 1), 300, "constant to the end");
        let ones = BitString::from_bits(vec![true; 70]);
        assert_eq!(ones.next_period_mismatch(0, 1), 70, "padding is not a phantom flip");
    }

    #[test]
    fn builder_matches_from_bits_and_clones_share_storage() {
        let bools: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let mut builder = BitStringBuilder::with_capacity(200);
        builder.extend(bools.iter().copied());
        assert_eq!(builder.len(), 200);
        assert!(!builder.is_empty());
        let a = builder.finish();
        let b = BitString::from_bits(bools);
        assert_eq!(a, b);

        let clone = a.clone();
        assert!(
            Arc::ptr_eq(&a.words, &clone.words),
            "clone shares the packed words"
        );
    }

    #[test]
    fn trailing_word_bits_are_zero() {
        // Eq relies on padding being deterministic.
        let bs = BitString::from_bits(vec![true; 65]);
        assert_eq!(bs.words().len(), 2);
        assert_eq!(bs.words()[1], 1, "only bit 64 set in the second word");
    }
}
