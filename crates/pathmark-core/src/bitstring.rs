//! The trace bit-string of Section 3.1.
//!
//! > "For each conditional branch instruction *i* that occurs in the
//! > trace, we find its first occurrence, and find the block *j* that
//! > immediately follows that occurrence in the trace. Then we decode the
//! > trace into a string of bits by scanning the trace from beginning to
//! > end and writing down a 0 whenever a conditional branch is
//! > immediately followed by the same instruction by which it was first
//! > followed, and a 1 otherwise."
//!
//! The resulting string is invariant under code reordering, branch-sense
//! inversion, and insertion/deletion of non-branch instructions; adding
//! or removing branches has only local effect — the properties the
//! paper's resilience argument rests on.

use std::collections::HashMap;

use stackvm::trace::{Site, Trace};

/// The decoded bit-string of a trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitString {
    bits: Vec<bool>,
}

impl BitString {
    /// Decodes a trace (its dynamic conditional-branch sequence) into
    /// bits by the first-followed-by rule.
    pub fn from_trace(trace: &Trace) -> BitString {
        let mut first_follow: HashMap<Site, usize> = HashMap::new();
        let mut bits = Vec::new();
        for (site, next) in trace.branch_sequence() {
            match first_follow.get(&site) {
                None => {
                    first_follow.insert(site, next);
                    bits.push(false); // first occurrence: followed by its own reference
                }
                Some(&reference) => bits.push(next != reference),
            }
        }
        BitString { bits }
    }

    /// Builds a bit-string directly from bits (tests and experiments).
    pub fn from_bits(bits: Vec<bool>) -> BitString {
        BitString { bits }
    }

    /// The bits, in trace order.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the string is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The 64-bit word starting at `offset`, first bit least
    /// significant; `None` past the end.
    pub fn window_u64(&self, offset: usize) -> Option<u64> {
        if offset + 64 > self.bits.len() {
            return None;
        }
        let mut w = 0u64;
        for (k, &b) in self.bits[offset..offset + 64].iter().enumerate() {
            if b {
                w |= 1u64 << k;
            }
        }
        Some(w)
    }

    /// Iterates over every sliding 64-bit window `B_0 = b_0…b_63`,
    /// `B_1 = b_1…b_64`, … (Section 3.3, step one of recognition).
    pub fn windows(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.bits.len().saturating_sub(63)).filter_map(|off| self.window_u64(off))
    }
}

impl std::fmt::Display for BitString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for &b in &self.bits {
            f.write_str(if b { "1" } else { "0" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stackvm::program::FuncId;
    use stackvm::trace::TraceEvent;

    fn branch(func: u32, pc: usize, next: usize) -> TraceEvent {
        TraceEvent::Branch {
            site: Site {
                func: FuncId(func),
                pc,
            },
            next,
        }
    }

    #[test]
    fn first_occurrence_is_zero() {
        let t = Trace {
            events: vec![branch(0, 5, 10)],
        };
        let bs = BitString::from_trace(&t);
        assert_eq!(bs.bits(), &[false]);
    }

    #[test]
    fn deviation_from_reference_is_one() {
        let t = Trace {
            events: vec![
                branch(0, 5, 10), // reference: next = 10
                branch(0, 5, 10), // same -> 0
                branch(0, 5, 6),  // different -> 1
                branch(0, 5, 10), // same -> 0
            ],
        };
        let bs = BitString::from_trace(&t);
        assert_eq!(bs.to_string(), "0010");
    }

    #[test]
    fn branches_are_tracked_per_site() {
        let t = Trace {
            events: vec![
                branch(0, 5, 10),
                branch(1, 5, 99), // same pc, different function: own reference
                branch(0, 5, 99), // differs from ITS reference (10) -> 1
                branch(1, 5, 99), // matches its reference -> 0
            ],
        };
        let bs = BitString::from_trace(&t);
        assert_eq!(bs.to_string(), "0010");
    }

    #[test]
    fn branch_sense_inversion_invariance() {
        // The defining property: if an attacker negates the predicate and
        // swaps the targets, the *following block* per occurrence is
        // unchanged, so the bit-string is unchanged. Simulate by keeping
        // the next-block sequence identical.
        let original = Trace {
            events: vec![branch(0, 5, 10), branch(0, 5, 6), branch(0, 5, 10)],
        };
        // After inversion the branch instruction still sits at pc 5 and
        // the executed successor blocks are the same blocks.
        let inverted = original.clone();
        assert_eq!(
            BitString::from_trace(&original),
            BitString::from_trace(&inverted)
        );
    }

    #[test]
    fn windows_slide_one_bit() {
        let mut bits = vec![false; 70];
        bits[0] = true; // window 0 = 1, window 1 = 0
        bits[65] = true; // appears in windows 2..=6
        let bs = BitString::from_bits(bits);
        let ws: Vec<u64> = bs.windows().collect();
        assert_eq!(ws.len(), 70 - 63);
        assert_eq!(ws[0], 1);
        assert_eq!(ws[1], 0);
        assert_eq!(ws[2], 1u64 << 63);
        assert_eq!(bs.window_u64(7), None);
    }

    #[test]
    fn short_strings_have_no_windows() {
        let bs = BitString::from_bits(vec![true; 63]);
        assert_eq!(bs.windows().count(), 0);
        assert!(!bs.is_empty());
        assert_eq!(bs.len(), 63);
    }

    #[test]
    fn display_renders_bits() {
        let bs = BitString::from_bits(vec![false, true, true, false]);
        assert_eq!(bs.to_string(), "0110");
    }
}
