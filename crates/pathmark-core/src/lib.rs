//! Dynamic path-based software watermarking.
//!
//! This crate is a from-scratch reproduction of the system described in
//! C. Collberg, E. Carter, S. Debray, A. Huntwork, J. Kececioglu,
//! C. Linn and M. Stepp, *Dynamic Path-Based Software Watermarking*,
//! PLDI 2004. The watermark is embedded in the **runtime branch
//! structure** of a program: run the program on a secret input sequence
//! (the key), observe which way its conditional branches go, and read the
//! mark out of that path. Two complete realizations are provided, exactly
//! as in the paper:
//!
//! * [`java`] — for stack bytecode (the paper's SandMark implementation):
//!   the watermark is split into redundant pieces with the Generalized
//!   Chinese Remainder Theorem, each piece is encrypted into one 64-bit
//!   block and spelled into the trace by inserted branch code; the
//!   recognizer slides a 64-bit window over the trace bit-string and
//!   votes/filters/recombines surviving pieces (Section 3).
//! * [`native`] — for IA-32-style executables (the paper's PLTO
//!   implementation): unconditional jumps become calls to a **branch
//!   function** that routes control through a perfect-hash XOR table; the
//!   forward/backward ordering of the call-site addresses spells the
//!   watermark, and the branch function doubles as tamper-proofing by
//!   computing indirect-jump targets the program needs (Section 4).
//!
//! Shared infrastructure: [`bitstring`] (the trace-to-bits decoding rule
//! of Section 3.1) and [`key`] (the watermark key and value types).
//! The related-work schemes the paper compares against in Section 6 are
//! implemented in [`baseline`] so the resilience contrast can be
//! measured (see the `tables` experiment in `pathmark-bench`).
//!
//! Both realizations are *dynamic blind fingerprinting* schemes: every
//! distributed copy encodes a distinct integer, and recognition needs
//! only the marked program plus the key.
//!
//! # Quick start (bytecode)
//!
//! ```
//! use pathmark_core::java::{Embedder, JavaConfig, Recognizer};
//! use pathmark_core::key::{Watermark, WatermarkKey};
//! use stackvm::builder::{FunctionBuilder, ProgramBuilder};
//! use stackvm::insn::Cond;
//!
//! // A toy program: print gcd(read_input(), read_input()).
//! let mut pb = ProgramBuilder::new();
//! let mut f = FunctionBuilder::new("main", 0, 2);
//! f.read_input().store(0).read_input().store(1);
//! let head = f.new_label();
//! let done = f.new_label();
//! f.bind(head);
//! f.load(1).if_zero(Cond::Eq, done);
//! f.load(1).load(0).load(1).rem().store(1).store(0);
//! f.goto(head);
//! f.bind(done);
//! f.load(0).print().ret_void();
//! let main = pb.add_function(f.finish()?);
//! let program = pb.finish(main)?;
//!
//! let key = WatermarkKey::new(0xC0FFEE, vec![252, 105]);
//! let config = JavaConfig::for_watermark_bits(64).with_pieces(20);
//! let watermark = Watermark::random_for(&config, &key);
//!
//! let embedder = Embedder::builder(key.clone(), config.clone()).build()?;
//! let recognizer = Recognizer::builder(key, config).build()?;
//! let marked = embedder.embed(&program, &watermark)?;
//! let found = recognizer.recognize(&marked.program)?;
//! assert_eq!(found.watermark.as_ref(), Some(watermark.value()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod baseline;
pub mod bitstring;
pub mod hash;
pub mod java;
pub mod key;
pub mod native;
pub mod scan;
pub mod scanner;

mod error;

pub use error::{ConfigError, WatermarkError};
pub use scan::{ScanMode, Survivors};
