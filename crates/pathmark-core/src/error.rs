use std::error::Error;
use std::fmt;

/// Errors raised by embedding, recognition, or extraction.
#[derive(Debug)]
#[non_exhaustive]
pub enum WatermarkError {
    /// The program failed while being traced (before any watermarking).
    TraceFailed(stackvm::VmError),
    /// A number-theoretic step failed (bad prime configuration, …).
    Math(pathmark_math::MathError),
    /// The native simulator failed.
    Sim(nativesim::SimError),
    /// Perfect-hash construction failed.
    Phf(pathmark_crypto::phf::PhfError),
    /// The watermark value is too large for the configured prime set.
    WatermarkTooLarge {
        /// Bits in the supplied watermark.
        got_bits: usize,
        /// Bits representable by the prime product.
        max_bits: usize,
    },
    /// The traced program offered no usable insertion points.
    NoInsertionPoint,
    /// Not enough legal call-site slots to thread the native watermark.
    InsufficientSlots {
        /// Bits that still needed placing when slots ran out.
        remaining_bits: usize,
    },
    /// The native program has no suitable `begin -> end` edge (an
    /// unconditional jump executed exactly once on the secret input).
    NoAnchorEdge,
    /// Extraction could not identify a branch function in the trace.
    NoBranchFunction,
    /// Extraction saw the begin address but execution never reached the
    /// end address.
    EndNotReached,
}

impl fmt::Display for WatermarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatermarkError::TraceFailed(e) => write!(f, "tracing failed: {e}"),
            WatermarkError::Math(e) => write!(f, "number-theoretic failure: {e}"),
            WatermarkError::Sim(e) => write!(f, "simulator failure: {e}"),
            WatermarkError::Phf(e) => write!(f, "perfect hash construction failed: {e}"),
            WatermarkError::WatermarkTooLarge { got_bits, max_bits } => write!(
                f,
                "watermark of {got_bits} bits exceeds the {max_bits}-bit prime product"
            ),
            WatermarkError::NoInsertionPoint => {
                write!(f, "trace contains no usable insertion point")
            }
            WatermarkError::InsufficientSlots { remaining_bits } => write!(
                f,
                "ran out of legal call-site slots with {remaining_bits} bits unplaced"
            ),
            WatermarkError::NoAnchorEdge => {
                write!(f, "no unconditional jump executed exactly once on the key input")
            }
            WatermarkError::NoBranchFunction => {
                write!(f, "no branch function observed in the extraction trace")
            }
            WatermarkError::EndNotReached => {
                write!(f, "execution reached begin but never end during extraction")
            }
        }
    }
}

impl Error for WatermarkError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WatermarkError::TraceFailed(e) => Some(e),
            WatermarkError::Math(e) => Some(e),
            WatermarkError::Sim(e) => Some(e),
            WatermarkError::Phf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<stackvm::VmError> for WatermarkError {
    fn from(e: stackvm::VmError) -> Self {
        WatermarkError::TraceFailed(e)
    }
}

impl From<pathmark_math::MathError> for WatermarkError {
    fn from(e: pathmark_math::MathError) -> Self {
        WatermarkError::Math(e)
    }
}

impl From<nativesim::SimError> for WatermarkError {
    fn from(e: nativesim::SimError) -> Self {
        WatermarkError::Sim(e)
    }
}

impl From<pathmark_crypto::phf::PhfError> for WatermarkError {
    fn from(e: pathmark_crypto::phf::PhfError) -> Self {
        WatermarkError::Phf(e)
    }
}
