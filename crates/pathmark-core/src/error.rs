use std::error::Error;
use std::fmt;

/// A configuration (or key) rejected by a validating `build()`.
///
/// Raised *before* any work happens — by [`crate::java::JavaConfig`]'s
/// and [`crate::native::NativeConfig`]'s builders and by the
/// [`crate::java::Embedder`] / [`crate::java::Recognizer`] session
/// builders — instead of panicking or silently misbehaving deep inside
/// embed or recognize.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The watermark width is zero.
    ZeroWatermarkBits,
    /// `prime_bits` outside the workable 4..=31 range (below 4 the
    /// prime set collapses; above 31 a pair product overflows the
    /// 64-bit cipher block).
    PrimeBitsOutOfRange {
        /// The rejected width.
        prime_bits: u32,
    },
    /// Fewer than two primes: no pair statements exist.
    TooFewPrimes {
        /// The rejected count.
        num_primes: usize,
    },
    /// The prime product cannot exceed `2^watermark_bits`, so some
    /// watermarks would silently alias.
    PrimesDontCoverWatermark {
        /// Configured watermark width.
        watermark_bits: usize,
        /// Primes configured.
        num_primes: usize,
        /// Primes needed at the configured `prime_bits`.
        num_primes_needed: usize,
    },
    /// `Σ p_i·p_j` could overflow the 64-bit cipher block, so some
    /// statements could not be enumerated.
    EnumerationOverflow {
        /// Configured prime width.
        prime_bits: u32,
        /// Configured prime count.
        num_primes: usize,
    },
    /// More pieces than watermark bits: each piece already encodes a
    /// full statement, so this is runaway redundancy — almost always a
    /// swapped-argument bug.
    TooManyPieces {
        /// Requested piece count.
        num_pieces: usize,
        /// The cap (the watermark width).
        max_pieces: usize,
    },
    /// A zero tracing/profiling budget: every traced run would fail.
    ZeroTraceBudget,
    /// The key carries no secret input, so any party can reproduce the
    /// trace and the watermark is not secret.
    EmptySecretInput,
    /// Tamper-proofing was requested with a zero cell budget, which
    /// silently produces an unprotected image.
    ZeroTamperCells,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroWatermarkBits => {
                write!(f, "watermark width must be at least one bit")
            }
            ConfigError::PrimeBitsOutOfRange { prime_bits } => {
                write!(f, "prime width {prime_bits} outside the workable 4..=31 range")
            }
            ConfigError::TooFewPrimes { num_primes } => {
                write!(f, "{num_primes} primes configured, at least 2 required")
            }
            ConfigError::PrimesDontCoverWatermark {
                watermark_bits,
                num_primes,
                num_primes_needed,
            } => write!(
                f,
                "{num_primes} primes cannot cover a {watermark_bits}-bit watermark \
                 ({num_primes_needed} needed at this prime width)"
            ),
            ConfigError::EnumerationOverflow {
                prime_bits,
                num_primes,
            } => write!(
                f,
                "{num_primes} primes of {prime_bits} bits overflow the 64-bit \
                 statement enumeration"
            ),
            ConfigError::TooManyPieces {
                num_pieces,
                max_pieces,
            } => write!(
                f,
                "{num_pieces} pieces exceed the {max_pieces}-bit watermark width"
            ),
            ConfigError::ZeroTraceBudget => {
                write!(f, "trace budget must be at least one instruction")
            }
            ConfigError::EmptySecretInput => {
                write!(f, "the key's secret input sequence is empty")
            }
            ConfigError::ZeroTamperCells => {
                write!(f, "tamper-proofing enabled with a zero cell budget")
            }
        }
    }
}

impl Error for ConfigError {}

/// Errors raised by embedding, recognition, or extraction.
#[derive(Debug)]
#[non_exhaustive]
pub enum WatermarkError {
    /// An invalid configuration or key was rejected up front.
    Config(ConfigError),
    /// The program failed while being traced (before any watermarking).
    TraceFailed(stackvm::VmError),
    /// A number-theoretic step failed (bad prime configuration, …).
    Math(pathmark_math::MathError),
    /// The native simulator failed.
    Sim(nativesim::SimError),
    /// Perfect-hash construction failed.
    Phf(pathmark_crypto::phf::PhfError),
    /// The watermark value is too large for the configured prime set.
    WatermarkTooLarge {
        /// Bits in the supplied watermark.
        got_bits: usize,
        /// Bits representable by the prime product.
        max_bits: usize,
    },
    /// The traced program offered no usable insertion points.
    NoInsertionPoint,
    /// Not enough legal call-site slots to thread the native watermark.
    InsufficientSlots {
        /// Bits that still needed placing when slots ran out.
        remaining_bits: usize,
    },
    /// The native program has no suitable `begin -> end` edge (an
    /// unconditional jump executed exactly once on the secret input).
    NoAnchorEdge,
    /// Extraction could not identify a branch function in the trace.
    NoBranchFunction,
    /// Extraction saw the begin address but execution never reached the
    /// end address.
    EndNotReached,
}

impl fmt::Display for WatermarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatermarkError::Config(e) => write!(f, "invalid configuration: {e}"),
            WatermarkError::TraceFailed(e) => write!(f, "tracing failed: {e}"),
            WatermarkError::Math(e) => write!(f, "number-theoretic failure: {e}"),
            WatermarkError::Sim(e) => write!(f, "simulator failure: {e}"),
            WatermarkError::Phf(e) => write!(f, "perfect hash construction failed: {e}"),
            WatermarkError::WatermarkTooLarge { got_bits, max_bits } => write!(
                f,
                "watermark of {got_bits} bits exceeds the {max_bits}-bit prime product"
            ),
            WatermarkError::NoInsertionPoint => {
                write!(f, "trace contains no usable insertion point")
            }
            WatermarkError::InsufficientSlots { remaining_bits } => write!(
                f,
                "ran out of legal call-site slots with {remaining_bits} bits unplaced"
            ),
            WatermarkError::NoAnchorEdge => {
                write!(f, "no unconditional jump executed exactly once on the key input")
            }
            WatermarkError::NoBranchFunction => {
                write!(f, "no branch function observed in the extraction trace")
            }
            WatermarkError::EndNotReached => {
                write!(f, "execution reached begin but never end during extraction")
            }
        }
    }
}

impl Error for WatermarkError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WatermarkError::Config(e) => Some(e),
            WatermarkError::TraceFailed(e) => Some(e),
            WatermarkError::Math(e) => Some(e),
            WatermarkError::Sim(e) => Some(e),
            WatermarkError::Phf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for WatermarkError {
    fn from(e: ConfigError) -> Self {
        WatermarkError::Config(e)
    }
}

impl From<stackvm::VmError> for WatermarkError {
    fn from(e: stackvm::VmError) -> Self {
        WatermarkError::TraceFailed(e)
    }
}

impl From<pathmark_math::MathError> for WatermarkError {
    fn from(e: pathmark_math::MathError) -> Self {
        WatermarkError::Math(e)
    }
}

impl From<nativesim::SimError> for WatermarkError {
    fn from(e: nativesim::SimError) -> Self {
        WatermarkError::Sim(e)
    }
}

impl From<pathmark_crypto::phf::PhfError> for WatermarkError {
    fn from(e: pathmark_crypto::phf::PhfError) -> Self {
        WatermarkError::Phf(e)
    }
}
