//! The streaming (fused) window-scan engine.
//!
//! Recognition's two-phase shape — trace the program into a packed
//! [`BitString`], then roll [`super::java::Recognizer::window_survivors`]
//! over it — walks the packed words twice. [`StreamingScanSink`] fuses
//! the phases: it *is* a [`TraceSink`], and as each branch bit lands in
//! the builder it advances an incremental scanner over the completed
//! words, so by the time the traced program halts the survivor table is
//! already built and the bit-string is never re-read.
//!
//! The scanner is a small state machine that reproduces the two-phase
//! scan decision-for-decision (the `fused_*` property tests and the CI
//! gate assert the resulting [`Survivors`] table is bit-identical):
//!
//! * **Rolling** — classify window offsets while `offset + 64` bits are
//!   available. Constant windows jump to the next flipped bit (possibly
//!   in installments when the run reaches the frontier of written
//!   bits); surviving windows feed the [`PeriodDetector`] and the
//!   dedup-at-source survivor accumulator; a verified probe hit
//!   transitions to:
//! * **Extending** — count streamed period matches until the first
//!   mismatch. The forward `next_period_mismatch` call of the two-phase
//!   scan needs the whole bit-string; streaming instead *resumes* the
//!   shared [`period_mismatch_in_words`] kernel at the frontier each
//!   time more words land, which visits exactly the same bits in the
//!   same order. Lookback — the bulk-accounted representatives one
//!   period before the run — is free, because those words were written
//!   long before the run ended.
//!
//! Equivalence argument, briefly (DESIGN.md §15 has the full version):
//! every decision the two-phase scan makes at offset `o` reads only
//! bits `≤ mismatch(o)`, and the streaming scanner defers that decision
//! until those bits exist, so the classification of every offset — and
//! hence the survivor multiset — is identical. The two-phase scan's
//! `stop = (mismatch - 64).min(end - 1)` clamp is a no-op on full-range
//! scans (`mismatch ≤ len ⇒ mismatch - 64 ≤ num_windows - 1`); it only
//! bites on sharded sub-ranges, which stay on the two-phase path.
//!
//! Survivors dedup at source instead of accumulating a per-offset
//! entry vector: the bench corpus produces ~12k surviving offsets but
//! only ~4.5k distinct values per copy, and `from_entries`' bucket
//! sort costs tens of nanoseconds per entry, so folding repeats before
//! the sort is a large win. The fold lives in a direct-mapped slot
//! cache rather than a hash map — a map's dependent control-word-then-
//! bucket chain per push measured ~3x the cost of the whole rest of
//! the scan loop — and slot conflicts just spill the evicted entry for
//! [`Survivors::from_entries`]' duplicate fold to merge, which keeps
//! the table bit-identical no matter how the entries were grouped.

use std::time::Instant;

use stackvm::trace::{Site, TraceSink};

use crate::bitstring::{
    period_mismatch_in_words, window_from_words, BitString, BitStringBuilder, FirstFollow,
};
use crate::scan::Survivors;

/// Largest repeat distance the periodic pre-reject votes on. Trace
/// bit-strings repeat at the host program's loop-body period (around a
/// thousand bits on the bench corpus); distances past a few thousand
/// bits buy nothing and bloat the vote table.
const MAX_PERIOD: usize = 4096;

/// How many candidate periods the detector probes concurrently.
const PERIOD_CANDIDATES: usize = 4;

/// Votes a repeat distance needs before it can contend for a candidate
/// seat.
const PERIOD_PROMOTE_VOTES: u16 = 4;

/// Candidate periods are probed every this many pushes; a probe is one
/// O(1) window comparison per candidate.
const PERIOD_PROBE_STRIDE: usize = 4;

/// Direct-mapped last-seen slots (a power of two). The detector runs
/// once per surviving window, so it must cost nanoseconds: a fixed
/// table that collisions simply overwrite beats a growable map by an
/// order of magnitude, and a lost slot only costs one vote. Sized so
/// the whole table (16 KiB) stays L1-resident — the dominant loop-body
/// period needs only [`PERIOD_PROMOTE_VOTES`] surviving votes to seat,
/// so the extra collisions of a small table are noise, while a cache
/// miss per surviving window is the single largest per-push cost.
const PERIOD_TABLE_SLOTS: usize = 1024;

/// Direct-mapped dedup slots for survivor accumulation (a power of
/// two). 4096 x 16 B = 64 KiB: small enough to stay cache-hot next to
/// the detector tables, large enough that the ~4.5k distinct values a
/// bench-corpus copy produces mostly dedup in place instead of
/// spilling. A conflict only costs one spilled entry for
/// [`Survivors::from_entries`]' duplicate fold to merge later.
const ACCUM_SLOTS: usize = 4096;

/// The streaming scanner drains once per this many freshly pushed bits
/// (16 completed words). Coarse enough that the per-drain clock reads
/// and state checks vanish from the per-branch cost; fine enough that
/// the words scanned are still warm in L1 from being written.
const DRAIN_STRIDE_BITS: usize = 1024;

/// Online repeat-distance detector behind the periodic-run pre-reject.
///
/// Every surviving window votes on the distance to the previous
/// occurrence of the same value; the top-voted distances become
/// candidate periods. A candidate is *probed* with one O(1) window
/// comparison (`window(o - p) == window(o)`); a probe hit is then
/// extended with the [`period_mismatch_in_words`] kernel and, if the
/// periodic run covers meaningfully more than one window, the whole
/// run is bulk-accounted without rolling through it (see
/// [`super::java::Recognizer::window_survivors`] and [`StreamScanner`]).
pub(crate) struct PeriodDetector {
    /// Direct-mapped `(window value, offset + 1)` slots; a zero stamp
    /// marks a vacant slot, and hash collisions simply overwrite.
    last_seen: Vec<(u64, u64)>,
    /// `votes[d]`: votes for repeat distance `d` (index 0 unused, so a
    /// vacant candidate seat reads zero votes without a branch).
    /// Saturating `u16` counts keep the table at 8 KiB; vote totals
    /// only steer which runs get bulk-treated (the survivor table is
    /// the same either way), so capping at 65535 is harmless.
    votes: Vec<u16>,
    /// Candidate periods probed against the scan head; 0 = vacant seat.
    candidates: [usize; PERIOD_CANDIDATES],
    /// Windows pushed so far (bulk-accounted windows excluded).
    pushes: usize,
}

impl PeriodDetector {
    pub(crate) fn new() -> PeriodDetector {
        PeriodDetector {
            last_seen: vec![(0, 0); PERIOD_TABLE_SLOTS],
            votes: vec![0; MAX_PERIOD + 1],
            candidates: [0; PERIOD_CANDIDATES],
            pushes: 0,
        }
    }

    /// Records a surviving window pushed at `offset`, voting on the
    /// distance to the value's previous occurrence.
    pub(crate) fn push(&mut self, window: u64, offset: usize) {
        self.pushes += 1;
        let slot = (window.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            >> (64 - PERIOD_TABLE_SLOTS.trailing_zeros())) as usize;
        let (value, stamp) = self.last_seen[slot];
        self.last_seen[slot] = (window, offset as u64 + 1);
        if stamp == 0 || value != window {
            return;
        }
        let distance = offset - (stamp - 1) as usize;
        if distance <= MAX_PERIOD {
            self.votes[distance] = self.votes[distance].saturating_add(1);
            if self.votes[distance] >= PERIOD_PROMOTE_VOTES {
                self.consider(distance);
            }
        }
    }

    /// Seats `distance` if it out-votes the weakest current candidate
    /// (vacant seats hold period 0, which always reads zero votes).
    /// Re-seating on every promoted vote is what lets the dominant
    /// loop-body period displace small noise distances that happened to
    /// reach the threshold earlier.
    fn consider(&mut self, distance: usize) {
        if self.candidates.contains(&distance) {
            return;
        }
        let weakest = (0..PERIOD_CANDIDATES)
            .min_by_key(|&i| self.votes[self.candidates[i]])
            .expect("PERIOD_CANDIDATES > 0");
        if self.votes[distance] > self.votes[self.candidates[weakest]] {
            self.candidates[weakest] = distance;
        }
    }

    /// Returns a candidate period `p` verified at the scan head —
    /// `window(offset - p)` exists within the `len` bits of `words` and
    /// equals `window` — or `None`.
    ///
    /// The `hot` period (the one the scan last bulk-skipped on) is
    /// probed on *every* push: a long periodic run interrupted by one
    /// flipped bit re-engages immediately instead of rolling up to
    /// [`PERIOD_PROBE_STRIDE`] more windows. The full candidate set is
    /// only probed every stride-th push.
    pub(crate) fn probe(
        &self,
        words: &[u64],
        len: usize,
        offset: usize,
        window: u64,
        hot: usize,
    ) -> Option<usize> {
        if hot != 0 && offset >= hot && window_from_words(words, len, offset - hot) == Some(window)
        {
            return Some(hot);
        }
        self.probe_candidates(words, len, offset, window, hot)
    }

    /// The non-hot half of [`Self::probe`]: the seated candidates,
    /// stride-gated. The streaming scanner calls this directly because
    /// it tracks the hot period with a rolled lag window (a register
    /// compare) instead of re-reading the packed words every push.
    pub(crate) fn probe_candidates(
        &self,
        words: &[u64],
        len: usize,
        offset: usize,
        window: u64,
        hot: usize,
    ) -> Option<usize> {
        if !self.pushes.is_multiple_of(PERIOD_PROBE_STRIDE) {
            return None;
        }
        self.candidates.iter().copied().find(|&p| {
            p != 0 && p != hot && offset >= p && window_from_words(words, len, offset - p) == Some(window)
        })
    }
}

/// What the scanner is doing at its current offset.
enum ScanState {
    /// Classifying offsets one at a time (constant jump / probe / push).
    Rolling,
    /// A probe verified `period` at the current offset; the scanner is
    /// counting streamed matches from bit `q` until the first mismatch
    /// before deciding whether the run engages the bulk account.
    Extending { period: usize, q: usize },
}

/// The incremental survivor scan: the two-phase
/// [`super::java::Recognizer::window_survivors`] loop restructured to
/// make progress from whatever prefix of the bit-string exists, deferring
/// any decision whose bits have not been written yet.
struct StreamScanner {
    detector: PeriodDetector,
    /// The period the scan last bulk-skipped on; probed eagerly.
    hot: usize,
    /// The next window offset to classify.
    offset: usize,
    /// The 64-bit window at `offset`, when `window_valid`; rolled
    /// bit-by-bit on the normal path, recomputed from the words after a
    /// jump or a drain boundary.
    window: u64,
    window_valid: bool,
    state: ScanState,
    skipped: u64,
    /// Dedup-at-source survivor accumulation: a direct-mapped cache of
    /// `(value, multiplicity, first offset)` slots (`multiplicity` 0 =
    /// vacant). A push hitting its slot's value folds in place — one
    /// predictable cache-hot access, where a hash map pays a dependent
    /// control-word-then-bucket chain per push — and a conflict spills
    /// the evicted entry to `spilled`.
    accum: Vec<(u64, u32, u32)>,
    /// Entries evicted from `accum` (plus bulk-accounted entries, whose
    /// multiplicities exceed the slots' u32), merged by
    /// [`Survivors::from_entries`]' duplicate fold at finish.
    spilled: Vec<(u64, u64, u64)>,
}

impl StreamScanner {
    fn new() -> StreamScanner {
        StreamScanner {
            detector: PeriodDetector::new(),
            hot: 0,
            offset: 0,
            window: 0,
            window_valid: false,
            state: ScanState::Rolling,
            skipped: 0,
            accum: vec![(0, 0, 0); ACCUM_SLOTS],
            spilled: Vec::new(),
        }
    }

    /// Accounts a surviving value outside the rolling fast path (bulk
    /// runs, short-run fall-through). Bulk multiplicities can exceed
    /// the accumulator slots' u32, so these spill directly; the
    /// duplicate fold merges them with the slot entries at finish.
    fn account(&mut self, value: u64, multiplicity: u64, first_offset: u64) {
        self.spilled.push((value, multiplicity, first_offset));
    }

    /// Folds the surviving `window` at `offset` into its accumulator
    /// slot, spilling whatever conflicting value held the slot.
    #[inline]
    fn accumulate(
        accum: &mut [(u64, u32, u32)],
        spilled: &mut Vec<(u64, u64, u64)>,
        window: u64,
        offset: usize,
    ) {
        let slot = (window.wrapping_mul(0xD1B5_4A32_D192_ED03)
            >> (64 - ACCUM_SLOTS.trailing_zeros())) as usize;
        let entry = &mut accum[slot];
        if entry.0 == window && entry.1 != 0 {
            // Offsets only ascend, so the first offset stands. The
            // u32 multiplicity cannot wrap: a copy would need 2^32
            // surviving windows of one value first.
            entry.1 += 1;
        } else {
            if entry.1 != 0 {
                spilled.push((entry.0, entry.1 as u64, entry.2 as u64));
            }
            *entry = (window, 1, offset as u32);
        }
    }

    /// The normal-path classification of the (valid) window at
    /// `offset`: feed the detector, account the survivor, advance one
    /// offset, and roll the window when the incoming bit exists.
    #[inline]
    fn push_survivor(&mut self, words: &[u64], avail: usize) {
        self.detector.push(self.window, self.offset);
        Self::accumulate(&mut self.accum, &mut self.spilled, self.window, self.offset);
        self.offset += 1;
        let incoming = self.offset + 63;
        if incoming < avail {
            let bit = (words[incoming / 64] >> (incoming % 64)) & 1;
            self.window = (self.window >> 1) | (bit << 63);
        } else {
            self.window_valid = false;
        }
    }

    /// Advances the scan as far as `avail` bits of `words` allow.
    /// `finished` marks the final call: `avail` is then the bit-string's
    /// true length, so frontier waits become end-of-string decisions and
    /// the scan runs to the last window offset.
    ///
    /// Structured as an outer loop handling the (rare) extension
    /// decision plus a tight inner rolling loop whose scan cursor lives
    /// in locals — the per-window path must not round-trip `offset` /
    /// `window` through memory, since it runs a few hundred thousand
    /// times per recognized copy.
    fn advance(&mut self, words: &[u64], avail: usize, finished: bool) {
        // Window offsets past this never exist; unknowable mid-stream.
        let end = if finished { avail.saturating_sub(63) } else { usize::MAX };
        loop {
            if let ScanState::Extending { period, q } = self.state {
                let mismatch = period_mismatch_in_words(words, avail, q, period);
                if mismatch >= avail && !finished {
                    // Period-clean to the frontier: remember how far
                    // the kernel got and resume there next drain.
                    self.state = ScanState::Extending { period, q: mismatch };
                    return;
                }
                let origin = self.offset;
                if mismatch >= origin + 64 + period / 2 {
                    // Engage: bulk-account [origin, stop]. Each
                    // window there equals its representative r one-
                    // to-few periods back; representatives at
                    // [origin - period, origin) were already scanned
                    // normally, and their words sit far behind the
                    // frontier, so the lookback reads are free.
                    // Constant representatives are dropped — their
                    // copies are equally constant.
                    let stop = mismatch - 64;
                    for r in origin - period..origin {
                        let value = window_from_words(words, avail, r)
                            .expect("r + 64 <= origin + 64 <= avail");
                        if value == 0 || value == u64::MAX {
                            continue;
                        }
                        let count = ((stop - r) / period) as u64;
                        if count > 0 {
                            self.account(value, count, (r + period) as u64);
                        }
                    }
                    self.skipped += (stop - origin + 1) as u64;
                    self.hot = period;
                    self.offset = stop + 1;
                    self.window_valid = false;
                } else {
                    // The run is too short to engage; the origin
                    // window survives normally (the two-phase scan's
                    // fall-through — one candidate tried per offset).
                    self.push_survivor(words, avail);
                }
                self.state = ScanState::Rolling;
            }

            // The rolling fast path. `engaged` carries a verified probe
            // hit out of the loop, back to the extension arm above.
            let mut offset = self.offset;
            let mut window = self.window;
            let mut window_valid = self.window_valid;
            let mut skipped = self.skipped;
            let hot = self.hot;
            let mut engaged = None;
            // The lag window `window(offset - hot)`: the hot-period
            // probe as one register compare per push instead of two
            // packed-word reads. Recomputed lazily after any jump.
            let mut lag = 0u64;
            let mut lag_valid = false;
            while offset < end && offset + 64 <= avail {
                if !window_valid {
                    window = window_from_words(words, avail, offset)
                        .expect("offset + 64 <= avail");
                    window_valid = true;
                }
                if window == 0 || window == u64::MAX {
                    // Constant run: every window up to (just past)
                    // the next flipped bit is equally constant.
                    let flip = period_mismatch_in_words(words, avail, offset + 64, 1);
                    if flip >= avail && !finished {
                        // The run reaches the frontier: skip every
                        // window already fully inside it and wait.
                        // Re-checking the (still constant) window on
                        // resume re-joins the two-phase jump exactly.
                        let next = (avail - 63).max(offset + 1);
                        skipped += (next - offset) as u64;
                        self.offset = next;
                        self.window = window;
                        self.window_valid = false;
                        self.skipped = skipped;
                        return;
                    }
                    let next = if flip >= avail {
                        end
                    } else {
                        // The first offset whose window sees the flip.
                        (flip - 63).min(end)
                    }
                    .max(offset + 1);
                    skipped += (next - offset) as u64;
                    offset = next;
                    window_valid = false;
                    lag_valid = false;
                    continue;
                }
                if hot != 0 && offset >= hot {
                    if !lag_valid {
                        lag = window_from_words(words, avail, offset - hot)
                            .expect("offset - hot + 64 <= avail");
                        lag_valid = true;
                    }
                    if lag == window {
                        // window(offset) == window(offset - hot):
                        // the hot period verified; extend forward.
                        engaged = Some(hot);
                        break;
                    }
                }
                if let Some(period) =
                    self.detector.probe_candidates(words, avail, offset, window, hot)
                {
                    // The probe verified window(offset) ==
                    // window(offset - period); extend forward.
                    engaged = Some(period);
                    break;
                }
                self.detector.push(window, offset);
                Self::accumulate(&mut self.accum, &mut self.spilled, window, offset);
                offset += 1;
                // Roll: shift the leaving bit out, the incoming bit in
                // (the lag window likewise, `hot` bits behind).
                let incoming = offset + 63;
                if incoming < avail {
                    let bit = (words[incoming / 64] >> (incoming % 64)) & 1;
                    window = (window >> 1) | (bit << 63);
                } else {
                    window_valid = false;
                }
                if lag_valid {
                    let behind = incoming - hot;
                    let bit = (words[behind / 64] >> (behind % 64)) & 1;
                    lag = (lag >> 1) | (bit << 63);
                }
            }
            self.offset = offset;
            self.window = window;
            self.window_valid = window_valid;
            self.skipped = skipped;
            match engaged {
                Some(period) => self.state = ScanState::Extending { period, q: offset + 64 },
                None => return,
            }
        }
    }

    /// Freezes the accumulator into the columnar table: live slots
    /// plus spilled entries, merged by [`Survivors::from_entries`]'
    /// duplicate fold. Near-complete dedup-at-source means the sort
    /// covers a little over the ~4.5k distinct values instead of every
    /// surviving offset.
    fn into_survivors(self) -> Survivors {
        let mut entries = self.spilled;
        entries.extend(
            self.accum
                .into_iter()
                .filter(|&(_, mult, _)| mult != 0)
                .map(|(value, mult, first)| (value, mult as u64, first as u64)),
        );
        Survivors::from_entries(entries)
    }
}

/// The result of one fused trace+scan pass.
pub struct FusedScan {
    /// The full trace bit-string (identical to what
    /// [`crate::bitstring::PackedTraceSink`] would have produced).
    pub bits: BitString,
    /// The survivor table (bit-identical to the two-phase
    /// `window_survivors` over the full range).
    pub survivors: Survivors,
    /// Windows the scan covered (`num_windows`).
    pub scanned: u64,
    /// Windows the pre-rejects accounted without rolling through.
    pub skipped: u64,
    /// Nanoseconds spent inside scanner drains (0 unless the sink was
    /// built with timing on): the scan-roll share of the fused pass.
    pub roll_nanos: u64,
}

/// A [`TraceSink`] that runs the full survivor scan *while tracing*:
/// the fused `ScanMode` path. See the module docs for the design and
/// the equivalence argument.
pub struct StreamingScanSink {
    follow: FirstFollow,
    bits: BitStringBuilder,
    scanner: StreamScanner,
    /// When set, each drain is bracketed by clock reads so the roll
    /// share of the fused pass can be attributed to `Stage::ScanRoll`.
    timed: bool,
    roll_nanos: u64,
}

impl StreamingScanSink {
    /// A sink with a dense first-follow table sized for `program` (see
    /// [`FirstFollow::for_program`]). `timed` turns on per-drain clock
    /// reads for telemetry attribution; pass `false` when no telemetry
    /// sink is attached.
    pub fn for_program(program: &stackvm::Program, timed: bool) -> StreamingScanSink {
        StreamingScanSink {
            follow: FirstFollow::for_program(program),
            bits: BitStringBuilder::new(),
            scanner: StreamScanner::new(),
            timed,
            roll_nanos: 0,
        }
    }

    /// An empty sink with no dense table (tests and experiments that
    /// feed raw bits through [`StreamingScanSink::push_bit`]).
    pub fn new(timed: bool) -> StreamingScanSink {
        StreamingScanSink {
            follow: FirstFollow::new(),
            bits: BitStringBuilder::new(),
            scanner: StreamScanner::new(),
            timed,
            roll_nanos: 0,
        }
    }

    /// Appends one already-classified trace bit, driving the scanner
    /// exactly as a branch event would.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        self.bits.push(bit);
        if self.bits.len().is_multiple_of(DRAIN_STRIDE_BITS) {
            self.drain();
        }
    }

    fn drain(&mut self) {
        let started = self.timed.then(Instant::now);
        let words = self.bits.words();
        self.scanner.advance(words, words.len() * 64, false);
        if let Some(started) = started {
            self.roll_nanos += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
    }

    /// Finishes the trace: freezes the bit-string, runs the scanner to
    /// the final window offset, and returns bits + survivors + scan
    /// accounting in one [`FusedScan`].
    pub fn finish(self) -> FusedScan {
        let StreamingScanSink { bits, mut scanner, timed, mut roll_nanos, .. } = self;
        let bits = bits.finish();
        let started = timed.then(Instant::now);
        scanner.advance(bits.words(), bits.len(), true);
        let scanned = bits.num_windows() as u64;
        let skipped = scanner.skipped;
        let survivors = scanner.into_survivors();
        if let Some(started) = started {
            roll_nanos += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
        FusedScan { bits, survivors, scanned, skipped, roll_nanos }
    }
}

impl TraceSink for StreamingScanSink {
    fn enter_block(&mut self, _site: Site) {}

    #[inline]
    fn branch(&mut self, site: Site, next: usize) {
        let bit = self.follow.classify(site, next);
        self.push_bit(bit);
    }

    fn snapshot(&mut self, _site: Site, _locals: &[i64], _statics: &[i64]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathmark_crypto::Prng;

    /// The oracle: roll a window over every offset, drop constants,
    /// tally multiplicities and first offsets.
    fn reference_survivors(bits: &BitString) -> Survivors {
        let mut entries = Vec::new();
        for offset in 0..bits.num_windows() {
            let window = bits.window_u64(offset).unwrap();
            if window != 0 && window != u64::MAX {
                entries.push((window, 1, offset as u64));
            }
        }
        Survivors::from_entries(entries)
    }

    fn stream(bools: &[bool]) -> FusedScan {
        let mut sink = StreamingScanSink::new(false);
        for &b in bools {
            sink.push_bit(b);
        }
        sink.finish()
    }

    #[test]
    fn streamed_scan_matches_reference_on_adversarial_bitstrings() {
        let mut rng = Prng::from_seed(0xF05ED);
        let mut cases: Vec<Vec<bool>> = Vec::new();
        // Degenerate sizes around the window width and drain stride.
        for len in [0usize, 1, 63, 64, 65, 127, 128, 1023, 1024, 1025] {
            cases.push((0..len).map(|_| rng.chance(0.5)).collect());
        }
        // All-constant strings: the jump runs to the end of the string,
        // in frontier installments.
        cases.push(vec![false; 5000]);
        cases.push(vec![true; 5000]);
        // Exactly periodic (no flips at all), periods straddling and
        // landing exactly on word edges.
        for period in [1usize, 7, 63, 64, 65, 128, 911] {
            let tile: Vec<bool> = (0..period).map(|_| rng.chance(0.5)).collect();
            cases.push((0..6000).map(|i| tile[i % period]).collect());
        }
        // Periodic with planted flips: period boundary at a word edge
        // plus awkward strides.
        for period in [64usize, 65, 127, 1041] {
            let tile: Vec<bool> = (0..period).map(|_| rng.chance(0.5)).collect();
            let mut tiled: Vec<bool> = (0..6000).map(|i| tile[i % period]).collect();
            for _ in 0..3 {
                let i = rng.index(tiled.len());
                tiled[i] = !tiled[i];
            }
            cases.push(tiled);
        }
        // Constant runs stitched with noise bursts.
        let mut runs = Vec::new();
        for _ in 0..12 {
            let constant = rng.chance(0.5);
            runs.extend(std::iter::repeat_n(constant, 100 + rng.index(300)));
            runs.extend((0..rng.index(40)).map(|_| rng.chance(0.5)));
        }
        cases.push(runs);
        for (case, bools) in cases.into_iter().enumerate() {
            let scan = stream(&bools);
            let bits = BitString::from_bits(bools);
            assert_eq!(scan.bits, bits, "case {case}: bit-string");
            assert_eq!(
                scan.survivors,
                reference_survivors(&bits),
                "case {case}: survivors"
            );
            assert_eq!(scan.scanned, bits.num_windows() as u64, "case {case}");
            assert!(
                scan.skipped <= scan.scanned,
                "case {case}: skipped windows are a subset of the range"
            );
        }
    }

    #[test]
    fn timed_sink_accumulates_roll_nanos() {
        let mut sink = StreamingScanSink::new(true);
        let mut rng = Prng::from_seed(7);
        for _ in 0..4096 {
            sink.push_bit(rng.chance(0.5));
        }
        let scan = sink.finish();
        assert!(scan.roll_nanos > 0, "timed drains read the clock");
        assert_eq!(scan.scanned, 4096 - 63);
    }
}
