//! Path-based watermarking for stack bytecode (the paper's Section 3,
//! implemented in SandMark for Java).
//!
//! Three phases:
//!
//! 1. **Tracing** ([`trace_program`]) — run the program on the secret
//!    input, recording executed blocks, dynamic branches, and variable
//!    snapshots.
//! 2. **Embedding** ([`embed`]) — split the watermark into redundant
//!    CRT statements, encrypt each into a 64-bit block, and insert
//!    branch code (loop or condition generated) that spells the block
//!    into the trace bit-string at trace-frequency-weighted cold spots.
//! 3. **Recognition** ([`recognize`]) — re-trace, decode the bit-string,
//!    decrypt every sliding 64-bit window, and recombine a consistent
//!    statement subset by vote filtering, the G/H consistency graphs, and
//!    the Generalized Chinese Remainder Theorem.

mod embed;
mod opaque;
mod recognize;

pub use embed::{embed, embed_with_trace, EmbedReport, MarkedProgram};
pub use opaque::OpaquePredicate;
pub use recognize::{
    recognize, recognize_bits, recognize_from_candidates, window_candidates, Recognition,
};

use pathmark_math::primes::primes_needed;
use stackvm::interp::Vm;
use stackvm::trace::{Trace, TraceConfig};
use stackvm::Program;

use crate::key::WatermarkKey;
use crate::WatermarkError;

/// How inserted watermark code is generated (Section 3.2.1 vs 3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodegenPolicy {
    /// Always generate self-contained loops (Section 3.2.1).
    LoopOnly,
    /// Prefer condition code built from traced variable values when the
    /// chosen site supports it (visited at least twice with a varying
    /// local), falling back to loops (Section 3.2.2).
    PreferCondition,
    /// Mix the two generators pseudo-randomly ("several methods of
    /// generating code should be available" — Section 3.2).
    Mixed,
}

/// Configuration of the bytecode watermarking scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JavaConfig {
    /// Nominal watermark width in bits (128/256/512 in the paper's
    /// experiments; up to 768 in Figure 5).
    pub watermark_bits: usize,
    /// Width of each prime `p_k`. Smaller primes shrink the enumeration
    /// range, which makes random 64-bit windows less likely to decode as
    /// plausible statements.
    pub prime_bits: u32,
    /// Number of primes `r` (the prime product must exceed `2^watermark_bits`).
    pub num_primes: usize,
    /// Number of watermark pieces to insert. May exceed the `r(r-1)/2`
    /// distinct statements: extra pieces repeat statements, adding
    /// redundancy (Section 3.2: "we make the pieces redundant").
    pub num_pieces: usize,
    /// Code-generation policy.
    pub codegen: CodegenPolicy,
    /// Instruction budget for tracing runs.
    pub trace_budget: u64,
    /// Run the `W mod p_i` voting prefilter during recognition
    /// (Section 3.3: "empirically observed to greatly improve the
    /// average-case running time … negligible effect on the probability
    /// of success"). Disable only for ablation studies.
    pub vote_prefilter: bool,
}

impl JavaConfig {
    /// A sound default configuration for a watermark of `bits` bits:
    /// 24-bit primes, one piece per prime pair.
    pub fn for_watermark_bits(bits: usize) -> JavaConfig {
        let prime_bits = 24;
        let num_primes = primes_needed(bits, prime_bits);
        JavaConfig {
            watermark_bits: bits,
            prime_bits,
            num_primes,
            num_pieces: num_primes * (num_primes - 1) / 2,
            codegen: CodegenPolicy::Mixed,
            trace_budget: stackvm::interp::DEFAULT_BUDGET,
            vote_prefilter: true,
        }
    }

    /// Overrides the piece count (the x-axis of Figure 8).
    pub fn with_pieces(mut self, pieces: usize) -> JavaConfig {
        self.num_pieces = pieces;
        self
    }

    /// Overrides the code-generation policy.
    pub fn with_codegen(mut self, policy: CodegenPolicy) -> JavaConfig {
        self.codegen = policy;
        self
    }

    /// The prime set for a key under this configuration.
    pub fn primes(&self, key: &WatermarkKey) -> Vec<u64> {
        key.primes(self.prime_bits, self.num_primes)
    }
}

/// Runs the tracing phase: executes `program` on the key's secret input
/// with the given recording configuration.
///
/// # Errors
///
/// [`WatermarkError::TraceFailed`] if the program faults or exceeds the
/// budget.
pub fn trace_program(
    program: &Program,
    key: &WatermarkKey,
    config: &JavaConfig,
    what: TraceConfig,
) -> Result<Trace, WatermarkError> {
    let outcome = Vm::new(program)
        .with_input(key.input.clone())
        .with_budget(config.trace_budget)
        .with_trace(what)
        .run()?;
    Ok(outcome.trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_supports_its_watermark_width() {
        use pathmark_math::bigint::BigUint;
        for bits in [64usize, 128, 256, 512, 768] {
            let c = JavaConfig::for_watermark_bits(bits);
            let key = WatermarkKey::new(1, vec![]);
            let primes = c.primes(&key);
            let product = primes
                .iter()
                .fold(BigUint::one(), |acc, &p| &acc * &BigUint::from(p));
            assert!(product.bits() > bits, "prime product covers {bits} bits");
            // And the enumeration must fit one cipher block.
            pathmark_math::enumeration::PairEnumeration::new(&primes)
                .expect("enumeration fits 64 bits");
        }
    }

    #[test]
    fn builder_overrides() {
        let c = JavaConfig::for_watermark_bits(128)
            .with_pieces(99)
            .with_codegen(CodegenPolicy::LoopOnly);
        assert_eq!(c.num_pieces, 99);
        assert_eq!(c.codegen, CodegenPolicy::LoopOnly);
    }
}
