//! Path-based watermarking for stack bytecode (the paper's Section 3,
//! implemented in SandMark for Java).
//!
//! Three phases:
//!
//! 1. **Tracing** ([`trace_program`]) — run the program on the secret
//!    input, recording executed blocks, dynamic branches, and variable
//!    snapshots.
//! 2. **Embedding** ([`Embedder`]) — split the watermark into redundant
//!    CRT statements, encrypt each into a 64-bit block, and insert
//!    branch code (loop or condition generated) that spells the block
//!    into the trace bit-string at trace-frequency-weighted cold spots.
//! 3. **Recognition** ([`Recognizer`]) — re-trace, decode the bit-string,
//!    decrypt every sliding 64-bit window, and recombine a consistent
//!    statement subset by vote filtering, the G/H consistency graphs, and
//!    the Generalized Chinese Remainder Theorem.

mod embed;
mod opaque;
mod recognize;
mod session;

pub use embed::{EmbedReport, MarkedProgram};
pub use opaque::OpaquePredicate;
pub use recognize::Recognition;
pub use session::{
    DecodeCacheStats, Embedder, EmbedderBuilder, Recognizer, RecognizerBuilder,
    DEFAULT_DECODE_CACHE_CAP,
};

// The retired free-function entry points, kept as deprecated shims for
// one release; every in-tree caller goes through the sessions.
#[allow(deprecated)]
pub use embed::{embed, embed_with_trace};
#[allow(deprecated)]
pub use recognize::{recognize, recognize_bits, recognize_from_candidates, window_candidates};

use pathmark_math::primes::primes_needed;
use stackvm::interp::Vm;
use stackvm::trace::{Trace, TraceConfig};
use stackvm::{ExecTier, Program};

use crate::bitstring::{BitString, PackedTraceSink};
use crate::key::WatermarkKey;
use crate::{ConfigError, WatermarkError};

/// How inserted watermark code is generated (Section 3.2.1 vs 3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodegenPolicy {
    /// Always generate self-contained loops (Section 3.2.1).
    LoopOnly,
    /// Prefer condition code built from traced variable values when the
    /// chosen site supports it (visited at least twice with a varying
    /// local), falling back to loops (Section 3.2.2).
    PreferCondition,
    /// Mix the two generators pseudo-randomly ("several methods of
    /// generating code should be available" — Section 3.2).
    Mixed,
}

/// Configuration of the bytecode watermarking scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JavaConfig {
    /// Nominal watermark width in bits (128/256/512 in the paper's
    /// experiments; up to 768 in Figure 5).
    pub watermark_bits: usize,
    /// Width of each prime `p_k`. Smaller primes shrink the enumeration
    /// range, which makes random 64-bit windows less likely to decode as
    /// plausible statements.
    pub prime_bits: u32,
    /// Number of primes `r` (the prime product must exceed `2^watermark_bits`).
    pub num_primes: usize,
    /// Number of watermark pieces to insert. May exceed the `r(r-1)/2`
    /// distinct statements: extra pieces repeat statements, adding
    /// redundancy (Section 3.2: "we make the pieces redundant").
    pub num_pieces: usize,
    /// Code-generation policy.
    pub codegen: CodegenPolicy,
    /// Instruction budget for tracing runs.
    pub trace_budget: u64,
    /// Run the `W mod p_i` voting prefilter during recognition
    /// (Section 3.3: "empirically observed to greatly improve the
    /// average-case running time … negligible effect on the probability
    /// of success"). Disable only for ablation studies.
    pub vote_prefilter: bool,
}

impl JavaConfig {
    /// A sound default configuration for a watermark of `bits` bits:
    /// 24-bit primes, one piece per prime pair.
    pub fn for_watermark_bits(bits: usize) -> JavaConfig {
        let prime_bits = 24;
        let num_primes = primes_needed(bits, prime_bits);
        JavaConfig {
            watermark_bits: bits,
            prime_bits,
            num_primes,
            num_pieces: num_primes * (num_primes - 1) / 2,
            codegen: CodegenPolicy::Mixed,
            trace_budget: stackvm::interp::DEFAULT_BUDGET,
            vote_prefilter: true,
        }
    }

    /// Starts a validating builder seeded with the sound defaults of
    /// [`JavaConfig::for_watermark_bits`]. Unlike the legacy
    /// `for_watermark_bits` + `with_*` chain — which accepts anything
    /// and lets bad configurations fail deep inside embed —
    /// [`JavaConfigBuilder::build`] rejects incoherent settings with a
    /// [`ConfigError`].
    pub fn builder(watermark_bits: usize) -> JavaConfigBuilder {
        JavaConfigBuilder {
            config: JavaConfig::for_watermark_bits(watermark_bits.max(1)),
            explicit_bits: watermark_bits,
        }
    }

    /// Checks the configuration for the defects that otherwise panic or
    /// silently misbehave deep inside embed/recognize: an uncoverable
    /// watermark width, an enumeration that overflows the 64-bit cipher
    /// block, runaway piece counts, a zero trace budget.
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.watermark_bits == 0 {
            return Err(ConfigError::ZeroWatermarkBits);
        }
        if !(4..=31).contains(&self.prime_bits) {
            return Err(ConfigError::PrimeBitsOutOfRange {
                prime_bits: self.prime_bits,
            });
        }
        if self.num_primes < 2 {
            return Err(ConfigError::TooFewPrimes {
                num_primes: self.num_primes,
            });
        }
        let needed = primes_needed(self.watermark_bits, self.prime_bits);
        if self.num_primes < needed {
            return Err(ConfigError::PrimesDontCoverWatermark {
                watermark_bits: self.watermark_bits,
                num_primes: self.num_primes,
                num_primes_needed: needed,
            });
        }
        // Every pair product is below 2^(2·prime_bits); the enumeration
        // range is their sum and must fit the 64-bit cipher block.
        let pairs = (self.num_primes * (self.num_primes - 1) / 2) as u128;
        if pairs << (2 * self.prime_bits) > 1u128 << 64 {
            return Err(ConfigError::EnumerationOverflow {
                prime_bits: self.prime_bits,
                num_primes: self.num_primes,
            });
        }
        if self.num_pieces > self.watermark_bits {
            return Err(ConfigError::TooManyPieces {
                num_pieces: self.num_pieces,
                max_pieces: self.watermark_bits,
            });
        }
        if self.trace_budget == 0 {
            return Err(ConfigError::ZeroTraceBudget);
        }
        Ok(())
    }

    /// Overrides the piece count (the x-axis of Figure 8).
    pub fn with_pieces(mut self, pieces: usize) -> JavaConfig {
        self.num_pieces = pieces;
        self
    }

    /// Overrides the code-generation policy.
    pub fn with_codegen(mut self, policy: CodegenPolicy) -> JavaConfig {
        self.codegen = policy;
        self
    }

    /// The prime set for a key under this configuration.
    pub fn primes(&self, key: &WatermarkKey) -> Vec<u64> {
        key.primes(self.prime_bits, self.num_primes)
    }
}

/// Validating builder for [`JavaConfig`]; see [`JavaConfig::builder`].
#[derive(Debug, Clone)]
pub struct JavaConfigBuilder {
    config: JavaConfig,
    explicit_bits: usize,
}

impl JavaConfigBuilder {
    /// Overrides the piece count.
    pub fn pieces(mut self, pieces: usize) -> JavaConfigBuilder {
        self.config.num_pieces = pieces;
        self
    }

    /// Overrides the prime width. The prime count is re-derived so the
    /// product still covers the watermark (an explicit
    /// [`JavaConfigBuilder::num_primes`] call afterwards wins).
    pub fn prime_bits(mut self, prime_bits: u32) -> JavaConfigBuilder {
        self.config.prime_bits = prime_bits;
        if (4..=31).contains(&prime_bits) {
            self.config.num_primes = primes_needed(self.explicit_bits.max(1), prime_bits);
        }
        self
    }

    /// Overrides the prime count.
    pub fn num_primes(mut self, num_primes: usize) -> JavaConfigBuilder {
        self.config.num_primes = num_primes;
        self
    }

    /// Overrides the code-generation policy.
    pub fn codegen(mut self, policy: CodegenPolicy) -> JavaConfigBuilder {
        self.config.codegen = policy;
        self
    }

    /// Overrides the tracing budget.
    pub fn trace_budget(mut self, budget: u64) -> JavaConfigBuilder {
        self.config.trace_budget = budget;
        self
    }

    /// Enables/disables the vote prefilter.
    pub fn vote_prefilter(mut self, on: bool) -> JavaConfigBuilder {
        self.config.vote_prefilter = on;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] [`JavaConfig::validate`] finds.
    pub fn build(self) -> Result<JavaConfig, ConfigError> {
        let mut config = self.config;
        config.watermark_bits = self.explicit_bits;
        config.validate()?;
        Ok(config)
    }
}

/// Runs the tracing phase: executes `program` on the key's secret input
/// with the given recording configuration.
///
/// # Errors
///
/// [`WatermarkError::TraceFailed`] if the program faults or exceeds the
/// budget.
pub fn trace_program(
    program: &Program,
    key: &WatermarkKey,
    config: &JavaConfig,
    what: TraceConfig,
) -> Result<Trace, WatermarkError> {
    trace_program_tiered(program, key, config, what, ExecTier::default())
}

/// [`trace_program`] on an explicit execution tier — what sessions call
/// so their configured tier reaches the interpreter. The compiled tier
/// falls back to the predecoded engine for configurations it does not
/// cover (block/snapshot recording) and oversized programs.
///
/// # Errors
///
/// As [`trace_program`].
pub fn trace_program_tiered(
    program: &Program,
    key: &WatermarkKey,
    config: &JavaConfig,
    what: TraceConfig,
    tier: ExecTier,
) -> Result<Trace, WatermarkError> {
    let outcome = Vm::new(program)
        .with_input(key.input.clone())
        .with_budget(config.trace_budget)
        .with_trace(what)
        .with_exec_tier(tier)
        .run()?;
    Ok(outcome.trace)
}

/// Runs the tracing phase straight to a packed bit-string: branch events
/// stream through a [`PackedTraceSink`] as the interpreter produces them,
/// so no `Vec<TraceEvent>` is ever allocated. Bit-identical to
/// [`trace_program`] + [`BitString::from_trace`] (property-gated in CI);
/// this is what [`Recognizer`] runs per suspect copy.
///
/// # Errors
///
/// [`WatermarkError::TraceFailed`] if the program faults or exceeds the
/// budget.
pub fn trace_program_bits(
    program: &Program,
    key: &WatermarkKey,
    config: &JavaConfig,
) -> Result<BitString, WatermarkError> {
    let mut sink = PackedTraceSink::for_program(program);
    Vm::new(program)
        .with_input(key.input.clone())
        .with_budget(config.trace_budget)
        .with_trace(TraceConfig::branches_only())
        .run_with_sink(&mut sink)?;
    Ok(sink.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_supports_its_watermark_width() {
        use pathmark_math::bigint::BigUint;
        for bits in [64usize, 128, 256, 512, 768] {
            let c = JavaConfig::for_watermark_bits(bits);
            let key = WatermarkKey::new(1, vec![]);
            let primes = c.primes(&key);
            let product = primes
                .iter()
                .fold(BigUint::one(), |acc, &p| &acc * &BigUint::from(p));
            assert!(product.bits() > bits, "prime product covers {bits} bits");
            // And the enumeration must fit one cipher block.
            pathmark_math::enumeration::PairEnumeration::new(&primes)
                .expect("enumeration fits 64 bits");
        }
    }

    #[test]
    fn builder_overrides() {
        let c = JavaConfig::for_watermark_bits(128)
            .with_pieces(99)
            .with_codegen(CodegenPolicy::LoopOnly);
        assert_eq!(c.num_pieces, 99);
        assert_eq!(c.codegen, CodegenPolicy::LoopOnly);
    }

    #[test]
    fn validating_builder_accepts_sound_overrides() {
        let c = JavaConfig::builder(128)
            .pieces(40)
            .prime_bits(20)
            .codegen(CodegenPolicy::LoopOnly)
            .trace_budget(1 << 20)
            .vote_prefilter(false)
            .build()
            .unwrap();
        assert_eq!(c.watermark_bits, 128);
        assert_eq!(c.num_pieces, 40);
        assert_eq!(c.prime_bits, 20);
        assert!(c.num_primes >= primes_needed(128, 20));
        assert_eq!(c.codegen, CodegenPolicy::LoopOnly);
        assert_eq!(c.trace_budget, 1 << 20);
        assert!(!c.vote_prefilter);
        c.validate().unwrap();
    }

    #[test]
    fn builder_rejects_zero_watermark_bits() {
        assert_eq!(
            JavaConfig::builder(0).build().unwrap_err(),
            ConfigError::ZeroWatermarkBits
        );
    }

    #[test]
    fn builder_rejects_prime_bits_out_of_range() {
        assert_eq!(
            JavaConfig::builder(64).prime_bits(3).build().unwrap_err(),
            ConfigError::PrimeBitsOutOfRange { prime_bits: 3 }
        );
        assert_eq!(
            JavaConfig::builder(64).prime_bits(32).build().unwrap_err(),
            ConfigError::PrimeBitsOutOfRange { prime_bits: 32 }
        );
    }

    #[test]
    fn builder_rejects_too_few_primes() {
        assert_eq!(
            JavaConfig::builder(16).num_primes(1).build().unwrap_err(),
            ConfigError::TooFewPrimes { num_primes: 1 }
        );
    }

    #[test]
    fn builder_rejects_uncovered_watermark() {
        let needed = primes_needed(512, 24);
        assert_eq!(
            JavaConfig::builder(512)
                .num_primes(needed - 1)
                .build()
                .unwrap_err(),
            ConfigError::PrimesDontCoverWatermark {
                watermark_bits: 512,
                num_primes: needed - 1,
                num_primes_needed: needed,
            }
        );
    }

    #[test]
    fn builder_rejects_enumeration_overflow() {
        // 64 primes of 31 bits: pair products alone are 62 bits and
        // there are 2016 of them, so Σ p_i·p_j cannot fit a cipher block.
        assert_eq!(
            JavaConfig::builder(64)
                .prime_bits(31)
                .num_primes(64)
                .build()
                .unwrap_err(),
            ConfigError::EnumerationOverflow {
                prime_bits: 31,
                num_primes: 64,
            }
        );
    }

    #[test]
    fn builder_rejects_more_pieces_than_watermark_bits() {
        assert_eq!(
            JavaConfig::builder(64).pieces(65).build().unwrap_err(),
            ConfigError::TooManyPieces {
                num_pieces: 65,
                max_pieces: 64,
            }
        );
    }

    #[test]
    fn builder_rejects_zero_trace_budget() {
        assert_eq!(
            JavaConfig::builder(64).trace_budget(0).build().unwrap_err(),
            ConfigError::ZeroTraceBudget
        );
    }
}
