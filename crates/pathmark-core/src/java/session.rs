//! Session objects: the redesigned entry point to the bytecode scheme.
//!
//! [`Embedder`] and [`Recognizer`] bundle what every pipeline call used
//! to re-thread as a `(program, key, config)` tuple — the
//! [`WatermarkKey`], the validated [`JavaConfig`], and an optional
//! telemetry handle — behind one builder-constructed object. The fleet,
//! the bench harness, and the CLI all go through these sessions, so the
//! legacy free functions ([`super::embed`], [`super::recognize`], …)
//! are now thin wrappers over a throwaway session and exist for
//! backward compatibility.
//!
//! Construction validates up front (see [`ConfigError`]): a session
//! that builds is guaranteed a coherent prime/enumeration/piece
//! configuration and a non-empty secret input, so the failure modes
//! that used to surface as panics deep inside embed are rejected at
//! the API boundary.
//!
//! ```
//! use pathmark_core::java::{Embedder, JavaConfig, Recognizer};
//! use pathmark_core::key::{Watermark, WatermarkKey};
//! use stackvm::builder::{FunctionBuilder, ProgramBuilder};
//! use stackvm::insn::Cond;
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = FunctionBuilder::new("main", 0, 2);
//! let head = f.new_label();
//! let out = f.new_label();
//! f.push(0).store(0);
//! f.bind(head);
//! f.load(0).push(8).if_cmp(Cond::Ge, out);
//! f.load(0).load(1).add().store(1);
//! f.iinc(0, 1).goto(head);
//! f.bind(out);
//! f.load(1).print().ret_void();
//! let main = pb.add_function(f.finish()?);
//! let program = pb.finish(main)?;
//!
//! let key = WatermarkKey::new(0xC0FFEE, vec![5, 3]);
//! let config = JavaConfig::builder(64).pieces(12).build()?;
//! let embedder = Embedder::builder(key.clone(), config.clone()).build()?;
//! let recognizer = Recognizer::builder(key, config).build()?;
//!
//! let watermark = Watermark::random_for(embedder.config(), embedder.key());
//! let marked = embedder.embed(&program, &watermark)?;
//! let found = recognizer.recognize(&marked.program)?;
//! assert_eq!(found.watermark.as_ref(), Some(watermark.value()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pathmark_crypto::Xtea;
use pathmark_math::crt::Statement;
use pathmark_math::enumeration::PairEnumeration;
use pathmark_telemetry::Telemetry;
use stackvm::ExecTier;

use super::JavaConfig;
use crate::hash::FxBuildHasher;
use crate::key::WatermarkKey;
use crate::{ConfigError, WatermarkError};

/// Default ceiling on memoized window decodes (~24 MB of table at the
/// cap). Once full, admitting a new value evicts an arbitrary resident
/// entry (counted as [`pathmark_telemetry::Counter::DecodeCacheEvict`]);
/// recognition stays correct either way — the cache only trades XTEA
/// calls for memory. Long-lived daemons tune the cap per session via
/// the builders' `decode_cache_cap`.
pub const DEFAULT_DECODE_CACHE_CAP: usize = 1 << 20;

/// Key-derived state every embed/recognize call needs: the prime set,
/// the statement enumeration over it, and the block cipher.
///
/// Deriving these is not free — prime generation runs Miller–Rabin over
/// candidate streams, and the enumeration validates pairwise
/// coprimality — and before sessions cached them, *every*
/// `window_candidates` call re-derived all three (once per shard per
/// copy on the sharded path). Sessions now derive them once at
/// [`Embedder::builder`]-`build()` / [`Recognizer::with_key`] time and
/// share them via `Arc`.
#[derive(Debug)]
pub(crate) struct SessionCrypto {
    /// The prime set `p_1, …, p_r` for the session key.
    pub(crate) primes: Vec<u64>,
    /// The statement ↔ integer bijection over `primes`.
    pub(crate) enumeration: PairEnumeration,
    /// The key's block cipher.
    pub(crate) cipher: Xtea,
    /// Memoized window decodes: window value → what it decrypts and
    /// decodes to under this key (`None` = garbage). The mapping is a
    /// pure function of the key, so it is shared by every copy a warm
    /// session recognizes — and fingerprinted copies of one host
    /// program repeat most of their trace windows (the host's own loop
    /// structure is identical across copies), so batch recognition
    /// pays XTEA once per *distinct value per key*, not per copy.
    /// Bounded by `cache_cap`.
    pub(crate) decode_cache: Mutex<HashMap<u64, Option<Statement>, FxBuildHasher>>,
    /// Ceiling on `decode_cache` entries; admitting past it evicts an
    /// arbitrary resident entry. Zero disables memoization entirely.
    pub(crate) cache_cap: usize,
    /// Lifetime decode-cache hits, kept on the shared crypto state (not
    /// the telemetry sink) so cache behavior is observable — e.g. from
    /// a daemon's stats endpoint — regardless of how a session was
    /// built. Relaxed atomics: these are statistics, not
    /// synchronization.
    pub(crate) cache_hits: AtomicU64,
    /// Lifetime decode-cache misses (each one paid a cipher call).
    pub(crate) cache_misses: AtomicU64,
    /// Lifetime decode-cache evictions under the cap.
    pub(crate) cache_evictions: AtomicU64,
}

/// Point-in-time decode-cache statistics of one session's shared crypto
/// state (see [`SessionCrypto`]); sessions created via `with_key` with
/// the same key share one state and therefore one set of numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Lookups served from the cache (no cipher call).
    pub hits: u64,
    /// Lookups that missed and decrypted.
    pub misses: u64,
    /// Entries evicted to stay under the cap.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl SessionCrypto {
    /// Derives the cached state for a key under a configuration, with a
    /// decode-cache ceiling of `cache_cap` entries.
    ///
    /// # Errors
    ///
    /// [`WatermarkError::Math`] if the prime configuration does not
    /// admit an enumeration (cannot happen for a validated config).
    pub(crate) fn derive(
        key: &WatermarkKey,
        config: &JavaConfig,
        cache_cap: usize,
    ) -> Result<Self, WatermarkError> {
        let primes = config.primes(key);
        let enumeration = PairEnumeration::new(&primes)?;
        Ok(SessionCrypto {
            primes,
            enumeration,
            cipher: key.cipher(),
            decode_cache: Mutex::new(HashMap::default()),
            cache_cap,
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
        })
    }

    /// A point-in-time snapshot of the decode-cache statistics.
    pub(crate) fn decode_cache_stats(&self) -> DecodeCacheStats {
        let entries = self
            .decode_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len() as u64;
        DecodeCacheStats {
            hits: self.cache_hits.load(Ordering::Relaxed),
            misses: self.cache_misses.load(Ordering::Relaxed),
            evictions: self.cache_evictions.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Folds one scan's hit/miss/eviction deltas into the lifetime
    /// statistics.
    pub(crate) fn record_cache_activity(&self, hits: u64, misses: u64, evictions: u64) {
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
        self.cache_evictions.fetch_add(evictions, Ordering::Relaxed);
    }
}

/// An embedding session: one key + validated config + telemetry handle,
/// plus the cached key-derived crypto state ([`SessionCrypto`]).
///
/// Cheap to clone and `Send + Sync`, so a batch engine can derive one
/// per-copy session per job (see [`Embedder::with_key`]) while all of
/// them report into one sink.
#[derive(Debug, Clone)]
pub struct Embedder {
    pub(crate) key: WatermarkKey,
    pub(crate) config: JavaConfig,
    pub(crate) telemetry: Telemetry,
    pub(crate) crypto: Option<Arc<SessionCrypto>>,
    pub(crate) decode_cache_cap: usize,
    pub(crate) exec_tier: ExecTier,
}

/// A recognition session: the mirror image of [`Embedder`].
#[derive(Debug, Clone)]
pub struct Recognizer {
    pub(crate) key: WatermarkKey,
    pub(crate) config: JavaConfig,
    pub(crate) telemetry: Telemetry,
    pub(crate) crypto: Option<Arc<SessionCrypto>>,
    pub(crate) decode_cache_cap: usize,
    pub(crate) exec_tier: ExecTier,
}

/// Shared validation for both session builders.
fn validate_session(key: &WatermarkKey, config: &JavaConfig) -> Result<(), ConfigError> {
    if key.input.is_empty() {
        return Err(ConfigError::EmptySecretInput);
    }
    config.validate()
}

macro_rules! session_impl {
    ($session:ident, $builder:ident) => {
        impl $session {
            /// Starts building a session from a key and a configuration.
            pub fn builder(key: WatermarkKey, config: JavaConfig) -> $builder {
                $builder {
                    key,
                    config,
                    telemetry: Telemetry::null(),
                    decode_cache_cap: DEFAULT_DECODE_CACHE_CAP,
                    exec_tier: ExecTier::default(),
                }
            }

            /// An unvalidated session with no telemetry — the legacy
            /// free functions route through this so their (lenient)
            /// behavior is unchanged. Crypto derivation failures are
            /// deferred: they surface from the first call that needs
            /// the primes, exactly as before sessions cached them.
            pub(crate) fn unchecked(key: WatermarkKey, config: JavaConfig) -> $session {
                let crypto =
                    SessionCrypto::derive(&key, &config, DEFAULT_DECODE_CACHE_CAP).ok().map(Arc::new);
                $session {
                    key,
                    config,
                    telemetry: Telemetry::null(),
                    crypto,
                    decode_cache_cap: DEFAULT_DECODE_CACHE_CAP,
                    exec_tier: ExecTier::default(),
                }
            }

            /// The cached key-derived state, or a fresh derivation when
            /// construction deferred a failure (only possible on the
            /// unvalidated legacy path — the fresh attempt then yields
            /// the error the caller expects).
            pub(crate) fn crypto(&self) -> Result<Arc<SessionCrypto>, WatermarkError> {
                match &self.crypto {
                    Some(crypto) => Ok(Arc::clone(crypto)),
                    None => {
                        SessionCrypto::derive(&self.key, &self.config, self.decode_cache_cap)
                            .map(Arc::new)
                    }
                }
            }

            /// The session's decode-cache ceiling, in entries.
            pub fn decode_cache_cap(&self) -> usize {
                self.decode_cache_cap
            }

            /// The execution tier the session's tracing runs on.
            pub fn exec_tier(&self) -> ExecTier {
                self.exec_tier
            }

            /// Decode-cache statistics of the session's shared crypto
            /// state. Sessions derived for the same key (see
            /// [`Self::with_key`]) share one state, so a warm daemon
            /// session's numbers accumulate across every copy it
            /// recognizes. Zeros when crypto derivation was deferred
            /// (only possible on the unvalidated legacy path).
            pub fn decode_cache_stats(&self) -> DecodeCacheStats {
                match &self.crypto {
                    Some(crypto) => crypto.decode_cache_stats(),
                    None => DecodeCacheStats::default(),
                }
            }

            /// The session's key.
            pub fn key(&self) -> &WatermarkKey {
                &self.key
            }

            /// The session's configuration.
            pub fn config(&self) -> &JavaConfig {
                &self.config
            }

            /// The session's telemetry handle.
            pub fn telemetry(&self) -> &Telemetry {
                &self.telemetry
            }

            /// Derives a session for a different key (same configuration
            /// and telemetry sink) — the fleet uses this for per-copy
            /// keys. No re-validation of the input: batch engines derive
            /// per-copy keys from an already-validated base key and
            /// never change the input sequence. The crypto cache is
            /// re-derived for the new key (primes and cipher are
            /// key-dependent), once, here — not per call downstream.
            /// Asking for the key the session already holds shares the
            /// existing crypto state instead (the decode cache is a pure
            /// function of the key), so a warm per-copy session keeps
            /// its memoized decodes across calls — what makes resident
            /// daemon sessions genuinely warm.
            pub fn with_key(&self, key: WatermarkKey) -> $session {
                let crypto = if self.crypto.is_some() && key == self.key {
                    self.crypto.clone()
                } else {
                    SessionCrypto::derive(&key, &self.config, self.decode_cache_cap)
                        .ok()
                        .map(Arc::new)
                };
                $session {
                    key,
                    config: self.config.clone(),
                    telemetry: self.telemetry.clone(),
                    crypto,
                    decode_cache_cap: self.decode_cache_cap,
                    exec_tier: self.exec_tier,
                }
            }
        }

        /// Builder for the session; `build` validates key and config.
        #[derive(Debug, Clone)]
        pub struct $builder {
            key: WatermarkKey,
            config: JavaConfig,
            telemetry: Telemetry,
            decode_cache_cap: usize,
            exec_tier: ExecTier,
        }

        impl $builder {
            /// Attaches a telemetry handle (default: disabled).
            pub fn telemetry(mut self, telemetry: Telemetry) -> $builder {
                self.telemetry = telemetry;
                self
            }

            /// Overrides the decode-cache ceiling (default
            /// [`DEFAULT_DECODE_CACHE_CAP`] entries, ~24 MB). A resident
            /// daemon holding many warm sessions tunes this down to
            /// bound memory; admissions past the cap evict arbitrary
            /// resident entries and bump
            /// [`pathmark_telemetry::Counter::DecodeCacheEvict`]. Zero
            /// disables decode memoization entirely.
            pub fn decode_cache_cap(mut self, cap: usize) -> $builder {
                self.decode_cache_cap = cap;
                self
            }

            /// Selects the execution tier tracing runs on (default
            /// [`ExecTier::Compiled`], which silently falls back to the
            /// predecoded engine when the configuration or program
            /// demands it — see [`stackvm::interp::Vm::prepare`]).
            pub fn exec_tier(mut self, tier: ExecTier) -> $builder {
                self.exec_tier = tier;
                self
            }

            /// Validates and builds the session.
            ///
            /// # Errors
            ///
            /// [`ConfigError`] for an empty secret input or any
            /// configuration defect [`JavaConfig::validate`] rejects.
            pub fn build(self) -> Result<$session, ConfigError> {
                validate_session(&self.key, &self.config)?;
                // A validated config always admits an enumeration
                // (validate() bounds the pair-product sum), so this
                // derivation cannot fail; `.ok()` is for type shape.
                let crypto =
                    SessionCrypto::derive(&self.key, &self.config, self.decode_cache_cap)
                        .ok()
                        .map(Arc::new);
                Ok($session {
                    key: self.key,
                    config: self.config,
                    telemetry: self.telemetry,
                    crypto,
                    decode_cache_cap: self.decode_cache_cap,
                    exec_tier: self.exec_tier,
                })
            }
        }
    };
}

session_impl!(Embedder, EmbedderBuilder);
session_impl!(Recognizer, RecognizerBuilder);

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> WatermarkKey {
        WatermarkKey::new(7, vec![1, 2])
    }

    #[test]
    fn builder_validates_key_and_config() {
        let config = JavaConfig::for_watermark_bits(64);
        let session = Embedder::builder(key(), config.clone()).build().unwrap();
        assert_eq!(session.key(), &key());
        assert_eq!(session.config(), &config);
        assert!(!session.telemetry().enabled());

        assert_eq!(
            Embedder::builder(WatermarkKey::new(7, vec![]), config.clone())
                .build()
                .unwrap_err(),
            ConfigError::EmptySecretInput
        );
        assert_eq!(
            Recognizer::builder(WatermarkKey::new(7, vec![]), config)
                .build()
                .unwrap_err(),
            ConfigError::EmptySecretInput
        );
    }

    #[test]
    fn with_key_keeps_config_and_telemetry() {
        use pathmark_telemetry::MemorySink;
        use std::sync::Arc;

        let config = JavaConfig::for_watermark_bits(64);
        let telemetry = Telemetry::new(Arc::new(MemorySink::new()));
        let base = Recognizer::builder(key(), config.clone())
            .telemetry(telemetry)
            .build()
            .unwrap();
        let derived = base.with_key(WatermarkKey::new(99, vec![1, 2]));
        assert_eq!(derived.key().seed, 99);
        assert_eq!(derived.config(), &config);
        assert!(derived.telemetry().enabled());
    }

    #[test]
    fn sessions_cache_key_derived_crypto() {
        let config = JavaConfig::for_watermark_bits(64);
        let session = Recognizer::builder(key(), config.clone()).build().unwrap();
        let a = session.crypto().unwrap();
        let b = session.crypto().unwrap();
        assert!(Arc::ptr_eq(&a, &b), "repeat calls share one derivation");
        assert_eq!(a.primes, config.primes(&key()));
        assert_eq!(a.enumeration.primes(), a.primes.as_slice());
        assert_eq!(a.cipher, key().cipher());

        let derived = session.with_key(WatermarkKey::new(99, vec![1, 2]));
        let c = derived.crypto().unwrap();
        assert_ne!(c.primes, a.primes, "a new key re-derives its primes");

        // Re-deriving the session's own key shares the crypto state —
        // the decode cache stays warm across `with_key` round trips.
        let same = session.with_key(key());
        assert!(
            Arc::ptr_eq(&a, &same.crypto().unwrap()),
            "same key shares the existing derivation"
        );
    }

    #[test]
    fn decode_cache_cap_is_configurable_and_inherited_by_with_key() {
        let config = JavaConfig::for_watermark_bits(64);
        let session = Recognizer::builder(key(), config.clone())
            .decode_cache_cap(128)
            .build()
            .unwrap();
        assert_eq!(session.decode_cache_cap(), 128);
        assert_eq!(session.crypto().unwrap().cache_cap, 128);
        // Per-copy sessions keep the base session's cap.
        let derived = session.with_key(WatermarkKey::new(99, vec![1, 2]));
        assert_eq!(derived.decode_cache_cap(), 128);
        assert_eq!(derived.crypto().unwrap().cache_cap, 128);
        // The default is the documented constant.
        let default = Embedder::builder(key(), config).build().unwrap();
        assert_eq!(default.decode_cache_cap(), DEFAULT_DECODE_CACHE_CAP);
    }

    #[test]
    fn exec_tier_is_configurable_and_inherited_by_with_key() {
        use stackvm::ExecTier;

        let config = JavaConfig::for_watermark_bits(64);
        // The compile tier is the default for new sessions.
        let session = Recognizer::builder(key(), config.clone()).build().unwrap();
        assert_eq!(session.exec_tier(), ExecTier::Compiled);

        let reference = Recognizer::builder(key(), config.clone())
            .exec_tier(ExecTier::Reference)
            .build()
            .unwrap();
        assert_eq!(reference.exec_tier(), ExecTier::Reference);
        // Per-copy sessions keep the base session's tier.
        let derived = reference.with_key(WatermarkKey::new(99, vec![1, 2]));
        assert_eq!(derived.exec_tier(), ExecTier::Reference);

        let embedder = Embedder::builder(key(), config)
            .exec_tier(ExecTier::Predecoded)
            .build()
            .unwrap();
        assert_eq!(embedder.exec_tier(), ExecTier::Predecoded);
    }

    #[test]
    fn unchecked_skips_validation() {
        // The legacy free functions tolerate empty inputs; their
        // internal constructor must too.
        let session = Embedder::unchecked(
            WatermarkKey::new(1, vec![]),
            JavaConfig::for_watermark_bits(64),
        );
        assert!(session.key().input.is_empty());
    }
}
