//! Session objects: the redesigned entry point to the bytecode scheme.
//!
//! [`Embedder`] and [`Recognizer`] bundle what every pipeline call used
//! to re-thread as a `(program, key, config)` tuple — the
//! [`WatermarkKey`], the validated [`JavaConfig`], and an optional
//! telemetry handle — behind one builder-constructed object. The fleet,
//! the bench harness, and the CLI all go through these sessions, so the
//! legacy free functions ([`super::embed`], [`super::recognize`], …)
//! are now thin wrappers over a throwaway session and exist for
//! backward compatibility.
//!
//! Construction validates up front (see [`ConfigError`]): a session
//! that builds is guaranteed a coherent prime/enumeration/piece
//! configuration and a non-empty secret input, so the failure modes
//! that used to surface as panics deep inside embed are rejected at
//! the API boundary.
//!
//! ```
//! use pathmark_core::java::{Embedder, JavaConfig, Recognizer};
//! use pathmark_core::key::{Watermark, WatermarkKey};
//! use stackvm::builder::{FunctionBuilder, ProgramBuilder};
//! use stackvm::insn::Cond;
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = FunctionBuilder::new("main", 0, 2);
//! let head = f.new_label();
//! let out = f.new_label();
//! f.push(0).store(0);
//! f.bind(head);
//! f.load(0).push(8).if_cmp(Cond::Ge, out);
//! f.load(0).load(1).add().store(1);
//! f.iinc(0, 1).goto(head);
//! f.bind(out);
//! f.load(1).print().ret_void();
//! let main = pb.add_function(f.finish()?);
//! let program = pb.finish(main)?;
//!
//! let key = WatermarkKey::new(0xC0FFEE, vec![5, 3]);
//! let config = JavaConfig::builder(64).pieces(12).build()?;
//! let embedder = Embedder::builder(key.clone(), config.clone()).build()?;
//! let recognizer = Recognizer::builder(key, config).build()?;
//!
//! let watermark = Watermark::random_for(embedder.config(), embedder.key());
//! let marked = embedder.embed(&program, &watermark)?;
//! let found = recognizer.recognize(&marked.program)?;
//! assert_eq!(found.watermark.as_ref(), Some(watermark.value()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pathmark_crypto::Xtea;
use pathmark_math::crt::Statement;
use pathmark_math::enumeration::PairEnumeration;
use pathmark_telemetry::Telemetry;
use stackvm::ExecTier;

use super::JavaConfig;
use crate::key::WatermarkKey;
use crate::scan::ScanMode;
use crate::{ConfigError, WatermarkError};

/// Default ceiling on memoized window decodes. The backing table is a
/// fixed-size linear-probe array clamped at [`MAX_DECODE_CACHE_SLOTS`]
/// slots (~2.6 MB) and kept at most half full, so the effective
/// residency under the default cap is 2^15 entries — several times a
/// corpus copy's distinct-window count. Below that ceiling the table
/// is exact (a warm session re-scanning a copy it has seen decrypts
/// nothing); at the ceiling, admitting a new value evicts a resident
/// entry (counted as
/// [`pathmark_telemetry::Counter::DecodeCacheEvict`]). Recognition
/// stays correct either way — the cache only trades XTEA calls for
/// memory. Long-lived daemons tune the cap per session via the
/// builders' `decode_cache_cap`.
pub const DEFAULT_DECODE_CACHE_CAP: usize = 1 << 20;

/// Hard ceiling on decode-cache *slots* regardless of the entry cap:
/// 2^16 slots x 40 B = ~2.6 MB per session, enough that a corpus worth
/// of distinct windows (~5k per copy) stays well under half load,
/// while a probe still lands in the outer cache levels instead of main
/// memory. Raising the cap past this bound admits no more entries.
pub(crate) const MAX_DECODE_CACHE_SLOTS: usize = 1 << 16;

/// Window-decode memo table: open addressing with linear probing over
/// a fixed power-of-two slot array. A lookup multiplies the window by
/// a Fibonacci constant to pick a natural slot and walks forward to
/// the first key match (hit) or empty slot (miss); because residency
/// is capped at half the slots, chains stay short and a probe is
/// effectively one predictable memory access — the general-purpose
/// hash map this replaces spent more per lookup on its dependent
/// control-word-then-bucket chain than the XTEA batch it was saving.
///
/// Below the entry ceiling the table is an exact map (warm re-scans
/// hit every resident window); at the ceiling a newcomer is admitted
/// by overwriting an occupied slot, which keeps every probe chain
/// walkable, or — when its natural slot is free — by vacating the
/// nearest resident slot, which can orphan a chain tail. An orphaned
/// entry simply reads as a miss later and is re-decrypted: the only
/// invariant a memo needs is "correct value or miss", so eviction is
/// free to be sloppy about reachability.
/// One decode-cache slot: vacant, or a memoized window with what it
/// decodes to (`None` = known garbage).
type DecodeSlot = Option<(u64, Option<Statement>)>;

#[derive(Debug)]
pub(crate) struct DecodeCache {
    /// `None` = vacant; `Some((window, decoded))` memoizes one window.
    slots: Box<[DecodeSlot]>,
    /// Occupied-slot count (the `entries` statistic).
    occupied: usize,
    /// The entry ceiling the table was sized for (the builder's
    /// `decode_cache_cap`, before clamping). Read by the unit tests
    /// that check cap inheritance across `with_key`.
    #[cfg_attr(not(test), allow(dead_code))]
    cap: usize,
}

impl DecodeCache {
    /// A table of the largest power-of-two slot count that respects
    /// both the entry ceiling and the [`MAX_DECODE_CACHE_SLOTS`]
    /// clamp (never fewer than 8 slots, so the probe loops always have
    /// vacancies to terminate on). A zero cap produces an empty table:
    /// every lookup misses and every insert is a no-op, i.e.
    /// memoization is disabled.
    pub(crate) fn with_cap(cap: usize) -> Self {
        let slots = if cap == 0 {
            0
        } else {
            let want = cap.clamp(8, MAX_DECODE_CACHE_SLOTS);
            if want.is_power_of_two() {
                want
            } else {
                want.next_power_of_two() >> 1
            }
        };
        DecodeCache {
            slots: vec![None; slots].into_boxed_slice(),
            occupied: 0,
            cap,
        }
    }

    /// Entries currently resident.
    pub(crate) fn len(&self) -> usize {
        self.occupied
    }

    /// The ceiling this table was sized for.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn cap(&self) -> usize {
        self.cap
    }

    /// Residency ceiling: the configured cap, and never more than half
    /// the slots — the half-load bound is what keeps probe chains
    /// short and the probe loops terminating.
    #[inline]
    fn threshold(&self) -> usize {
        self.cap.min(self.slots.len() / 2)
    }

    /// The natural slot `value` maps to. Fibonacci multiply, then the
    /// top 16 product bits masked down — valid for any table at or
    /// under the [`MAX_DECODE_CACHE_SLOTS`] clamp.
    #[inline]
    fn natural_slot(&self, value: u64) -> usize {
        (value.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize & (self.slots.len() - 1)
    }

    /// The memoized decode of `value`, if resident: `Some(None)` means
    /// "known garbage", `None` means "not cached, decrypt it".
    #[inline]
    pub(crate) fn get(&self, value: u64) -> Option<Option<Statement>> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.natural_slot(value);
        loop {
            match self.slots[i] {
                None => return None,
                Some((resident, decoded)) if resident == value => return Some(decoded),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Memoizes `value -> decoded`, returning `true` if a resident
    /// entry was evicted to make room.
    pub(crate) fn insert(&mut self, value: u64, decoded: Option<Statement>) -> bool {
        if self.slots.is_empty() {
            return false;
        }
        let mask = self.slots.len() - 1;
        let natural = self.natural_slot(value);
        let mut i = natural;
        let free = loop {
            match self.slots[i] {
                None => break i,
                Some((resident, _)) if resident == value => {
                    self.slots[i] = Some((value, decoded));
                    return false;
                }
                Some(_) => i = (i + 1) & mask,
            }
        };
        if self.occupied < self.threshold() {
            self.slots[free] = Some((value, decoded));
            self.occupied += 1;
            return false;
        }
        // At the ceiling: admit by eviction (the newcomer just
        // occurred, so it is the likelier one to recur). Overwriting
        // the occupied natural slot keeps chains walkable; when the
        // natural slot is free, vacate the nearest resident instead —
        // any chain tail that orphans just reads as a miss later.
        if self.slots[natural].is_some() {
            self.slots[natural] = Some((value, decoded));
        } else {
            let mut j = (natural + 1) & mask;
            while self.slots[j].is_none() {
                j = (j + 1) & mask;
            }
            self.slots[j] = None;
            self.slots[natural] = Some((value, decoded));
        }
        true
    }
}

/// Key-derived state every embed/recognize call needs: the prime set,
/// the statement enumeration over it, and the block cipher.
///
/// Deriving these is not free — prime generation runs Miller–Rabin over
/// candidate streams, and the enumeration validates pairwise
/// coprimality — and before sessions cached them, *every*
/// `window_candidates` call re-derived all three (once per shard per
/// copy on the sharded path). Sessions now derive them once at
/// [`Embedder::builder`]-`build()` / [`Recognizer::with_key`] time and
/// share them via `Arc`.
#[derive(Debug)]
pub(crate) struct SessionCrypto {
    /// The prime set `p_1, …, p_r` for the session key.
    pub(crate) primes: Vec<u64>,
    /// The statement ↔ integer bijection over `primes`.
    pub(crate) enumeration: PairEnumeration,
    /// The key's block cipher.
    pub(crate) cipher: Xtea,
    /// Memoized window decodes: window value → what it decrypts and
    /// decodes to under this key (`None` = garbage). The mapping is a
    /// pure function of the key, so it is shared by every copy a warm
    /// session recognizes — and fingerprinted copies of one host
    /// program repeat most of their trace windows (the host's own loop
    /// structure is identical across copies), so batch recognition
    /// pays XTEA once per *distinct value per key*, not per copy.
    /// Bounded by `cache_cap`.
    pub(crate) decode_cache: Mutex<DecodeCache>,
    /// Lifetime decode-cache hits, kept on the shared crypto state (not
    /// the telemetry sink) so cache behavior is observable — e.g. from
    /// a daemon's stats endpoint — regardless of how a session was
    /// built. Relaxed atomics: these are statistics, not
    /// synchronization.
    pub(crate) cache_hits: AtomicU64,
    /// Lifetime decode-cache misses (each one paid a cipher call).
    pub(crate) cache_misses: AtomicU64,
    /// Lifetime decode-cache evictions under the cap.
    pub(crate) cache_evictions: AtomicU64,
}

/// Point-in-time decode-cache statistics of one session's shared crypto
/// state (see [`SessionCrypto`]); sessions created via `with_key` with
/// the same key share one state and therefore one set of numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Lookups served from the cache (no cipher call).
    pub hits: u64,
    /// Lookups that missed and decrypted.
    pub misses: u64,
    /// Entries evicted to stay under the cap.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl SessionCrypto {
    /// Derives the cached state for a key under a configuration, with a
    /// decode-cache ceiling of `cache_cap` entries.
    ///
    /// # Errors
    ///
    /// [`WatermarkError::Math`] if the prime configuration does not
    /// admit an enumeration (cannot happen for a validated config).
    pub(crate) fn derive(
        key: &WatermarkKey,
        config: &JavaConfig,
        cache_cap: usize,
    ) -> Result<Self, WatermarkError> {
        let primes = config.primes(key);
        let enumeration = PairEnumeration::new(&primes)?;
        Ok(SessionCrypto {
            primes,
            enumeration,
            cipher: key.cipher(),
            decode_cache: Mutex::new(DecodeCache::with_cap(cache_cap)),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
        })
    }

    /// A point-in-time snapshot of the decode-cache statistics.
    pub(crate) fn decode_cache_stats(&self) -> DecodeCacheStats {
        let entries = self
            .decode_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len() as u64;
        DecodeCacheStats {
            hits: self.cache_hits.load(Ordering::Relaxed),
            misses: self.cache_misses.load(Ordering::Relaxed),
            evictions: self.cache_evictions.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Folds one scan's hit/miss/eviction deltas into the lifetime
    /// statistics.
    pub(crate) fn record_cache_activity(&self, hits: u64, misses: u64, evictions: u64) {
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
        self.cache_evictions.fetch_add(evictions, Ordering::Relaxed);
    }
}

/// An embedding session: one key + validated config + telemetry handle,
/// plus the cached key-derived crypto state ([`SessionCrypto`]).
///
/// Cheap to clone and `Send + Sync`, so a batch engine can derive one
/// per-copy session per job (see [`Embedder::with_key`]) while all of
/// them report into one sink.
#[derive(Debug, Clone)]
pub struct Embedder {
    pub(crate) key: WatermarkKey,
    pub(crate) config: JavaConfig,
    pub(crate) telemetry: Telemetry,
    pub(crate) crypto: Option<Arc<SessionCrypto>>,
    pub(crate) decode_cache_cap: usize,
    pub(crate) exec_tier: ExecTier,
    pub(crate) scan_mode: ScanMode,
}

/// A recognition session: the mirror image of [`Embedder`].
#[derive(Debug, Clone)]
pub struct Recognizer {
    pub(crate) key: WatermarkKey,
    pub(crate) config: JavaConfig,
    pub(crate) telemetry: Telemetry,
    pub(crate) crypto: Option<Arc<SessionCrypto>>,
    pub(crate) decode_cache_cap: usize,
    pub(crate) exec_tier: ExecTier,
    pub(crate) scan_mode: ScanMode,
}

/// Shared validation for both session builders.
fn validate_session(key: &WatermarkKey, config: &JavaConfig) -> Result<(), ConfigError> {
    if key.input.is_empty() {
        return Err(ConfigError::EmptySecretInput);
    }
    config.validate()
}

macro_rules! session_impl {
    ($session:ident, $builder:ident) => {
        impl $session {
            /// Starts building a session from a key and a configuration.
            pub fn builder(key: WatermarkKey, config: JavaConfig) -> $builder {
                $builder {
                    key,
                    config,
                    telemetry: Telemetry::null(),
                    decode_cache_cap: DEFAULT_DECODE_CACHE_CAP,
                    exec_tier: ExecTier::default(),
                    scan_mode: ScanMode::default(),
                }
            }

            /// An unvalidated session with no telemetry — the legacy
            /// free functions route through this so their (lenient)
            /// behavior is unchanged. Crypto derivation failures are
            /// deferred: they surface from the first call that needs
            /// the primes, exactly as before sessions cached them.
            pub(crate) fn unchecked(key: WatermarkKey, config: JavaConfig) -> $session {
                let crypto =
                    SessionCrypto::derive(&key, &config, DEFAULT_DECODE_CACHE_CAP).ok().map(Arc::new);
                $session {
                    key,
                    config,
                    telemetry: Telemetry::null(),
                    crypto,
                    decode_cache_cap: DEFAULT_DECODE_CACHE_CAP,
                    exec_tier: ExecTier::default(),
                    scan_mode: ScanMode::default(),
                }
            }

            /// The cached key-derived state, or a fresh derivation when
            /// construction deferred a failure (only possible on the
            /// unvalidated legacy path — the fresh attempt then yields
            /// the error the caller expects).
            pub(crate) fn crypto(&self) -> Result<Arc<SessionCrypto>, WatermarkError> {
                match &self.crypto {
                    Some(crypto) => Ok(Arc::clone(crypto)),
                    None => {
                        SessionCrypto::derive(&self.key, &self.config, self.decode_cache_cap)
                            .map(Arc::new)
                    }
                }
            }

            /// The session's decode-cache ceiling, in entries.
            pub fn decode_cache_cap(&self) -> usize {
                self.decode_cache_cap
            }

            /// The execution tier the session's tracing runs on.
            pub fn exec_tier(&self) -> ExecTier {
                self.exec_tier
            }

            /// The scan strategy recognition uses (fused streaming scan
            /// vs the two-phase trace-then-scan reference).
            pub fn scan_mode(&self) -> ScanMode {
                self.scan_mode
            }

            /// Decode-cache statistics of the session's shared crypto
            /// state. Sessions derived for the same key (see
            /// [`Self::with_key`]) share one state, so a warm daemon
            /// session's numbers accumulate across every copy it
            /// recognizes. Zeros when crypto derivation was deferred
            /// (only possible on the unvalidated legacy path).
            pub fn decode_cache_stats(&self) -> DecodeCacheStats {
                match &self.crypto {
                    Some(crypto) => crypto.decode_cache_stats(),
                    None => DecodeCacheStats::default(),
                }
            }

            /// The session's key.
            pub fn key(&self) -> &WatermarkKey {
                &self.key
            }

            /// The session's configuration.
            pub fn config(&self) -> &JavaConfig {
                &self.config
            }

            /// The session's telemetry handle.
            pub fn telemetry(&self) -> &Telemetry {
                &self.telemetry
            }

            /// Derives a session for a different key (same configuration
            /// and telemetry sink) — the fleet uses this for per-copy
            /// keys. No re-validation of the input: batch engines derive
            /// per-copy keys from an already-validated base key and
            /// never change the input sequence. The crypto cache is
            /// re-derived for the new key (primes and cipher are
            /// key-dependent), once, here — not per call downstream.
            /// Asking for the key the session already holds shares the
            /// existing crypto state instead (the decode cache is a pure
            /// function of the key), so a warm per-copy session keeps
            /// its memoized decodes across calls — what makes resident
            /// daemon sessions genuinely warm.
            pub fn with_key(&self, key: WatermarkKey) -> $session {
                let crypto = if self.crypto.is_some() && key == self.key {
                    self.crypto.clone()
                } else {
                    SessionCrypto::derive(&key, &self.config, self.decode_cache_cap)
                        .ok()
                        .map(Arc::new)
                };
                $session {
                    key,
                    config: self.config.clone(),
                    telemetry: self.telemetry.clone(),
                    crypto,
                    decode_cache_cap: self.decode_cache_cap,
                    exec_tier: self.exec_tier,
                    scan_mode: self.scan_mode,
                }
            }
        }

        /// Builder for the session; `build` validates key and config.
        #[derive(Debug, Clone)]
        pub struct $builder {
            key: WatermarkKey,
            config: JavaConfig,
            telemetry: Telemetry,
            decode_cache_cap: usize,
            exec_tier: ExecTier,
            scan_mode: ScanMode,
        }

        impl $builder {
            /// Attaches a telemetry handle (default: disabled).
            pub fn telemetry(mut self, telemetry: Telemetry) -> $builder {
                self.telemetry = telemetry;
                self
            }

            /// Overrides the decode-cache ceiling (default
            /// [`DEFAULT_DECODE_CACHE_CAP`] entries; the direct-mapped
            /// table behind it clamps at ~2.5 MB). A resident daemon
            /// holding many warm sessions tunes this down to bound
            /// memory; admissions that collide with a resident entry
            /// evict it and bump
            /// [`pathmark_telemetry::Counter::DecodeCacheEvict`]. Zero
            /// disables decode memoization entirely.
            pub fn decode_cache_cap(mut self, cap: usize) -> $builder {
                self.decode_cache_cap = cap;
                self
            }

            /// Selects the execution tier tracing runs on (default
            /// [`ExecTier::Compiled`], which silently falls back to the
            /// predecoded engine when the configuration or program
            /// demands it — see [`stackvm::interp::Vm::prepare`]).
            pub fn exec_tier(mut self, tier: ExecTier) -> $builder {
                self.exec_tier = tier;
                self
            }

            /// Selects the scan strategy recognition uses (default
            /// [`ScanMode::Fused`], which folds the survivor scan into
            /// the trace pass; [`ScanMode::TwoPhase`] materializes the
            /// full bitstring first and scans it separately — the
            /// reference the fused path is property-tested against, and
            /// what the fleet's sharded scan uses internally).
            pub fn scan_mode(mut self, mode: ScanMode) -> $builder {
                self.scan_mode = mode;
                self
            }

            /// Validates and builds the session.
            ///
            /// # Errors
            ///
            /// [`ConfigError`] for an empty secret input or any
            /// configuration defect [`JavaConfig::validate`] rejects.
            pub fn build(self) -> Result<$session, ConfigError> {
                validate_session(&self.key, &self.config)?;
                // A validated config always admits an enumeration
                // (validate() bounds the pair-product sum), so this
                // derivation cannot fail; `.ok()` is for type shape.
                let crypto =
                    SessionCrypto::derive(&self.key, &self.config, self.decode_cache_cap)
                        .ok()
                        .map(Arc::new);
                Ok($session {
                    key: self.key,
                    config: self.config,
                    telemetry: self.telemetry,
                    crypto,
                    decode_cache_cap: self.decode_cache_cap,
                    exec_tier: self.exec_tier,
                    scan_mode: self.scan_mode,
                })
            }
        }
    };
}

session_impl!(Embedder, EmbedderBuilder);
session_impl!(Recognizer, RecognizerBuilder);

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> WatermarkKey {
        WatermarkKey::new(7, vec![1, 2])
    }

    #[test]
    fn builder_validates_key_and_config() {
        let config = JavaConfig::for_watermark_bits(64);
        let session = Embedder::builder(key(), config.clone()).build().unwrap();
        assert_eq!(session.key(), &key());
        assert_eq!(session.config(), &config);
        assert!(!session.telemetry().enabled());

        assert_eq!(
            Embedder::builder(WatermarkKey::new(7, vec![]), config.clone())
                .build()
                .unwrap_err(),
            ConfigError::EmptySecretInput
        );
        assert_eq!(
            Recognizer::builder(WatermarkKey::new(7, vec![]), config)
                .build()
                .unwrap_err(),
            ConfigError::EmptySecretInput
        );
    }

    #[test]
    fn with_key_keeps_config_and_telemetry() {
        use pathmark_telemetry::MemorySink;
        use std::sync::Arc;

        let config = JavaConfig::for_watermark_bits(64);
        let telemetry = Telemetry::new(Arc::new(MemorySink::new()));
        let base = Recognizer::builder(key(), config.clone())
            .telemetry(telemetry)
            .build()
            .unwrap();
        let derived = base.with_key(WatermarkKey::new(99, vec![1, 2]));
        assert_eq!(derived.key().seed, 99);
        assert_eq!(derived.config(), &config);
        assert!(derived.telemetry().enabled());
    }

    #[test]
    fn sessions_cache_key_derived_crypto() {
        let config = JavaConfig::for_watermark_bits(64);
        let session = Recognizer::builder(key(), config.clone()).build().unwrap();
        let a = session.crypto().unwrap();
        let b = session.crypto().unwrap();
        assert!(Arc::ptr_eq(&a, &b), "repeat calls share one derivation");
        assert_eq!(a.primes, config.primes(&key()));
        assert_eq!(a.enumeration.primes(), a.primes.as_slice());
        assert_eq!(a.cipher, key().cipher());

        let derived = session.with_key(WatermarkKey::new(99, vec![1, 2]));
        let c = derived.crypto().unwrap();
        assert_ne!(c.primes, a.primes, "a new key re-derives its primes");

        // Re-deriving the session's own key shares the crypto state —
        // the decode cache stays warm across `with_key` round trips.
        let same = session.with_key(key());
        assert!(
            Arc::ptr_eq(&a, &same.crypto().unwrap()),
            "same key shares the existing derivation"
        );
    }

    #[test]
    fn decode_cache_cap_is_configurable_and_inherited_by_with_key() {
        let config = JavaConfig::for_watermark_bits(64);
        let session = Recognizer::builder(key(), config.clone())
            .decode_cache_cap(128)
            .build()
            .unwrap();
        assert_eq!(session.decode_cache_cap(), 128);
        assert_eq!(
            session
                .crypto()
                .unwrap()
                .decode_cache
                .lock()
                .unwrap()
                .cap(),
            128
        );
        // Per-copy sessions keep the base session's cap.
        let derived = session.with_key(WatermarkKey::new(99, vec![1, 2]));
        assert_eq!(derived.decode_cache_cap(), 128);
        assert_eq!(
            derived
                .crypto()
                .unwrap()
                .decode_cache
                .lock()
                .unwrap()
                .cap(),
            128
        );
        // The default is the documented constant.
        let default = Embedder::builder(key(), config).build().unwrap();
        assert_eq!(default.decode_cache_cap(), DEFAULT_DECODE_CACHE_CAP);
    }

    #[test]
    fn exec_tier_is_configurable_and_inherited_by_with_key() {
        use stackvm::ExecTier;

        let config = JavaConfig::for_watermark_bits(64);
        // The compile tier is the default for new sessions.
        let session = Recognizer::builder(key(), config.clone()).build().unwrap();
        assert_eq!(session.exec_tier(), ExecTier::Compiled);

        let reference = Recognizer::builder(key(), config.clone())
            .exec_tier(ExecTier::Reference)
            .build()
            .unwrap();
        assert_eq!(reference.exec_tier(), ExecTier::Reference);
        // Per-copy sessions keep the base session's tier.
        let derived = reference.with_key(WatermarkKey::new(99, vec![1, 2]));
        assert_eq!(derived.exec_tier(), ExecTier::Reference);

        let embedder = Embedder::builder(key(), config)
            .exec_tier(ExecTier::Predecoded)
            .build()
            .unwrap();
        assert_eq!(embedder.exec_tier(), ExecTier::Predecoded);
    }

    #[test]
    fn scan_mode_is_configurable_and_inherited_by_with_key() {
        let config = JavaConfig::for_watermark_bits(64);
        // The fused streaming scan is the default for new sessions.
        let session = Recognizer::builder(key(), config.clone()).build().unwrap();
        assert_eq!(session.scan_mode(), ScanMode::Fused);

        let two_phase = Recognizer::builder(key(), config.clone())
            .scan_mode(ScanMode::TwoPhase)
            .build()
            .unwrap();
        assert_eq!(two_phase.scan_mode(), ScanMode::TwoPhase);
        // Per-copy sessions keep the base session's scan mode.
        let derived = two_phase.with_key(WatermarkKey::new(99, vec![1, 2]));
        assert_eq!(derived.scan_mode(), ScanMode::TwoPhase);

        let embedder = Embedder::builder(key(), config)
            .scan_mode(ScanMode::TwoPhase)
            .build()
            .unwrap();
        assert_eq!(embedder.scan_mode(), ScanMode::TwoPhase);
    }

    #[test]
    fn unchecked_skips_validation() {
        // The legacy free functions tolerate empty inputs; their
        // internal constructor must too.
        let session = Embedder::unchecked(
            WatermarkKey::new(1, vec![]),
            JavaConfig::for_watermark_bits(64),
        );
        assert!(session.key().input.is_empty());
    }
}
