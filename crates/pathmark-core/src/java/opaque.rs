//! Opaquely false predicates (the SandMark Opaque Predicate Library).
//!
//! Section 3.2.1: inserted watermark code is guarded by an *opaquely
//! false* predicate — an expression that always evaluates to false but is
//! hard to prove false statically — followed by an assignment to a live
//! variable, so that an optimizer cannot remove the watermark code as
//! dead. This module provides a small library of such predicates over an
//! arbitrary integer value.

use pathmark_crypto::Prng;
use stackvm::insn::{BinOp, Cond, Insn};

/// An always-false predicate shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpaquePredicate {
    /// `x·(x−1) % 2 != 0` — the product of consecutive integers is
    /// always even (the example in the paper).
    ConsecutiveProductOdd,
    /// `(x·x) % 4 == 2` — squares are ≡ 0 or 1 (mod 4), never 2.
    SquareMod4Is2,
    /// `((x & 0xFFFF)²) % 7 == 3` — 3 is not a quadratic residue modulo
    /// 7 (the mask keeps the square exact under 64-bit wraparound, where
    /// the residue argument would otherwise not survive).
    SquareMod7Is3,
}

impl OpaquePredicate {
    /// All library members.
    pub const ALL: [OpaquePredicate; 3] = [
        OpaquePredicate::ConsecutiveProductOdd,
        OpaquePredicate::SquareMod4Is2,
        OpaquePredicate::SquareMod7Is3,
    ];

    /// Picks a predicate pseudo-randomly.
    pub fn choose(rng: &mut Prng) -> OpaquePredicate {
        Self::ALL[rng.index(Self::ALL.len())]
    }

    /// Evaluates the predicate on a concrete value (always false; used
    /// by tests to prove the library sound).
    pub fn eval(self, x: i64) -> bool {
        match self {
            OpaquePredicate::ConsecutiveProductOdd => {
                x.wrapping_mul(x.wrapping_sub(1)).wrapping_rem(2) != 0
            }
            OpaquePredicate::SquareMod4Is2 => x.wrapping_mul(x).wrapping_rem(4) == 2,
            OpaquePredicate::SquareMod7Is3 => {
                let m = x & 0xFFFF;
                m * m % 7 == 3
            }
        }
    }

    /// Emits `if (P(local x)) { body }` with relative targets
    /// (`snippet_len`-style, suitable for splicing). The body never
    /// executes; it typically assigns to a live variable to defeat
    /// dead-code elimination.
    pub fn guard(self, x_local: u16, body: Vec<Insn>) -> Vec<Insn> {
        let mut code = Vec::new();
        match self {
            OpaquePredicate::ConsecutiveProductOdd => {
                // x * (x - 1) % 2 != 0
                code.push(Insn::Load(x_local));
                code.push(Insn::Load(x_local));
                code.push(Insn::Const(1));
                code.push(Insn::Bin(BinOp::Sub));
                code.push(Insn::Bin(BinOp::Mul));
                code.push(Insn::Const(2));
                code.push(Insn::Bin(BinOp::Rem));
                // if (top != 0) -> body; else skip past body
                let body_start = code.len() + 2;
                let body_end = body_start + body.len();
                code.push(Insn::If(Cond::Ne, body_start));
                code.push(Insn::Goto(body_end));
            }
            OpaquePredicate::SquareMod4Is2 | OpaquePredicate::SquareMod7Is3 => {
                let (modulus, residue) = if self == OpaquePredicate::SquareMod4Is2 {
                    (4, 2)
                } else {
                    (7, 3)
                };
                // x * x % m == r  — compare via subtraction against 0 so
                // the shape differs from the first predicate. The mod-7
                // variant masks its operand to keep the square exact.
                code.push(Insn::Load(x_local));
                if self == OpaquePredicate::SquareMod7Is3 {
                    code.push(Insn::Const(0xFFFF));
                    code.push(Insn::Bin(BinOp::And));
                    code.push(Insn::Dup);
                } else {
                    code.push(Insn::Load(x_local));
                }
                code.push(Insn::Bin(BinOp::Mul));
                code.push(Insn::Const(modulus));
                code.push(Insn::Bin(BinOp::Rem));
                code.push(Insn::Const(residue));
                code.push(Insn::Bin(BinOp::Sub));
                let body_start = code.len() + 2;
                let body_end = body_start + body.len();
                code.push(Insn::If(Cond::Eq, body_start));
                code.push(Insn::Goto(body_end));
            }
        }
        code.extend(body);
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_are_false_on_a_wide_range() {
        for p in OpaquePredicate::ALL {
            for x in -10_000i64..10_000 {
                assert!(!p.eval(x), "{p:?} true at {x}");
            }
            for x in [i64::MIN, i64::MIN + 1, i64::MAX, i64::MAX - 1, 1 << 40] {
                assert!(!p.eval(x), "{p:?} true at {x}");
            }
        }
    }

    #[test]
    fn guard_never_executes_body() {
        use stackvm::builder::{FunctionBuilder, ProgramBuilder};
        use stackvm::edit::insert_snippet;
        use stackvm::interp::Vm;

        for p in OpaquePredicate::ALL {
            for x_value in [-37i64, 0, 1, 999_999] {
                let mut pb = ProgramBuilder::new();
                let mut f = FunctionBuilder::new("main", 0, 1);
                f.push(x_value).store(0);
                f.push(1).print().ret_void();
                let main = pb.add_function(f.finish().unwrap());
                let mut program = pb.finish(main).unwrap();
                // Insert the guard just before the print (pc 2).
                let guard = p.guard(0, vec![Insn::Const(666), Insn::Print]);
                insert_snippet(program.function_mut(main), 2, guard);
                stackvm::verify::verify(&program).expect("guarded program verifies");
                let out = Vm::new(&program).run().expect("runs");
                assert_eq!(out.output, vec![1], "{p:?} body leaked at x={x_value}");
            }
        }
    }

    #[test]
    fn choose_covers_the_library() {
        let mut rng = Prng::from_seed(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(OpaquePredicate::choose(&mut rng));
        }
        assert_eq!(seen.len(), OpaquePredicate::ALL.len());
    }
}
