//! The recognition phase (Section 3.3, Figure 4).
//!
//! The marked program is re-traced on the secret input; the trace
//! bit-string is split into sliding 64-bit windows `B_0 = b_0…b_63`,
//! `B_1 = b_1…b_64`, …; every window is decrypted and un-enumerated into
//! a candidate statement `W ≡ x (mod p_i·p_j)` (garbage windows fail to
//! decode and are dropped). Candidates then pass through:
//!
//! 1. **voting** — for each prime `p_i`, if one residue's vote count
//!    strictly exceeds twice the runner-up's, statements contradicting
//!    the winner are discarded;
//! 2. the **consistency graphs** `G` (inconsistent pairs) and `H`
//!    (pairs agreeing mod some shared prime): repeatedly take the
//!    highest-H-degree unprocessed vertex as presumed-true and delete its
//!    `G`-neighbors, until `G` is edge-free;
//! 3. **Generalized CRT** recombination of the surviving statements.
//!
//! Recognition succeeds when the survivors pin down `W mod p_i` for
//! every prime.

use std::collections::HashMap;

use pathmark_crypto::BATCH_LANES;
use pathmark_math::bigint::BigUint;
use pathmark_math::crt::{combine_statements, Statement};
use pathmark_telemetry::{Counter, Stage};
use stackvm::trace::{Trace, TraceConfig};
use stackvm::Program;

use stackvm::interp::Vm;
use stackvm::ExecTier;

use super::session::DecodeCache;
use super::{trace_program_tiered, JavaConfig, Recognizer};
use crate::bitstring::{BitString, PackedTraceSink};
use crate::key::WatermarkKey;
use crate::scan::{ScanMode, Survivors};
use crate::scanner::{FusedScan, PeriodDetector, StreamingScanSink};
use crate::WatermarkError;

/// Cap on distinct candidate statements fed to the quadratic graph
/// stage; candidates are kept by descending multiplicity.
const MAX_GRAPH_VERTICES: usize = 3000;

/// Cap on one statement's weight in the `W mod p_i` vote. Long runs of
/// identical trace bits (e.g. a hot never-taken attack branch emitting
/// thousands of 0s) repeat one window — and hence one garbage statement
/// — at enormous multiplicity; uncapped, that single decoding could
/// out-vote the true residue.
const MAX_VOTE_WEIGHT: u64 = 8;

/// The outcome of recognition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recognition {
    /// The recovered watermark, if every prime residue was pinned down.
    pub watermark: Option<BigUint>,
    /// The recovered value modulo [`Recognition::modulus`] (meaningful
    /// even on partial recovery).
    pub partial: BigUint,
    /// Product of the primes covered by the surviving statements.
    pub modulus: BigUint,
    /// Number of primes whose residue was recovered.
    pub primes_covered: usize,
    /// Total primes in the configuration.
    pub primes_total: usize,
    /// Distinct candidate statements decoded from the trace.
    pub candidates: usize,
    /// Candidates surviving the vote filter.
    pub after_vote: usize,
    /// Statements surviving the consistency-graph stage.
    pub survivors: usize,
}

/// Runs recognition on a (possibly attacked) program.
///
/// # Errors
///
/// * [`WatermarkError::TraceFailed`] if the program faults on the secret
///   input (e.g. after a destructive attack);
/// * [`WatermarkError::Math`] for prime-configuration errors.
#[deprecated(
    note = "build a recognition session instead: `Recognizer::builder(key, config).build()?.recognize(program)`"
)]
pub fn recognize(
    program: &Program,
    key: &WatermarkKey,
    config: &JavaConfig,
) -> Result<Recognition, WatermarkError> {
    Recognizer::unchecked(key.clone(), config.clone()).recognize(program)
}

/// Recognition from an already-decoded bit-string (used by experiments
/// that model attacks as direct bit perturbations).
///
/// # Errors
///
/// [`WatermarkError::Math`] for prime-configuration errors.
#[deprecated(
    note = "build a recognition session instead: `Recognizer::builder(key, config).build()?.recognize_bits(bits)`"
)]
pub fn recognize_bits(
    bits: &BitString,
    key: &WatermarkKey,
    config: &JavaConfig,
) -> Result<Recognition, WatermarkError> {
    Recognizer::unchecked(key.clone(), config.clone()).recognize_bits(bits)
}

/// Step one of recognition, restricted to the sliding windows whose
/// *start offsets* fall in `[start, end)`: decrypt each window and
/// collect the decodable candidate statements with multiplicity.
///
/// Degenerate all-zero/all-one windows are skipped: a constant 64-bit
/// run cannot be watermark ciphertext except with probability `2^-63`,
/// but arises constantly from monotone branches.
///
/// Sharded recognition splits the full offset range into disjoint
/// chunks, scans them in parallel, and merges the returned maps by
/// summing multiplicities; because window `i` depends only on bits
/// `i..i+64`, the merged map is identical to a single scan of
/// `[0, len)`, so feeding it to [`recognize_from_candidates`] is
/// bit-identical to the serial [`recognize_bits`].
///
/// # Errors
///
/// [`WatermarkError::Math`] for prime-configuration errors.
#[deprecated(
    note = "build a recognition session instead: `Recognizer::builder(key, config).build()?.window_candidates(bits, start, end)`"
)]
pub fn window_candidates(
    bits: &BitString,
    key: &WatermarkKey,
    config: &JavaConfig,
    start: usize,
    end: usize,
) -> Result<HashMap<Statement, u64>, WatermarkError> {
    Recognizer::unchecked(key.clone(), config.clone()).window_candidates(bits, start, end)
}

impl Recognizer {
    /// Runs the tracing phase on the session's secret input, recording
    /// only what recognition needs ([`TraceConfig::branches_only`]).
    /// Reported to telemetry as [`Stage::Trace`].
    ///
    /// # Errors
    ///
    /// [`WatermarkError::TraceFailed`] if the program faults or exceeds
    /// the budget.
    pub fn trace(&self, program: &Program) -> Result<Trace, WatermarkError> {
        self.telemetry.time(Stage::Trace, || {
            trace_program_tiered(
                program,
                &self.key,
                &self.config,
                TraceConfig::branches_only(),
                self.exec_tier,
            )
        })
    }

    /// Runs the tracing phase straight to the packed bit-string via the
    /// streaming sink (see [`super::trace_program_bits`]): no
    /// `Vec<TraceEvent>` is materialized and no separate decode pass
    /// runs. Bit-identical to [`Recognizer::trace`] +
    /// [`BitString::from_trace`].
    ///
    /// Runs on the session's [`ExecTier`] (default compiled). The
    /// compile step is reported to telemetry as [`Stage::Compile`] and
    /// the execution as [`Stage::Trace`]; a compiled-tier session whose
    /// program exceeds the compile budget silently runs the predecoded
    /// engine and bumps [`Counter::CompileFallback`].
    ///
    /// # Errors
    ///
    /// [`WatermarkError::TraceFailed`] if the program faults or exceeds
    /// the budget.
    pub fn trace_bits(&self, program: &Program) -> Result<BitString, WatermarkError> {
        let vm = Vm::new(program)
            .with_input(self.key.input.clone())
            .with_budget(self.config.trace_budget)
            .with_trace(TraceConfig::branches_only())
            .with_exec_tier(self.exec_tier);
        let compiled_active = self.telemetry.time(Stage::Compile, || vm.prepare());
        if self.exec_tier == ExecTier::Compiled && !compiled_active {
            self.telemetry.count(Counter::CompileFallback, 1);
        }
        self.telemetry.time(Stage::Trace, || {
            let mut sink = PackedTraceSink::for_program(program);
            vm.run_with_sink(&mut sink)?;
            Ok(sink.finish())
        })
    }

    /// Runs recognition on a (possibly attacked) program, on the
    /// session's [`ScanMode`]:
    ///
    /// * [`ScanMode::Fused`] (the default) traces through the streaming
    ///   scan sink ([`Recognizer::trace_survivors`]), so trace and the
    ///   window roll are one pass over the program's execution;
    /// * [`ScanMode::TwoPhase`] materializes the bit-string first
    ///   ([`Recognizer::trace_bits`]) and scans it afterwards.
    ///
    /// The modes are bit-identical (CI property-gates `Survivors` and
    /// `Recognition` equality across all execution tiers).
    ///
    /// # Errors
    ///
    /// As the [`recognize`] free function.
    pub fn recognize(&self, program: &Program) -> Result<Recognition, WatermarkError> {
        match self.scan_mode {
            ScanMode::Fused => {
                let scan = self.trace_survivors(program)?;
                let counts = self.candidates_from_survivors(&scan.survivors)?;
                self.recognize_from_candidates(counts)
            }
            ScanMode::TwoPhase => {
                let bits = self.trace_bits(program)?;
                self.recognize_bits(&bits)
            }
        }
    }

    /// The fused trace→scan pass: traces the program through a
    /// [`StreamingScanSink`], which maintains the rolling 64-bit window
    /// and both pre-rejects online over the packed words as the sink
    /// writes them — the survivor table exists the moment the traced
    /// program halts, and the bit-string is never re-walked. The
    /// returned table is bit-identical to
    /// [`Recognizer::window_survivors`] over the full range of
    /// [`Recognizer::trace_bits`]' string (see [`crate::scanner`] for
    /// the equivalence argument).
    ///
    /// Runs on the session's [`ExecTier`] like [`Recognizer::trace_bits`]
    /// (same [`Stage::Compile`] span and [`Counter::CompileFallback`]
    /// accounting). The fused pass is reported as a [`Stage::Trace`]
    /// span plus a [`Stage::ScanRoll`] span — the scanner's share is
    /// measured inside the sink and subtracted from the trace total, so
    /// the two spans sum to the pass without double counting — plus the
    /// usual [`Counter::WindowsScanned`] / [`Counter::WindowsSkipped`].
    ///
    /// # Errors
    ///
    /// [`WatermarkError::TraceFailed`] if the program faults or exceeds
    /// the budget.
    pub fn trace_survivors(&self, program: &Program) -> Result<FusedScan, WatermarkError> {
        let vm = Vm::new(program)
            .with_input(self.key.input.clone())
            .with_budget(self.config.trace_budget)
            .with_trace(TraceConfig::branches_only())
            .with_exec_tier(self.exec_tier);
        let compiled_active = self.telemetry.time(Stage::Compile, || vm.prepare());
        if self.exec_tier == ExecTier::Compiled && !compiled_active {
            self.telemetry.count(Counter::CompileFallback, 1);
        }
        let timed = self.telemetry.enabled();
        let started = timed.then(std::time::Instant::now);
        let mut sink = StreamingScanSink::for_program(program, timed);
        vm.run_with_sink(&mut sink)?;
        let scan = sink.finish();
        if let Some(started) = started {
            let total = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let roll = scan.roll_nanos.min(total);
            self.telemetry.record(Stage::Trace, total - roll);
            self.telemetry.record(Stage::ScanRoll, roll);
        }
        self.telemetry.count(Counter::WindowsScanned, scan.scanned);
        self.telemetry.count(Counter::WindowsSkipped, scan.skipped);
        Ok(scan)
    }

    /// Recognition from an already-decoded bit-string.
    ///
    /// # Errors
    ///
    /// As the [`recognize_bits`] free function.
    pub fn recognize_bits(&self, bits: &BitString) -> Result<Recognition, WatermarkError> {
        let counts = self.window_candidates(bits, 0, usize::MAX)?;
        self.recognize_from_candidates(counts)
    }

    /// Phase one of the window scan: collect the *surviving window
    /// values* of offsets `[start, end)` as a columnar [`Survivors`]
    /// table, without touching the cipher.
    ///
    /// The scan *rolls*: the 64-bit window is shifted one bit per
    /// offset out of the packed words instead of being rebuilt, and two
    /// pre-rejects account whole stretches of offsets without rolling
    /// through them — both built on the word-parallel
    /// [`BitString::next_period_mismatch`], which classifies four
    /// packed words per step:
    ///
    /// * **constant runs** (the period-1 case): an all-zero/all-one
    ///   window is *skipped* — not merely cheaply rejected — because a
    ///   constant 64-bit run cannot be watermark ciphertext except with
    ///   probability `2^-63`, yet arises constantly from monotone
    ///   branches; the scan jumps past the whole run at once.
    /// * **periodic runs**: trace bit-strings repeat at the host's
    ///   loop-body period, so most windows are exact copies of the
    ///   window one period earlier. A [`crate::scanner::PeriodDetector`]
    ///   votes on repeat distances; when a probed candidate period
    ///   extends into a long periodic run, every window of the run is
    ///   *bulk accounted* to its representative one period back —
    ///   `window(o) = window(r)` for `r ≡ o (mod p)` in the period
    ///   before the run — with exact multiplicity and first offset, so
    ///   the resulting table is bit-identical to rolling through the
    ///   run one offset at a time (CI property-gates this).
    ///
    /// This is the [`ScanMode::TwoPhase`] roll (and the only shape
    /// sharded sub-ranges and pre-traced bit-strings can use); the
    /// fused [`Recognizer::trace_survivors`] produces the identical
    /// table without a second pass.
    ///
    /// Telemetry: one [`Stage::ScanRoll`] span, plus
    /// [`Counter::WindowsScanned`] (windows the range covers, skipped
    /// ones included) and [`Counter::WindowsSkipped`] (windows the
    /// pre-rejects accounted without rolling).
    pub fn window_survivors(&self, bits: &BitString, start: usize, end: usize) -> Survivors {
        let end = end.min(bits.num_windows());
        let start = start.min(end);
        let mut skipped = 0u64;
        let table = self.telemetry.time(Stage::ScanRoll, || {
            let words = bits.words();
            // Upper bound: every window survives distinctly. Avoids
            // doubling-copy churn on big traces.
            let mut entries: Vec<(u64, u64, u64)> = Vec::with_capacity(end - start);
            let mut detector = PeriodDetector::new();
            // The period the scan last bulk-skipped on; probed eagerly.
            let mut hot = 0usize;
            let mut offset = start;
            let mut window = match bits.window_u64(offset) {
                Some(w) => w,
                None => return Survivors::new(), // start == end: empty range
            };
            while offset < end {
                if window == 0 || window == u64::MAX {
                    // Constant run: every window up to (just past) the
                    // next flipped bit is equally constant. Jump there.
                    let flip = bits.next_period_mismatch(offset + 64, 1);
                    let next = if flip >= bits.len() {
                        end
                    } else {
                        // The first offset whose window sees the flip.
                        (flip - 63).min(end)
                    }
                    .max(offset + 1);
                    skipped += (next - offset) as u64;
                    offset = next;
                    if offset < end {
                        window = bits.window_u64(offset).expect("offset < num_windows");
                    }
                    continue;
                }
                if let Some(period) = detector.probe(words, bits.len(), offset, window, hot) {
                    // The probe verified window(offset) == window(offset
                    // - period); extend: bits agree with their
                    // period-shifted selves up to `mismatch`, so every
                    // window at [offset, mismatch - 64] is periodic.
                    let mismatch = bits.next_period_mismatch(offset + 64, period);
                    // Engage only when the run covers meaningfully more
                    // than the verified window (half a period beyond).
                    if mismatch >= offset + 64 + period / 2 {
                        let stop = (mismatch - 64).min(end - 1);
                        // Bulk-account [offset, stop]: each window there
                        // equals its representative r one-to-few periods
                        // back. Representatives at [offset - period,
                        // offset) were already scanned normally; their
                        // in-run copies sit at r + period, r + 2·period,
                        // … ≤ stop. Constant representatives are dropped
                        // — their copies are equally constant.
                        for r in offset - period..offset {
                            let value = bits.window_u64(r).expect("r < offset < num_windows");
                            if value == 0 || value == u64::MAX {
                                continue;
                            }
                            let count = ((stop - r) / period) as u64;
                            if count > 0 {
                                entries.push((value, count, (r + period) as u64));
                            }
                        }
                        skipped += (stop - offset + 1) as u64;
                        hot = period;
                        offset = stop + 1;
                        if offset < end {
                            window = bits.window_u64(offset).expect("offset < num_windows");
                        }
                        continue;
                    }
                }
                detector.push(window, offset);
                entries.push((window, 1, offset as u64));
                // Roll: shift the leaving bit out, the incoming bit in.
                offset += 1;
                if offset < end {
                    let incoming = offset + 63;
                    let bit = (words[incoming / 64] >> (incoming % 64)) & 1;
                    window = (window >> 1) | (bit << 63);
                }
            }
            Survivors::from_entries(entries)
        });
        self.telemetry
            .count(Counter::WindowsScanned, (end - start) as u64);
        self.telemetry.count(Counter::WindowsSkipped, skipped);
        table
    }

    /// Phase two of the window scan: decrypt each distinct surviving
    /// window value once and decode it into a candidate statement,
    /// summing the value's multiplicity into the statement's count —
    /// exactly the multiset a decrypt-per-offset scan produces.
    ///
    /// `survivors` is the columnar table [`Recognizer::window_survivors`]
    /// produced (or a [`Survivors::merge`] of several shards' tables).
    /// Its rows are distinct by construction, so cache misses stream
    /// straight into [`BATCH_LANES`]-wide lanes and through
    /// [`pathmark_crypto::Xtea::decrypt_batch`] — the 32-round loop
    /// runs once per lane batch instead of once per value.
    ///
    /// A value's decode is a pure function of the session key, so the
    /// session memoizes it (see `SessionCrypto::decode_cache`): a warm
    /// session recognizing many copies of one host program pays XTEA
    /// once per distinct value per *key*, not per copy — the host's own
    /// loop windows repeat across fingerprinted copies.
    ///
    /// Telemetry: one [`Stage::ScanDecrypt`] span (the scan's
    /// decryption half, identical on both scan modes),
    /// plus [`Counter::WindowsDecrypted`] (window values that actually
    /// reached the cipher), [`Counter::DecodeCacheHit`] /
    /// [`Counter::DecodeCacheMiss`] / [`Counter::DecodeCacheEvict`]
    /// (cache behavior, also folded into the session's
    /// [`super::DecodeCacheStats`]), and [`Counter::CandidatesDecoded`]
    /// (candidate decodings, with multiplicity).
    ///
    /// # Errors
    ///
    /// [`WatermarkError::Math`] for prime-configuration errors.
    pub fn candidates_from_survivors(
        &self,
        survivors: &Survivors,
    ) -> Result<HashMap<Statement, u64>, WatermarkError> {
        let crypto = self.crypto()?;
        let (enumeration, cipher) = (&crypto.enumeration, &crypto.cipher);
        let mut decrypted = 0u64;
        let mut evicted = 0u64;
        let mut hits = 0u64;
        let mut misses = 0u64;
        let counts = self.telemetry.time(Stage::ScanDecrypt, || {
            let mut counts: HashMap<Statement, u64> = HashMap::new();
            let mut cache = crypto
                .decode_cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // Cache misses accumulate into cipher lanes; table rows are
            // distinct, so a batch never holds the same value twice.
            let mut lane_values = [0u64; BATCH_LANES];
            let mut lane_mults = [0u64; BATCH_LANES];
            let mut lanes = 0usize;
            let flush = |values: &[u64],
                             mults: &[u64],
                             cache: &mut DecodeCache,
                             counts: &mut HashMap<Statement, u64>,
                             decrypted: &mut u64,
                             evicted: &mut u64| {
                let mut blocks = [0u64; BATCH_LANES];
                blocks[..values.len()].copy_from_slice(values);
                cipher.decrypt_batch(&mut blocks[..values.len()]);
                *decrypted += values.len() as u64;
                for (lane, &value) in values.iter().enumerate() {
                    let decoded = enumeration.decode(blocks[lane]).ok();
                    // Below its residency ceiling the memo table is
                    // exact; at the ceiling a newcomer evicts a
                    // resident entry and memory stays bounded.
                    if cache.insert(value, decoded) {
                        *evicted += 1;
                    }
                    if let Some(statement) = decoded {
                        *counts.entry(statement).or_insert(0) += mults[lane];
                    }
                }
            };
            for (value, multiplicity, _first_offset) in survivors.iter() {
                if let Some(decoded) = cache.get(value) {
                    hits += 1;
                    if let Some(statement) = decoded {
                        *counts.entry(statement).or_insert(0) += multiplicity;
                    }
                    continue;
                }
                misses += 1;
                lane_values[lanes] = value;
                lane_mults[lanes] = multiplicity;
                lanes += 1;
                if lanes == BATCH_LANES {
                    flush(
                        &lane_values,
                        &lane_mults,
                        &mut cache,
                        &mut counts,
                        &mut decrypted,
                        &mut evicted,
                    );
                    lanes = 0;
                }
            }
            if lanes > 0 {
                flush(
                    &lane_values[..lanes],
                    &lane_mults[..lanes],
                    &mut cache,
                    &mut counts,
                    &mut decrypted,
                    &mut evicted,
                );
            }
            counts
        });
        self.telemetry.count(Counter::WindowsDecrypted, decrypted);
        self.telemetry.count(Counter::DecodeCacheHit, hits);
        self.telemetry.count(Counter::DecodeCacheMiss, misses);
        self.telemetry.count(Counter::DecodeCacheEvict, evicted);
        self.telemetry
            .count(Counter::CandidatesDecoded, counts.values().sum());
        crypto.record_cache_activity(hits, misses, evicted);
        Ok(counts)
    }

    /// The sliding-window candidate scan (see the [`window_candidates`]
    /// free function for the sharding contract): both phases —
    /// [`Recognizer::window_survivors`] then
    /// [`Recognizer::candidates_from_survivors`] — over one range.
    ///
    /// # Errors
    ///
    /// [`WatermarkError::Math`] for prime-configuration errors.
    pub fn window_candidates(
        &self,
        bits: &BitString,
        start: usize,
        end: usize,
    ) -> Result<HashMap<Statement, u64>, WatermarkError> {
        let survivors = self.window_survivors(bits, start, end);
        self.candidates_from_survivors(&survivors)
    }
}

/// Steps two onward of recognition, from an already-collected candidate
/// multiset (see [`window_candidates`]): the `W mod p_i` vote
/// prefilter, the G/H consistency graphs, and Generalized CRT
/// recombination. Entirely deterministic in `counts`' *contents* (map
/// iteration order never leaks into the result).
///
/// # Errors
///
/// [`WatermarkError::Math`] for prime-configuration errors.
#[deprecated(
    note = "build a recognition session instead: `Recognizer::builder(key, config).build()?.recognize_from_candidates(counts)`"
)]
pub fn recognize_from_candidates(
    counts: HashMap<Statement, u64>,
    key: &WatermarkKey,
    config: &JavaConfig,
) -> Result<Recognition, WatermarkError> {
    Recognizer::unchecked(key.clone(), config.clone()).recognize_from_candidates(counts)
}

impl Recognizer {
    /// Steps two onward of recognition (see the
    /// [`recognize_from_candidates`] free function for the determinism
    /// contract).
    ///
    /// Telemetry: one span each for [`Stage::Vote`], [`Stage::Graph`],
    /// and [`Stage::Crt`].
    ///
    /// # Errors
    ///
    /// [`WatermarkError::Math`] for prime-configuration errors.
    pub fn recognize_from_candidates(
        &self,
        counts: HashMap<Statement, u64>,
    ) -> Result<Recognition, WatermarkError> {
        let config = &self.config;
        let crypto = self.crypto()?;
        let primes = &crypto.primes;
        let candidates = counts.len();

        // --- Vote on W mod p_i for each prime (clear winner = more than
        // twice the second place). One pass over the candidates tallies
        // both of each statement's residues at once, instead of one
        // full candidate pass per prime. Skipped entirely when the
        // configuration disables the prefilter (ablation studies).
        let mut filtered: Vec<(Statement, u64)> = self.telemetry.time(Stage::Vote, || {
            let mut winners: Vec<Option<u64>> = vec![None; primes.len()];
            if config.vote_prefilter {
                let mut tallies: Vec<HashMap<u64, u64>> = vec![HashMap::new(); primes.len()];
                for (s, &c) in &counts {
                    let weight = c.min(MAX_VOTE_WEIGHT);
                    for idx in [s.i, s.j] {
                        *tallies[idx].entry(s.x % primes[idx]).or_insert(0) += weight;
                    }
                }
                for (idx, tally) in tallies.iter().enumerate() {
                    // Winner selection is order-independent: a residue
                    // wins only with strictly more than twice the
                    // runner-up's votes, and ties at the top never win.
                    let mut best: Option<(u64, u64)> = None;
                    let mut second = 0u64;
                    for (&r, &c) in tally {
                        match best {
                            None => best = Some((r, c)),
                            Some((_, bc)) if c > bc => {
                                second = bc;
                                best = Some((r, c));
                            }
                            Some(_) => second = second.max(c),
                        }
                    }
                    if let Some((r, c)) = best {
                        if c > 2 * second {
                            winners[idx] = Some(r);
                        }
                    }
                }
            }
            counts
                .into_iter()
                .filter(|(s, _)| {
                    [s.i, s.j].iter().all(|&idx| match winners[idx] {
                        Some(w) => s
                            .residue_mod_prime(idx, primes)
                            .expect("statement mentions idx")
                            == w,
                        None => true,
                    })
                })
                .collect()
        });
        let after_vote = filtered.len();

        // --- Consistency graphs G (inconsistent) and H (agree mod a
        // shared prime).
        let survivors: Vec<Statement> = self.telemetry.time(Stage::Graph, || {
            // Deterministic order; cap the quadratic stage.
            filtered.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            filtered.truncate(MAX_GRAPH_VERTICES);

            let statements: Vec<Statement> = filtered.iter().map(|&(s, _)| s).collect();
            let n = statements.len();

            // Pair generation is bucketed by prime: only statements
            // sharing a prime can be G- or H-adjacent (disjoint pairs
            // have no shared residue to compare), so instead of testing
            // all n² pairs we test pairs within each prime's bucket. A
            // pair sharing *both* primes appears in two buckets; it is
            // processed only in the bucket of its smaller shared prime.
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); primes.len()];
            for (v, s) in statements.iter().enumerate() {
                buckets[s.i].push(v);
                buckets[s.j].push(v);
            }
            let mut g: Vec<Vec<usize>> = vec![Vec::new(); n];
            let mut h_degree: Vec<usize> = vec![0; n];
            for (k, bucket) in buckets.iter().enumerate() {
                for (pos, &a) in bucket.iter().enumerate() {
                    let (sa, sb_range) = (statements[a], &bucket[pos + 1..]);
                    for &b in sb_range {
                        let sb = statements[b];
                        let min_shared = [sa.i, sa.j]
                            .iter()
                            .filter(|&&p| p == sb.i || p == sb.j)
                            .min()
                            .copied()
                            .expect("bucket mates share prime k");
                        if min_shared != k {
                            continue; // handled in the other bucket
                        }
                        if sa.inconsistent_with(&sb, primes) {
                            g[a].push(b);
                            g[b].push(a);
                        } else if sa.agrees_with(&sb, primes) {
                            h_degree[a] += 1;
                            h_degree[b] += 1;
                        }
                    }
                }
            }
            // The pre-bucketing implementation emitted adjacency lists
            // in ascending vertex order; restore that so the degenerate
            // edge-pick below stays bit-identical.
            let mut live_edges = 0usize;
            for adj in &mut g {
                adj.sort_unstable();
                live_edges += adj.len();
            }
            live_edges /= 2;

            // Peeling loop, with the edge count maintained
            // incrementally: killing a vertex subtracts its live degree
            // instead of rescanning the whole graph per iteration.
            let mut alive = vec![true; n];
            let mut in_u = vec![false; n];
            let kill = |w: usize, alive: &mut [bool], live_edges: &mut usize| {
                if alive[w] {
                    alive[w] = false;
                    *live_edges -= g[w].iter().filter(|&&u| alive[u]).count();
                }
            };
            while live_edges > 0 {
                // Highest H-degree vertex not yet processed.
                let pick = (0..n)
                    .filter(|&v| alive[v] && !in_u[v])
                    .max_by_key(|&v| (h_degree[v], std::cmp::Reverse(v)));
                match pick {
                    Some(v) => {
                        in_u[v] = true;
                        for &w in &g[v] {
                            kill(w, &mut alive, &mut live_edges);
                        }
                    }
                    None => {
                        // Degenerate: every remaining vertex processed
                        // but edges remain (possible under heavy noise).
                        // Drop the lowest-H-degree endpoint of some
                        // remaining edge.
                        let (a, b) = alive
                            .iter()
                            .enumerate()
                            .filter(|&(_, &al)| al)
                            .flat_map(|(v, _)| {
                                g[v].iter()
                                    .filter(|&&w| alive[w])
                                    .map(move |&w| (v, w))
                            })
                            .next()
                            .expect("live_edges > 0 implies an edge exists");
                        let drop = if h_degree[a] <= h_degree[b] { a } else { b };
                        kill(drop, &mut alive, &mut live_edges);
                    }
                }
            }
            (0..n)
                .filter(|&v| alive[v])
                .map(|v| statements[v])
                .collect()
        });

        // --- Generalized CRT recombination.
        let (partial, modulus) = self.telemetry.time(Stage::Crt, || {
            if survivors.is_empty() || primes.len() < 2 {
                Ok((BigUint::zero(), BigUint::one()))
            } else {
                combine_statements(&survivors, primes)
            }
        })?;
        let covered: Vec<bool> = (0..primes.len())
            .map(|idx| survivors.iter().any(|s| s.i == idx || s.j == idx))
            .collect();
        let primes_covered = covered.iter().filter(|&&c| c).count();
        let watermark = (primes_covered == primes.len()).then(|| partial.clone());

        Ok(Recognition {
            watermark,
            partial,
            modulus,
            primes_covered,
            primes_total: primes.len(),
            candidates,
            after_vote,
            survivors: survivors.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::java::{CodegenPolicy, Embedder};
    use crate::key::Watermark;
    use pathmark_crypto::Prng;
    use stackvm::builder::{FunctionBuilder, ProgramBuilder};
    use stackvm::insn::Cond;

    fn host_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 2);
        let head = f.new_label();
        let out = f.new_label();
        f.push(0).store(0);
        f.bind(head);
        f.load(0).push(8).if_cmp(Cond::Ge, out);
        f.load(0).load(1).add().store(1);
        f.iinc(0, 1).goto(head);
        f.bind(out);
        f.load(1).print().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        pb.finish(main).unwrap()
    }

    fn key() -> WatermarkKey {
        WatermarkKey::new(0x5EC2E7, vec![3, 1, 4])
    }

    fn embedder(config: &JavaConfig) -> Embedder {
        Embedder::builder(key(), config.clone()).build().unwrap()
    }

    fn recognizer(config: &JavaConfig) -> Recognizer {
        Recognizer::builder(key(), config.clone()).build().unwrap()
    }

    /// The scan `window_survivors` must match: roll a window over every
    /// offset of `[start, end)`, drop constants, tally multiplicities
    /// and first offsets. No pre-reject, no skipping — the oracle the
    /// periodic bulk-accounting is gated against.
    fn reference_survivors(bits: &BitString, start: usize, end: usize) -> Survivors {
        let end = end.min(bits.num_windows());
        let start = start.min(end);
        let mut entries = Vec::new();
        for offset in start..end {
            let window = bits.window_u64(offset).unwrap();
            if window != 0 && window != u64::MAX {
                entries.push((window, 1, offset as u64));
            }
        }
        Survivors::from_entries(entries)
    }

    #[test]
    fn embed_then_recognize_round_trip() {
        for (bits, pieces) in [(64usize, 10usize), (128, 30), (256, 60)] {
            let config = JavaConfig::for_watermark_bits(bits).with_pieces(pieces);
            let watermark = Watermark::random_for(&config, &key());
            let marked = embedder(&config).embed(&host_program(), &watermark).unwrap();
            let rec = recognizer(&config).recognize(&marked.program).unwrap();
            assert_eq!(
                rec.watermark.as_ref(),
                Some(watermark.value()),
                "{bits}-bit watermark with {pieces} pieces"
            );
            assert_eq!(rec.primes_covered, rec.primes_total);
        }
    }

    #[test]
    fn deprecated_free_functions_still_round_trip() {
        // The retired wrappers stay behaviorally intact until removal.
        #![allow(deprecated)]
        let config = JavaConfig::for_watermark_bits(64).with_pieces(12);
        let watermark = Watermark::random_for(&config, &key());
        let marked = crate::java::embed(&host_program(), &watermark, &key(), &config).unwrap();
        let rec = crate::java::recognize(&marked.program, &key(), &config).unwrap();
        assert_eq!(rec.watermark.as_ref(), Some(watermark.value()));
    }

    #[test]
    fn periodic_prereject_matches_reference_scan_on_marked_traces() {
        // CI equivalence gate: the production scan (constant-run and
        // periodic-run pre-rejects engaged) must produce the exact
        // survivor table of the naive roll-every-offset reference, on
        // real marked traces — the near-periodic inputs the pre-reject
        // actually fires on.
        for pieces in [10usize, 30] {
            let config = JavaConfig::for_watermark_bits(128).with_pieces(pieces);
            let watermark = Watermark::random_for(&config, &key());
            let marked = embedder(&config).embed(&host_program(), &watermark).unwrap();
            let session = recognizer(&config);
            let bits = session.trace_bits(&marked.program).unwrap();
            let scanned = session.window_survivors(&bits, 0, usize::MAX);
            let reference = reference_survivors(&bits, 0, usize::MAX);
            assert_eq!(scanned, reference, "{pieces} pieces");
        }
    }

    #[test]
    fn fused_scan_matches_two_phase_on_marked_traces() {
        // CI equivalence gate: the fused streaming scan must reproduce
        // the two-phase pipeline bit for bit — the same trace
        // bit-string, the same survivor table (values, multiplicities,
        // first offsets), and the same recognition — on real marked
        // traces, across every execution tier.
        for (pieces, tier) in [
            (10usize, ExecTier::Reference),
            (10, ExecTier::Predecoded),
            (10, ExecTier::Compiled),
            (30, ExecTier::Compiled),
        ] {
            let config = JavaConfig::for_watermark_bits(128).with_pieces(pieces);
            let watermark = Watermark::random_for(&config, &key());
            let marked = embedder(&config).embed(&host_program(), &watermark).unwrap();

            let fused = Recognizer::builder(key(), config.clone())
                .exec_tier(tier)
                .build()
                .unwrap();
            let two_phase = Recognizer::builder(key(), config.clone())
                .exec_tier(tier)
                .scan_mode(ScanMode::TwoPhase)
                .build()
                .unwrap();

            let scan = fused.trace_survivors(&marked.program).unwrap();
            let bits = two_phase.trace_bits(&marked.program).unwrap();
            assert_eq!(scan.bits, bits, "{pieces} pieces, {tier} tier: trace bits");
            assert_eq!(
                scan.survivors,
                two_phase.window_survivors(&bits, 0, usize::MAX),
                "{pieces} pieces, {tier} tier: survivor table"
            );
            assert_eq!(scan.scanned, bits.num_windows() as u64);
            assert!(scan.skipped <= scan.scanned);

            let a = fused.recognize(&marked.program).unwrap();
            let b = two_phase.recognize(&marked.program).unwrap();
            assert_eq!(a, b, "{pieces} pieces, {tier} tier: recognition");
            assert_eq!(a.watermark.as_ref(), Some(watermark.value()));
        }
    }

    #[test]
    fn periodic_prereject_matches_reference_scan_on_adversarial_bitstrings() {
        // Random strings (pre-reject mostly idle), all-constant runs,
        // and exactly-periodic strings at awkward periods (the
        // pre-reject engages constantly) — plus random shard splits,
        // whose merged tables must equal the full-range table.
        let config = JavaConfig::for_watermark_bits(64).with_pieces(10);
        let session = recognizer(&config);
        let mut rng = Prng::from_seed(0xADE5A1);
        let mut cases: Vec<Vec<bool>> = Vec::new();
        // Pure random.
        cases.push((0..4000).map(|_| rng.chance(0.5)).collect());
        // Long constant runs stitched with noise bursts.
        let mut runs = Vec::new();
        for _ in 0..12 {
            let constant = rng.chance(0.5);
            runs.extend(std::iter::repeat_n(constant, 100 + rng.index(300)));
            runs.extend((0..rng.index(40)).map(|_| rng.chance(0.5)));
        }
        cases.push(runs);
        // Exactly periodic at awkward periods (word-straddling), with a
        // few planted flips.
        for period in [1usize, 7, 63, 64, 65, 127, 911, 1041] {
            let tile: Vec<bool> = (0..period).map(|_| rng.chance(0.5)).collect();
            let mut tiled: Vec<bool> = (0..6000).map(|i| tile[i % period]).collect();
            for _ in 0..3 {
                let i = rng.index(tiled.len());
                tiled[i] = !tiled[i];
            }
            cases.push(tiled);
        }
        for (case, bools) in cases.into_iter().enumerate() {
            let bits = BitString::from_bits(bools);
            let full = session.window_survivors(&bits, 0, usize::MAX);
            let reference = reference_survivors(&bits, 0, usize::MAX);
            assert_eq!(full, reference, "case {case}");
            // Shard-split: disjoint ranges merge to the full table.
            let n = bits.num_windows();
            for shards in [2usize, 3, 5] {
                let chunk = n.div_ceil(shards).max(1);
                let parts: Vec<Survivors> = (0..shards)
                    .map(|s| session.window_survivors(&bits, s * chunk, ((s + 1) * chunk).min(n)))
                    .collect();
                assert_eq!(Survivors::merge(parts), reference, "case {case}, {shards} shards");
            }
        }
    }

    #[test]
    fn recognition_round_trip_all_codegens() {
        for policy in [
            CodegenPolicy::LoopOnly,
            CodegenPolicy::PreferCondition,
            CodegenPolicy::Mixed,
        ] {
            let config = JavaConfig::for_watermark_bits(64)
                .with_pieces(15)
                .with_codegen(policy);
            let watermark = Watermark::random_for(&config, &key());
            let marked = embedder(&config).embed(&host_program(), &watermark).unwrap();
            let rec = recognizer(&config).recognize(&marked.program).unwrap();
            assert_eq!(rec.watermark.as_ref(), Some(watermark.value()), "{policy:?}");
        }
    }

    #[test]
    fn tiny_decode_cache_evicts_but_stays_correct() {
        use pathmark_telemetry::{Counter, Telemetry};
        use std::sync::Arc;

        let config = JavaConfig::for_watermark_bits(64).with_pieces(12);
        // Many distinct window values, far more than the capped cache
        // admits at once.
        let mut rng = Prng::from_seed(4242);
        let survivors = Survivors::from_entries(
            (0..512)
                .map(|i| (rng.next_u64(), 1 + rng.next_u64() % 3, i))
                .collect(),
        );

        let sink = Arc::new(pathmark_telemetry::MemorySink::new());
        let capped = Recognizer::builder(key(), config.clone())
            .telemetry(Telemetry::new(sink.clone()))
            .decode_cache_cap(16)
            .build()
            .unwrap();
        let uncapped = Recognizer::builder(key(), config.clone()).build().unwrap();
        let disabled = Recognizer::builder(key(), config)
            .decode_cache_cap(0)
            .build()
            .unwrap();

        let a = capped.candidates_from_survivors(&survivors).unwrap();
        let b = uncapped.candidates_from_survivors(&survivors).unwrap();
        let c = disabled.candidates_from_survivors(&survivors).unwrap();
        assert_eq!(a, b, "a capped cache never changes the candidate multiset");
        assert_eq!(a, c, "cap 0 (no memoization) is equally correct");

        assert!(
            sink.counter(Counter::DecodeCacheEvict) > 0,
            "overflowing a 16-entry cache with 512 distinct values must evict"
        );
        let cache_len = capped
            .crypto()
            .unwrap()
            .decode_cache
            .lock()
            .unwrap()
            .len();
        assert!(cache_len <= 16, "cache bounded by its cap, got {cache_len}");
        // The session's cache statistics agree with the sink: 512
        // distinct values through an empty cache all miss.
        let stats = capped.decode_cache_stats();
        assert_eq!(stats.misses, 512);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.evictions, sink.counter(Counter::DecodeCacheEvict));
        assert_eq!(stats.entries, cache_len as u64);
        assert_eq!(sink.counter(Counter::DecodeCacheMiss), 512);
        assert_eq!(sink.counter(Counter::DecodeCacheHit), 0);
        // Repeats of a resident value still hit: re-running the tail of
        // the survivor table decrypts no more values than it has rows.
        let tail =
            Survivors::from_entries(survivors.iter().skip(survivors.len() - 8).collect());
        let before = sink.counter(Counter::WindowsDecrypted);
        capped.candidates_from_survivors(&tail).unwrap();
        let after = sink.counter(Counter::WindowsDecrypted);
        assert!(after - before <= 8);
    }

    #[test]
    fn unmarked_program_recognizes_nothing() {
        let config = JavaConfig::for_watermark_bits(64);
        let rec = recognizer(&config).recognize(&host_program()).unwrap();
        assert_eq!(rec.watermark, None);
        assert_eq!(rec.survivors, 0);
    }

    #[test]
    fn wrong_key_recognizes_nothing() {
        let config = JavaConfig::for_watermark_bits(64).with_pieces(12);
        let watermark = Watermark::random_for(&config, &key());
        let marked = embedder(&config).embed(&host_program(), &watermark).unwrap();
        // Different numeric secret: different primes, cipher, and trace
        // input.
        let wrong = WatermarkKey::new(0xBAD_5EED, vec![3, 1, 4]);
        let rec = Recognizer::builder(wrong, config)
            .build()
            .unwrap()
            .recognize(&marked.program)
            .unwrap();
        assert_eq!(rec.watermark, None, "wrong key must not recover the mark");
    }

    #[test]
    fn survives_random_bit_noise_between_pieces() {
        // Corrupt the trace bits with scattered noise bursts; redundancy
        // should still recover the mark. This models the branch-insertion
        // attack's effect directly at the bit level.
        let config = JavaConfig::for_watermark_bits(64).with_pieces(24);
        let watermark = Watermark::random_for(&config, &key());
        let marked = embedder(&config).embed(&host_program(), &watermark).unwrap();
        let trace = super::super::trace_program(
            &marked.program,
            &key(),
            &config,
            TraceConfig::branches_only(),
        )
        .unwrap();
        let mut bits: Vec<bool> = BitString::from_trace(&trace).to_bools();
        // Flip 2% of bits pseudo-randomly.
        let mut rng = Prng::from_seed(77);
        let flips = bits.len() / 50;
        for _ in 0..flips {
            let i = rng.index(bits.len());
            bits[i] = !bits[i];
        }
        let rec = recognizer(&config)
            .recognize_bits(&BitString::from_bits(bits))
            .unwrap();
        assert_eq!(rec.watermark.as_ref(), Some(watermark.value()));
    }

    #[test]
    fn packed_sink_traces_match_vec_collector_on_random_keys() {
        // The CI equivalence gate for the streaming recognize path:
        // trace_program_bits (interpreter → PackedTraceSink, no event
        // vector) must be bit-identical to the legacy collector pipeline
        // (trace_program → BitString::from_trace) on real marked
        // programs over randomized keys and piece counts.
        let mut rng = Prng::from_seed(0x9AC4ED);
        for round in 0..8 {
            let k = WatermarkKey::new(
                rng.next_u64(),
                (0..3).map(|_| rng.range(16) as i64).collect(),
            );
            let config =
                JavaConfig::for_watermark_bits(64).with_pieces(8 + rng.index(16));
            let watermark = Watermark::random_for(&config, &k);
            let marked = Embedder::builder(k.clone(), config.clone())
                .build()
                .unwrap()
                .embed(&host_program(), &watermark)
                .unwrap();
            for program in [&host_program(), &marked.program] {
                let trace = super::super::trace_program(
                    program,
                    &k,
                    &config,
                    TraceConfig::branches_only(),
                )
                .unwrap();
                let reference = BitString::from_trace(&trace);
                let packed =
                    super::super::trace_program_bits(program, &k, &config).unwrap();
                assert_eq!(packed, reference, "round {round}");
            }
        }
    }

    #[test]
    fn empty_bitstring_yields_empty_recognition() {
        let config = JavaConfig::for_watermark_bits(64);
        let rec = recognizer(&config)
            .recognize_bits(&BitString::from_bits(vec![]))
            .unwrap();
        assert_eq!(rec.candidates, 0);
        assert_eq!(rec.watermark, None);
        assert_eq!(rec.modulus, BigUint::one());
    }
}
