//! The recognition phase (Section 3.3, Figure 4).
//!
//! The marked program is re-traced on the secret input; the trace
//! bit-string is split into sliding 64-bit windows `B_0 = b_0…b_63`,
//! `B_1 = b_1…b_64`, …; every window is decrypted and un-enumerated into
//! a candidate statement `W ≡ x (mod p_i·p_j)` (garbage windows fail to
//! decode and are dropped). Candidates then pass through:
//!
//! 1. **voting** — for each prime `p_i`, if one residue's vote count
//!    strictly exceeds twice the runner-up's, statements contradicting
//!    the winner are discarded;
//! 2. the **consistency graphs** `G` (inconsistent pairs) and `H`
//!    (pairs agreeing mod some shared prime): repeatedly take the
//!    highest-H-degree unprocessed vertex as presumed-true and delete its
//!    `G`-neighbors, until `G` is edge-free;
//! 3. **Generalized CRT** recombination of the surviving statements.
//!
//! Recognition succeeds when the survivors pin down `W mod p_i` for
//! every prime.

use std::collections::HashMap;

use pathmark_math::bigint::BigUint;
use pathmark_math::crt::{combine_statements, Statement};
use pathmark_telemetry::{Counter, Stage};
use stackvm::trace::{Trace, TraceConfig};
use stackvm::Program;

use super::{trace_program, JavaConfig, Recognizer};
use crate::bitstring::BitString;
use crate::key::WatermarkKey;
use crate::WatermarkError;

/// Cap on distinct candidate statements fed to the quadratic graph
/// stage; candidates are kept by descending multiplicity.
const MAX_GRAPH_VERTICES: usize = 3000;

/// Cap on one statement's weight in the `W mod p_i` vote. Long runs of
/// identical trace bits (e.g. a hot never-taken attack branch emitting
/// thousands of 0s) repeat one window — and hence one garbage statement
/// — at enormous multiplicity; uncapped, that single decoding could
/// out-vote the true residue.
const MAX_VOTE_WEIGHT: u64 = 8;

/// The outcome of recognition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recognition {
    /// The recovered watermark, if every prime residue was pinned down.
    pub watermark: Option<BigUint>,
    /// The recovered value modulo [`Recognition::modulus`] (meaningful
    /// even on partial recovery).
    pub partial: BigUint,
    /// Product of the primes covered by the surviving statements.
    pub modulus: BigUint,
    /// Number of primes whose residue was recovered.
    pub primes_covered: usize,
    /// Total primes in the configuration.
    pub primes_total: usize,
    /// Distinct candidate statements decoded from the trace.
    pub candidates: usize,
    /// Candidates surviving the vote filter.
    pub after_vote: usize,
    /// Statements surviving the consistency-graph stage.
    pub survivors: usize,
}

/// Runs recognition on a (possibly attacked) program.
///
/// # Errors
///
/// * [`WatermarkError::TraceFailed`] if the program faults on the secret
///   input (e.g. after a destructive attack);
/// * [`WatermarkError::Math`] for prime-configuration errors.
pub fn recognize(
    program: &Program,
    key: &WatermarkKey,
    config: &JavaConfig,
) -> Result<Recognition, WatermarkError> {
    Recognizer::unchecked(key.clone(), config.clone()).recognize(program)
}

/// Recognition from an already-decoded bit-string (used by experiments
/// that model attacks as direct bit perturbations).
///
/// # Errors
///
/// [`WatermarkError::Math`] for prime-configuration errors.
pub fn recognize_bits(
    bits: &BitString,
    key: &WatermarkKey,
    config: &JavaConfig,
) -> Result<Recognition, WatermarkError> {
    Recognizer::unchecked(key.clone(), config.clone()).recognize_bits(bits)
}

/// Step one of recognition, restricted to the sliding windows whose
/// *start offsets* fall in `[start, end)`: decrypt each window and
/// collect the decodable candidate statements with multiplicity.
///
/// Degenerate all-zero/all-one windows are skipped: a constant 64-bit
/// run cannot be watermark ciphertext except with probability `2^-63`,
/// but arises constantly from monotone branches.
///
/// Sharded recognition splits the full offset range into disjoint
/// chunks, scans them in parallel, and merges the returned maps by
/// summing multiplicities; because window `i` depends only on bits
/// `i..i+64`, the merged map is identical to a single scan of
/// `[0, len)`, so feeding it to [`recognize_from_candidates`] is
/// bit-identical to the serial [`recognize_bits`].
///
/// # Errors
///
/// [`WatermarkError::Math`] for prime-configuration errors.
pub fn window_candidates(
    bits: &BitString,
    key: &WatermarkKey,
    config: &JavaConfig,
    start: usize,
    end: usize,
) -> Result<HashMap<Statement, u64>, WatermarkError> {
    Recognizer::unchecked(key.clone(), config.clone()).window_candidates(bits, start, end)
}

impl Recognizer {
    /// Runs the tracing phase on the session's secret input, recording
    /// only what recognition needs ([`TraceConfig::branches_only`]).
    /// Reported to telemetry as [`Stage::Trace`].
    ///
    /// # Errors
    ///
    /// [`WatermarkError::TraceFailed`] if the program faults or exceeds
    /// the budget.
    pub fn trace(&self, program: &Program) -> Result<Trace, WatermarkError> {
        self.telemetry.time(Stage::Trace, || {
            trace_program(program, &self.key, &self.config, TraceConfig::branches_only())
        })
    }

    /// Runs the tracing phase straight to the packed bit-string via the
    /// streaming sink (see [`super::trace_program_bits`]): no
    /// `Vec<TraceEvent>` is materialized and no separate decode pass
    /// runs. Bit-identical to [`Recognizer::trace`] +
    /// [`BitString::from_trace`]. Reported to telemetry as
    /// [`Stage::Trace`].
    ///
    /// # Errors
    ///
    /// [`WatermarkError::TraceFailed`] if the program faults or exceeds
    /// the budget.
    pub fn trace_bits(&self, program: &Program) -> Result<BitString, WatermarkError> {
        self.telemetry.time(Stage::Trace, || {
            super::trace_program_bits(program, &self.key, &self.config)
        })
    }

    /// Runs recognition on a (possibly attacked) program.
    ///
    /// # Errors
    ///
    /// As the [`recognize`] free function.
    pub fn recognize(&self, program: &Program) -> Result<Recognition, WatermarkError> {
        let bits = self.trace_bits(program)?;
        self.recognize_bits(&bits)
    }

    /// Recognition from an already-decoded bit-string.
    ///
    /// # Errors
    ///
    /// As the [`recognize_bits`] free function.
    pub fn recognize_bits(&self, bits: &BitString) -> Result<Recognition, WatermarkError> {
        let counts = self.window_candidates(bits, 0, usize::MAX)?;
        self.recognize_from_candidates(counts)
    }

    /// Phase one of the window scan: collect the *surviving window
    /// values* of offsets `[start, end)` as a sorted `(value,
    /// multiplicity)` run-length list, without touching the cipher.
    ///
    /// The scan *rolls*: the 64-bit window is shifted one bit per
    /// offset out of the packed words instead of being rebuilt, and
    /// degenerate all-zero/all-one stretches are skipped in bulk by
    /// jumping to the next run boundary
    /// ([`BitString::next_set_bit`]/[`BitString::next_clear_bit`]). A
    /// constant window is skipped — not merely cheaply rejected —
    /// because a constant 64-bit run cannot be watermark ciphertext
    /// except with probability `2^-63`, yet arises constantly from
    /// monotone branches.
    ///
    /// The survivors are deduplicated (sort + run-length): trace
    /// bit-strings are periodic wherever the program loops, so the same
    /// 64-bit value recurs at many offsets, and downstream decryption
    /// ([`Recognizer::candidates_from_survivors`]) only needs to see
    /// each distinct value once.
    ///
    /// Telemetry: one [`Stage::Scan`] span, plus
    /// [`Counter::WindowsScanned`] (windows examined, skipped ones
    /// included) and [`Counter::WindowsSkipped`] (windows bypassed by
    /// the constant-run pre-reject).
    pub fn window_survivors(&self, bits: &BitString, start: usize, end: usize) -> Vec<(u64, u64)> {
        let end = end.min(bits.num_windows());
        let start = start.min(end);
        let mut skipped = 0u64;
        let runs = self.telemetry.time(Stage::Scan, || {
            let words = bits.words();
            // Upper bound: every window survives. Avoids doubling-copy
            // churn on big traces (survivor counts are trace-sized).
            let mut survivors: Vec<u64> = Vec::with_capacity(end - start);
            let mut offset = start;
            let mut window = match bits.window_u64(offset) {
                Some(w) => w,
                None => return Vec::new(), // start == end: empty range
            };
            while offset < end {
                if window == 0 || window == u64::MAX {
                    // Constant run: every window up to (just past) the
                    // next flipped bit is equally constant. Jump there.
                    let flip = if window == 0 {
                        bits.next_set_bit(offset + 64)
                    } else {
                        bits.next_clear_bit(offset + 64)
                    };
                    // The first offset whose window contains the flip.
                    let next = flip.map_or(end, |q| (q - 63).min(end)).max(offset + 1);
                    skipped += (next - offset) as u64;
                    offset = next;
                    if offset < end {
                        window = bits.window_u64(offset).expect("offset < num_windows");
                    }
                    continue;
                }
                survivors.push(window);
                // Roll: shift the leaving bit out, the incoming bit in.
                offset += 1;
                if offset < end {
                    let incoming = offset + 63;
                    let bit = (words[incoming / 64] >> (incoming % 64)) & 1;
                    window = (window >> 1) | (bit << 63);
                }
            }
            // Run-length encode the sorted survivors.
            survivors.sort_unstable();
            let mut runs: Vec<(u64, u64)> = Vec::new();
            for value in survivors {
                match runs.last_mut() {
                    Some((v, count)) if *v == value => *count += 1,
                    _ => runs.push((value, 1)),
                }
            }
            runs
        });
        self.telemetry
            .count(Counter::WindowsScanned, (end - start) as u64);
        self.telemetry.count(Counter::WindowsSkipped, skipped);
        runs
    }

    /// Phase two of the window scan: decrypt each distinct surviving
    /// window value once and decode it into a candidate statement,
    /// summing the value's multiplicity into the statement's count —
    /// exactly the multiset a decrypt-per-offset scan produces.
    ///
    /// `survivors` is a `(value, multiplicity)` list as produced by
    /// [`Recognizer::window_survivors`] (or a concatenation of several
    /// shards' lists — values may repeat across entries; repeats sum
    /// into the same statement and hit the decode cache, not XTEA).
    ///
    /// A value's decode is a pure function of the session key, so the
    /// session memoizes it (see `SessionCrypto::decode_cache`): a warm
    /// session recognizing many copies of one host program pays XTEA
    /// once per distinct value per *key*, not per copy — the host's own
    /// loop windows repeat across fingerprinted copies.
    ///
    /// Telemetry: one [`Stage::Scan`] span (the scan's decryption half),
    /// plus [`Counter::WindowsDecrypted`] (window values that actually
    /// reached the cipher — cache hits are excluded, so a warm session
    /// shows the memoization) and [`Counter::CandidatesDecoded`]
    /// (candidate decodings, with multiplicity).
    ///
    /// # Errors
    ///
    /// [`WatermarkError::Math`] for prime-configuration errors.
    pub fn candidates_from_survivors(
        &self,
        survivors: &[(u64, u64)],
    ) -> Result<HashMap<Statement, u64>, WatermarkError> {
        let crypto = self.crypto()?;
        let (enumeration, cipher) = (&crypto.enumeration, &crypto.cipher);
        let cap = crypto.cache_cap;
        let mut decrypted = 0u64;
        let mut evicted = 0u64;
        let counts = self.telemetry.time(Stage::Scan, || {
            let mut counts: HashMap<Statement, u64> = HashMap::new();
            let mut cache = crypto
                .decode_cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let headroom = cap.saturating_sub(cache.len());
            cache.reserve(survivors.len().min(headroom));
            for &(value, multiplicity) in survivors {
                let decoded = match cache.get(&value) {
                    Some(&decoded) => decoded,
                    None => {
                        decrypted += 1;
                        let decoded = enumeration.decode(cipher.decrypt(value)).ok();
                        if cap > 0 {
                            if cache.len() >= cap {
                                // At the cap: evict an arbitrary
                                // resident entry so the newcomer (likely
                                // the hotter value — it just occurred)
                                // is admitted and memory stays bounded.
                                if let Some(&victim) = cache.keys().next() {
                                    cache.remove(&victim);
                                    evicted += 1;
                                }
                            }
                            cache.insert(value, decoded);
                        }
                        decoded
                    }
                };
                if let Some(statement) = decoded {
                    *counts.entry(statement).or_insert(0) += multiplicity;
                }
            }
            counts
        });
        self.telemetry.count(Counter::WindowsDecrypted, decrypted);
        self.telemetry.count(Counter::DecodeCacheEvict, evicted);
        self.telemetry
            .count(Counter::CandidatesDecoded, counts.values().sum());
        Ok(counts)
    }

    /// The sliding-window candidate scan (see the [`window_candidates`]
    /// free function for the sharding contract): both phases —
    /// [`Recognizer::window_survivors`] then
    /// [`Recognizer::candidates_from_survivors`] — over one range.
    ///
    /// # Errors
    ///
    /// [`WatermarkError::Math`] for prime-configuration errors.
    pub fn window_candidates(
        &self,
        bits: &BitString,
        start: usize,
        end: usize,
    ) -> Result<HashMap<Statement, u64>, WatermarkError> {
        let survivors = self.window_survivors(bits, start, end);
        self.candidates_from_survivors(&survivors)
    }
}

/// Steps two onward of recognition, from an already-collected candidate
/// multiset (see [`window_candidates`]): the `W mod p_i` vote
/// prefilter, the G/H consistency graphs, and Generalized CRT
/// recombination. Entirely deterministic in `counts`' *contents* (map
/// iteration order never leaks into the result).
///
/// # Errors
///
/// [`WatermarkError::Math`] for prime-configuration errors.
pub fn recognize_from_candidates(
    counts: HashMap<Statement, u64>,
    key: &WatermarkKey,
    config: &JavaConfig,
) -> Result<Recognition, WatermarkError> {
    Recognizer::unchecked(key.clone(), config.clone()).recognize_from_candidates(counts)
}

impl Recognizer {
    /// Steps two onward of recognition (see the
    /// [`recognize_from_candidates`] free function for the determinism
    /// contract).
    ///
    /// Telemetry: one span each for [`Stage::Vote`], [`Stage::Graph`],
    /// and [`Stage::Crt`].
    ///
    /// # Errors
    ///
    /// [`WatermarkError::Math`] for prime-configuration errors.
    pub fn recognize_from_candidates(
        &self,
        counts: HashMap<Statement, u64>,
    ) -> Result<Recognition, WatermarkError> {
        let config = &self.config;
        let crypto = self.crypto()?;
        let primes = &crypto.primes;
        let candidates = counts.len();

        // --- Vote on W mod p_i for each prime (clear winner = more than
        // twice the second place). One pass over the candidates tallies
        // both of each statement's residues at once, instead of one
        // full candidate pass per prime. Skipped entirely when the
        // configuration disables the prefilter (ablation studies).
        let mut filtered: Vec<(Statement, u64)> = self.telemetry.time(Stage::Vote, || {
            let mut winners: Vec<Option<u64>> = vec![None; primes.len()];
            if config.vote_prefilter {
                let mut tallies: Vec<HashMap<u64, u64>> = vec![HashMap::new(); primes.len()];
                for (s, &c) in &counts {
                    let weight = c.min(MAX_VOTE_WEIGHT);
                    for idx in [s.i, s.j] {
                        *tallies[idx].entry(s.x % primes[idx]).or_insert(0) += weight;
                    }
                }
                for (idx, tally) in tallies.iter().enumerate() {
                    // Winner selection is order-independent: a residue
                    // wins only with strictly more than twice the
                    // runner-up's votes, and ties at the top never win.
                    let mut best: Option<(u64, u64)> = None;
                    let mut second = 0u64;
                    for (&r, &c) in tally {
                        match best {
                            None => best = Some((r, c)),
                            Some((_, bc)) if c > bc => {
                                second = bc;
                                best = Some((r, c));
                            }
                            Some(_) => second = second.max(c),
                        }
                    }
                    if let Some((r, c)) = best {
                        if c > 2 * second {
                            winners[idx] = Some(r);
                        }
                    }
                }
            }
            counts
                .into_iter()
                .filter(|(s, _)| {
                    [s.i, s.j].iter().all(|&idx| match winners[idx] {
                        Some(w) => s
                            .residue_mod_prime(idx, primes)
                            .expect("statement mentions idx")
                            == w,
                        None => true,
                    })
                })
                .collect()
        });
        let after_vote = filtered.len();

        // --- Consistency graphs G (inconsistent) and H (agree mod a
        // shared prime).
        let survivors: Vec<Statement> = self.telemetry.time(Stage::Graph, || {
            // Deterministic order; cap the quadratic stage.
            filtered.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            filtered.truncate(MAX_GRAPH_VERTICES);

            let statements: Vec<Statement> = filtered.iter().map(|&(s, _)| s).collect();
            let n = statements.len();

            // Pair generation is bucketed by prime: only statements
            // sharing a prime can be G- or H-adjacent (disjoint pairs
            // have no shared residue to compare), so instead of testing
            // all n² pairs we test pairs within each prime's bucket. A
            // pair sharing *both* primes appears in two buckets; it is
            // processed only in the bucket of its smaller shared prime.
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); primes.len()];
            for (v, s) in statements.iter().enumerate() {
                buckets[s.i].push(v);
                buckets[s.j].push(v);
            }
            let mut g: Vec<Vec<usize>> = vec![Vec::new(); n];
            let mut h_degree: Vec<usize> = vec![0; n];
            for (k, bucket) in buckets.iter().enumerate() {
                for (pos, &a) in bucket.iter().enumerate() {
                    let (sa, sb_range) = (statements[a], &bucket[pos + 1..]);
                    for &b in sb_range {
                        let sb = statements[b];
                        let min_shared = [sa.i, sa.j]
                            .iter()
                            .filter(|&&p| p == sb.i || p == sb.j)
                            .min()
                            .copied()
                            .expect("bucket mates share prime k");
                        if min_shared != k {
                            continue; // handled in the other bucket
                        }
                        if sa.inconsistent_with(&sb, primes) {
                            g[a].push(b);
                            g[b].push(a);
                        } else if sa.agrees_with(&sb, primes) {
                            h_degree[a] += 1;
                            h_degree[b] += 1;
                        }
                    }
                }
            }
            // The pre-bucketing implementation emitted adjacency lists
            // in ascending vertex order; restore that so the degenerate
            // edge-pick below stays bit-identical.
            let mut live_edges = 0usize;
            for adj in &mut g {
                adj.sort_unstable();
                live_edges += adj.len();
            }
            live_edges /= 2;

            // Peeling loop, with the edge count maintained
            // incrementally: killing a vertex subtracts its live degree
            // instead of rescanning the whole graph per iteration.
            let mut alive = vec![true; n];
            let mut in_u = vec![false; n];
            let kill = |w: usize, alive: &mut [bool], live_edges: &mut usize| {
                if alive[w] {
                    alive[w] = false;
                    *live_edges -= g[w].iter().filter(|&&u| alive[u]).count();
                }
            };
            while live_edges > 0 {
                // Highest H-degree vertex not yet processed.
                let pick = (0..n)
                    .filter(|&v| alive[v] && !in_u[v])
                    .max_by_key(|&v| (h_degree[v], std::cmp::Reverse(v)));
                match pick {
                    Some(v) => {
                        in_u[v] = true;
                        for &w in &g[v] {
                            kill(w, &mut alive, &mut live_edges);
                        }
                    }
                    None => {
                        // Degenerate: every remaining vertex processed
                        // but edges remain (possible under heavy noise).
                        // Drop the lowest-H-degree endpoint of some
                        // remaining edge.
                        let (a, b) = alive
                            .iter()
                            .enumerate()
                            .filter(|&(_, &al)| al)
                            .flat_map(|(v, _)| {
                                g[v].iter()
                                    .filter(|&&w| alive[w])
                                    .map(move |&w| (v, w))
                            })
                            .next()
                            .expect("live_edges > 0 implies an edge exists");
                        let drop = if h_degree[a] <= h_degree[b] { a } else { b };
                        kill(drop, &mut alive, &mut live_edges);
                    }
                }
            }
            (0..n)
                .filter(|&v| alive[v])
                .map(|v| statements[v])
                .collect()
        });

        // --- Generalized CRT recombination.
        let (partial, modulus) = self.telemetry.time(Stage::Crt, || {
            if survivors.is_empty() || primes.len() < 2 {
                Ok((BigUint::zero(), BigUint::one()))
            } else {
                combine_statements(&survivors, primes)
            }
        })?;
        let covered: Vec<bool> = (0..primes.len())
            .map(|idx| survivors.iter().any(|s| s.i == idx || s.j == idx))
            .collect();
        let primes_covered = covered.iter().filter(|&&c| c).count();
        let watermark = (primes_covered == primes.len()).then(|| partial.clone());

        Ok(Recognition {
            watermark,
            partial,
            modulus,
            primes_covered,
            primes_total: primes.len(),
            candidates,
            after_vote,
            survivors: survivors.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::java::{embed, CodegenPolicy};
    use crate::key::Watermark;
    use pathmark_crypto::Prng;
    use stackvm::builder::{FunctionBuilder, ProgramBuilder};
    use stackvm::insn::Cond;

    fn host_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 2);
        let head = f.new_label();
        let out = f.new_label();
        f.push(0).store(0);
        f.bind(head);
        f.load(0).push(8).if_cmp(Cond::Ge, out);
        f.load(0).load(1).add().store(1);
        f.iinc(0, 1).goto(head);
        f.bind(out);
        f.load(1).print().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        pb.finish(main).unwrap()
    }

    fn key() -> WatermarkKey {
        WatermarkKey::new(0x5EC2E7, vec![3, 1, 4])
    }

    #[test]
    fn embed_then_recognize_round_trip() {
        for (bits, pieces) in [(64usize, 10usize), (128, 30), (256, 60)] {
            let config = JavaConfig::for_watermark_bits(bits).with_pieces(pieces);
            let watermark = Watermark::random_for(&config, &key());
            let marked = embed(&host_program(), &watermark, &key(), &config).unwrap();
            let rec = recognize(&marked.program, &key(), &config).unwrap();
            assert_eq!(
                rec.watermark.as_ref(),
                Some(watermark.value()),
                "{bits}-bit watermark with {pieces} pieces"
            );
            assert_eq!(rec.primes_covered, rec.primes_total);
        }
    }

    #[test]
    fn recognition_round_trip_all_codegens() {
        for policy in [
            CodegenPolicy::LoopOnly,
            CodegenPolicy::PreferCondition,
            CodegenPolicy::Mixed,
        ] {
            let config = JavaConfig::for_watermark_bits(64)
                .with_pieces(15)
                .with_codegen(policy);
            let watermark = Watermark::random_for(&config, &key());
            let marked = embed(&host_program(), &watermark, &key(), &config).unwrap();
            let rec = recognize(&marked.program, &key(), &config).unwrap();
            assert_eq!(rec.watermark.as_ref(), Some(watermark.value()), "{policy:?}");
        }
    }

    #[test]
    fn tiny_decode_cache_evicts_but_stays_correct() {
        use pathmark_telemetry::{Counter, Telemetry};
        use std::sync::Arc;

        let config = JavaConfig::for_watermark_bits(64).with_pieces(12);
        // Many distinct window values, far more than the capped cache
        // admits at once.
        let mut rng = Prng::from_seed(4242);
        let survivors: Vec<(u64, u64)> = (0..512)
            .map(|_| (rng.next_u64(), 1 + rng.next_u64() % 3))
            .collect();

        let sink = Arc::new(pathmark_telemetry::MemorySink::new());
        let capped = Recognizer::builder(key(), config.clone())
            .telemetry(Telemetry::new(sink.clone()))
            .decode_cache_cap(16)
            .build()
            .unwrap();
        let uncapped = Recognizer::builder(key(), config.clone()).build().unwrap();
        let disabled = Recognizer::builder(key(), config)
            .decode_cache_cap(0)
            .build()
            .unwrap();

        let a = capped.candidates_from_survivors(&survivors).unwrap();
        let b = uncapped.candidates_from_survivors(&survivors).unwrap();
        let c = disabled.candidates_from_survivors(&survivors).unwrap();
        assert_eq!(a, b, "a capped cache never changes the candidate multiset");
        assert_eq!(a, c, "cap 0 (no memoization) is equally correct");

        assert!(
            sink.counter(Counter::DecodeCacheEvict) > 0,
            "overflowing a 16-entry cache with 512 distinct values must evict"
        );
        let cache_len = capped
            .crypto()
            .unwrap()
            .decode_cache
            .lock()
            .unwrap()
            .len();
        assert!(cache_len <= 16, "cache bounded by its cap, got {cache_len}");
        // Repeats of a resident value still hit: re-running the tail of
        // the survivor list decrypts fewer values than it has entries.
        let before = sink.counter(Counter::WindowsDecrypted);
        capped
            .candidates_from_survivors(&survivors[survivors.len() - 8..])
            .unwrap();
        let after = sink.counter(Counter::WindowsDecrypted);
        assert!(after - before <= 8);
    }

    #[test]
    fn unmarked_program_recognizes_nothing() {
        let config = JavaConfig::for_watermark_bits(64);
        let rec = recognize(&host_program(), &key(), &config).unwrap();
        assert_eq!(rec.watermark, None);
        assert_eq!(rec.survivors, 0);
    }

    #[test]
    fn wrong_key_recognizes_nothing() {
        let config = JavaConfig::for_watermark_bits(64).with_pieces(12);
        let watermark = Watermark::random_for(&config, &key());
        let marked = embed(&host_program(), &watermark, &key(), &config).unwrap();
        // Different numeric secret: different primes, cipher, and trace
        // input.
        let wrong = WatermarkKey::new(0xBAD_5EED, vec![3, 1, 4]);
        let rec = recognize(&marked.program, &wrong, &config).unwrap();
        assert_eq!(rec.watermark, None, "wrong key must not recover the mark");
    }

    #[test]
    fn survives_random_bit_noise_between_pieces() {
        // Corrupt the trace bits with scattered noise bursts; redundancy
        // should still recover the mark. This models the branch-insertion
        // attack's effect directly at the bit level.
        let config = JavaConfig::for_watermark_bits(64).with_pieces(24);
        let watermark = Watermark::random_for(&config, &key());
        let marked = embed(&host_program(), &watermark, &key(), &config).unwrap();
        let trace = super::super::trace_program(
            &marked.program,
            &key(),
            &config,
            TraceConfig::branches_only(),
        )
        .unwrap();
        let mut bits: Vec<bool> = BitString::from_trace(&trace).to_bools();
        // Flip 2% of bits pseudo-randomly.
        let mut rng = Prng::from_seed(77);
        let flips = bits.len() / 50;
        for _ in 0..flips {
            let i = rng.index(bits.len());
            bits[i] = !bits[i];
        }
        let rec = recognize_bits(&BitString::from_bits(bits), &key(), &config).unwrap();
        assert_eq!(rec.watermark.as_ref(), Some(watermark.value()));
    }

    #[test]
    fn packed_sink_traces_match_vec_collector_on_random_keys() {
        // The CI equivalence gate for the streaming recognize path:
        // trace_program_bits (interpreter → PackedTraceSink, no event
        // vector) must be bit-identical to the legacy collector pipeline
        // (trace_program → BitString::from_trace) on real marked
        // programs over randomized keys and piece counts.
        let mut rng = Prng::from_seed(0x9AC4ED);
        for round in 0..8 {
            let k = WatermarkKey::new(
                rng.next_u64(),
                (0..3).map(|_| rng.range(16) as i64).collect(),
            );
            let config =
                JavaConfig::for_watermark_bits(64).with_pieces(8 + rng.index(16));
            let watermark = Watermark::random_for(&config, &k);
            let marked = embed(&host_program(), &watermark, &k, &config).unwrap();
            for program in [&host_program(), &marked.program] {
                let trace = super::super::trace_program(
                    program,
                    &k,
                    &config,
                    TraceConfig::branches_only(),
                )
                .unwrap();
                let reference = BitString::from_trace(&trace);
                let packed =
                    super::super::trace_program_bits(program, &k, &config).unwrap();
                assert_eq!(packed, reference, "round {round}");
            }
        }
    }

    #[test]
    fn empty_bitstring_yields_empty_recognition() {
        let config = JavaConfig::for_watermark_bits(64);
        let rec = recognize_bits(&BitString::from_bits(vec![]), &key(), &config).unwrap();
        assert_eq!(rec.candidates, 0);
        assert_eq!(rec.watermark, None);
        assert_eq!(rec.modulus, BigUint::one());
    }
}
