//! The recognition phase (Section 3.3, Figure 4).
//!
//! The marked program is re-traced on the secret input; the trace
//! bit-string is split into sliding 64-bit windows `B_0 = b_0…b_63`,
//! `B_1 = b_1…b_64`, …; every window is decrypted and un-enumerated into
//! a candidate statement `W ≡ x (mod p_i·p_j)` (garbage windows fail to
//! decode and are dropped). Candidates then pass through:
//!
//! 1. **voting** — for each prime `p_i`, if one residue's vote count
//!    strictly exceeds twice the runner-up's, statements contradicting
//!    the winner are discarded;
//! 2. the **consistency graphs** `G` (inconsistent pairs) and `H`
//!    (pairs agreeing mod some shared prime): repeatedly take the
//!    highest-H-degree unprocessed vertex as presumed-true and delete its
//!    `G`-neighbors, until `G` is edge-free;
//! 3. **Generalized CRT** recombination of the surviving statements.
//!
//! Recognition succeeds when the survivors pin down `W mod p_i` for
//! every prime.

use std::collections::HashMap;

use pathmark_math::bigint::BigUint;
use pathmark_math::crt::{combine_statements, Statement};
use pathmark_math::enumeration::PairEnumeration;
use pathmark_telemetry::{Counter, Stage};
use stackvm::trace::{Trace, TraceConfig};
use stackvm::Program;

use super::{trace_program, JavaConfig, Recognizer};
use crate::bitstring::BitString;
use crate::key::WatermarkKey;
use crate::WatermarkError;

/// Cap on distinct candidate statements fed to the quadratic graph
/// stage; candidates are kept by descending multiplicity.
const MAX_GRAPH_VERTICES: usize = 3000;

/// Cap on one statement's weight in the `W mod p_i` vote. Long runs of
/// identical trace bits (e.g. a hot never-taken attack branch emitting
/// thousands of 0s) repeat one window — and hence one garbage statement
/// — at enormous multiplicity; uncapped, that single decoding could
/// out-vote the true residue.
const MAX_VOTE_WEIGHT: u64 = 8;

/// The outcome of recognition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recognition {
    /// The recovered watermark, if every prime residue was pinned down.
    pub watermark: Option<BigUint>,
    /// The recovered value modulo [`Recognition::modulus`] (meaningful
    /// even on partial recovery).
    pub partial: BigUint,
    /// Product of the primes covered by the surviving statements.
    pub modulus: BigUint,
    /// Number of primes whose residue was recovered.
    pub primes_covered: usize,
    /// Total primes in the configuration.
    pub primes_total: usize,
    /// Distinct candidate statements decoded from the trace.
    pub candidates: usize,
    /// Candidates surviving the vote filter.
    pub after_vote: usize,
    /// Statements surviving the consistency-graph stage.
    pub survivors: usize,
}

/// Runs recognition on a (possibly attacked) program.
///
/// # Errors
///
/// * [`WatermarkError::TraceFailed`] if the program faults on the secret
///   input (e.g. after a destructive attack);
/// * [`WatermarkError::Math`] for prime-configuration errors.
pub fn recognize(
    program: &Program,
    key: &WatermarkKey,
    config: &JavaConfig,
) -> Result<Recognition, WatermarkError> {
    Recognizer::unchecked(key.clone(), config.clone()).recognize(program)
}

/// Recognition from an already-decoded bit-string (used by experiments
/// that model attacks as direct bit perturbations).
///
/// # Errors
///
/// [`WatermarkError::Math`] for prime-configuration errors.
pub fn recognize_bits(
    bits: &BitString,
    key: &WatermarkKey,
    config: &JavaConfig,
) -> Result<Recognition, WatermarkError> {
    Recognizer::unchecked(key.clone(), config.clone()).recognize_bits(bits)
}

/// Step one of recognition, restricted to the sliding windows whose
/// *start offsets* fall in `[start, end)`: decrypt each window and
/// collect the decodable candidate statements with multiplicity.
///
/// Degenerate all-zero/all-one windows are skipped: a constant 64-bit
/// run cannot be watermark ciphertext except with probability `2^-63`,
/// but arises constantly from monotone branches.
///
/// Sharded recognition splits the full offset range into disjoint
/// chunks, scans them in parallel, and merges the returned maps by
/// summing multiplicities; because window `i` depends only on bits
/// `i..i+64`, the merged map is identical to a single scan of
/// `[0, len)`, so feeding it to [`recognize_from_candidates`] is
/// bit-identical to the serial [`recognize_bits`].
///
/// # Errors
///
/// [`WatermarkError::Math`] for prime-configuration errors.
pub fn window_candidates(
    bits: &BitString,
    key: &WatermarkKey,
    config: &JavaConfig,
    start: usize,
    end: usize,
) -> Result<HashMap<Statement, u64>, WatermarkError> {
    Recognizer::unchecked(key.clone(), config.clone()).window_candidates(bits, start, end)
}

impl Recognizer {
    /// Runs the tracing phase on the session's secret input, recording
    /// only what recognition needs ([`TraceConfig::branches_only`]).
    /// Reported to telemetry as [`Stage::Trace`].
    ///
    /// # Errors
    ///
    /// [`WatermarkError::TraceFailed`] if the program faults or exceeds
    /// the budget.
    pub fn trace(&self, program: &Program) -> Result<Trace, WatermarkError> {
        self.telemetry.time(Stage::Trace, || {
            trace_program(program, &self.key, &self.config, TraceConfig::branches_only())
        })
    }

    /// Runs recognition on a (possibly attacked) program.
    ///
    /// # Errors
    ///
    /// As the [`recognize`] free function.
    pub fn recognize(&self, program: &Program) -> Result<Recognition, WatermarkError> {
        let trace = self.trace(program)?;
        let bits = BitString::from_trace(&trace);
        self.recognize_bits(&bits)
    }

    /// Recognition from an already-decoded bit-string.
    ///
    /// # Errors
    ///
    /// As the [`recognize_bits`] free function.
    pub fn recognize_bits(&self, bits: &BitString) -> Result<Recognition, WatermarkError> {
        let counts = self.window_candidates(bits, 0, usize::MAX)?;
        self.recognize_from_candidates(counts)
    }

    /// The sliding-window candidate scan (see the [`window_candidates`]
    /// free function for the sharding contract).
    ///
    /// Telemetry: one [`Stage::Scan`] span for the whole range, plus
    /// [`Counter::WindowsScanned`] (windows examined) and
    /// [`Counter::CandidatesDecoded`] (windows that decrypted and
    /// decoded into a plausible statement).
    ///
    /// # Errors
    ///
    /// [`WatermarkError::Math`] for prime-configuration errors.
    pub fn window_candidates(
        &self,
        bits: &BitString,
        start: usize,
        end: usize,
    ) -> Result<HashMap<Statement, u64>, WatermarkError> {
        let primes = self.config.primes(&self.key);
        let enumeration = PairEnumeration::new(&primes)?;
        let cipher = self.key.cipher();

        let num_windows = bits.len().saturating_sub(63);
        let end = end.min(num_windows);
        let start = start.min(end);
        let counts = self.telemetry.time(Stage::Scan, || {
            let mut counts: HashMap<Statement, u64> = HashMap::new();
            for offset in start..end {
                let window = bits.window_u64(offset).expect("offset < num_windows");
                if window == 0 || window == u64::MAX {
                    continue;
                }
                let decrypted = cipher.decrypt(window);
                if let Ok(statement) = enumeration.decode(decrypted) {
                    *counts.entry(statement).or_insert(0) += 1;
                }
            }
            counts
        });
        self.telemetry
            .count(Counter::WindowsScanned, (end - start) as u64);
        self.telemetry
            .count(Counter::CandidatesDecoded, counts.values().sum());
        Ok(counts)
    }
}

/// Steps two onward of recognition, from an already-collected candidate
/// multiset (see [`window_candidates`]): the `W mod p_i` vote
/// prefilter, the G/H consistency graphs, and Generalized CRT
/// recombination. Entirely deterministic in `counts`' *contents* (map
/// iteration order never leaks into the result).
///
/// # Errors
///
/// [`WatermarkError::Math`] for prime-configuration errors.
pub fn recognize_from_candidates(
    counts: HashMap<Statement, u64>,
    key: &WatermarkKey,
    config: &JavaConfig,
) -> Result<Recognition, WatermarkError> {
    Recognizer::unchecked(key.clone(), config.clone()).recognize_from_candidates(counts)
}

impl Recognizer {
    /// Steps two onward of recognition (see the
    /// [`recognize_from_candidates`] free function for the determinism
    /// contract).
    ///
    /// Telemetry: one span each for [`Stage::Vote`], [`Stage::Graph`],
    /// and [`Stage::Crt`].
    ///
    /// # Errors
    ///
    /// [`WatermarkError::Math`] for prime-configuration errors.
    pub fn recognize_from_candidates(
        &self,
        counts: HashMap<Statement, u64>,
    ) -> Result<Recognition, WatermarkError> {
        let (key, config) = (&self.key, &self.config);
        let primes = config.primes(key);
        let candidates = counts.len();

        // --- Vote on W mod p_i for each prime (clear winner = more than
        // twice the second place). Skipped entirely when the
        // configuration disables the prefilter (ablation studies).
        let mut filtered: Vec<(Statement, u64)> = self.telemetry.time(Stage::Vote, || {
            let mut winners: Vec<Option<u64>> = vec![None; primes.len()];
            for (idx, &p) in primes.iter().enumerate().filter(|_| config.vote_prefilter) {
                let mut tally: HashMap<u64, u64> = HashMap::new();
                for (s, &c) in &counts {
                    if let Some(r) = s.residue_mod_prime(idx, &primes) {
                        *tally.entry(r).or_insert(0) += c.min(MAX_VOTE_WEIGHT);
                    }
                }
                let mut best: Option<(u64, u64)> = None;
                let mut second = 0u64;
                for (&r, &c) in &tally {
                    match best {
                        None => best = Some((r, c)),
                        Some((_, bc)) if c > bc => {
                            second = bc;
                            best = Some((r, c));
                        }
                        Some(_) => second = second.max(c),
                    }
                }
                if let Some((r, c)) = best {
                    if c > 2 * second {
                        winners[idx] = Some(r);
                    }
                }
                let _ = p;
            }
            counts
                .into_iter()
                .filter(|(s, _)| {
                    [s.i, s.j].iter().all(|&idx| match winners[idx] {
                        Some(w) => s
                            .residue_mod_prime(idx, &primes)
                            .expect("statement mentions idx")
                            == w,
                        None => true,
                    })
                })
                .collect()
        });
        let after_vote = filtered.len();

        // --- Consistency graphs G (inconsistent) and H (agree mod a
        // shared prime).
        let survivors: Vec<Statement> = self.telemetry.time(Stage::Graph, || {
            // Deterministic order; cap the quadratic stage.
            filtered.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            filtered.truncate(MAX_GRAPH_VERTICES);

            let statements: Vec<Statement> = filtered.iter().map(|&(s, _)| s).collect();
            let n = statements.len();
            let mut g: Vec<Vec<usize>> = vec![Vec::new(); n];
            let mut h_degree: Vec<usize> = vec![0; n];
            for a in 0..n {
                for b in (a + 1)..n {
                    if statements[a].inconsistent_with(&statements[b], &primes) {
                        g[a].push(b);
                        g[b].push(a);
                    } else if statements[a].agrees_with(&statements[b], &primes) {
                        h_degree[a] += 1;
                        h_degree[b] += 1;
                    }
                }
            }
            let mut alive = vec![true; n];
            let mut in_u = vec![false; n];
            let g_has_edges = |alive: &[bool], g: &[Vec<usize>]| {
                alive
                    .iter()
                    .enumerate()
                    .any(|(v, &a)| a && g[v].iter().any(|&w| alive[w]))
            };
            while g_has_edges(&alive, &g) {
                // Highest H-degree vertex not yet processed.
                let pick = (0..n)
                    .filter(|&v| alive[v] && !in_u[v])
                    .max_by_key(|&v| (h_degree[v], std::cmp::Reverse(v)));
                match pick {
                    Some(v) => {
                        in_u[v] = true;
                        for &w in &g[v] {
                            alive[w] = false;
                        }
                    }
                    None => {
                        // Degenerate: every remaining vertex processed
                        // but edges remain (possible under heavy noise).
                        // Drop the lowest-H-degree endpoint of some
                        // remaining edge.
                        let (a, b) = alive
                            .iter()
                            .enumerate()
                            .filter(|&(_, &al)| al)
                            .flat_map(|(v, _)| {
                                g[v].iter()
                                    .filter(|&&w| alive[w])
                                    .map(move |&w| (v, w))
                            })
                            .next()
                            .expect("g_has_edges implies an edge exists");
                        let drop = if h_degree[a] <= h_degree[b] { a } else { b };
                        alive[drop] = false;
                    }
                }
            }
            (0..n)
                .filter(|&v| alive[v])
                .map(|v| statements[v])
                .collect()
        });

        // --- Generalized CRT recombination.
        let (partial, modulus) = self.telemetry.time(Stage::Crt, || {
            if survivors.is_empty() || primes.len() < 2 {
                Ok((BigUint::zero(), BigUint::one()))
            } else {
                combine_statements(&survivors, &primes)
            }
        })?;
        let covered: Vec<bool> = (0..primes.len())
            .map(|idx| survivors.iter().any(|s| s.i == idx || s.j == idx))
            .collect();
        let primes_covered = covered.iter().filter(|&&c| c).count();
        let watermark = (primes_covered == primes.len()).then(|| partial.clone());

        Ok(Recognition {
            watermark,
            partial,
            modulus,
            primes_covered,
            primes_total: primes.len(),
            candidates,
            after_vote,
            survivors: survivors.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::java::{embed, CodegenPolicy};
    use crate::key::Watermark;
    use pathmark_crypto::Prng;
    use stackvm::builder::{FunctionBuilder, ProgramBuilder};
    use stackvm::insn::Cond;

    fn host_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 2);
        let head = f.new_label();
        let out = f.new_label();
        f.push(0).store(0);
        f.bind(head);
        f.load(0).push(8).if_cmp(Cond::Ge, out);
        f.load(0).load(1).add().store(1);
        f.iinc(0, 1).goto(head);
        f.bind(out);
        f.load(1).print().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        pb.finish(main).unwrap()
    }

    fn key() -> WatermarkKey {
        WatermarkKey::new(0x5EC2E7, vec![3, 1, 4])
    }

    #[test]
    fn embed_then_recognize_round_trip() {
        for (bits, pieces) in [(64usize, 10usize), (128, 30), (256, 60)] {
            let config = JavaConfig::for_watermark_bits(bits).with_pieces(pieces);
            let watermark = Watermark::random_for(&config, &key());
            let marked = embed(&host_program(), &watermark, &key(), &config).unwrap();
            let rec = recognize(&marked.program, &key(), &config).unwrap();
            assert_eq!(
                rec.watermark.as_ref(),
                Some(watermark.value()),
                "{bits}-bit watermark with {pieces} pieces"
            );
            assert_eq!(rec.primes_covered, rec.primes_total);
        }
    }

    #[test]
    fn recognition_round_trip_all_codegens() {
        for policy in [
            CodegenPolicy::LoopOnly,
            CodegenPolicy::PreferCondition,
            CodegenPolicy::Mixed,
        ] {
            let config = JavaConfig::for_watermark_bits(64)
                .with_pieces(15)
                .with_codegen(policy);
            let watermark = Watermark::random_for(&config, &key());
            let marked = embed(&host_program(), &watermark, &key(), &config).unwrap();
            let rec = recognize(&marked.program, &key(), &config).unwrap();
            assert_eq!(rec.watermark.as_ref(), Some(watermark.value()), "{policy:?}");
        }
    }

    #[test]
    fn unmarked_program_recognizes_nothing() {
        let config = JavaConfig::for_watermark_bits(64);
        let rec = recognize(&host_program(), &key(), &config).unwrap();
        assert_eq!(rec.watermark, None);
        assert_eq!(rec.survivors, 0);
    }

    #[test]
    fn wrong_key_recognizes_nothing() {
        let config = JavaConfig::for_watermark_bits(64).with_pieces(12);
        let watermark = Watermark::random_for(&config, &key());
        let marked = embed(&host_program(), &watermark, &key(), &config).unwrap();
        // Different numeric secret: different primes, cipher, and trace
        // input.
        let wrong = WatermarkKey::new(0xBAD_5EED, vec![3, 1, 4]);
        let rec = recognize(&marked.program, &wrong, &config).unwrap();
        assert_eq!(rec.watermark, None, "wrong key must not recover the mark");
    }

    #[test]
    fn survives_random_bit_noise_between_pieces() {
        // Corrupt the trace bits with scattered noise bursts; redundancy
        // should still recover the mark. This models the branch-insertion
        // attack's effect directly at the bit level.
        let config = JavaConfig::for_watermark_bits(64).with_pieces(24);
        let watermark = Watermark::random_for(&config, &key());
        let marked = embed(&host_program(), &watermark, &key(), &config).unwrap();
        let trace = super::super::trace_program(
            &marked.program,
            &key(),
            &config,
            TraceConfig::branches_only(),
        )
        .unwrap();
        let mut bits: Vec<bool> = BitString::from_trace(&trace).bits().to_vec();
        // Flip 2% of bits pseudo-randomly.
        let mut rng = Prng::from_seed(77);
        let flips = bits.len() / 50;
        for _ in 0..flips {
            let i = rng.index(bits.len());
            bits[i] = !bits[i];
        }
        let rec = recognize_bits(&BitString::from_bits(bits), &key(), &config).unwrap();
        assert_eq!(rec.watermark.as_ref(), Some(watermark.value()));
    }

    #[test]
    fn empty_bitstring_yields_empty_recognition() {
        let config = JavaConfig::for_watermark_bits(64);
        let rec = recognize_bits(&BitString::from_bits(vec![]), &key(), &config).unwrap();
        assert_eq!(rec.candidates, 0);
        assert_eq!(rec.watermark, None);
        assert_eq!(rec.modulus, BigUint::one());
    }
}
