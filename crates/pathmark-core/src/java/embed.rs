//! The embedding phase (Section 3.2).
//!
//! The watermark `W` is split into statements `W ≡ x (mod p_i·p_j)`
//! (step A of Figure 3), each statement is enumerated into a 64-bit
//! integer and encrypted with the key's block cipher (step B), and for
//! each resulting piece a code snippet is inserted (step C) whose
//! dynamic conditional-branch behavior on the secret input spells the
//! piece's 64 bits *contiguously* into the trace bit-string.
//!
//! Two code generators are provided:
//!
//! * **loop codegen** (Section 3.2.1): a fresh loop whose single inner
//!   conditional succeeds/fails in the pattern of the piece bits. Loop
//!   control uses `switch` — which is not a conditional branch and so
//!   contributes no bits — keeping the piece contiguous in the window.
//! * **condition codegen** (Section 3.2.2): a straight-line run of 64
//!   predicates over *existing program variables*, chosen from the trace
//!   snapshots so that the first execution primes the decoder and the
//!   second spells the piece.
//!
//! Pieces are placed at trace-visited block entries chosen randomly with
//! probability inversely proportional to the block's execution frequency
//! ("code is less likely to be inserted in program hotspots").

use pathmark_crypto::Prng;
use pathmark_math::crt::Statement;
use pathmark_telemetry::{Counter, Stage};
use stackvm::edit::{insert_snippet, reserve_locals};
use stackvm::insn::{BinOp, Cond, Insn};
use stackvm::trace::{Site, Trace, TraceConfig};
use stackvm::Program;

use super::{CodegenPolicy, Embedder, JavaConfig};
use crate::key::{Watermark, WatermarkKey};
use crate::WatermarkError;

/// How one piece was inserted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PieceRecord {
    /// The statement this piece encodes.
    pub statement: Statement,
    /// The block (in the *original* program) it was inserted at.
    pub site: Site,
    /// Which generator produced the code.
    pub used_condition_codegen: bool,
}

/// Everything the embedder did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbedReport {
    /// One record per inserted piece.
    pub pieces: Vec<PieceRecord>,
    /// Emulated byte size before embedding.
    pub bytes_before: usize,
    /// Emulated byte size after embedding.
    pub bytes_after: usize,
}

/// A watermarked program plus its embedding report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkedProgram {
    /// The watermarked program.
    pub program: Program,
    /// What was embedded where.
    pub report: EmbedReport,
}

/// Embeds `watermark` into `program` under `key`.
///
/// # Errors
///
/// * [`WatermarkError::TraceFailed`] if the program cannot be traced on
///   the secret input;
/// * [`WatermarkError::WatermarkTooLarge`] if `W ≥ Π p_k`;
/// * [`WatermarkError::NoInsertionPoint`] if the trace visited no
///   blocks;
/// * [`WatermarkError::Math`] for prime-configuration errors.
#[deprecated(
    note = "build an embedding session instead: `Embedder::builder(key, config).build()?.embed(program, watermark)`"
)]
pub fn embed(
    program: &Program,
    watermark: &Watermark,
    key: &WatermarkKey,
    config: &JavaConfig,
) -> Result<MarkedProgram, WatermarkError> {
    Embedder::unchecked(key.clone(), config.clone()).embed(program, watermark)
}

/// Embeds `watermark` into `program` using a precomputed full trace of
/// the *unmarked* program on the key's secret input.
///
/// This is the batch-fingerprinting entry point: tracing is the only
/// embedding step that executes the program, so a fleet embedding N
/// distinct watermarks into the same program can run
/// [`trace_program`](super::trace_program) once (with
/// [`TraceConfig::full`]) and share the
/// immutable trace across all N jobs. `embed` is exactly
/// `embed_with_trace(program, …, &trace_program(program, …)?)`, so the
/// two paths produce byte-identical marked programs.
///
/// # Errors
///
/// Same as [`embed`], minus the tracing failure (the caller already
/// traced).
#[deprecated(
    note = "build an embedding session instead: `Embedder::builder(key, config).build()?.embed_with_trace(program, watermark, trace)`"
)]
pub fn embed_with_trace(
    program: &Program,
    watermark: &Watermark,
    key: &WatermarkKey,
    config: &JavaConfig,
    trace: &Trace,
) -> Result<MarkedProgram, WatermarkError> {
    Embedder::unchecked(key.clone(), config.clone()).embed_with_trace(program, watermark, trace)
}

impl Embedder {
    /// Runs the tracing phase on the session's secret input, recording
    /// everything embedding needs ([`TraceConfig::full`]). Reported to
    /// telemetry as [`Stage::Trace`].
    ///
    /// # Errors
    ///
    /// [`WatermarkError::TraceFailed`] if the program faults or exceeds
    /// the budget.
    pub fn trace(&self, program: &Program) -> Result<Trace, WatermarkError> {
        // Full recording needs the leader bitmap, so a compiled-tier
        // session runs the predecoded engine here by design (no
        // fallback counter — nothing was declined).
        self.telemetry.time(Stage::Trace, || {
            super::trace_program_tiered(
                program,
                &self.key,
                &self.config,
                TraceConfig::full(),
                self.exec_tier,
            )
        })
    }

    /// Embeds `watermark` into `program`: trace, then
    /// [`Embedder::embed_with_trace`].
    ///
    /// # Errors
    ///
    /// As the [`embed`] free function.
    pub fn embed(
        &self,
        program: &Program,
        watermark: &Watermark,
    ) -> Result<MarkedProgram, WatermarkError> {
        let trace = self.trace(program)?;
        self.embed_with_trace(program, watermark, &trace)
    }

    /// Embeds `watermark` into `program` using a precomputed full trace
    /// (the batch-fingerprinting entry point — see the
    /// [`embed_with_trace`] free function for the sharing contract).
    ///
    /// Telemetry: one [`Stage::Split`] span for step A, one
    /// [`Stage::Encrypt`] and one [`Stage::Codegen`] span per piece, a
    /// [`Stage::Verify`] span for splice + verification, and a
    /// [`Counter::PiecesEmbedded`] increment per piece.
    ///
    /// # Errors
    ///
    /// As the [`embed_with_trace`] free function.
    pub fn embed_with_trace(
        &self,
        program: &Program,
        watermark: &Watermark,
        trace: &Trace,
    ) -> Result<MarkedProgram, WatermarkError> {
        let (key, config) = (&self.key, &self.config);
        let crypto = self.crypto()?;
        let (enumeration, cipher) = (&crypto.enumeration, &crypto.cipher);
        let bound = enumeration.watermark_bound();
        if watermark.value() >= &bound {
            return Err(WatermarkError::WatermarkTooLarge {
                got_bits: watermark.value().bits(),
                max_bits: bound.bits() - 1,
            });
        }
        let mut rng = key.prng();

        // Step A: split into all distinct statements, shuffled; cycle to
        // the requested redundancy.
        let pieces: Vec<Statement> = self.telemetry.time(Stage::Split, || {
            let mut statements = enumeration.split(watermark.value());
            rng.shuffle(&mut statements);
            statements
                .iter()
                .cycle()
                .take(config.num_pieces)
                .copied()
                .collect()
        });

        // Candidate insertion points: visited blocks, weighted by 1/freq.
        // Condition codegen (Section 3.2.2) additionally needs "locations
        // that are executed multiple times on the secret input sequence",
        // so keep a second pool restricted to multi-visit blocks.
        let visited = trace.visited_blocks();
        if visited.is_empty() && !pieces.is_empty() {
            return Err(WatermarkError::NoInsertionPoint);
        }
        let weights: Vec<f64> = visited.iter().map(|&(_, c)| 1.0 / c as f64).collect();
        // Multi-visit yet still infrequent (the hotspot-avoidance policy
        // applies to both generators).
        let multi_weights: Vec<f64> = visited
            .iter()
            .map(|&(_, c)| if (2..=16).contains(&c) { 1.0 / c as f64 } else { 0.0 })
            .collect();

        // Plan all insertions against the ORIGINAL program, then apply
        // them per function in descending pc order so earlier splices do
        // not invalidate later pcs.
        let mut marked = program.clone();
        let mut plans: Vec<(Site, Vec<Insn>, bool)> = Vec::new();
        let mut records = Vec::new();
        for statement in pieces {
            // Step B: enumerate + encrypt into one 64-bit block.
            let block = self.telemetry.time(Stage::Encrypt, || {
                let encoded = enumeration
                    .encode(&statement)
                    .expect("split statements always encode");
                cipher.encrypt(encoded)
            });

            let (site, snippet, used_condition) = self.telemetry.time(Stage::Codegen, || {
                let want_condition = match config.codegen {
                    CodegenPolicy::LoopOnly => false,
                    CodegenPolicy::PreferCondition => true,
                    CodegenPolicy::Mixed => rng.chance(0.5),
                };
                let pool = if want_condition {
                    &multi_weights
                } else {
                    &weights
                };
                let choice = rng
                    .weighted_index(pool)
                    .or_else(|| rng.weighted_index(&weights))
                    .expect("visited set is non-empty");
                let (site, _count) = visited[choice];

                let func = marked.function_mut(site.func);
                let snippet = if want_condition {
                    condition_snippet(func, trace, site, block, &mut rng)
                } else {
                    None
                };
                match snippet {
                    Some(s) => (site, s, true),
                    None => {
                        let locals = reserve_locals(func, 4);
                        (
                            site,
                            loop_snippet(block, locals, pick_live_local(func, &mut rng), &mut rng),
                            false,
                        )
                    }
                }
            });
            plans.push((site, snippet, used_condition));
            records.push(PieceRecord {
                statement,
                site,
                used_condition_codegen: used_condition,
            });
        }
        self.telemetry
            .count(Counter::PiecesEmbedded, records.len() as u64);
        // Apply: descending pc within each function keeps original pcs
        // valid.
        self.telemetry.time(Stage::Verify, || {
            plans.sort_by_key(|p| std::cmp::Reverse((p.0.func, p.0.pc)));
            for (site, snippet, _) in plans {
                insert_snippet(marked.function_mut(site.func), site.pc, snippet);
            }
            stackvm::verify::verify(&marked)
        })?;

        Ok(MarkedProgram {
            report: EmbedReport {
                pieces: records,
                bytes_before: program.byte_size(),
                bytes_after: marked.byte_size(),
            },
            program: marked,
        })
    }
}

/// Picks an existing local to play the "live variable" in the opaquely
/// false guard (falls back to local 0 of the snippet scratch area).
fn pick_live_local(func: &stackvm::Function, rng: &mut Prng) -> u16 {
    if func.num_locals == 0 {
        0
    } else {
        rng.index(func.num_locals as usize) as u16
    }
}

/// Section 3.2.1 loop code generation.
///
/// Generates (with `x, i, t, j` fresh locals starting at `scratch`):
///
/// ```text
/// x = <block>; i = 0; j = 0;
/// head: switch i { 0 => t = 0, _ => t = (x >>> (i-1)) & 1 }
///       if (t != 0) j++;            // the piece-spelling branch
///       i++;
///       switch i { 65 => done, _ => head }
/// done: if (OPAQUELY_FALSE(x)) live += j;
/// ```
///
/// The inner `if` executes 65 times: once to prime the decoder's
/// first-followed-by reference (iteration 0 always falls through) and 64
/// times spelling the block bits. Both pieces of loop control are
/// `switch` instructions, which the bit-string decoder ignores, so the
/// 64 bits land contiguously in the trace.
fn loop_snippet(block: u64, scratch: u16, live_local: u16, rng: &mut Prng) -> Vec<Insn> {
    let (x, i, t, j) = (scratch, scratch + 1, scratch + 2, scratch + 3);
    let mut code = vec![
        Insn::Const(block as i64),
        Insn::Store(x),
        Insn::Const(0),
        Insn::Store(i),
        Insn::Const(0),
        Insn::Store(j),
    ];
    let head = code.len(); // 6
    code.push(Insn::Load(i)); // 6
    let switch_at = code.len(); // 7; patched below
    code.push(Insn::Nop);
    let zero_case = code.len(); // 8
    code.push(Insn::Const(0)); // 8
    code.push(Insn::Store(t)); // 9
    let goto_test_at = code.len(); // 10; patched below
    code.push(Insn::Nop);
    let extract = code.len(); // 11
    code.push(Insn::Load(x));
    code.push(Insn::Load(i));
    code.push(Insn::Const(1));
    code.push(Insn::Bin(BinOp::Sub));
    code.push(Insn::Bin(BinOp::UShr));
    code.push(Insn::Const(1));
    code.push(Insn::Bin(BinOp::And));
    code.push(Insn::Store(t));
    let test = code.len(); // 19
    code[switch_at] = Insn::Switch {
        cases: vec![(0, zero_case)],
        default: extract,
    };
    code[goto_test_at] = Insn::Goto(test);
    code.push(Insn::Load(t)); // 19
    let if_at = code.len(); // 20
    code.push(Insn::Nop); // placeholder for If
    let goto_cont_at = code.len(); // 21
    code.push(Insn::Nop); // placeholder for Goto
    let taken = code.len(); // 22
    code.push(Insn::Iinc(j, 1));
    let cont = code.len(); // 23
    code[if_at] = Insn::If(Cond::Ne, taken);
    code[goto_cont_at] = Insn::Goto(cont);
    code.push(Insn::Iinc(i, 1));
    code.push(Insn::Load(i));
    let exit_switch_at = code.len();
    code.push(Insn::Nop);
    let done = code.len();
    code[exit_switch_at] = Insn::Switch {
        cases: vec![(65, done)],
        default: head,
    };
    // Opaque tail: if (false) live += j.
    let predicate = super::OpaquePredicate::choose(rng);
    let body = vec![
        Insn::Load(live_local),
        Insn::Load(j),
        Insn::Bin(BinOp::Add),
        Insn::Store(live_local),
    ];
    let tail = predicate.guard(x, body);
    // Rebase the tail's relative targets onto the snippet.
    let base = code.len();
    for mut insn in tail {
        insn.map_targets(|t| t + base);
        code.push(insn);
    }
    code
}

/// Section 3.2.2 condition code generation.
///
/// Requires the site to have been visited at least twice on the secret
/// input; bits of value 1 additionally require some local variable to
/// differ between the first two visits. Returns `None` when the site
/// cannot host the piece (the caller falls back to loop codegen).
fn condition_snippet(
    func: &mut stackvm::Function,
    trace: &Trace,
    site: Site,
    block: u64,
    rng: &mut Prng,
) -> Option<Vec<Insn>> {
    let snaps = trace.snapshots_at(site);
    if snaps.len() < 2 {
        return None;
    }
    let (v1, _) = snaps[0];
    let (v2, _) = snaps[1];
    // Locals whose value changes between the first two visits can encode
    // a 1; any local can encode a 0.
    let changing: Vec<usize> = (0..v1.len().min(v2.len()))
        .filter(|&l| v1[l] != v2[l])
        .collect();
    if changing.is_empty() || v1.is_empty() {
        return None;
    }
    let t = reserve_locals(func, 1);
    let live = pick_live_local(func, rng);
    let mut code = vec![Insn::Const(0), Insn::Store(t)];
    for k in 0..64 {
        let bit = block >> k & 1 == 1;
        let (local, constant, cond) = if bit {
            // True at visit 1, false at visit 2: the branch direction
            // flips, decoding as 1.
            let l = changing[rng.index(changing.len())];
            (l, v1[l], Cond::Eq)
        } else {
            // Same truth value at both visits, decoding as 0.
            let l = rng.index(v1.len());
            if v1[l] == v2[l] {
                (l, v1[l], Cond::Eq)
            } else {
                // A constant different from both values keeps `!=` true
                // at both visits.
                let mut c = v1[l] ^ v2[l] ^ (rng.next_u64() as i64 | 1);
                while c == v1[l] || c == v2[l] {
                    c = c.wrapping_add(1);
                }
                (l, c, Cond::Ne)
            }
        };
        code.push(Insn::Load(local as u16));
        code.push(Insn::Const(constant));
        let if_at = code.len();
        code.push(Insn::Nop);
        let goto_at = code.len();
        code.push(Insn::Nop);
        let taken = code.len();
        code.push(Insn::Iinc(t, 1));
        let cont = code.len();
        code[if_at] = Insn::IfCmp(cond, taken);
        code[goto_at] = Insn::Goto(cont);
    }
    // Opaque tail keeps `t` live.
    let predicate = super::OpaquePredicate::choose(rng);
    let body = vec![
        Insn::Load(live),
        Insn::Load(t),
        Insn::Bin(BinOp::Add),
        Insn::Store(live),
    ];
    let tail = predicate.guard(t, body);
    let base = code.len();
    for mut insn in tail {
        insn.map_targets(|tt| tt + base);
        code.push(insn);
    }
    Some(code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstring::BitString;
    use stackvm::builder::{FunctionBuilder, ProgramBuilder};
    use stackvm::interp::Vm;

    fn looping_program() -> Program {
        // Visits its loop head 11 times with a changing counter local.
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 2);
        let head = f.new_label();
        let out = f.new_label();
        f.push(0).store(0);
        f.bind(head);
        f.load(0).push(10).if_cmp(Cond::Ge, out);
        f.load(0).load(1).add().store(1);
        f.iinc(0, 1).goto(head);
        f.bind(out);
        f.load(1).print().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        pb.finish(main).unwrap()
    }

    fn key() -> WatermarkKey {
        WatermarkKey::new(0xABCDEF, vec![5, 6, 7])
    }

    #[test]
    fn loop_snippet_spells_the_block() {
        // Insert one loop snippet into a trivial program and check that
        // the trace bit-string contains the block bits contiguously.
        let block = 0xDEAD_BEEF_1234_5678u64;
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 4);
        f.push(1).print().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        let mut program = pb.finish(main).unwrap();
        let mut rng = Prng::from_seed(1);
        let snippet = loop_snippet(block, 0, 0, &mut rng);
        insert_snippet(program.function_mut(main), 0, snippet);
        stackvm::verify::verify(&program).unwrap();
        let out = Vm::new(&program)
            .with_trace(TraceConfig::branches_only())
            .run()
            .unwrap();
        assert_eq!(out.output, vec![1], "snippet must not change semantics");
        let bits = BitString::from_trace(&out.trace);
        // Expected: primer 0, then the 64 block bits, then the opaque
        // guard's single 0.
        let window = bits.window_u64(1).expect("at least 65 bits");
        assert_eq!(window, block);
        assert!(!bits.bit(0), "primer bit is 0");
    }

    #[test]
    fn loop_snippet_repeats_on_every_visit() {
        let block = 0x0F0F_0F0F_0F0F_0F0Fu64;
        let mut program = looping_program();
        let mut rng = Prng::from_seed(2);
        // The loop head block of `main` starts at pc 2 (after the two
        // init instructions); reserve scratch locals first.
        let scratch = reserve_locals(program.function_mut(stackvm::FuncId(0)), 4);
        let snippet = loop_snippet(block, scratch, 0, &mut rng);
        insert_snippet(program.function_mut(stackvm::FuncId(0)), 2, snippet);
        stackvm::verify::verify(&program).unwrap();
        let out = Vm::new(&program)
            .with_trace(TraceConfig::branches_only())
            .run()
            .unwrap();
        let bits = BitString::from_trace(&out.trace);
        // The head is visited 11 times; each visit spells the block.
        let windows: Vec<u64> = bits.windows().collect();
        let hits = windows.iter().filter(|&&w| w == block).count();
        assert!(hits >= 11, "expected >= 11 copies, got {hits}");
    }

    #[test]
    fn embed_preserves_semantics_and_grows_code() {
        let program = looping_program();
        let config = JavaConfig::for_watermark_bits(64).with_pieces(12);
        let watermark = Watermark::random_for(&config, &key());
        let marked = Embedder::builder(key(), config)
            .build()
            .unwrap()
            .embed(&program, &watermark)
            .unwrap();
        assert_eq!(marked.report.pieces.len(), 12);
        assert!(marked.report.bytes_after > marked.report.bytes_before);
        let orig = Vm::new(&program).with_input(key().input).run().unwrap();
        let new = Vm::new(&marked.program)
            .with_input(key().input)
            .run()
            .unwrap();
        assert_eq!(orig.output, new.output);
        // And on a DIFFERENT input too (semantics preserved everywhere).
        let orig2 = Vm::new(&program).with_input(vec![9, 9]).run().unwrap();
        let new2 = Vm::new(&marked.program)
            .with_input(vec![9, 9])
            .run()
            .unwrap();
        assert_eq!(orig2.output, new2.output);
    }

    #[test]
    fn embed_rejects_oversized_watermark() {
        let program = looping_program();
        let config = JavaConfig::for_watermark_bits(64);
        // A watermark far wider than the prime product.
        let wide = Watermark::from_value(
            &pathmark_math::bigint::BigUint::one() << 300,
            300,
        );
        let session = Embedder::builder(key(), config).build().unwrap();
        assert!(matches!(
            session.embed(&program, &wide),
            Err(WatermarkError::WatermarkTooLarge { .. })
        ));
    }

    #[test]
    fn condition_codegen_is_used_when_possible() {
        let program = looping_program();
        let config = JavaConfig::for_watermark_bits(64)
            .with_pieces(20)
            .with_codegen(CodegenPolicy::PreferCondition);
        let watermark = Watermark::random_for(&config, &key());
        let marked = Embedder::builder(key(), config)
            .build()
            .unwrap()
            .embed(&program, &watermark)
            .unwrap();
        assert!(
            marked
                .report
                .pieces
                .iter()
                .any(|p| p.used_condition_codegen),
            "at least one piece should use condition codegen"
        );
        // Semantics preserved.
        let orig = Vm::new(&program).with_input(key().input).run().unwrap();
        let new = Vm::new(&marked.program)
            .with_input(key().input)
            .run()
            .unwrap();
        assert_eq!(orig.output, new.output);
    }

    #[test]
    fn zero_pieces_is_identity_modulo_clone() {
        let program = looping_program();
        let config = JavaConfig::for_watermark_bits(64).with_pieces(0);
        let watermark = Watermark::random_for(&config, &key());
        let marked = Embedder::builder(key(), config)
            .build()
            .unwrap()
            .embed(&program, &watermark)
            .unwrap();
        assert_eq!(marked.program, program);
    }
}
