//! Native watermark embedding (Section 4.2.2 and 4.3).

use pathmark_crypto::DisplacementHash;
use nativesim::insn::Insn;
use nativesim::reg::{Mem, Operand};
use nativesim::rewrite::{Item, Unit};
use nativesim::Image;

use super::branch_fn::{append_branch_function, patch_branch_function, BranchFnParams};
use super::profile::{profile_image, Profile};
use crate::key::WatermarkKey;
use crate::{ConfigError, WatermarkError};

/// Configuration of the native watermarking scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeConfig {
    /// Emit the tamper-proofing of Section 4.3 (indirect-jump lock-down
    /// cells updated by the branch function).
    pub tamperproof: bool,
    /// Upper bound on tamper-proofed branches ("when embedding a k-bit
    /// watermark we attempt to find up to k candidate branches").
    pub max_tamper_cells: usize,
    /// Additional inputs the marked program must keep working on
    /// (PLTO's SPEC *training* inputs); used to validate that every
    /// tamper-proofed branch first executes after the anchor edge.
    pub training_inputs: Vec<Vec<u32>>,
    /// Route up to this many *non-watermark* unconditional jumps through
    /// the branch function as decoys — Section 4.2.1: "the branch
    /// function implementing the watermark can also be used to
    /// obfuscate other control transfers, elsewhere in the program,
    /// that have nothing to do with the watermark itself" [Linn &
    /// Debray, CCS 2003]. Decoys make the watermark call sites
    /// statistically inconspicuous among ordinary obfuscated jumps.
    pub decoy_jumps: usize,
    /// Instruction budget for profiling runs.
    pub budget: u64,
}

impl Default for NativeConfig {
    fn default() -> Self {
        NativeConfig {
            tamperproof: true,
            max_tamper_cells: usize::MAX,
            training_inputs: Vec::new(),
            decoy_jumps: 0,
            budget: 50_000_000,
        }
    }
}

impl NativeConfig {
    /// Starts a validating builder seeded with [`NativeConfig::default`];
    /// [`NativeConfigBuilder::build`] rejects incoherent settings with a
    /// [`ConfigError`] instead of failing deep inside embed.
    pub fn builder() -> NativeConfigBuilder {
        NativeConfigBuilder {
            config: NativeConfig::default(),
        }
    }

    /// Checks the configuration for the defects that otherwise fail or
    /// silently misbehave during embedding.
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.budget == 0 {
            return Err(ConfigError::ZeroTraceBudget);
        }
        if self.tamperproof && self.max_tamper_cells == 0 {
            return Err(ConfigError::ZeroTamperCells);
        }
        Ok(())
    }
}

/// Validating builder for [`NativeConfig`]; see [`NativeConfig::builder`].
#[derive(Debug, Clone)]
pub struct NativeConfigBuilder {
    config: NativeConfig,
}

impl NativeConfigBuilder {
    /// Enables/disables the tamper-proofing of Section 4.3.
    pub fn tamperproof(mut self, on: bool) -> NativeConfigBuilder {
        self.config.tamperproof = on;
        self
    }

    /// Caps the number of tamper-proofed branches.
    pub fn max_tamper_cells(mut self, cells: usize) -> NativeConfigBuilder {
        self.config.max_tamper_cells = cells;
        self
    }

    /// Adds a training input the marked program must keep working on.
    pub fn training_input(mut self, input: Vec<u32>) -> NativeConfigBuilder {
        self.config.training_inputs.push(input);
        self
    }

    /// Routes up to `jumps` decoy jumps through the branch function.
    pub fn decoy_jumps(mut self, jumps: usize) -> NativeConfigBuilder {
        self.config.decoy_jumps = jumps;
        self
    }

    /// Overrides the profiling instruction budget.
    pub fn budget(mut self, budget: u64) -> NativeConfigBuilder {
        self.config.budget = budget;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] [`NativeConfig::validate`] finds.
    pub fn build(self) -> Result<NativeConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// The result of native embedding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeMark {
    /// The watermarked executable.
    pub image: Image,
    /// Address of the first watermark call (`a_0`) — the `begin` of the
    /// extraction bracket.
    pub begin: u32,
    /// Address execution reaches after the chain — the `end` of the
    /// extraction bracket.
    pub end: u32,
    /// Addresses of all `k+1` watermark calls, in chain order.
    pub call_sites: Vec<u32>,
    /// Entry address of the branch function.
    pub branch_fn: u32,
    /// How many indirect-jump cells the tamper-proofing guards.
    pub tamper_cells: usize,
    /// How many decoy jumps were routed through the branch function.
    pub decoys: usize,
    /// Image size before embedding.
    pub size_before: usize,
    /// Image size after embedding.
    pub size_after: usize,
}

/// Embeds a bit-string into a native image as a branch-function call
/// chain.
///
/// # Errors
///
/// * [`WatermarkError::Sim`] if profiling or re-encoding fails;
/// * [`WatermarkError::NoAnchorEdge`] if no direct unconditional jump
///   executes on the secret input (and every training input);
/// * [`WatermarkError::InsufficientSlots`] if the text has too few legal
///   call positions to thread the chain;
/// * [`WatermarkError::Phf`] if perfect-hash construction fails.
pub fn embed_native(
    image: &Image,
    bits: &[bool],
    key: &WatermarkKey,
    config: &NativeConfig,
) -> Result<NativeMark, WatermarkError> {
    let mut unit = Unit::from_image(image)?;
    let secret_profile = profile_image(image, &key.native_input(), config.budget)?;
    let mut training_profiles = Vec::new();
    for input in &config.training_inputs {
        training_profiles.push(profile_image(image, input, config.budget)?);
    }
    let mut rng = key.prng();

    // --- Anchor: a direct unconditional jump executed on the secret
    // input (prefer exactly once, as early as possible) and on every
    // training input.
    let addrs = unit.addresses();
    let anchor = {
        // A position is a legal call slot when the previous instruction
        // cannot fall through into it.
        let has_backward_slot = |idx: usize| {
            (1..=idx).rev().any(|p| unit.items[p - 1].insn.is_terminator())
        };
        let has_forward_slot = |idx: usize| {
            ((idx + 2)..=unit.items.len())
                .any(|p| unit.items[p - 1].insn.is_terminator())
        };
        let mut candidates: Vec<(u64, u64, usize)> = Vec::new(); // (count, first, index)
        for (idx, item) in unit.items.iter().enumerate() {
            if !matches!(item.insn, Insn::Jmp(_)) {
                continue;
            }
            let count = secret_profile.count(addrs[idx]);
            if count == 0 {
                continue;
            }
            if training_profiles.iter().any(|p| p.count(addrs[idx]) == 0) {
                continue;
            }
            // The chain must be able to hop both directions from here.
            if !bits.is_empty() && (!has_backward_slot(idx) || !has_forward_slot(idx)) {
                continue;
            }
            let first = secret_profile.first(addrs[idx]).expect("count > 0");
            candidates.push((count, first, idx));
        }
        candidates.sort_unstable();
        candidates
            .first()
            .map(|&(_, _, idx)| idx)
            .ok_or(WatermarkError::NoAnchorEdge)?
    };
    let end_index = unit.items[anchor]
        .target
        .expect("direct jmp has a target");
    let anchor_first_step = secret_profile
        .first(addrs[anchor])
        .expect("anchor executes");

    // --- Tamper-proofing candidates: direct jumps ℓ such that the
    // anchor dominates ℓ. The dominance requirement of Section 4.3 is
    // checked *statically* where sound (no pre-existing indirect jumps)
    // and *dynamically* against every profiled input regardless (PLTO
    // validated against the SPEC training inputs the same way).
    let cfg = nativesim::cfg::Cfg::build(&unit);
    let static_dominance_usable = !cfg.has_indirect_jumps();
    let mut tamper: Vec<(usize, usize)> = Vec::new(); // (jmp index, true target index)
    if config.tamperproof {
        // Rank key: (0 if statically proven dominated, 1 otherwise;
        // execution count; index). Static proof is best-effort — the
        // CFG is intraprocedural, so an anchor inside a callee cannot
        // statically dominate caller-side branches even though it
        // dynamically precedes them; those fall back to the dynamic
        // first-execution validation below.
        let mut ranked: Vec<(u8, u64, usize)> = Vec::new();
        for (idx, item) in unit.items.iter().enumerate() {
            if idx == anchor || !matches!(item.insn, Insn::Jmp(_)) {
                continue;
            }
            let addr = addrs[idx];
            let after_anchor_on = |p: &Profile, anchor_first: Option<u64>| match (
                p.first(addr),
                anchor_first,
            ) {
                (None, _) => true, // never executes on this input
                (Some(f), Some(af)) => f > af,
                (Some(_), None) => false, // executes but anchor never ran
            };
            if !after_anchor_on(&secret_profile, Some(anchor_first_step)) {
                continue;
            }
            if !training_profiles
                .iter()
                .all(|p| after_anchor_on(p, p.first(addrs[anchor])))
            {
                continue;
            }
            // "a branch is considered to be a candidate if it occurs in
            // an infrequently executed portion of the code and is not
            // part of a loop" — approximated by a small dynamic count on
            // every profiled input.
            let count = secret_profile.count(addr);
            if count > 4 || training_profiles.iter().any(|p| p.count(addr) > 4) {
                continue;
            }
            let statically_proven =
                static_dominance_usable && cfg.item_dominates(anchor, idx);
            ranked.push((u8::from(!statically_proven), count, idx));
        }
        ranked.sort_unstable();
        let max = config.max_tamper_cells.min(bits.len());
        for &(_, _, idx) in ranked.iter().take(max) {
            let target = unit.items[idx].target.expect("direct jmp has a target");
            tamper.push((idx, target));
        }
    }

    // --- Replace the anchor jmp with the first watermark call a_0, then
    // thread a_1 … a_k through legal positions, scanning forward for a
    // 1-bit and backward for a 0-bit.
    unit.items[anchor] = Item::plain(Insn::Call(0)); // target patched to f later
    let mut chain: Vec<usize> = vec![anchor];
    let mut end_index = end_index;
    let mut cur = anchor;
    for (bit_no, &bit) in bits.iter().enumerate() {
        let legal = |unit: &Unit, p: usize| -> bool {
            p > 0 && p <= unit.items.len() && unit.items[p - 1].insn.is_terminator()
        };
        let found = if bit {
            // Forward: smallest legal position strictly after cur.
            ((cur + 2)..=unit.items.len()).find(|&p| legal(&unit, p))
        } else {
            // Backward: largest legal position at or before cur.
            (1..=cur).rev().find(|&p| legal(&unit, p))
        };
        let Some(p) = found else {
            return Err(WatermarkError::InsufficientSlots {
                remaining_bits: bits.len() - bit_no,
            });
        };
        unit.insert(p, Item::plain(Insn::Call(0)));
        // Account for the shift the insertion caused.
        for c in &mut chain {
            if *c >= p {
                *c += 1;
            }
        }
        if end_index >= p {
            end_index += 1;
        }
        for (j, t) in &mut tamper {
            if *j >= p {
                *j += 1;
            }
            if *t >= p {
                *t += 1;
            }
        }
        if cur >= p {
            cur += 1;
        }
        debug_assert!(if bit { p > cur } else { p <= cur });
        chain.push(p);
        cur = p;
    }

    // --- Convert tamper candidates to indirect jumps through junk-
    // initialized data cells, one per chain call (first `tamper.len()`
    // calls carry a record).
    let mut cells: Vec<(u32, usize, u32)> = Vec::new(); // (cell addr, target idx, junk)
    for &(jmp_idx, target_idx) in &tamper {
        let junk = rng.next_u32() | 1;
        let cell = unit.push_data_u32(junk);
        unit.items[jmp_idx] = Item::plain(Insn::JmpInd(Operand::Mem(Mem::abs(cell))));
        cells.push((cell, target_idx, junk));
    }

    // --- Decoy obfuscation (Section 4.2.1): route additional ordinary
    // jumps through the branch function so watermark call sites hide in
    // a crowd. The chain's landing site is excluded so decoy hops can
    // never splice onto the watermark chain in a trace.
    let mut decoys: Vec<(usize, usize)> = Vec::new(); // (item idx, target idx)
    for idx in 0..unit.items.len() {
        if decoys.len() >= config.decoy_jumps {
            break;
        }
        if idx == end_index || !matches!(unit.items[idx].insn, Insn::Jmp(_)) {
            continue;
        }
        let target = unit.items[idx].target.expect("direct jmp has a target");
        decoys.push((idx, target));
    }
    for &(idx, _) in &decoys {
        unit.items[idx] = Item::plain(Insn::Call(0)); // target = f, set below
    }

    // --- Branch function, with randomized helper frame sizes.
    let frames = (
        (rng.index(8) as i32) * 4,
        (rng.index(8) as i32) * 4,
    );
    let layout = append_branch_function(&mut unit, frames, config.tamperproof);
    for &c in &chain {
        unit.items[c].target = Some(layout.f_entry);
    }
    for &(idx, _) in &decoys {
        unit.items[idx].target = Some(layout.f_entry);
    }

    // --- Final layout; build the perfect hash over the return
    // addresses (watermark chain and decoys alike).
    let final_addrs = unit.addresses();
    let mut keys: Vec<u32> = chain.iter().map(|&c| final_addrs[c] + 5).collect();
    keys.extend(decoys.iter().map(|&(idx, _)| final_addrs[idx] + 5));
    let hash = DisplacementHash::build(&keys, key.seed ^ 0x9A5F)?;
    let (mul1, shift1, mul2, shift2, table_mask) = hash.params();

    // Targets: a_i -> a_{i+1}, a_k -> end.
    let mut t_table: Vec<u32> = (0..hash.table_len()).map(|_| rng.next_u32()).collect();
    let mut r_table: Vec<(u32, u32)> = vec![(0, 0); hash.table_len()];
    for (i, &c) in chain.iter().enumerate() {
        let b = if i + 1 < chain.len() {
            final_addrs[chain[i + 1]]
        } else {
            final_addrs[end_index]
        };
        let slot = hash.eval(keys[i]);
        t_table[slot] = keys[i] ^ b;
        if let Some(&(cell, target_idx, junk)) = cells.get(i) {
            r_table[slot] = (cell, junk ^ final_addrs[target_idx]);
        }
        let _ = c;
    }
    for (i, &(idx, target_idx)) in decoys.iter().enumerate() {
        let k = keys[chain.len() + i];
        t_table[hash.eval(k)] = k ^ final_addrs[target_idx];
        let _ = idx;
    }

    // --- Write the tables into data and patch the branch function.
    let disp_base = unit.data_base + unit.data.len() as u32;
    for &d in hash.displacements() {
        unit.push_data_u32(d);
    }
    let t_base = unit.data_base + unit.data.len() as u32;
    for &t in &t_table {
        unit.push_data_u32(t);
    }
    let r_base = unit.data_base + unit.data.len() as u32;
    if config.tamperproof {
        for &(c, v) in &r_table {
            unit.push_data_u32(c);
            unit.push_data_u32(v);
        }
    }
    patch_branch_function(
        &mut unit,
        &layout,
        &BranchFnParams {
            mul1,
            shift1,
            mul2,
            shift2,
            table_mask,
            disp_base,
            t_base,
            r_base,
        },
    );

    let marked = unit.encode()?;
    Ok(NativeMark {
        begin: final_addrs[chain[0]],
        end: final_addrs[end_index],
        call_sites: chain.iter().map(|&c| final_addrs[c]).collect(),
        branch_fn: final_addrs[layout.f_entry],
        tamper_cells: cells.len(),
        decoys: decoys.len(),
        size_before: image.size(),
        size_after: marked.size(),
        image: marked,
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use nativesim::asm::ImageBuilder;
    use nativesim::cpu::Machine;
    use nativesim::reg::{AluOp, Cc, Reg};

    /// A small program with several functions, a cold tail, and direct
    /// jumps — enough structure to host a chain.
    pub(crate) fn host_image() -> Image {
        let mut b = ImageBuilder::new();
        let a = b.text();
        let start = a.label();
        let cold = a.label();
        let fin = a.label();
        let helper = a.label();
        // Entry jumps over a block of dead helper-like filler (these
        // provide backward call slots, like the function boundaries of a
        // real binary).
        a.in_(Reg::Eax);
        a.mov_rr(Reg::Ebx, Reg::Eax);
        a.jmp(start); // first executed jmp, but has no backward slots
        for _ in 0..48 {
            a.nop();
            a.ret();
        }
        a.bind(start);
        // loop: sum 0..input
        let top = a.label();
        let done = a.label();
        a.mov_ri(Reg::Ecx, 0);
        a.mov_ri(Reg::Edx, 0);
        a.bind(top);
        a.cmp(Operand::Reg(Reg::Ecx), Operand::Reg(Reg::Eax));
        a.jcc(Cc::Ge, done);
        a.alu_rr(AluOp::Add, Reg::Edx, Reg::Ecx);
        a.alu_ri(AluOp::Add, Reg::Ecx, 1);
        a.jmp(top);
        a.bind(done);
        a.call(helper);
        a.jmp(cold); // anchor: executes once, slots on both sides
        a.bind(cold);
        a.out(Operand::Reg(Reg::Edx));
        a.jmp(fin); // cold tamper candidate
        // more filler with terminators (forward slots)
        for _ in 0..48 {
            a.nop();
            a.ret();
        }
        a.bind(fin);
        a.halt();
        a.bind(helper);
        a.alu_ri(AluOp::Add, Reg::Edx, 1000);
        a.ret();
        b.finish().unwrap()
    }

    fn key() -> WatermarkKey {
        WatermarkKey::new(0xFACE, vec![5])
    }

    #[test]
    fn embedding_preserves_program_behavior() {
        let image = host_image();
        let baseline = Machine::load(&image)
            .with_input(vec![5])
            .run(100_000)
            .unwrap();
        let bits = vec![true, false, true, true, false, false, true, false];
        let mark = embed_native(&image, &bits, &key(), &NativeConfig::default()).unwrap();
        let marked_out = Machine::load(&mark.image)
            .with_input(vec![5])
            .run(100_000)
            .unwrap();
        assert_eq!(baseline.output, marked_out.output);
        assert!(mark.size_after > mark.size_before);
        assert_eq!(mark.call_sites.len(), bits.len() + 1);
    }

    #[test]
    fn call_site_ordering_encodes_the_bits() {
        let image = host_image();
        let bits = vec![true, true, false, true, false];
        let mark = embed_native(&image, &bits, &key(), &NativeConfig::default()).unwrap();
        for (i, &bit) in bits.iter().enumerate() {
            let forward = mark.call_sites[i + 1] > mark.call_sites[i];
            assert_eq!(forward, bit, "hop {i}");
        }
    }

    #[test]
    fn works_without_tamperproofing() {
        let image = host_image();
        let config = NativeConfig {
            tamperproof: false,
            ..NativeConfig::default()
        };
        let bits = vec![false, true, true];
        let mark = embed_native(&image, &bits, &key(), &config).unwrap();
        assert_eq!(mark.tamper_cells, 0);
        let out = Machine::load(&mark.image)
            .with_input(vec![3])
            .run(100_000)
            .unwrap();
        let baseline = Machine::load(&image)
            .with_input(vec![3])
            .run(100_000)
            .unwrap();
        assert_eq!(out.output, baseline.output);
    }

    #[test]
    fn tamperproofing_converts_cold_jumps() {
        let image = host_image();
        let bits = vec![true, false];
        let mark = embed_native(&image, &bits, &key(), &NativeConfig::default()).unwrap();
        assert!(mark.tamper_cells >= 1, "the cold jmp should be locked down");
        // Behavior still intact on the secret input.
        let out = Machine::load(&mark.image)
            .with_input(vec![5])
            .run(100_000)
            .unwrap();
        let baseline = Machine::load(&image)
            .with_input(vec![5])
            .run(100_000)
            .unwrap();
        assert_eq!(out.output, baseline.output);
    }

    #[test]
    fn training_inputs_keep_working() {
        let image = host_image();
        let config = NativeConfig {
            training_inputs: vec![vec![0], vec![9], vec![20]],
            ..NativeConfig::default()
        };
        let bits = vec![true, false, true, false, true, false, true, false];
        let mark = embed_native(&image, &bits, &key(), &config).unwrap();
        for input in [vec![0u32], vec![9], vec![20], vec![5]] {
            let baseline = Machine::load(&image)
                .with_input(input.clone())
                .run(100_000)
                .unwrap();
            let out = Machine::load(&mark.image)
                .with_input(input.clone())
                .run(100_000)
                .unwrap();
            assert_eq!(out.output, baseline.output, "input {input:?}");
        }
    }

    #[test]
    fn image_without_jumps_has_no_anchor() {
        let mut b = ImageBuilder::new();
        let a = b.text();
        a.out(Operand::Imm(1));
        a.halt();
        let image = b.finish().unwrap();
        assert!(matches!(
            embed_native(&image, &[true], &key(), &NativeConfig::default()),
            Err(WatermarkError::NoAnchorEdge)
        ));
    }

    #[test]
    fn wider_watermarks_thread_through() {
        let image = host_image();
        let mut rng = pathmark_crypto::Prng::from_seed(31);
        let bits: Vec<bool> = (0..64).map(|_| rng.chance(0.5)).collect();
        let mark = embed_native(&image, &bits, &key(), &NativeConfig::default()).unwrap();
        assert_eq!(mark.call_sites.len(), 65);
        let out = Machine::load(&mark.image)
            .with_input(vec![5])
            .run(1_000_000)
            .unwrap();
        let baseline = Machine::load(&image)
            .with_input(vec![5])
            .run(100_000)
            .unwrap();
        assert_eq!(out.output, baseline.output);
    }

    #[test]
    fn native_builder_accepts_sound_overrides() {
        let c = NativeConfig::builder()
            .tamperproof(true)
            .max_tamper_cells(4)
            .training_input(vec![9])
            .decoy_jumps(2)
            .budget(1_000_000)
            .build()
            .unwrap();
        assert!(c.tamperproof);
        assert_eq!(c.max_tamper_cells, 4);
        assert_eq!(c.training_inputs, vec![vec![9]]);
        assert_eq!(c.decoy_jumps, 2);
        assert_eq!(c.budget, 1_000_000);
    }

    #[test]
    fn native_builder_rejects_zero_budget() {
        assert_eq!(
            NativeConfig::builder().budget(0).build().unwrap_err(),
            ConfigError::ZeroTraceBudget
        );
    }

    #[test]
    fn native_builder_rejects_zero_tamper_cells() {
        assert_eq!(
            NativeConfig::builder()
                .tamperproof(true)
                .max_tamper_cells(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroTamperCells
        );
        // Harmless when tamper-proofing is off.
        let c = NativeConfig::builder()
            .tamperproof(false)
            .max_tamper_cells(0)
            .build()
            .unwrap();
        assert!(!c.tamperproof);
    }
}
