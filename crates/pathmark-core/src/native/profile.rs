//! Execution profiles of native images.
//!
//! The embedder needs to know, per instruction address: how often it
//! executes and *when it first executes* — the anchor edge must run on
//! the secret input, insertion prefers cold code, and tamper-proofed
//! indirect jumps must first execute only after the branch-function
//! chain has initialized their target cells (the paper's "begin
//! dominates ℓ" condition, which we check dynamically against every
//! input of interest, just as PLTO validated against the SPEC training
//! inputs).

use std::collections::HashMap;

use nativesim::cpu::Machine;
use nativesim::Image;

use crate::WatermarkError;

/// A per-address execution profile of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// How many times each instruction address executed.
    pub counts: HashMap<u32, u64>,
    /// The step index at which each address first executed.
    pub first_step: HashMap<u32, u64>,
    /// Total instructions executed.
    pub total: u64,
}

impl Profile {
    /// Execution count of an address (0 if never executed).
    pub fn count(&self, addr: u32) -> u64 {
        self.counts.get(&addr).copied().unwrap_or(0)
    }

    /// First execution step of an address, if it ever executed.
    pub fn first(&self, addr: u32) -> Option<u64> {
        self.first_step.get(&addr).copied()
    }
}

/// Single-steps `image` on `input`, recording the profile.
///
/// # Errors
///
/// [`WatermarkError::Sim`] if the program faults or exhausts `budget`.
pub fn profile_image(
    image: &Image,
    input: &[u32],
    budget: u64,
) -> Result<Profile, WatermarkError> {
    let mut machine = Machine::load(image).with_input(input.to_vec());
    let mut profile = Profile::default();
    for step_index in 0..budget {
        let step = machine.step()?;
        *profile.counts.entry(step.pc).or_insert(0) += 1;
        profile.first_step.entry(step.pc).or_insert(step_index);
        profile.total += 1;
        if step.halted {
            return Ok(profile);
        }
    }
    Err(WatermarkError::Sim(nativesim::SimError::BudgetExhausted {
        budget,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nativesim::asm::ImageBuilder;
    use nativesim::reg::{AluOp, Cc, Operand, Reg};

    #[test]
    fn counts_and_first_steps() {
        let mut b = ImageBuilder::new();
        let a = b.text();
        let top = a.label();
        a.mov_ri(Reg::Ecx, 4); // step 0
        a.bind(top);
        a.alu_ri(AluOp::Sub, Reg::Ecx, 1); // 4 times
        a.cmp(Operand::Reg(Reg::Ecx), Operand::Imm(0));
        a.jcc(Cc::G, top);
        a.halt();
        let img = b.finish().unwrap();
        let p = profile_image(&img, &[], 1000).unwrap();
        let base = img.text_base;
        assert_eq!(p.count(base), 1);
        assert_eq!(p.first(base), Some(0));
        // The loop body address (after the 8-byte mov) ran 4 times.
        assert_eq!(p.count(base + 8), 4);
        assert_eq!(p.first(base + 8), Some(1));
        assert_eq!(p.count(0xDEAD), 0);
        assert_eq!(p.first(0xDEAD), None);
        assert_eq!(p.total, 1 + 4 * 3 + 1);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let mut b = ImageBuilder::new();
        let a = b.text();
        let top = a.label();
        a.bind(top);
        a.jmp(top);
        let img = b.finish().unwrap();
        assert!(matches!(
            profile_image(&img, &[], 50),
            Err(WatermarkError::Sim(_))
        ));
    }
}
