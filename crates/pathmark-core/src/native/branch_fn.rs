//! Branch-function synthesis (Sections 4.1 and 4.3).
//!
//! The branch function is emitted as a chain of helper functions
//! `f → f1 → f2` with randomized stack-frame sizes, so the original
//! return address sits at a known depth and no function visibly
//! modifies *its own* return address (the stealth argument of
//! Section 4.1). The last helper, `f2`:
//!
//! 1. saves registers and flags (compare the paper's Figure 7);
//! 2. reads the original return address `a` from deep in the stack;
//! 3. computes the perfect hash
//!    `h = ((a·MUL1) >> S1) ^ disp[(a·MUL2) >> S2] & MASK`;
//! 4. xors `T[h]` into the stored return address, turning it into the
//!    real target `b = T[h] ^ a`;
//! 5. (tamper-proofing) reads the record `R[h] = (cell, val)` and, once,
//!    xors `val` into `*cell` — initializing the target cell of some
//!    indirect jump elsewhere in the program — then zeroes the record;
//! 6. restores registers and returns: the unwinding `ret`s deliver
//!    control to `b`.
//!
//! Hash parameters and table base addresses are not known until final
//! layout, so the code is emitted with placeholder constants and patched
//! by [`patch_branch_function`] once addresses are fixed.

use nativesim::insn::Insn;
use nativesim::reg::{AluOp, Cc, Mem, Operand, Reg};
use nativesim::rewrite::{Item, Unit};

/// Where the synthesized branch function lives and which instructions
/// hold patchable constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchFnLayout {
    /// Item index of `f` — the entry every watermark call targets.
    pub f_entry: usize,
    /// Depth (bytes above `esp` after `f2`'s saves) of the original
    /// return address.
    pub ret_slot_depth: i32,
    /// Whether the tamper-proofing block was emitted.
    pub tamperproof: bool,
    mul1_at: usize,
    shift1_at: usize,
    mul2_at: usize,
    shift2_at: usize,
    disp_load_at: usize,
    mask_at: usize,
    t_load_at: usize,
    r_lea_at: Option<usize>,
}

/// Hash parameters and table addresses to patch into the emitted code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchFnParams {
    /// First multiplier of the displacement hash.
    pub mul1: u32,
    /// First shift.
    pub shift1: u32,
    /// Second (bucket) multiplier.
    pub mul2: u32,
    /// Second shift.
    pub shift2: u32,
    /// Slot mask (table length − 1).
    pub table_mask: u32,
    /// Absolute address of the displacement array (u32 entries).
    pub disp_base: u32,
    /// Absolute address of the XOR table `T` (u32 entries).
    pub t_base: u32,
    /// Absolute address of the tamper-record table `R` (8-byte entries).
    pub r_base: u32,
}

/// Appends `f`, `f1`, `f2` to the unit's text with placeholder
/// constants. `frames = (K_f, K_f1)` are the helper frame paddings in
/// bytes (multiples of 4, chosen randomly per embedding).
pub fn append_branch_function(
    unit: &mut Unit,
    frames: (i32, i32),
    tamperproof: bool,
) -> BranchFnLayout {
    let (k_f, k_f1) = frames;
    debug_assert!(k_f >= 0 && k_f % 4 == 0 && k_f1 >= 0 && k_f1 % 4 == 0);
    let ret_slot_depth = 24 + k_f + k_f1;

    // f: sub esp, K_f; call f1; add esp, K_f; ret
    let f_entry = unit.push(Item::plain(Insn::Alu(
        AluOp::Sub,
        Operand::Reg(Reg::Esp),
        Operand::Imm(k_f),
    )));
    let call_f1_at = unit.push(Item::plain(Insn::Call(0)));
    unit.push(Item::plain(Insn::Alu(
        AluOp::Add,
        Operand::Reg(Reg::Esp),
        Operand::Imm(k_f),
    )));
    unit.push(Item::plain(Insn::Ret));

    // f1: sub esp, K_f1; call f2; add esp, K_f1; ret
    let f1_entry = unit.push(Item::plain(Insn::Alu(
        AluOp::Sub,
        Operand::Reg(Reg::Esp),
        Operand::Imm(k_f1),
    )));
    let call_f2_at = unit.push(Item::plain(Insn::Call(0)));
    unit.push(Item::plain(Insn::Alu(
        AluOp::Add,
        Operand::Reg(Reg::Esp),
        Operand::Imm(k_f1),
    )));
    unit.push(Item::plain(Insn::Ret));
    unit.items[call_f1_at].target = Some(f1_entry);

    // f2: the worker.
    let f2_entry = unit.push(Item::plain(Insn::Pushf));
    unit.items[call_f2_at].target = Some(f2_entry);
    unit.push(Item::plain(Insn::Push(Operand::Reg(Reg::Edx))));
    unit.push(Item::plain(Insn::Push(Operand::Reg(Reg::Ecx))));
    unit.push(Item::plain(Insn::Push(Operand::Reg(Reg::Eax))));
    let ret_slot = Mem::base_disp(Reg::Esp, ret_slot_depth);
    unit.push(Item::plain(Insn::Mov(
        Operand::Reg(Reg::Edx),
        Operand::Mem(ret_slot),
    )));
    unit.push(Item::plain(Insn::Mov(
        Operand::Reg(Reg::Eax),
        Operand::Reg(Reg::Edx),
    )));
    let mul1_at = unit.push(Item::plain(Insn::Alu(
        AluOp::Imul,
        Operand::Reg(Reg::Eax),
        Operand::Imm(0),
    )));
    let shift1_at = unit.push(Item::plain(Insn::Alu(
        AluOp::Shr,
        Operand::Reg(Reg::Eax),
        Operand::Imm(0),
    )));
    unit.push(Item::plain(Insn::Mov(
        Operand::Reg(Reg::Ecx),
        Operand::Reg(Reg::Edx),
    )));
    let mul2_at = unit.push(Item::plain(Insn::Alu(
        AluOp::Imul,
        Operand::Reg(Reg::Ecx),
        Operand::Imm(0),
    )));
    let shift2_at = unit.push(Item::plain(Insn::Alu(
        AluOp::Shr,
        Operand::Reg(Reg::Ecx),
        Operand::Imm(0),
    )));
    let disp_load_at = unit.push(Item::plain(Insn::Mov(
        Operand::Reg(Reg::Ecx),
        Operand::Mem(Mem::indexed(0, Reg::Ecx, 4)),
    )));
    unit.push(Item::plain(Insn::Alu(
        AluOp::Xor,
        Operand::Reg(Reg::Eax),
        Operand::Reg(Reg::Ecx),
    )));
    let mask_at = unit.push(Item::plain(Insn::Alu(
        AluOp::And,
        Operand::Reg(Reg::Eax),
        Operand::Imm(0),
    )));
    let t_load_at = unit.push(Item::plain(Insn::Mov(
        Operand::Reg(Reg::Ecx),
        Operand::Mem(Mem::indexed(0, Reg::Eax, 4)),
    )));
    unit.push(Item::plain(Insn::Alu(
        AluOp::Xor,
        Operand::Reg(Reg::Ecx),
        Operand::Reg(Reg::Edx),
    )));
    unit.push(Item::plain(Insn::Mov(
        Operand::Mem(ret_slot),
        Operand::Reg(Reg::Ecx),
    )));

    let r_lea_at = if tamperproof {
        // lea ecx, R[eax*8]; edx = *ecx (cell); if cell != 0:
        //   eax = *(ecx+4); *edx ^= eax; *ecx = 0
        let r_lea_at = unit.push(Item::plain(Insn::Lea(
            Reg::Ecx,
            Mem::indexed(0, Reg::Eax, 8),
        )));
        unit.push(Item::plain(Insn::Mov(
            Operand::Reg(Reg::Edx),
            Operand::Mem(Mem::base_disp(Reg::Ecx, 0)),
        )));
        unit.push(Item::plain(Insn::Cmp(
            Operand::Reg(Reg::Edx),
            Operand::Imm(0),
        )));
        let je_at = unit.push(Item {
            insn: Insn::Jcc(Cc::E, 0),
            target: None, // patched to `cleanup` below
            imm_fix: nativesim::rewrite::ImmFix::None,
        });
        unit.push(Item::plain(Insn::Mov(
            Operand::Reg(Reg::Eax),
            Operand::Mem(Mem::base_disp(Reg::Ecx, 4)),
        )));
        unit.push(Item::plain(Insn::Alu(
            AluOp::Xor,
            Operand::Mem(Mem::base_disp(Reg::Edx, 0)),
            Operand::Reg(Reg::Eax),
        )));
        unit.push(Item::plain(Insn::Mov(
            Operand::Mem(Mem::base_disp(Reg::Ecx, 0)),
            Operand::Imm(0),
        )));
        let cleanup = unit.items.len();
        unit.items[je_at].target = Some(cleanup);
        Some(r_lea_at)
    } else {
        None
    };

    // cleanup: restore and return.
    unit.push(Item::plain(Insn::Pop(Reg::Eax)));
    unit.push(Item::plain(Insn::Pop(Reg::Ecx)));
    unit.push(Item::plain(Insn::Pop(Reg::Edx)));
    unit.push(Item::plain(Insn::Popf));
    unit.push(Item::plain(Insn::Ret));

    BranchFnLayout {
        f_entry,
        ret_slot_depth,
        tamperproof,
        mul1_at,
        shift1_at,
        mul2_at,
        shift2_at,
        disp_load_at,
        mask_at,
        t_load_at,
        r_lea_at,
    }
}

/// Patches the final hash parameters and table addresses into the
/// emitted code. Instruction lengths are unaffected (immediates and
/// displacements are fixed-width), so layout stays valid.
///
/// # Panics
///
/// Panics if the layout does not refer to the instructions
/// [`append_branch_function`] emitted (internal misuse).
pub fn patch_branch_function(unit: &mut Unit, layout: &BranchFnLayout, params: &BranchFnParams) {
    set_imm(unit, layout.mul1_at, params.mul1 as i32);
    set_imm(unit, layout.shift1_at, params.shift1 as i32);
    set_imm(unit, layout.mul2_at, params.mul2 as i32);
    set_imm(unit, layout.shift2_at, params.shift2 as i32);
    set_imm(unit, layout.mask_at, params.table_mask as i32);
    set_mem_disp(unit, layout.disp_load_at, params.disp_base);
    set_mem_disp(unit, layout.t_load_at, params.t_base);
    if let Some(at) = layout.r_lea_at {
        set_mem_disp(unit, at, params.r_base);
    }
}

fn set_imm(unit: &mut Unit, at: usize, value: i32) {
    match &mut unit.items[at].insn {
        Insn::Alu(_, _, Operand::Imm(v)) => *v = value,
        other => panic!("expected ALU-with-immediate at {at}, found {other}"),
    }
}

fn set_mem_disp(unit: &mut Unit, at: usize, base: u32) {
    match &mut unit.items[at].insn {
        Insn::Mov(_, Operand::Mem(m)) | Insn::Lea(_, m) => m.disp = base as i32,
        other => panic!("expected memory-operand instruction at {at}, found {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nativesim::asm::ImageBuilder;
    use nativesim::cpu::Machine;
    use pathmark_crypto::DisplacementHash;

    /// End-to-end micro-test: a single branch-function call routed
    /// through a real perfect hash and XOR table.
    #[test]
    fn branch_function_routes_one_call() {
        // Program: call-site at known address jumps via f to `good`.
        let mut b = ImageBuilder::new();
        let a = b.text();
        a.nop(); // entry
        a.insn(Insn::Call(0)); // placeholder; becomes the marked call
        a.out(Operand::Imm(13)); // "bad": reached only if f misroutes
        a.halt();
        a.out(Operand::Imm(7)); // "good"
        a.halt();
        let mut unit = b.finish_unit().unwrap();
        let call_index = 1;
        let good_index = 4; // items: nop, call, out(13), halt, out(7), halt
        let layout = append_branch_function(&mut unit, (8, 4), false);
        unit.items[call_index].target = Some(layout.f_entry);

        let addrs = unit.addresses();
        let key = addrs[call_index] + 5; // return address = hash input
        let hash = DisplacementHash::build(&[key], 42).unwrap();
        let (mul1, shift1, mul2, shift2, mask) = hash.params();

        // Tables in data.
        let disp_base = unit.data_base + unit.data.len() as u32;
        for &d in hash.displacements() {
            unit.push_data_u32(d);
        }
        let t_base = unit.data_base + unit.data.len() as u32;
        let mut t = vec![0x5555_AAAAu32; hash.table_len()];
        t[hash.eval(key)] = key ^ addrs[good_index];
        for v in &t {
            unit.push_data_u32(*v);
        }
        patch_branch_function(
            &mut unit,
            &layout,
            &BranchFnParams {
                mul1,
                shift1,
                mul2,
                shift2,
                table_mask: mask,
                disp_base,
                t_base,
                r_base: 0,
            },
        );
        let image = unit.encode().unwrap();
        let out = Machine::load(&image).run(10_000).unwrap();
        assert_eq!(out.output, vec![7], "branch function must reach `good`");
    }

    #[test]
    fn tamperproof_record_applies_once_and_zeroes() {
        // One call whose record initializes a cell; the program then
        // jumps indirectly through the cell.
        let mut b = ImageBuilder::new();
        let cell = b.data_u32(0xBAAD_F00D); // junk until the branch fn fixes it
        let a = b.text();
        a.nop();
        a.insn(Insn::Call(0));
        // landing: jump through the (now fixed) cell
        a.jmp_ind(Operand::Mem(Mem::abs(cell)));
        a.out(Operand::Imm(66)); // skipped
        a.halt();
        a.out(Operand::Imm(1)); // true target of the indirect jump
        a.halt();
        let mut unit = b.finish_unit().unwrap();
        let call_index = 1;
        let landing_index = 2;
        let true_target_index = 5;
        let layout = append_branch_function(&mut unit, (0, 0), true);
        unit.items[call_index].target = Some(layout.f_entry);

        let addrs = unit.addresses();
        let key = addrs[call_index] + 5;
        let hash = DisplacementHash::build(&[key], 9).unwrap();
        let (mul1, shift1, mul2, shift2, mask) = hash.params();
        let disp_base = unit.data_base + unit.data.len() as u32;
        for &d in hash.displacements() {
            unit.push_data_u32(d);
        }
        let t_base = unit.data_base + unit.data.len() as u32;
        let mut t = vec![0u32; hash.table_len()];
        t[hash.eval(key)] = key ^ addrs[landing_index];
        for v in &t {
            unit.push_data_u32(*v);
        }
        let r_base = unit.data_base + unit.data.len() as u32;
        let mut r = vec![(0u32, 0u32); hash.table_len()];
        r[hash.eval(key)] = (cell, 0xBAAD_F00D ^ addrs[true_target_index]);
        for (c, v) in &r {
            unit.push_data_u32(*c);
            unit.push_data_u32(*v);
        }
        patch_branch_function(
            &mut unit,
            &layout,
            &BranchFnParams {
                mul1,
                shift1,
                mul2,
                shift2,
                table_mask: mask,
                disp_base,
                t_base,
                r_base,
            },
        );
        let image = unit.encode().unwrap();
        let out = Machine::load(&image).run(10_000).unwrap();
        assert_eq!(out.output, vec![1], "cell must be fixed before the jump");
    }
}
