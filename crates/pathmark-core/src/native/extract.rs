//! Native watermark extraction (Section 4.2.3).
//!
//! A single-stepping tracer runs the marked executable on the secret
//! input and observes the instructions executed between the `begin` and
//! `end` addresses that bracket the watermark. The branch function is
//! identified as the function that *returns somewhere other than the
//! instruction after its call site*; each such mis-return is one
//! watermark hop `(a_i, b_i)`, and comparing the addresses yields the
//! bit (`b_i > a_i` ⇒ forward ⇒ 1).
//!
//! Two tracer variants are implemented, matching the paper's discussion
//! of the call-rerouting attack (Section 5.2.2, attack 5):
//!
//! * [`TracerKind::Simple`] identifies call sites by *which instruction
//!   transferred control to the branch function*. Rerouting a call
//!   through a thunk `Y: jmp f` makes this tracer attribute the hop to
//!   `Y` and fail.
//! * [`TracerKind::Smart`] tracks the branch function's *hash input* —
//!   the return address found on the stack — which rerouting cannot
//!   disturb (the tamper-proofing requires the hash input to stay
//!   intact), so the chain is recovered even from rerouted binaries.

use nativesim::cpu::Machine;
use nativesim::insn::Insn;
use nativesim::Image;

use crate::WatermarkError;

/// The `begin`/`end` bracket of the watermark (the paper supplies these
/// manually; the embedder's [`super::NativeMark`] records them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractionSpec {
    /// Address of the first watermark call.
    pub begin: u32,
    /// Address control reaches after the chain.
    pub end: u32,
}

/// Which tracer to extract with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracerKind {
    /// Attribute hops to the instruction that jumped into the branch
    /// function (defeated by call rerouting).
    Simple,
    /// Attribute hops to the branch function's hash input (robust).
    Smart,
}

/// One recorded machine step, with enough context for both tracers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Record {
    pc: u32,
    next_pc: u32,
    kind: Kind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Call { ret_addr: u32 },
    Ret,
    Other,
}

/// Extracts the watermark bits from a marked image.
///
/// # Errors
///
/// * [`WatermarkError::Sim`] if the program faults (e.g. after a
///   destructive attack) — any fault between start and `end` counts as
///   a broken program;
/// * [`WatermarkError::EndNotReached`] if `begin` or `end` never
///   executes within the budget;
/// * [`WatermarkError::NoBranchFunction`] if no mis-returning function
///   is observed between `begin` and `end`.
pub fn extract(
    image: &Image,
    input: &[u32],
    spec: ExtractionSpec,
    tracer: TracerKind,
    budget: u64,
) -> Result<Vec<bool>, WatermarkError> {
    // --- Phase 1: single-step, recording between begin and end.
    let mut machine = Machine::load(image).with_input(input.to_vec());
    let mut records: Vec<Record> = Vec::new();
    let mut recording = false;
    let mut reached_end = false;
    for _ in 0..budget {
        if machine.eip == spec.begin {
            recording = true;
        }
        if recording && machine.eip == spec.end {
            reached_end = true;
            break;
        }
        let step = machine.step()?;
        if recording {
            let kind = match step.insn {
                Insn::Call(_) | Insn::CallInd(_) => Kind::Call {
                    ret_addr: step.pc + step.insn.len() as u32,
                },
                Insn::Ret => Kind::Ret,
                _ => Kind::Other,
            };
            records.push(Record {
                pc: step.pc,
                next_pc: step.next_pc,
                kind,
            });
        }
        if step.halted {
            break;
        }
    }
    if !reached_end {
        return Err(WatermarkError::EndNotReached);
    }

    // --- Phase 2: shadow-stack walk to find mis-returns.
    // Frames: (expected return address, call pc, immediate call target).
    let mut shadow: Vec<(u32, u32, u32)> = Vec::new();
    // Mis-returns in order: (frame, landing address).
    let mut mis_returns: Vec<((u32, u32, u32), u32)> = Vec::new();
    for r in &records {
        match r.kind {
            Kind::Call { ret_addr } => shadow.push((ret_addr, r.pc, r.next_pc)),
            Kind::Ret => {
                if let Some(frame) = shadow.pop() {
                    if r.next_pc != frame.0 {
                        mis_returns.push((frame, r.next_pc));
                    }
                }
            }
            Kind::Other => {}
        }
    }
    if mis_returns.is_empty() {
        return Err(WatermarkError::NoBranchFunction);
    }

    // --- Phase 3: pair call sites with landings per tracer.
    let hops: Vec<(u32, u32)> = match tracer {
        TracerKind::Smart => {
            // a_i = hash input - call length; the hash input is the
            // expected (original) return address of the mis-returning
            // frame, which rerouting cannot change.
            mis_returns
                .iter()
                .map(|&((expected_ret, _, _), landing)| (expected_ret - 5, landing))
                .collect()
        }
        TracerKind::Simple => {
            // The branch function's entry is taken to be the immediate
            // target of the first mis-returning frame's call; hops are
            // attributed to whichever instruction transferred control
            // there.
            let f_entry = mis_returns[0].0 .2;
            let mut entries: Vec<u32> = Vec::new();
            for w in records.windows(2) {
                if w[1].pc == f_entry && w[0].next_pc == f_entry {
                    entries.push(w[0].pc);
                }
            }
            entries
                .into_iter()
                .zip(mis_returns.iter().map(|&(_, landing)| landing))
                .collect()
        }
    };

    // --- Phase 4: bits. Hop i lands on call site i+1; the final hop
    // lands on `end` and terminates the chain (it carries no bit).
    let mut bits = Vec::new();
    for &(a, b) in &hops {
        if b == spec.end {
            break;
        }
        bits.push(b > a);
    }
    Ok(bits)
}

/// Automatic-framing extraction — the paper's stated next step
/// ("we expect to augment the implementation … to use a framing scheme
/// that would allow these addresses to be identified automatically",
/// Section 4.2.3). No `begin`/`end` bracket is supplied: the tracer runs
/// the whole program, detects every branch-function hop by shadow-stack
/// mis-returns, and recognizes the watermark chain *structurally* — a
/// maximal run of hops in which each hop lands exactly on the next hop's
/// call site. Attribution uses the hash input (the [`TracerKind::Smart`]
/// rule), so this also works on rerouted binaries.
///
/// Returns the bits together with the discovered bracket.
///
/// # Errors
///
/// * [`WatermarkError::Sim`] on simulator faults;
/// * [`WatermarkError::NoBranchFunction`] if no chain of at least two
///   hops is observed.
pub fn extract_auto(
    image: &Image,
    input: &[u32],
    budget: u64,
) -> Result<(Vec<bool>, ExtractionSpec), WatermarkError> {
    let mut machine = Machine::load(image).with_input(input.to_vec());
    // Shadow stack of (expected return address, call pc).
    let mut shadow: Vec<(u32, u32)> = Vec::new();
    // (hash-input call site, landing), in execution order.
    let mut hops: Vec<(u32, u32)> = Vec::new();
    for _ in 0..budget {
        let step = machine.step()?;
        match step.insn {
            Insn::Call(_) | Insn::CallInd(_) => {
                shadow.push((step.pc + step.insn.len() as u32, step.pc));
            }
            Insn::Ret => {
                if let Some((expected, _)) = shadow.pop() {
                    if step.next_pc != expected {
                        hops.push((expected - 5, step.next_pc));
                    }
                }
            }
            _ => {}
        }
        if step.halted {
            break;
        }
    }
    // Find the LONGEST maximal chain: hop i is chained to hop i+1 when
    // it lands exactly on hop i+1's call site. Decoy hops (ordinary
    // jumps obfuscated through the branch function) form chains of
    // length one and are skipped; the watermark is the long chain.
    let mut best: Option<(usize, usize)> = None;
    let mut start = 0usize;
    while start < hops.len() {
        let mut end = start;
        while end + 1 < hops.len() && hops[end].1 == hops[end + 1].0 {
            end += 1;
        }
        if end > start && best.is_none_or(|(s, e)| end - start > e - s) {
            best = Some((start, end));
        }
        start = end + 1;
    }
    match best {
        Some((start, end)) => {
            // Chain of end-start+1 hops: the last hop's landing is the
            // `end` bracket; every earlier hop carries one bit.
            let bits = hops[start..end]
                .iter()
                .map(|&(a, b)| b > a)
                .collect::<Vec<bool>>();
            let spec = ExtractionSpec {
                begin: hops[start].0,
                end: hops[end].1,
            };
            Ok((bits, spec))
        }
        None => Err(WatermarkError::NoBranchFunction),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::WatermarkKey;
    use crate::native::embed::tests::host_image;
    use crate::native::{embed_native, NativeConfig};

    fn key() -> WatermarkKey {
        WatermarkKey::new(0xFACE, vec![5])
    }

    fn round_trip(bits: &[bool], tracer: TracerKind) -> Vec<bool> {
        let image = host_image();
        let mark = embed_native(&image, bits, &key(), &NativeConfig::default()).unwrap();
        extract(
            &mark.image,
            &key().native_input(),
            ExtractionSpec {
                begin: mark.begin,
                end: mark.end,
            },
            tracer,
            10_000_000,
        )
        .unwrap()
    }

    #[test]
    fn embed_extract_round_trip_both_tracers() {
        let patterns: Vec<Vec<bool>> = vec![
            vec![true],
            vec![false],
            vec![true, false, true, true],
            vec![false, false, false, false, true, true, true, true],
            {
                let mut rng = pathmark_crypto::Prng::from_seed(8);
                (0..32).map(|_| rng.chance(0.5)).collect()
            },
        ];
        for bits in patterns {
            assert_eq!(round_trip(&bits, TracerKind::Simple), bits);
            assert_eq!(round_trip(&bits, TracerKind::Smart), bits);
        }
    }

    #[test]
    fn unmarked_image_has_no_branch_function() {
        let image = host_image();
        // Find some addresses to bracket: entry and entry+1 will never
        // both be instruction starts in the path; just use text range.
        let err = extract(
            &image,
            &[5],
            ExtractionSpec {
                begin: image.entry,
                end: image.entry + 7, // the mov after `in`
            },
            TracerKind::Smart,
            1_000_000,
        )
        .unwrap_err();
        assert!(matches!(err, WatermarkError::NoBranchFunction));
    }

    #[test]
    fn auto_framing_matches_manual_extraction() {
        let image = host_image();
        let bits = vec![true, false, false, true, true, false, true, false];
        let mark = embed_native(&image, &bits, &key(), &NativeConfig::default()).unwrap();
        let (auto_bits, spec) =
            extract_auto(&mark.image, &key().native_input(), 10_000_000).unwrap();
        assert_eq!(auto_bits, bits);
        assert_eq!(spec.begin, mark.begin, "discovered begin matches");
        assert_eq!(spec.end, mark.end, "discovered end matches");
    }

    #[test]
    fn decoy_jumps_hide_the_chain_without_breaking_extraction() {
        let image = host_image();
        let bits = vec![true, true, false, false, true, false];
        let config = NativeConfig {
            decoy_jumps: 4,
            ..NativeConfig::default()
        };
        let mark = embed_native(&image, &bits, &key(), &config).unwrap();
        assert!(mark.decoys >= 2, "decoys were installed: {}", mark.decoys);
        // Program behavior intact despite decoys on hot paths.
        let baseline = nativesim::cpu::Machine::load(&image)
            .with_input(vec![5])
            .run(10_000_000)
            .unwrap();
        let marked_run = nativesim::cpu::Machine::load(&mark.image)
            .with_input(vec![5])
            .run(100_000_000)
            .unwrap();
        assert_eq!(baseline.output, marked_run.output);
        // Manual extraction with the bracket is exact.
        let manual = extract(
            &mark.image,
            &key().native_input(),
            ExtractionSpec {
                begin: mark.begin,
                end: mark.end,
            },
            TracerKind::Smart,
            100_000_000,
        )
        .unwrap();
        assert_eq!(manual, bits);
        // Auto-framing skips the decoy hops and finds the long chain.
        let (auto_bits, spec) =
            extract_auto(&mark.image, &key().native_input(), 100_000_000).unwrap();
        assert_eq!(auto_bits, bits);
        assert_eq!(spec.begin, mark.begin);
    }

    #[test]
    fn auto_framing_finds_nothing_in_unmarked_binaries() {
        let image = host_image();
        let err = extract_auto(&image, &[5], 10_000_000).unwrap_err();
        assert!(matches!(err, WatermarkError::NoBranchFunction));
    }

    #[test]
    fn wrong_bracket_reports_end_not_reached() {
        let image = host_image();
        let err = extract(
            &image,
            &[5],
            ExtractionSpec {
                begin: image.entry,
                end: 0x0700_0000, // never executed
            },
            TracerKind::Smart,
            100_000,
        )
        .unwrap_err();
        assert!(matches!(err, WatermarkError::EndNotReached));
    }
}
