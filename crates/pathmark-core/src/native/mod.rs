//! Branch-function watermarking for native executables (Section 4).
//!
//! The native realization replaces unconditional jumps with calls to a
//! **branch function** — a function that computes its real return target
//! by hashing its return address through a perfect hash into an XOR
//! table. A watermark of `k` bits is embedded as a chain of `k+1` such
//! calls threaded through the text section, where each *forward* hop
//! (`addr(a_{i+1}) > addr(a_i)`) encodes a 1 and each *backward* hop a 0
//! (Section 4.2). The branch function also carries the tamper-proofing
//! of Section 4.3: each call incrementally fills in the target cells of
//! indirect jumps elsewhere in the program, so removing or displacing
//! the watermark machinery breaks the program.
//!
//! * [`profile_image`] — single-step execution profiles (PLTO profiled
//!   SPEC training runs the same way).
//! * [`embed_native`] — the embedder.
//! * [`extract`] — watermark extraction with the paper's two tracers:
//!   the *simple* tracer (defeated by call-rerouting) and the *smart*
//!   tracer that tracks the branch function's hash input (Section 5.2.2,
//!   attack 5).

mod branch_fn;
mod embed;
mod extract;
mod profile;

pub use embed::{embed_native, NativeConfig, NativeConfigBuilder, NativeMark};
pub use extract::{extract, extract_auto, ExtractionSpec, TracerKind};
pub use profile::{profile_image, Profile};
