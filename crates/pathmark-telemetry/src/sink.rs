//! Telemetry backends: where spans and counters go.
//!
//! Three sinks cover the pipeline's needs:
//!
//! * [`NullSink`] — discards everything (the [`crate::Telemetry::null`]
//!   handle short-circuits before even reaching a sink, so this type
//!   mostly exists as the trait's do-nothing reference point);
//! * [`MemorySink`] — lock-guarded in-memory aggregation: per-stage
//!   count / total / min / max and a fixed-bucket latency histogram,
//!   plus the counters. Renders a stable JSON summary;
//! * [`JsonlSink`] — streams one JSON line per event to any
//!   `Write + Send` target (a metrics file, a pipe, a buffer).

use std::io::Write;
use std::sync::Mutex;

use crate::{Counter, Stage};

/// Histogram buckets per stage. Bucket `i` holds spans with
/// `nanos < 1µs · 4^(i+1)`; the last bucket is unbounded. Sixteen
/// power-of-4 buckets span 1µs to ~4.6s, which covers everything from
/// one XTEA block to a full attacked-workload trace.
pub const NUM_BUCKETS: usize = 16;

/// A telemetry backend. Implementations must be thread-safe: the fleet
/// records from every worker concurrently.
pub trait Sink: Send + Sync {
    /// Records one completed span of `stage`.
    fn record_span(&self, stage: Stage, nanos: u64);

    /// Bumps `counter` by `delta`.
    fn record_count(&self, counter: Counter, delta: u64);

    /// Flushes buffered output, if the sink buffers.
    fn flush(&self) {}
}

/// Discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record_span(&self, _stage: Stage, _nanos: u64) {}
    fn record_count(&self, _counter: Counter, _delta: u64) {}
}

/// Aggregated statistics of one stage in a [`MemorySink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSummary {
    /// Spans recorded.
    pub count: u64,
    /// Sum of span durations in nanoseconds.
    pub total_nanos: u64,
    /// Shortest span, or 0 when none were recorded.
    pub min_nanos: u64,
    /// Longest span.
    pub max_nanos: u64,
    /// Fixed power-of-4 latency buckets (see [`NUM_BUCKETS`]).
    pub buckets: [u64; NUM_BUCKETS],
}

impl StageSummary {
    const fn empty() -> StageSummary {
        StageSummary {
            count: 0,
            total_nanos: 0,
            min_nanos: 0,
            max_nanos: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }

    fn record(&mut self, nanos: u64) {
        self.count += 1;
        self.total_nanos = self.total_nanos.saturating_add(nanos);
        self.min_nanos = if self.count == 1 {
            nanos
        } else {
            self.min_nanos.min(nanos)
        };
        self.max_nanos = self.max_nanos.max(nanos);
        self.buckets[bucket_index(nanos)] += 1;
    }

    /// Mean span duration in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        self.total_nanos.checked_div(self.count).unwrap_or(0)
    }
}

/// The histogram bucket for a span of `nanos`.
pub(crate) fn bucket_index(nanos: u64) -> usize {
    let mut bound = 1_000u64; // 1µs
    for i in 0..NUM_BUCKETS - 1 {
        if nanos < bound {
            return i;
        }
        bound = bound.saturating_mul(4);
    }
    NUM_BUCKETS - 1
}

/// In-memory aggregating sink: per-stage summaries plus counters.
///
/// All state sits behind one `Mutex` over two fixed arrays, so
/// recording is a short critical section and reading is a snapshot.
#[derive(Debug, Default)]
pub struct MemorySink {
    state: Mutex<MemoryState>,
}

#[derive(Debug)]
struct MemoryState {
    stages: [StageSummary; Stage::ALL.len()],
    counters: [u64; Counter::ALL.len()],
}

impl Default for MemoryState {
    fn default() -> MemoryState {
        MemoryState {
            stages: [StageSummary::empty(); Stage::ALL.len()],
            counters: [0; Counter::ALL.len()],
        }
    }
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Snapshot of one stage's aggregate.
    pub fn stage(&self, stage: Stage) -> StageSummary {
        self.state.lock().expect("telemetry lock").stages[stage.index()]
    }

    /// Current value of one counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.state.lock().expect("telemetry lock").counters[counter.index()]
    }

    /// Renders the whole sink as one stable JSON object (stages with at
    /// least one span, counters with a nonzero value; fixed field
    /// order). This is the CLI's `--metrics-format summary` payload.
    pub fn render_json(&self) -> String {
        let state = self.state.lock().expect("telemetry lock");
        let mut out = String::from("{\"stages\":{");
        let mut first = true;
        for stage in Stage::ALL {
            let s = &state.stages[stage.index()];
            if s.count == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{},\"buckets\":[{}]}}",
                stage.as_str(),
                s.count,
                s.total_nanos,
                s.min_nanos,
                s.max_nanos,
                s.mean_nanos(),
                s.buckets
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            ));
        }
        out.push_str("},\"counters\":{");
        let mut first = true;
        for counter in Counter::ALL {
            let v = state.counters[counter.index()];
            if v == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{v}", counter.as_str()));
        }
        out.push_str("}}");
        out
    }
}

impl Sink for MemorySink {
    fn record_span(&self, stage: Stage, nanos: u64) {
        self.state.lock().expect("telemetry lock").stages[stage.index()].record(nanos);
    }

    fn record_count(&self, counter: Counter, delta: u64) {
        self.state.lock().expect("telemetry lock").counters[counter.index()] += delta;
    }
}

/// Streams one JSON line per event to a `Write + Send` target.
///
/// Span lines look like `{"t":"span","stage":"scan","ns":1234}`;
/// counter lines like `{"t":"count","counter":"cache_hit","delta":1}`.
/// Lines from concurrent workers interleave whole (the writer sits
/// behind a `Mutex`), so the output is always valid JSONL.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Wraps any writer.
    pub fn new(out: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// Creates (truncating) a metrics file at `path`.
    ///
    /// # Errors
    ///
    /// Whatever [`std::fs::File::create`] reports.
    pub fn create(path: &str) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink::new(Box::new(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        ))))
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().expect("telemetry lock");
        // Telemetry must never fail the pipeline: a full disk degrades
        // to lost metrics, not a lost watermark.
        let _ = writeln!(out, "{line}");
    }
}

impl Sink for JsonlSink {
    fn record_span(&self, stage: Stage, nanos: u64) {
        self.write_line(&format!(
            "{{\"t\":\"span\",\"stage\":\"{}\",\"ns\":{nanos}}}",
            stage.as_str()
        ));
    }

    fn record_count(&self, counter: Counter, delta: u64) {
        self.write_line(&format!(
            "{{\"t\":\"count\",\"counter\":\"{}\",\"delta\":{delta}}}",
            counter.as_str()
        ));
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("telemetry lock").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(999), 0);
        assert_eq!(bucket_index(1_000), 1); // 1µs
        assert_eq!(bucket_index(3_999), 1);
        assert_eq!(bucket_index(4_000), 2);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        // Buckets cover every u64 without panicking.
        for shift in 0..64 {
            let _ = bucket_index(1u64 << shift);
        }
    }

    #[test]
    fn memory_sink_aggregates() {
        let sink = MemorySink::new();
        for nanos in [100u64, 2_000, 50_000] {
            sink.record_span(Stage::ScanRoll, nanos);
        }
        let s = sink.stage(Stage::ScanRoll);
        assert_eq!(s.count, 3);
        assert_eq!(s.total_nanos, 52_100);
        assert_eq!(s.min_nanos, 100);
        assert_eq!(s.max_nanos, 50_000);
        assert_eq!(s.mean_nanos(), 52_100 / 3);
        assert_eq!(s.buckets.iter().sum::<u64>(), 3);
        assert_eq!(sink.stage(Stage::Vote).count, 0);

        sink.record_count(Counter::CacheHit, 2);
        sink.record_count(Counter::CacheHit, 3);
        assert_eq!(sink.counter(Counter::CacheHit), 5);
        assert_eq!(sink.counter(Counter::CacheMiss), 0);
    }

    #[test]
    fn memory_sink_json_is_selective_and_ordered() {
        let sink = MemorySink::new();
        assert_eq!(sink.render_json(), "{\"stages\":{},\"counters\":{}}");
        sink.record_span(Stage::Trace, 5_000);
        sink.record_count(Counter::CacheMiss, 1);
        let json = sink.render_json();
        assert!(json.contains("\"trace\":{\"count\":1,\"total_ns\":5000"), "{json}");
        assert!(json.contains("\"cache_miss\":1"), "{json}");
        assert!(!json.contains("\"vote\""), "empty stages omitted: {json}");
    }

    /// A clonable writer tests can read back.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_emits_one_line_per_event() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(Box::new(buf.clone()));
        sink.record_span(Stage::Merge, 42);
        sink.record_count(Counter::PoolPanic, 1);
        sink.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "{\"t\":\"span\",\"stage\":\"merge\",\"ns\":42}",
                "{\"t\":\"count\",\"counter\":\"pool_panic\",\"delta\":1}",
            ]
        );
    }

    #[test]
    fn null_sink_is_inert() {
        let sink = NullSink;
        sink.record_span(Stage::Trace, 1);
        sink.record_count(Counter::CacheHit, 1);
        sink.flush();
    }
}
