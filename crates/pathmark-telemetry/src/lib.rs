//! Stage-level tracing and metrics for the watermarking pipeline.
//!
//! The paper's evaluation (Sections 5–6) is entirely about measured
//! costs — trace length, embedding overhead, recognition time under
//! attack — so the reproduction needs a way to observe where those
//! costs go. This crate is that observability layer, built on `std`
//! alone (the workspace is offline):
//!
//! * [`Stage`] / [`Counter`] — the fixed vocabulary of pipeline spans
//!   (trace, encrypt, codegen, scan, vote, merge, …) and event counters
//!   (cache hit/miss, pool panics, …);
//! * [`Sink`] — the pluggable backend trait, with three provided
//!   implementations: the no-op [`NullSink`], the aggregating
//!   [`MemorySink`] (count / total / min / max plus a fixed-bucket
//!   latency histogram per stage), and the streaming [`JsonlSink`];
//! * [`Telemetry`] — the cheap, clonable handle the pipeline carries.
//!   A disabled handle ([`Telemetry::null`]) never reads the clock and
//!   never dispatches, so uninstrumented callers pay nothing beyond a
//!   branch on an `Option`.
//!
//! Telemetry is strictly an *observer*: it must never perturb the
//! watermark. The integration suite asserts embed/recognize output is
//! bit-identical with any sink attached.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use pathmark_telemetry::{Counter, MemorySink, Stage, Telemetry};
//!
//! let sink = Arc::new(MemorySink::new());
//! let telemetry = Telemetry::new(sink.clone());
//!
//! let answer = telemetry.time(Stage::ScanRoll, || 6 * 7);
//! telemetry.count(Counter::CacheMiss, 1);
//!
//! assert_eq!(answer, 42);
//! assert_eq!(sink.stage(Stage::ScanRoll).count, 1);
//! assert_eq!(sink.counter(Counter::CacheMiss), 1);
//! ```

mod sink;

pub use sink::{JsonlSink, MemorySink, NullSink, Sink, StageSummary, NUM_BUCKETS};

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// A pipeline stage whose latency is measured as a span.
///
/// The vocabulary is fixed so sinks can preallocate per-stage slots and
/// so metrics files from different runs line up without a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Executing the program on the secret input (tracing).
    Trace,
    /// Splitting the watermark into CRT statements and cycling to the
    /// configured redundancy.
    Split,
    /// Enumerating and XTEA-encrypting one piece into a 64-bit block.
    Encrypt,
    /// Generating one piece's branch-code snippet (loop or condition).
    Codegen,
    /// Splicing the planned snippets in and re-verifying the program.
    Verify,
    /// The window-roll half of the candidate scan: sliding the 64-bit
    /// window over the trace bits, running the constant/periodic
    /// pre-rejects, and accumulating the survivor table. On the fused
    /// path this is the scan work interleaved into the trace sink.
    ScanRoll,
    /// The decryption half of the candidate scan: batched XTEA over the
    /// distinct surviving window values plus candidate decoding.
    ScanDecrypt,
    /// The `W mod p_i` vote prefilter.
    Vote,
    /// The G/H consistency graphs.
    Graph,
    /// Generalized CRT recombination of the survivors.
    Crt,
    /// Merging per-shard candidate multisets.
    Merge,
    /// Time a fleet job spent queued before a worker picked it up.
    QueueWait,
    /// Wall-clock time of one fleet job on its worker.
    JobRun,
    /// Exponential-backoff sleep between retry attempts of a fleet job.
    Backoff,
    /// Translating a program into the compiled execution tier's
    /// flattened threaded-code form (once per session program).
    Compile,
}

impl Stage {
    /// Every stage, in a fixed order (the [`MemorySink`] slot order).
    pub const ALL: [Stage; 15] = [
        Stage::Trace,
        Stage::Split,
        Stage::Encrypt,
        Stage::Codegen,
        Stage::Verify,
        Stage::ScanRoll,
        Stage::ScanDecrypt,
        Stage::Vote,
        Stage::Graph,
        Stage::Crt,
        Stage::Merge,
        Stage::QueueWait,
        Stage::JobRun,
        Stage::Backoff,
        Stage::Compile,
    ];

    /// The stage's wire name (used in JSONL records and summaries).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Trace => "trace",
            Stage::Split => "split",
            Stage::Encrypt => "encrypt",
            Stage::Codegen => "codegen",
            Stage::Verify => "verify",
            Stage::ScanRoll => "scan_roll",
            Stage::ScanDecrypt => "scan_decrypt",
            Stage::Vote => "vote",
            Stage::Graph => "graph",
            Stage::Crt => "crt",
            Stage::Merge => "merge",
            Stage::QueueWait => "queue_wait",
            Stage::JobRun => "job_run",
            Stage::Backoff => "backoff",
            Stage::Compile => "compile",
        }
    }

    /// The stage's slot in [`Stage::ALL`].
    pub fn index(self) -> usize {
        Stage::ALL.iter().position(|&s| s == self).expect("stage listed")
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Trace-cache lookups served from the cache.
    CacheHit,
    /// Trace-cache lookups that had to trace.
    CacheMiss,
    /// Fleet jobs that escaped with a panic.
    PoolPanic,
    /// Sliding windows examined by the candidate scan.
    WindowsScanned,
    /// Windows bypassed by the periodic-run pre-reject: offsets inside
    /// constant (period-1) or longer-period stretches that were
    /// bulk-accounted without being rolled through individually.
    WindowsSkipped,
    /// Windows that survived the pre-reject and reached the cipher.
    WindowsDecrypted,
    /// Windows that decoded into a candidate statement.
    CandidatesDecoded,
    /// Watermark pieces inserted by the embedder.
    PiecesEmbedded,
    /// Fleet job attempts re-run after a transient failure.
    Retry,
    /// Fleet jobs that exceeded their deadline and were abandoned.
    JobTimeout,
    /// Pool workers replaced after a timeout abandoned (or a panic
    /// killed) their thread.
    WorkerRespawn,
    /// Session decode-cache lookups served from the cache (the window
    /// value's decode was memoized; no cipher call).
    DecodeCacheHit,
    /// Session decode-cache lookups that missed and decrypted.
    DecodeCacheMiss,
    /// Session decode-cache entries evicted to stay under the cap.
    DecodeCacheEvict,
    /// Serve requests admitted past the admission gate.
    JobAccepted,
    /// Serve requests rejected by the admission gate (load shed).
    JobShed,
    /// Serve requests rejected by per-tenant fairness: the gate had
    /// room, but the tenant was already at its in-flight sub-budget.
    TenantShed,
    /// Serve jobs served from the journal or replayed on restart
    /// instead of being executed fresh.
    JobResumed,
    /// Serve session-registry lookups served from a warm session.
    SessionHit,
    /// Serve session-registry lookups that had to build a session.
    SessionMiss,
    /// Serve journal rotations: settled intents folded into the
    /// compacted segment and the live intents file truncated.
    JournalRotation,
    /// Serve report-sidecar rotations: settled outcome lines folded
    /// into the compacted report segment and the `.partial` sidecar
    /// truncated.
    ReportRotation,
    /// Runs where the compiled execution tier was selected but the
    /// predecoded engine ran instead (program over the compile budget,
    /// or the trace configuration needs block/snapshot recording).
    CompileFallback,
}

impl Counter {
    /// Every counter, in a fixed order (the [`MemorySink`] slot order).
    pub const ALL: [Counter; 23] = [
        Counter::CacheHit,
        Counter::CacheMiss,
        Counter::PoolPanic,
        Counter::WindowsScanned,
        Counter::WindowsSkipped,
        Counter::WindowsDecrypted,
        Counter::CandidatesDecoded,
        Counter::PiecesEmbedded,
        Counter::Retry,
        Counter::JobTimeout,
        Counter::WorkerRespawn,
        Counter::DecodeCacheHit,
        Counter::DecodeCacheMiss,
        Counter::DecodeCacheEvict,
        Counter::JobAccepted,
        Counter::JobShed,
        Counter::TenantShed,
        Counter::JobResumed,
        Counter::SessionHit,
        Counter::SessionMiss,
        Counter::JournalRotation,
        Counter::ReportRotation,
        Counter::CompileFallback,
    ];

    /// The counter's wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Counter::CacheHit => "cache_hit",
            Counter::CacheMiss => "cache_miss",
            Counter::PoolPanic => "pool_panic",
            Counter::WindowsScanned => "windows_scanned",
            Counter::WindowsSkipped => "windows_skipped",
            Counter::WindowsDecrypted => "windows_decrypted",
            Counter::CandidatesDecoded => "candidates_decoded",
            Counter::PiecesEmbedded => "pieces_embedded",
            Counter::Retry => "retry",
            Counter::JobTimeout => "job_timeout",
            Counter::WorkerRespawn => "worker_respawn",
            Counter::DecodeCacheHit => "decode_cache_hit",
            Counter::DecodeCacheMiss => "decode_cache_miss",
            Counter::DecodeCacheEvict => "decode_cache_evict",
            Counter::JobAccepted => "accepted",
            Counter::JobShed => "shed",
            Counter::TenantShed => "tenant_shed",
            Counter::JobResumed => "resumed",
            Counter::SessionHit => "session_hit",
            Counter::SessionMiss => "session_miss",
            Counter::JournalRotation => "journal_rotation",
            Counter::ReportRotation => "report_rotation",
            Counter::CompileFallback => "compile_fallback",
        }
    }

    /// The counter's slot in [`Counter::ALL`].
    pub fn index(self) -> usize {
        Counter::ALL.iter().position(|&c| c == self).expect("counter listed")
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The handle the pipeline carries: either disabled (the default) or
/// backed by a shared [`Sink`].
///
/// Cloning is cheap (an `Option<Arc>`), so every session, worker, and
/// shard can hold its own handle onto one sink. When disabled, no
/// clock is read and no sink method is called.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<dyn Sink>>,
}

impl Telemetry {
    /// The disabled handle: records nothing, costs nothing.
    pub fn null() -> Telemetry {
        Telemetry { sink: None }
    }

    /// A handle backed by `sink`.
    pub fn new(sink: Arc<dyn Sink>) -> Telemetry {
        Telemetry { sink: Some(sink) }
    }

    /// Whether a sink is attached.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Runs `f`, recording its wall-clock duration as a span of `stage`
    /// when enabled. Disabled handles call `f` directly without reading
    /// the clock.
    pub fn time<T>(&self, stage: Stage, f: impl FnOnce() -> T) -> T {
        match &self.sink {
            None => f(),
            Some(sink) => {
                let started = Instant::now();
                let result = f();
                sink.record_span(stage, elapsed_nanos(started));
                result
            }
        }
    }

    /// Starts a span guard for `stage`; the span is recorded when the
    /// guard drops. Use [`Telemetry::time`] where a closure fits — the
    /// guard exists for spans crossing `?` early returns.
    pub fn start(&self, stage: Stage) -> Span<'_> {
        Span {
            telemetry: self,
            stage,
            started: self.sink.as_ref().map(|_| Instant::now()),
        }
    }

    /// Records an already-measured span (for durations measured across
    /// threads, e.g. queue wait).
    pub fn record(&self, stage: Stage, nanos: u64) {
        if let Some(sink) = &self.sink {
            sink.record_span(stage, nanos);
        }
    }

    /// Bumps `counter` by `delta`.
    pub fn count(&self, counter: Counter, delta: u64) {
        if let Some(sink) = &self.sink {
            sink.record_count(counter, delta);
        }
    }

    /// Flushes the attached sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.flush();
        }
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.enabled() {
            "Telemetry(enabled)"
        } else {
            "Telemetry(null)"
        })
    }
}

/// A span in progress; records its duration on drop. Created by
/// [`Telemetry::start`].
pub struct Span<'a> {
    telemetry: &'a Telemetry,
    stage: Stage,
    started: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            self.telemetry.record(self.stage, elapsed_nanos(started));
        }
    }
}

fn elapsed_nanos(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_and_counter_indices_match_their_tables() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i, "{stage}");
        }
        for (i, counter) in Counter::ALL.iter().enumerate() {
            assert_eq!(counter.index(), i, "{counter}");
        }
        // Wire names are unique.
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        names.extend(Counter::ALL.iter().map(|c| c.as_str()));
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn null_handle_runs_the_closure_and_records_nothing() {
        let t = Telemetry::null();
        assert!(!t.enabled());
        assert_eq!(t.time(Stage::ScanRoll, || 7), 7);
        t.count(Counter::CacheHit, 3);
        t.record(Stage::Merge, 1000);
        drop(t.start(Stage::Vote));
        t.flush();
    }

    #[test]
    fn enabled_handle_dispatches_spans_and_counts() {
        let sink = Arc::new(MemorySink::new());
        let t = Telemetry::new(sink.clone());
        assert!(t.enabled());
        assert_eq!(t.time(Stage::ScanDecrypt, || "x"), "x");
        {
            let _guard = t.start(Stage::Vote);
        }
        t.record(Stage::Merge, 2_500);
        t.count(Counter::PoolPanic, 2);
        assert_eq!(sink.stage(Stage::ScanDecrypt).count, 1);
        assert_eq!(sink.stage(Stage::Vote).count, 1);
        assert_eq!(sink.stage(Stage::Merge).count, 1);
        assert_eq!(sink.stage(Stage::Merge).total_nanos, 2_500);
        assert_eq!(sink.counter(Counter::PoolPanic), 2);
    }

    #[test]
    fn clones_share_one_sink() {
        let sink = Arc::new(MemorySink::new());
        let t = Telemetry::new(sink.clone());
        let t2 = t.clone();
        t.count(Counter::CacheHit, 1);
        t2.count(Counter::CacheHit, 1);
        assert_eq!(sink.counter(Counter::CacheHit), 2);
    }
}
