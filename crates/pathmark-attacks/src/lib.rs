//! Semantics-preserving attacks against path-based watermarks.
//!
//! The paper evaluates its watermarks against two attack families
//! (Section 5):
//!
//! * [`java`] — distortive bytecode transformations in the spirit of
//!   SandMark's attack library (Section 5.1.2): random branch insertion
//!   (the headline attack of Figures 8(c,d)), no-op insertion,
//!   branch-sense inversion, basic-block reordering and splitting, block
//!   copying, and the "class encryption" attack that denies
//!   instrumentation access to the bytecode.
//! * [`native`] — binary-rewriting attacks on marked executables
//!   (Section 5.2.2): no-op insertion, branch-sense inversion, double
//!   watermarking, bypassing the branch function with same-size jumps,
//!   and rerouting branch-function calls through thunks.
//!
//! Every attack here preserves the semantics of *unmarked* programs;
//! what happens to *marked* programs (the watermark dies, or the
//! tamper-proofing kills the program) is exactly what the resilience
//! experiments measure.

pub mod java;
pub mod native;
