//! Binary-rewriting attacks on native executables (Section 5.2.2).
//!
//! The first three attacks model "a standard binary manipulation tool":
//! they lift the image with [`Unit::from_image`], transform, and
//! re-encode — fixing up all the *direct* control transfers they can
//! see, exactly as a real rewriter would, and necessarily leaving the
//! branch function's hashed absolute addresses stale. The last two
//! attacks are surgical, byte-level edits aimed specifically at the
//! branch function.

use nativesim::cpu::Machine;
use nativesim::encode::{decode, encode};
use nativesim::insn::Insn;
use nativesim::rewrite::{Item, Unit};
use nativesim::{Image, SimError};
use pathmark_crypto::Prng;

/// Attack 1: insert `count` no-ops at random instruction boundaries and
/// re-link. Every address after each no-op shifts.
///
/// # Errors
///
/// Propagates lift/encode failures from the rewriter.
pub fn insert_nops(image: &Image, count: usize, seed: u64) -> Result<Image, SimError> {
    let mut unit = Unit::from_image(image)?;
    let mut rng = Prng::from_seed(seed ^ 0x4E0F);
    for _ in 0..count {
        let at = rng.index(unit.items.len() + 1);
        unit.insert(at, Item::plain(Insn::Nop));
    }
    unit.encode()
}

/// Attack 2: invert the sense of every conditional branch, exchanging
/// taken/fall-through:
///
/// ```text
/// jcc T            j!cc F
/// F: …    ==>      jmp T
///                  F: …
/// ```
///
/// # Errors
///
/// Propagates lift/encode failures from the rewriter.
pub fn invert_branch_senses(image: &Image, seed: u64) -> Result<Image, SimError> {
    let mut unit = Unit::from_image(image)?;
    let mut rng = Prng::from_seed(seed ^ 0x1177);
    let mut k = 0;
    while k < unit.items.len() {
        if let Insn::Jcc(cc, _) = unit.items[k].insn {
            if rng.chance(0.99) {
                let taken = unit.items[k].target.expect("jcc has an index target");
                if taken != k + 1 {
                    // jmp to the original taken target, placed after the
                    // inverted jcc; the jcc now skips over it.
                    unit.insert(
                        k + 1,
                        Item {
                            insn: Insn::Jmp(0),
                            target: Some(if taken > k + 1 { taken + 1 } else { taken }),
                            imm_fix: nativesim::rewrite::ImmFix::None,
                        },
                    );
                    unit.items[k].insn = Insn::Jcc(cc.negate(), 0);
                    unit.items[k].target = Some(k + 2);
                    k += 1; // skip the inserted jmp
                }
            }
        }
        k += 1;
    }
    unit.encode()
}

/// Attack 3: double watermarking — run the embedder again over an
/// already-marked image with a fresh key, hoping to obscure the original
/// mark.
///
/// # Errors
///
/// Whatever the second embedding reports.
pub fn double_watermark(
    image: &Image,
    bits: &[bool],
    key: &pathmark_core::key::WatermarkKey,
    config: &pathmark_core::native::NativeConfig,
) -> Result<Image, pathmark_core::WatermarkError> {
    Ok(pathmark_core::native::embed_native(image, bits, key, config)?.image)
}

/// A branch-function call site an attacker discovered by tracing:
/// the call's address and the address the branch function actually
/// routed it to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedHop {
    /// Address of the `call` instruction.
    pub call_site: u32,
    /// Where control continued after the branch function returned.
    pub landing: u32,
}

/// Traces the program like an attacker would (shadow-stack mis-return
/// detection) and reports every observed branch-function hop, in order.
///
/// # Errors
///
/// Propagates simulator faults.
pub fn discover_hops(
    image: &Image,
    input: &[u32],
    budget: u64,
) -> Result<Vec<ObservedHop>, SimError> {
    let mut machine = Machine::load(image).with_input(input.to_vec());
    let mut shadow: Vec<(u32, u32)> = Vec::new(); // (expected ret, call pc)
    let mut hops = Vec::new();
    for _ in 0..budget {
        let step = machine.step()?;
        match step.insn {
            Insn::Call(_) | Insn::CallInd(_) => {
                shadow.push((step.pc + step.insn.len() as u32, step.pc));
            }
            Insn::Ret => {
                if let Some((expected, call_pc)) = shadow.pop() {
                    if step.next_pc != expected {
                        hops.push(ObservedHop {
                            call_site: call_pc,
                            landing: step.next_pc,
                        });
                    }
                }
            }
            _ => {}
        }
        if step.halted {
            break;
        }
    }
    Ok(hops)
}

/// Attack 4: bypass the branch function by overwriting each observed
/// `call f` with a direct `jmp landing` **of exactly the same size**, so
/// no address in the binary changes (Section 5.2.2, attack 4).
///
/// # Errors
///
/// [`SimError::BadOpcode`] if a hop's call site does not hold a direct
/// 5-byte call (the observation was bogus).
pub fn bypass_branch_function(image: &Image, hops: &[ObservedHop]) -> Result<Image, SimError> {
    let mut attacked = image.clone();
    for hop in hops {
        let off = (hop.call_site - image.text_base) as usize;
        let (insn, len) = decode(&attacked.text[off..], hop.call_site)?;
        if !matches!(insn, Insn::Call(_)) {
            return Err(SimError::BadOpcode {
                addr: hop.call_site,
                byte: attacked.text[off],
            });
        }
        debug_assert_eq!(len, 5);
        let disp = hop.landing.wrapping_sub(hop.call_site + 5) as i32;
        let mut patch = Vec::with_capacity(5);
        encode(&Insn::Jmp(disp), &mut patch);
        attacked.text[off..off + 5].copy_from_slice(&patch);
    }
    Ok(attacked)
}

/// Attack 5: reroute each branch-function call through a fresh thunk at
/// the end of the text section:
///
/// ```text
/// X: call f     ==>    X: call Y      …      Y: jmp f
/// ```
///
/// Call displacements are patched in place (same size) and thunks are
/// *appended*, so no existing address changes — the program keeps
/// working, but a tracer that attributes hops to the instruction jumping
/// into `f` now sees the thunks (Section 5.2.2, attack 5).
///
/// # Errors
///
/// [`SimError::BadOpcode`] if a call site does not hold a direct call;
/// [`SimError::BadImage`] if the text cannot grow.
pub fn reroute_calls(image: &Image, call_sites: &[u32]) -> Result<Image, SimError> {
    let mut attacked = image.clone();
    for &site in call_sites {
        let off = (site - image.text_base) as usize;
        let (insn, _) = decode(&attacked.text[off..], site)?;
        let Insn::Call(disp) = insn else {
            return Err(SimError::BadOpcode {
                addr: site,
                byte: attacked.text[off],
            });
        };
        let f = site.wrapping_add(5).wrapping_add(disp as u32);
        // Thunk at the current end of text: jmp f.
        let thunk_addr = attacked.text_base + attacked.text.len() as u32;
        let jmp_disp = f.wrapping_sub(thunk_addr + 5) as i32;
        encode(&Insn::Jmp(jmp_disp), &mut attacked.text);
        // Patch the call to target the thunk.
        let new_disp = thunk_addr.wrapping_sub(site + 5) as i32;
        let mut patch = Vec::with_capacity(5);
        encode(&Insn::Call(new_disp), &mut patch);
        attacked.text[off..off + 5].copy_from_slice(&patch);
    }
    attacked.validate()?;
    Ok(attacked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nativesim::asm::ImageBuilder;
    use nativesim::reg::{AluOp, Cc, Operand, Reg};

    /// A plain (unmarked) program: sums 1..=n from input.
    fn plain_image() -> Image {
        let mut b = ImageBuilder::new();
        let a = b.text();
        let top = a.label();
        let done = a.label();
        a.in_(Reg::Eax);
        a.mov_ri(Reg::Edx, 0);
        a.bind(top);
        a.cmp(Operand::Reg(Reg::Eax), Operand::Imm(0));
        a.jcc(Cc::Le, done);
        a.alu_rr(AluOp::Add, Reg::Edx, Reg::Eax);
        a.alu_ri(AluOp::Sub, Reg::Eax, 1);
        a.jmp(top);
        a.bind(done);
        a.out(Operand::Reg(Reg::Edx));
        a.halt();
        b.finish().unwrap()
    }

    fn run(image: &Image, input: Vec<u32>) -> Vec<u32> {
        Machine::load(image)
            .with_input(input)
            .run(1_000_000)
            .expect("program runs")
            .output
    }

    #[test]
    fn nop_insertion_preserves_plain_programs() {
        let image = plain_image();
        let attacked = insert_nops(&image, 50, 7).unwrap();
        assert!(attacked.text.len() > image.text.len());
        assert_eq!(run(&attacked, vec![10]), run(&image, vec![10]));
    }

    #[test]
    fn sense_inversion_preserves_plain_programs() {
        let image = plain_image();
        let attacked = invert_branch_senses(&image, 3).unwrap();
        assert_ne!(attacked.text, image.text);
        for n in [0u32, 1, 9] {
            assert_eq!(run(&attacked, vec![n]), run(&image, vec![n]));
        }
    }

    #[test]
    fn discover_hops_sees_nothing_in_plain_programs() {
        let image = plain_image();
        let hops = discover_hops(&image, &[5], 100_000).unwrap();
        assert!(hops.is_empty());
    }

    #[test]
    fn bypass_rejects_non_call_sites() {
        let image = plain_image();
        let bogus = [ObservedHop {
            call_site: image.text_base,
            landing: image.text_base + 10,
        }];
        assert!(bypass_branch_function(&image, &bogus).is_err());
    }
}
