//! Distortive bytecode attacks (Section 5.1.2).

use pathmark_crypto::Prng;
use stackvm::cfg::Cfg;
use stackvm::edit::{insert_snippet, reserve_locals};
use stackvm::insn::{BinOp, Cond, Insn};
use stackvm::interp::{Outcome, Vm};
use stackvm::{Program, VmError};

/// Inserts `count` copies of the paper's branch-insertion attack code —
/// `if (x*(x-1) % 2 != 0) x++;` over a random existing local — at random
/// program points.
///
/// This is the attack of Figures 8(c) and 8(d): each inserted branch
/// executes (emitting bits) wherever control passes it, corrupting any
/// watermark piece whose 64-bit window it lands inside.
pub fn insert_random_branches(program: &mut Program, count: usize, seed: u64) {
    let mut rng = Prng::from_seed(seed ^ 0xA77A_C4B2);
    for _ in 0..count {
        let func_idx = rng.index(program.functions.len());
        let func = &mut program.functions[func_idx];
        let x = if func.num_locals == 0 {
            reserve_locals(func, 1)
        } else {
            rng.index(func.num_locals as usize) as u16
        };
        // Not past the end: the snippet's skip target must stay in range.
        let at = rng.index(func.code.len());
        // if (x*(x-1) % 2 != 0) x++;
        let snippet = vec![
            Insn::Load(x),
            Insn::Load(x),
            Insn::Const(1),
            Insn::Bin(BinOp::Sub),
            Insn::Bin(BinOp::Mul),
            Insn::Const(2),
            Insn::Bin(BinOp::Rem),
            Insn::If(Cond::Ne, 9),
            Insn::Goto(10),
            Insn::Iinc(x, 1),
        ];
        insert_snippet(func, at, snippet);
    }
}

/// Inserts `count` no-ops at random program points. Harmless to
/// path-based watermarks by design (no-ops are not conditional
/// branches).
pub fn insert_nops(program: &mut Program, count: usize, seed: u64) {
    let mut rng = Prng::from_seed(seed ^ 0x0909_0909);
    for _ in 0..count {
        let func_idx = rng.index(program.functions.len());
        let func = &mut program.functions[func_idx];
        let at = rng.index(func.code.len() + 1);
        insert_snippet(func, at, vec![Insn::Nop]);
    }
}

/// Inverts the sense of (approximately) `fraction` of all conditional
/// branches, exchanging the branch and fall-through roles:
///
/// ```text
/// if c goto T            if !c goto F
/// F: …          ==>      goto T
///                        F: …
/// ```
///
/// Semantics are preserved; the static branch structure changes
/// completely. The trace bit-string is *invariant* (the defining
/// property of Section 3.1's decoding rule).
pub fn invert_branch_senses(program: &mut Program, fraction: f64, seed: u64) {
    let mut rng = Prng::from_seed(seed ^ 0x1A5E_17ED);
    for func in &mut program.functions {
        // Descending pc so earlier rewrites keep later pcs valid.
        let sites: Vec<usize> = (0..func.code.len())
            .rev()
            .filter(|&pc| func.code[pc].is_conditional_branch())
            .collect();
        for pc in sites {
            if !rng.chance(fraction) {
                continue;
            }
            let target = func.code[pc].targets()[0];
            if target == pc + 1 {
                continue; // degenerate branch-to-fallthrough
            }
            // Make room for the `goto T` after the branch; the edit
            // fixes up every target (including this branch's own).
            insert_snippet(func, pc + 1, vec![Insn::Nop]);
            let adjusted_target = func.code[pc].targets()[0];
            func.code[pc + 1] = Insn::Goto(adjusted_target);
            match &mut func.code[pc] {
                Insn::If(c, t) => {
                    *c = c.negate();
                    *t = pc + 2;
                }
                Insn::IfCmp(c, t) => {
                    *c = c.negate();
                    *t = pc + 2;
                }
                other => unreachable!("site list holds branches, found {other:?}"),
            }
        }
    }
}

/// Randomly reorders the basic blocks of every function (keeping the
/// entry block first), inserting explicit `goto`s where fall-through
/// edges are broken — SandMark's statement/block reordering attack.
pub fn reorder_blocks(program: &mut Program, seed: u64) {
    let mut rng = Prng::from_seed(seed ^ 0x02E0_2DE2);
    for func in &mut program.functions {
        let cfg = Cfg::build(func);
        if cfg.len() < 3 {
            continue;
        }
        let mut order: Vec<usize> = (1..cfg.len()).collect();
        rng.shuffle(&mut order);
        order.insert(0, 0);
        // Lay out blocks in the new order, recording the new start pc of
        // each old block.
        let mut new_code: Vec<Insn> = Vec::with_capacity(func.code.len() + cfg.len());
        let mut new_start = vec![usize::MAX; cfg.len()];
        for &b in &order {
            new_start[b] = new_code.len();
            let block = &cfg.blocks[b];
            for pc in block.start..block.end {
                new_code.push(func.code[pc].clone());
            }
            // Restore broken fall-through edges.
            let last = new_code.last().expect("blocks are non-empty");
            let falls_through = !last.is_terminator();
            if falls_through {
                // Fall-through successor is the old next block.
                let next_leader = block.end;
                if next_leader < func.code.len() {
                    // Temporarily encode the OLD pc; remapped below. The
                    // goto is marked by pointing at old pcs like every
                    // other pre-remap target.
                    new_code.push(Insn::Goto(next_leader));
                }
            }
        }
        // Remap every target from old leader pc to new pc.
        for insn in &mut new_code {
            insn.map_targets(|old| new_start[cfg.block_of[old]]);
        }
        func.code = new_code;
    }
}

/// Splits roughly `count` basic blocks by inserting a `goto` to the next
/// instruction at random points — SandMark's block-splitting attack
/// (changes static block structure, not dynamic branch behavior).
pub fn split_blocks(program: &mut Program, count: usize, seed: u64) {
    let mut rng = Prng::from_seed(seed ^ 0x5B11_7B10);
    for _ in 0..count {
        let func_idx = rng.index(program.functions.len());
        let func = &mut program.functions[func_idx];
        let at = rng.index(func.code.len());
        // goto (next instruction): relative target 1 == end of snippet.
        insert_snippet(func, at, vec![Insn::Goto(1)]);
    }
}

/// Copies one randomly chosen multi-instruction basic block to the end
/// of a function and retargets one branch edge to the copy — SandMark's
/// block-copying attack. Returns how many copies were made.
pub fn copy_blocks(program: &mut Program, count: usize, seed: u64) -> usize {
    let mut rng = Prng::from_seed(seed ^ 0x00C0_B1E5);
    let mut made = 0;
    for _ in 0..count {
        let func_idx = rng.index(program.functions.len());
        let func = &mut program.functions[func_idx];
        let cfg = Cfg::build(func);
        // Candidate: a block that is a branch target and ends in a
        // terminator (so the copy needs no fall-through repair).
        let candidates: Vec<usize> = (0..cfg.len())
            .filter(|&b| {
                let block = &cfg.blocks[b];
                block.start > 0
                    && func.code[block.end - 1].is_terminator()
                    && func
                        .code
                        .iter()
                        .any(|i| i.targets().contains(&block.start))
            })
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let b = candidates[rng.index(candidates.len())];
        let block = cfg.blocks[b].clone();
        let copy_start = func.code.len();
        let copied: Vec<Insn> = func.code[block.start..block.end].to_vec();
        func.code.extend(copied);
        // Retarget one referencing branch to the copy.
        let refs: Vec<usize> = (0..copy_start)
            .filter(|&pc| func.code[pc].targets().contains(&block.start))
            .collect();
        let chosen = refs[rng.index(refs.len())];
        func.code[chosen].map_targets(|t| if t == block.start { copy_start } else { t });
        made += 1;
    }
    made
}

/// Merges two functions with identical signatures into one selector-
/// dispatched body (SandMark's *method merging* attack). The originals
/// become thin forwarders, so no call site needs rewriting. Returns the
/// ids of the merged pair, or `None` if no mergeable pair exists.
///
/// The merged body dispatches on a trailing selector parameter via
/// `switch`, which is not a conditional branch — the dynamic branch
/// pattern of both bodies is preserved, which is exactly why this attack
/// fails against path-based watermarks.
pub fn merge_methods(program: &mut Program, seed: u64) -> Option<(stackvm::FuncId, stackvm::FuncId)> {
    use stackvm::insn::Insn as I;
    let mut rng = Prng::from_seed(seed ^ 0x3E26E);
    // Candidate pairs: same arity and return kind, neither is the entry.
    let mut pairs = Vec::new();
    for a in 0..program.functions.len() {
        for b in (a + 1)..program.functions.len() {
            let (fa, fb) = (&program.functions[a], &program.functions[b]);
            if stackvm::FuncId(a as u32) == program.entry
                || stackvm::FuncId(b as u32) == program.entry
            {
                continue;
            }
            if fa.num_params == fb.num_params && fa.returns_value == fb.returns_value {
                pairs.push((a, b));
            }
        }
    }
    if pairs.is_empty() {
        return None;
    }
    let (a, b) = pairs[rng.index(pairs.len())];
    let params = program.functions[a].num_params;
    let returns = program.functions[a].returns_value;

    // Shift every local index >= params by one: the selector takes slot
    // `params`, scratch locals move up.
    let shift_locals = |code: &[I]| -> Vec<I> {
        code.iter()
            .map(|insn| match insn {
                I::Load(n) if *n >= params => I::Load(n + 1),
                I::Store(n) if *n >= params => I::Store(n + 1),
                I::Iinc(n, d) if *n >= params => I::Iinc(n + 1, *d),
                other => other.clone(),
            })
            .collect()
    };
    let body_a = shift_locals(&program.functions[a].code);
    let body_b = shift_locals(&program.functions[b].code);
    let a_start = 2usize;
    let b_start = a_start + body_a.len();
    let mut code = vec![
        I::Load(params),
        I::Switch {
            cases: vec![(0, a_start)],
            default: b_start,
        },
    ];
    code.extend(body_a.into_iter().map(|mut i| {
        i.map_targets(|t| t + a_start);
        i
    }));
    code.extend(body_b.into_iter().map(|mut i| {
        i.map_targets(|t| t + b_start);
        i
    }));
    let num_locals = program.functions[a]
        .num_locals
        .max(program.functions[b].num_locals)
        + 1;
    let merged = stackvm::Function {
        name: format!(
            "{}${}",
            program.functions[a].name, program.functions[b].name
        ),
        num_params: params + 1,
        num_locals,
        returns_value: returns,
        code,
    };
    program.functions.push(merged);
    let merged_id = stackvm::FuncId(program.functions.len() as u32 - 1);

    // Originals become forwarders.
    for (idx, selector) in [(a, 0i64), (b, 1i64)] {
        let mut code = Vec::new();
        for p in 0..params {
            code.push(I::Load(p));
        }
        code.push(I::Const(selector));
        code.push(I::Call(merged_id.0));
        code.push(I::Return(returns));
        let f = &mut program.functions[idx];
        f.code = code;
        f.num_locals = f.num_locals.max(f.num_params);
    }
    Some((stackvm::FuncId(a as u32), stackvm::FuncId(b as u32)))
}

/// Splits a function at a "linear cut" — a stack-empty block boundary
/// crossed only by fall-through — moving the tail into a fresh function
/// that receives every local as a parameter (SandMark's *method
/// splitting* attack). Returns the id of the outlined tail, or `None`
/// if no function has a usable cut.
pub fn split_method(program: &mut Program, seed: u64) -> Option<stackvm::FuncId> {
    use stackvm::insn::Insn as I;
    let mut rng = Prng::from_seed(seed ^ 0x5B117u64);
    let mut candidates: Vec<(usize, usize)> = Vec::new(); // (func idx, cut pc)
    for (fi, f) in program.functions.iter().enumerate() {
        for cut in linear_cuts(f) {
            candidates.push((fi, cut));
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (fi, cut) = candidates[rng.index(candidates.len())];
    let (locals, returns) = {
        let f = &program.functions[fi];
        (f.num_locals, f.returns_value)
    };
    let tail: Vec<I> = program.functions[fi].code[cut..]
        .iter()
        .map(|insn| {
            let mut i = insn.clone();
            i.map_targets(|t| t - cut);
            i
        })
        .collect();
    let tail_fn = stackvm::Function {
        name: format!("{}$tail", program.functions[fi].name),
        num_params: locals,
        num_locals: locals,
        returns_value: returns,
        code: tail,
    };
    program.functions.push(tail_fn);
    let tail_id = stackvm::FuncId(program.functions.len() as u32 - 1);
    let f = &mut program.functions[fi];
    f.code.truncate(cut);
    for l in 0..locals {
        f.code.push(I::Load(l));
    }
    f.code.push(I::Call(tail_id.0));
    f.code.push(I::Return(returns));
    Some(tail_id)
}

/// Finds pcs where a function can be linearly cut: stack depth zero, no
/// branch crossing the boundary in either direction, strictly inside the
/// body.
fn linear_cuts(f: &stackvm::Function) -> Vec<usize> {
    use stackvm::insn::Insn as I;
    let n = f.code.len();
    if n < 4 {
        return Vec::new();
    }
    // Entry stack depth per pc (None = unreachable / unknown).
    let mut depth: Vec<Option<usize>> = vec![None; n];
    let mut work = vec![(0usize, 0usize)];
    while let Some((pc, d)) = work.pop() {
        if pc >= n || depth[pc].is_some() {
            continue;
        }
        depth[pc] = Some(d);
        let insn = &f.code[pc];
        let (pops, pushes) = match insn {
            I::Call(_) => continue, // callee arity unknown here: bail on
            // cut analysis past calls by treating the path as opaque
            // (conservative: fewer cuts).
            other => other.stack_effect(),
        };
        if d < pops {
            continue;
        }
        let nd = d - pops + pushes;
        match insn {
            I::Return(_) => {}
            I::Goto(t) => work.push((*t, nd)),
            I::Switch { cases, default } => {
                for &(_, t) in cases {
                    work.push((t, nd));
                }
                work.push((*default, nd));
            }
            I::If(_, t) | I::IfCmp(_, t) => {
                work.push((*t, nd));
                work.push((pc + 1, nd));
            }
            _ => work.push((pc + 1, nd)),
        }
    }
    (2..n - 1)
        .filter(|&cut| {
            depth[cut] == Some(0)
                && !matches!(f.code[cut - 1], I::Return(_)) // reachable by fall-through
                && f.code.iter().enumerate().all(|(pc, insn)| {
                    insn.targets().iter().all(|&t| (pc < cut) == (t < cut))
                })
        })
        .collect()
}

/// Code diversification — the paper's *defense* against collusive
/// attacks (Section 5.1.2): "collusive attacks can be prevented by
/// obfuscating the program before it is watermarked, and thus producing
/// a highly diverse program population. Any attempt to find the
/// watermark code through comparison of multiple watermarked copies …
/// will be thwarted … because the differences between any two copies of
/// the program will contain much more than just the watermark code."
///
/// Applies a seed-dependent cocktail of semantics-preserving transforms;
/// run it with a fresh seed per licensee *before* embedding.
pub fn diversify(program: &mut Program, seed: u64) {
    let mut rng = Prng::from_seed(seed ^ 0xD1BE_25E5);
    insert_random_branches(program, 10 + rng.index(30), rng.next_u64());
    invert_branch_senses(program, 0.3 + 0.4 * (rng.index(100) as f64 / 100.0), rng.next_u64());
    reorder_blocks(program, rng.next_u64());
    split_blocks(program, 20 + rng.index(60), rng.next_u64());
    copy_blocks(program, 5 + rng.index(15), rng.next_u64());
    insert_nops(program, 30 + rng.index(100), rng.next_u64());
}

/// How different two programs are: the fraction of functions whose code
/// differs (used to quantify population diversity).
pub fn diversity(a: &Program, b: &Program) -> f64 {
    let n = a.functions.len().max(b.functions.len());
    if n == 0 {
        return 0.0;
    }
    let differing = (0..n)
        .filter(|&i| match (a.functions.get(i), b.functions.get(i)) {
            (Some(fa), Some(fb)) => fa.code != fb.code,
            _ => true,
        })
        .count();
    differing as f64 / n as f64
}

/// The "class encryption" attack (Section 5.1.2): every class is stored
/// encrypted and decrypted only at load time, denying bytecode
/// instrumentation any access.
///
/// The wrapper still *runs* (semantics preserved), but a bytecode-level
/// recognizer only sees the opaque [`EncryptedProgram::stub`]. The paper
/// notes the counter-move: trace through the JVM's profiling interface
/// instead, which sees the decrypted code — modeled by
/// [`EncryptedProgram::decrypt_for_runtime_tracing`].
#[derive(Debug, Clone)]
pub struct EncryptedProgram {
    payload: Vec<u8>,
    key: u64,
    stub: Program,
}

impl EncryptedProgram {
    /// Encrypts a program under `key`.
    pub fn encrypt(program: &Program, key: u64) -> EncryptedProgram {
        let mut payload = stackvm::codec::encode_program(program);
        let mut rng = Prng::from_seed(key);
        for byte in &mut payload {
            *byte ^= rng.next_u64() as u8;
        }
        // The loader stub is all static analysis can see.
        let mut pb = stackvm::builder::ProgramBuilder::new();
        let mut f = stackvm::builder::FunctionBuilder::new("decrypt_and_run", 0, 0);
        f.push(0).pop().ret_void();
        let main = pb.add_function(f.finish().expect("stub builds"));
        let stub = pb.finish(main).expect("stub verifies");
        EncryptedProgram {
            payload,
            key,
            stub,
        }
    }

    /// What static bytecode tooling (including the watermark
    /// instrumenter) can observe.
    pub fn stub(&self) -> &Program {
        &self.stub
    }

    /// Runs the encrypted application: decrypt, then execute — the
    /// program behaves exactly as before the attack.
    ///
    /// # Errors
    ///
    /// Any [`VmError`] from the decrypted program.
    pub fn run(&self, input: Vec<i64>) -> Result<Outcome, VmError> {
        let program = self
            .decrypt_for_runtime_tracing()
            .expect("payload was produced by encrypt");
        Vm::new(&program).with_input(input).run()
    }

    /// Models tracing through the runtime's profiling/debugging
    /// interface, which necessarily sees decoded bytecode ("the JVM
    /// necessarily has access to the unencoded form").
    pub fn decrypt_for_runtime_tracing(&self) -> Option<Program> {
        let mut bytes = self.payload.clone();
        let mut rng = Prng::from_seed(self.key);
        for byte in &mut bytes {
            *byte ^= rng.next_u64() as u8;
        }
        stackvm::codec::decode_program(&bytes).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stackvm::builder::{FunctionBuilder, ProgramBuilder};

    /// gcd-flavored test program with loops, calls, and branching.
    fn subject() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut gcd = FunctionBuilder::new("gcd", 2, 0);
        let head = gcd.new_label();
        let done = gcd.new_label();
        gcd.bind(head);
        gcd.load(1).if_zero(Cond::Eq, done);
        gcd.load(1).load(0).load(1).rem().store(1).store(0);
        gcd.goto(head);
        gcd.bind(done);
        gcd.load(0).ret();
        let gcd_id = pb.add_function(gcd.finish().unwrap());
        // A second two-parameter function (same signature as gcd) so the
        // method-merging attack has a candidate pair.
        let mut mix = FunctionBuilder::new("mix", 2, 1);
        let skip = mix.new_label();
        mix.load(0).load(1).mul().store(2);
        mix.load(2).push(100).if_cmp(Cond::Lt, skip);
        mix.load(2).push(97).rem().store(2);
        mix.bind(skip);
        mix.load(2).load(0).add().ret();
        let mix_id = pb.add_function(mix.finish().unwrap());
        let mut f = FunctionBuilder::new("main", 0, 1);
        let top = f.new_label();
        let out = f.new_label();
        f.push(0).store(0);
        f.bind(top);
        f.load(0).push(6).if_cmp(Cond::Ge, out);
        f.push(252).load(0).push(7).mul().push(5).add().call(gcd_id).print();
        f.load(0).push(11).add().load(0).push(3).add().call(mix_id).print();
        f.iinc(0, 1).goto(top);
        f.bind(out);
        f.ret_void();
        let main = pb.add_function(f.finish().unwrap());
        pb.finish(main).unwrap()
    }

    fn run(p: &Program) -> Vec<i64> {
        Vm::new(p).run().expect("program runs").output
    }

    fn assert_semantics_preserved(attack: impl FnOnce(&mut Program)) {
        let original = subject();
        let baseline = run(&original);
        let mut attacked = original;
        attack(&mut attacked);
        stackvm::verify::verify(&attacked).expect("attacked program verifies");
        assert_eq!(run(&attacked), baseline);
    }

    #[test]
    fn branch_insertion_preserves_semantics() {
        for seed in 0..5 {
            assert_semantics_preserved(|p| insert_random_branches(p, 40, seed));
        }
    }

    #[test]
    fn branch_insertion_adds_conditional_branches() {
        let mut p = subject();
        let before = p.conditional_branch_count();
        insert_random_branches(&mut p, 25, 3);
        assert_eq!(p.conditional_branch_count(), before + 25);
    }

    #[test]
    fn nop_insertion_preserves_semantics() {
        assert_semantics_preserved(|p| insert_nops(p, 100, 1));
    }

    #[test]
    fn sense_inversion_preserves_semantics() {
        for seed in 0..5 {
            assert_semantics_preserved(|p| invert_branch_senses(p, 1.0, seed));
            assert_semantics_preserved(|p| invert_branch_senses(p, 0.5, seed));
        }
    }

    #[test]
    fn sense_inversion_flips_conditions() {
        let mut p = subject();
        let before: Vec<_> = p.functions[0]
            .code
            .iter()
            .filter(|i| i.is_conditional_branch())
            .cloned()
            .collect();
        invert_branch_senses(&mut p, 1.0, 9);
        let after: Vec<_> = p.functions[0]
            .code
            .iter()
            .filter(|i| i.is_conditional_branch())
            .cloned()
            .collect();
        assert_eq!(before.len(), after.len());
        assert_ne!(before, after, "conditions must change");
    }

    #[test]
    fn block_reordering_preserves_semantics() {
        for seed in 0..8 {
            assert_semantics_preserved(|p| reorder_blocks(p, seed));
        }
    }

    #[test]
    fn block_reordering_changes_layout() {
        let mut p = subject();
        let before = p.functions[1].code.clone();
        reorder_blocks(&mut p, 4);
        assert_ne!(p.functions[1].code, before);
    }

    #[test]
    fn block_splitting_preserves_semantics() {
        assert_semantics_preserved(|p| split_blocks(p, 30, 2));
    }

    #[test]
    fn block_copying_preserves_semantics() {
        for seed in 0..5 {
            assert_semantics_preserved(|p| {
                copy_blocks(p, 10, seed);
            });
        }
    }

    #[test]
    fn stacked_attacks_preserve_semantics() {
        assert_semantics_preserved(|p| {
            insert_random_branches(p, 20, 1);
            invert_branch_senses(p, 0.7, 2);
            reorder_blocks(p, 3);
            split_blocks(p, 10, 4);
            insert_nops(p, 50, 5);
        });
    }

    #[test]
    fn method_merging_preserves_semantics() {
        for seed in 0..6 {
            let original = subject();
            let baseline = run(&original);
            let mut attacked = original.clone();
            let merged = merge_methods(&mut attacked, seed);
            assert!(merged.is_some(), "subject has a mergeable pair");
            stackvm::verify::verify(&attacked).expect("merged program verifies");
            assert_eq!(run(&attacked), baseline, "seed {seed}");
            assert_eq!(
                attacked.functions.len(),
                original.functions.len() + 1,
                "one merged body appended"
            );
        }
    }

    #[test]
    fn method_splitting_preserves_semantics() {
        let mut found_any = false;
        for seed in 0..8 {
            let original = subject();
            let baseline = run(&original);
            let mut attacked = original.clone();
            if split_method(&mut attacked, seed).is_none() {
                continue;
            }
            found_any = true;
            stackvm::verify::verify(&attacked).expect("split program verifies");
            assert_eq!(run(&attacked), baseline, "seed {seed}");
        }
        assert!(found_any, "at least one linear cut exists in the subject");
    }

    #[test]
    fn merge_then_split_round_trips_semantics() {
        let original = subject();
        let baseline = run(&original);
        let mut attacked = original.clone();
        merge_methods(&mut attacked, 3);
        split_method(&mut attacked, 4);
        insert_nops(&mut attacked, 40, 5);
        stackvm::verify::verify(&attacked).expect("verifies");
        assert_eq!(run(&attacked), baseline);
    }

    #[test]
    fn diversify_preserves_semantics_and_produces_diverse_population() {
        let original = subject();
        let baseline = run(&original);
        let mut copy_a = original.clone();
        let mut copy_b = original.clone();
        diversify(&mut copy_a, 1);
        diversify(&mut copy_b, 2);
        stackvm::verify::verify(&copy_a).unwrap();
        stackvm::verify::verify(&copy_b).unwrap();
        assert_eq!(run(&copy_a), baseline);
        assert_eq!(run(&copy_b), baseline);
        // The two copies differ in (nearly) every function, so a
        // colluding diff sees far more than watermark code.
        assert!(
            diversity(&copy_a, &copy_b) >= 0.99,
            "population is diverse: {}",
            diversity(&copy_a, &copy_b)
        );
        // Determinism per seed.
        let mut copy_a2 = original.clone();
        diversify(&mut copy_a2, 1);
        assert_eq!(copy_a, copy_a2);
        assert_eq!(diversity(&copy_a, &copy_a2), 0.0);
    }

    #[test]
    fn class_encryption_runs_but_hides_bytecode() {
        let p = subject();
        let baseline = run(&p);
        let enc = EncryptedProgram::encrypt(&p, 0xBEEF);
        assert_eq!(enc.run(vec![]).unwrap().output, baseline);
        assert_ne!(enc.stub(), &p, "the stub must not reveal the program");
        assert_eq!(enc.stub().functions.len(), 1);
        let recovered = enc.decrypt_for_runtime_tracing().unwrap();
        assert_eq!(recovered, p, "runtime tracing sees the real bytecode");
    }
}
