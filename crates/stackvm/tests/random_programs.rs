//! Randomized-property tests over generated (but well-formed by
//! construction) programs: verification, execution, codec round-trips,
//! and editing invariants. Randomness comes from the same hand-rolled
//! deterministic generator that builds the programs, so every run tests
//! the identical case set (no external property-testing crates).

use stackvm::builder::{FunctionBuilder, ProgramBuilder};
use stackvm::insn::{BinOp, Cond, Insn};
use stackvm::interp::Vm;
use stackvm::Program;

/// A small deterministic generator state (verification-friendly: all
/// branches are forward, so every generated program terminates).
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Generates a random straight-line-with-forward-branches program:
/// several leaf functions plus a main that calls them.
fn generate(seed: u64) -> Program {
    let mut g = Gen::new(seed);
    let mut pb = ProgramBuilder::new();
    let statics = (0..1 + g.below(3))
        .map(|i| pb.add_static(format!("s{i}")))
        .collect::<Vec<_>>();

    let nfuncs = 1 + g.below(4) as usize;
    let mut funcs: Vec<(stackvm::FuncId, u16)> = Vec::new();
    for fi in 0..nfuncs {
        let params = g.below(3) as u16;
        let mut f = FunctionBuilder::new(format!("f{fi}"), params, 3);
        let locals = params + 3;
        // Random forward-branching body.
        let segments = 2 + g.below(6);
        for _ in 0..segments {
            // A little arithmetic on random locals.
            let a = (g.below(locals as u64)) as u16;
            let b = (g.below(locals as u64)) as u16;
            let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::And, BinOp::Or, BinOp::Xor];
            let op = ops[g.below(ops.len() as u64) as usize];
            f.load(a).load(b).bin(op).store(a);
            // Sometimes touch a static.
            if g.below(3) == 0 {
                let s = statics[g.below(statics.len() as u64) as usize];
                f.get_static(s).push(g.next() as i32 as i64).add().put_static(s);
            }
            // A forward conditional skip.
            if g.below(2) == 0 {
                let skip = f.new_label();
                let conds = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge];
                let c = conds[g.below(4) as usize];
                f.load(a).push(g.below(16) as i64).if_cmp(c, skip);
                f.iinc(b, 1);
                f.bind(skip);
            }
        }
        f.load((g.below(locals as u64)) as u16).ret();
        let id = pb.add_function(f.finish().expect("generated function builds"));
        funcs.push((id, params));
    }
    // main calls each function with constants and prints the results.
    let mut main = FunctionBuilder::new("main", 0, 1);
    for &(id, params) in &funcs {
        for p in 0..params {
            main.push((p as i64 + 1) * (g.below(9) as i64 + 1));
        }
        main.call(id).print();
    }
    main.ret_void();
    let main_id = pb.add_function(main.finish().expect("generated main builds"));
    pb.finish(main_id).expect("generated program verifies")
}


const CASES: u64 = 48;

#[test]
fn generated_programs_verify_and_terminate() {
    for seed in 0..CASES {
        let seed = Gen::new(seed).next();
        let p = generate(seed);
        stackvm::verify::verify(&p).expect("verifies");
        let out = Vm::new(&p).with_budget(5_000_000).run().expect("terminates");
        // Deterministic re-run.
        let out2 = Vm::new(&p).with_budget(5_000_000).run().expect("terminates");
        assert_eq!(out.output, out2.output, "seed {seed}");
        assert_eq!(out.instructions, out2.instructions, "seed {seed}");
    }
}

#[test]
fn codec_round_trips_generated_programs() {
    for seed in 0..CASES {
        let seed = Gen::new(seed ^ 0xC0DEC).next();
        let p = generate(seed);
        let bytes = stackvm::codec::encode_program(&p);
        let q = stackvm::codec::decode_program(&bytes).expect("decodes");
        assert_eq!(p, q, "seed {seed}");
        // And the decoded program behaves identically.
        let a = Vm::new(&p).with_budget(5_000_000).run().expect("runs");
        let b = Vm::new(&q).with_budget(5_000_000).run().expect("runs");
        assert_eq!(a.output, b.output, "seed {seed}");
    }
}

#[test]
fn nop_splices_never_change_behavior() {
    for seed in 0..CASES {
        let seed = Gen::new(seed ^ 0x5EED).next();
        let p = generate(seed);
        let baseline = Vm::new(&p).with_budget(5_000_000).run().expect("runs").output;
        let mut edited = p.clone();
        let mut g = Gen::new(seed ^ 0x1);
        let splices = 1 + g.below(19) as usize;
        for k in 0..splices {
            let pos = g.next();
            let fidx = (pos as usize) % edited.functions.len();
            let func = &mut edited.functions[fidx];
            let at = (pos as usize / 7 + k) % (func.code.len() + 1);
            stackvm::edit::insert_snippet(func, at, vec![Insn::Nop]);
        }
        stackvm::verify::verify(&edited).expect("edited program verifies");
        let out = Vm::new(&edited).with_budget(5_000_000).run().expect("runs");
        assert_eq!(out.output, baseline, "seed {seed}");
    }
}

#[test]
fn disassembly_never_panics() {
    for seed in 0..CASES {
        let seed = Gen::new(seed ^ 0xD15A).next();
        let p = generate(seed);
        let text = stackvm::pretty::disassemble(&p);
        assert!(text.contains("fn main"), "seed {seed}");
    }
}
