//! Structural bytecode verification.
//!
//! Stands in for the JVM bytecode verifier: the paper notes that its
//! embedding must produce verifiable classfiles (e.g. Java's `jsr`/`ret`
//! restrictions are why the branch-function scheme of Section 4 cannot be
//! ported to bytecode). Our verifier enforces the invariants the
//! interpreter and the editing layer rely on: in-range branch targets and
//! indices, consistent operand-stack depths at join points, and no path
//! that falls off the end of a function.

use crate::insn::Insn;
use crate::program::{Function, Program};
use crate::VmError;

/// Verifies a whole program.
///
/// # Errors
///
/// Returns the first [`VmError::Verify`] violation found.
pub fn verify(program: &Program) -> Result<(), VmError> {
    if program.functions.is_empty() {
        return Err(VmError::Verify {
            func_name: "<program>".into(),
            pc: None,
            reason: "program has no functions".into(),
        });
    }
    if program.entry.0 as usize >= program.functions.len() {
        return Err(VmError::Verify {
            func_name: "<program>".into(),
            pc: None,
            reason: format!("entry {} out of range", program.entry),
        });
    }
    let entry = program.function(program.entry);
    if entry.num_params != 0 {
        return Err(VmError::Verify {
            func_name: entry.name.clone(),
            pc: None,
            reason: "entry function must take no parameters".into(),
        });
    }
    for func in &program.functions {
        verify_function(program, func)?;
    }
    Ok(())
}

/// Verifies a single function against its program context.
///
/// # Errors
///
/// Returns the first [`VmError::Verify`] violation found.
pub fn verify_function(program: &Program, func: &Function) -> Result<(), VmError> {
    let fail = |pc: Option<usize>, reason: String| VmError::Verify {
        func_name: func.name.clone(),
        pc,
        reason,
    };
    if func.code.is_empty() {
        return Err(fail(None, "function has no code".into()));
    }
    if func.num_locals < func.num_params {
        return Err(fail(
            None,
            format!(
                "num_locals {} < num_params {}",
                func.num_locals, func.num_params
            ),
        ));
    }
    let n = func.code.len();
    for (pc, insn) in func.code.iter().enumerate() {
        for t in insn.targets() {
            if t >= n {
                return Err(fail(Some(pc), format!("branch target {t} out of range")));
            }
        }
        match insn {
            Insn::Load(l) | Insn::Store(l) | Insn::Iinc(l, _)
                if *l >= func.num_locals => {
                    return Err(fail(Some(pc), format!("local {l} out of range")));
                }
            Insn::GetStatic(s) | Insn::PutStatic(s)
                if *s as usize >= program.statics.len() => {
                    return Err(fail(Some(pc), format!("static {s} out of range")));
                }
            Insn::Call(f)
                if *f as usize >= program.functions.len() => {
                    return Err(fail(Some(pc), format!("call target fn#{f} out of range")));
                }
            Insn::Return(with_value)
                if *with_value != func.returns_value => {
                    return Err(fail(
                        Some(pc),
                        "return arity disagrees with function signature".into(),
                    ));
                }
            _ => {}
        }
    }
    // Stack-depth dataflow: every pc has a single consistent entry depth.
    let mut depth_at: Vec<Option<usize>> = vec![None; n];
    let mut work = vec![(0usize, 0usize)];
    while let Some((pc, depth)) = work.pop() {
        match depth_at[pc] {
            Some(existing) if existing != depth => {
                return Err(fail(
                    Some(pc),
                    format!("inconsistent stack depth at join: {existing} vs {depth}"),
                ));
            }
            Some(_) => continue,
            None => depth_at[pc] = Some(depth),
        }
        let insn = &func.code[pc];
        let (pops, pushes) = match insn {
            Insn::Call(f) => {
                let callee = &program.functions[*f as usize];
                (
                    callee.num_params as usize,
                    usize::from(callee.returns_value),
                )
            }
            other => other.stack_effect(),
        };
        if depth < pops {
            return Err(fail(
                Some(pc),
                format!("stack underflow: depth {depth}, needs {pops}"),
            ));
        }
        let next_depth = depth - pops + pushes;
        match insn {
            Insn::Return(_) => {}
            Insn::Goto(t) => work.push((*t, next_depth)),
            Insn::Switch { cases, default } => {
                for &(_, t) in cases {
                    work.push((t, next_depth));
                }
                work.push((*default, next_depth));
            }
            Insn::If(_, t) | Insn::IfCmp(_, t) => {
                work.push((*t, next_depth));
                if pc + 1 >= n {
                    return Err(fail(Some(pc), "conditional branch falls off end".into()));
                }
                work.push((pc + 1, next_depth));
            }
            _ => {
                if pc + 1 >= n {
                    return Err(fail(Some(pc), "execution falls off end".into()));
                }
                work.push((pc + 1, next_depth));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ProgramBuilder};
    use crate::insn::{Cond, Insn};
    use crate::program::FuncId;

    fn wrap(func: Function) -> Program {
        Program {
            functions: vec![func],
            statics: vec![],
            entry: FuncId(0),
        }
    }

    fn assert_verify_err(program: &Program, needle: &str) {
        match verify(program) {
            Err(VmError::Verify { reason, .. }) => {
                assert!(
                    reason.contains(needle),
                    "expected reason containing {needle:?}, got {reason:?}"
                );
            }
            other => panic!("expected verify error {needle:?}, got {other:?}"),
        }
    }

    #[test]
    fn accepts_well_formed_program() {
        let mut f = FunctionBuilder::new("main", 0, 1);
        let out = f.new_label();
        f.load(0).if_zero(Cond::Ne, out);
        f.push(1).print();
        f.bind(out);
        f.ret_void();
        let p = wrap(f.finish().unwrap());
        verify(&p).expect("program is well-formed");
    }

    #[test]
    fn rejects_empty_program_and_bad_entry() {
        let p = Program {
            functions: vec![],
            statics: vec![],
            entry: FuncId(0),
        };
        assert_verify_err(&p, "no functions");
        let mut f = FunctionBuilder::new("main", 0, 0);
        f.ret_void();
        let mut p = wrap(f.finish().unwrap());
        p.entry = FuncId(9);
        assert_verify_err(&p, "out of range");
    }

    #[test]
    fn rejects_entry_with_params() {
        let mut f = FunctionBuilder::new("main", 2, 0);
        f.ret_void();
        assert_verify_err(&wrap(f.finish().unwrap()), "no parameters");
    }

    #[test]
    fn rejects_out_of_range_target() {
        let f = Function {
            name: "bad".into(),
            num_params: 0,
            num_locals: 0,
            returns_value: false,
            code: vec![Insn::Goto(5), Insn::Return(false)],
        };
        assert_verify_err(&wrap(f), "target 5 out of range");
    }

    #[test]
    fn rejects_bad_local_static_call_indices() {
        let f = Function {
            name: "bad".into(),
            num_params: 0,
            num_locals: 1,
            returns_value: false,
            code: vec![Insn::Load(3), Insn::Pop, Insn::Return(false)],
        };
        assert_verify_err(&wrap(f), "local 3 out of range");

        let f = Function {
            name: "bad".into(),
            num_params: 0,
            num_locals: 0,
            returns_value: false,
            code: vec![Insn::GetStatic(0), Insn::Pop, Insn::Return(false)],
        };
        assert_verify_err(&wrap(f), "static 0 out of range");

        let f = Function {
            name: "bad".into(),
            num_params: 0,
            num_locals: 0,
            returns_value: false,
            code: vec![Insn::Call(4), Insn::Return(false)],
        };
        assert_verify_err(&wrap(f), "call target fn#4 out of range");
    }

    #[test]
    fn rejects_stack_underflow() {
        let f = Function {
            name: "bad".into(),
            num_params: 0,
            num_locals: 0,
            returns_value: false,
            code: vec![Insn::Pop, Insn::Return(false)],
        };
        assert_verify_err(&wrap(f), "underflow");
    }

    #[test]
    fn rejects_inconsistent_join_depth() {
        // Path A pushes 1 value before the join; path B pushes none.
        let f = Function {
            name: "bad".into(),
            num_params: 0,
            num_locals: 1,
            returns_value: false,
            code: vec![
                Insn::Load(0),          // 0
                Insn::If(Cond::Eq, 3),  // 1: taken -> depth 0 at pc 3
                Insn::Const(7),         // 2: fallthrough -> depth 1 at pc 3
                Insn::Nop,              // 3: join
                Insn::Return(false),    // 4
            ],
        };
        assert_verify_err(&wrap(f), "inconsistent stack depth");
    }

    #[test]
    fn rejects_fall_off_end() {
        let f = Function {
            name: "bad".into(),
            num_params: 0,
            num_locals: 0,
            returns_value: false,
            code: vec![Insn::Nop],
        };
        assert_verify_err(&wrap(f), "falls off end");
    }

    #[test]
    fn rejects_return_arity_mismatch() {
        let f = Function {
            name: "bad".into(),
            num_params: 0,
            num_locals: 0,
            returns_value: false,
            code: vec![Insn::Const(1), Insn::Return(true)],
        };
        assert_verify_err(&wrap(f), "return arity");
    }

    #[test]
    fn call_effects_use_callee_signature() {
        let mut p = ProgramBuilder::new();
        let mut callee = FunctionBuilder::new("add3", 1, 0);
        callee.load(0).push(3).add().ret();
        let callee_id = p.add_function(callee.finish().unwrap());
        let mut main = FunctionBuilder::new("main", 0, 0);
        main.push(39).call(callee_id).print().ret_void();
        let main_id = p.add_function(main.finish().unwrap());
        p.finish(main_id).expect("call arity flows through verifier");
    }
}
