//! The instrumenting interpreter.
//!
//! Executes a verified [`Program`] and, when tracing is enabled, records
//! the basic-block / branch / snapshot events of Section 3.1. Instruction
//! counts stand in for wall-clock time in the cost experiments (Figure 8):
//! they are deterministic and proportional to interpreter work.
//!
//! Two engines share one semantics:
//!
//! * [`Vm::run`] / [`Vm::run_with_sink`] dispatch over the dense
//!   [`Predecoded`] form (decode once, stream events to a
//!   [`TraceSink`]) — the hot path recognition lives on;
//! * [`Vm::run_reference`] is the original enum-dispatch interpreter,
//!   kept verbatim as the semantic oracle the property tests compare
//!   the dense engine against.

use crate::cfg::Cfg;
use crate::compile::{run_compiled, Compiled, DEFAULT_COMPILE_BUDGET};
use crate::insn::{BinOp, Insn};
use crate::predecode::{Op, Predecoded};
use crate::program::{FuncId, Program};
use crate::trace::{Site, SnapshotData, Trace, TraceConfig, TraceEvent, TraceSink};
use crate::VmError;
use std::sync::OnceLock;

/// Default instruction budget (generous; guards against runaway loops in
/// attacked programs).
pub const DEFAULT_BUDGET: u64 = 200_000_000;

/// Maximum call-stack depth.
pub const MAX_CALL_DEPTH: usize = 10_000;

/// Which execution engine a [`Vm`] dispatches to. All three share one
/// semantics — the cross-tier property test holds them to bit-identical
/// outcomes, traces, and faults — and differ only in speed:
///
/// * [`ExecTier::Reference`] — the original enum-walk interpreter, the
///   semantic oracle. Slowest; exists to be compared against.
/// * [`ExecTier::Predecoded`] — the dense 16-byte superinstruction
///   dispatch loop. Handles every trace configuration.
/// * [`ExecTier::Compiled`] — the flattened threaded-code backend
///   ([`crate::compile`]), the default. Covers the recognition-phase
///   configurations (`off` / `branches_only`); block or snapshot
///   recording, and programs exceeding the compile budget, silently
///   fall back to [`ExecTier::Predecoded`] ([`Vm::prepare`] reports
///   which engine will actually run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecTier {
    /// The enum-walk oracle interpreter.
    Reference,
    /// The dense predecoded dispatch loop.
    Predecoded,
    /// The flattened threaded-code tier (with automatic fallback).
    #[default]
    Compiled,
}

impl ExecTier {
    /// Stable wire/CLI name.
    pub fn as_str(self) -> &'static str {
        match self {
            ExecTier::Reference => "reference",
            ExecTier::Predecoded => "predecoded",
            ExecTier::Compiled => "compiled",
        }
    }

    /// Parses a wire/CLI name (the inverse of [`ExecTier::as_str`]).
    pub fn parse(s: &str) -> Option<ExecTier> {
        match s {
            "reference" => Some(ExecTier::Reference),
            "predecoded" => Some(ExecTier::Predecoded),
            "compiled" => Some(ExecTier::Compiled),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExecTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Result of a completed execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Values printed by the program, in order — its observable output.
    pub output: Vec<i64>,
    /// Number of instructions executed — the deterministic cost metric.
    pub instructions: u64,
    /// The recorded trace (empty unless tracing was enabled).
    pub trace: Trace,
    /// Final static-field values.
    pub statics: Vec<i64>,
}

/// Result of a streaming execution — like [`Outcome`] minus the trace,
/// which went to the caller's [`TraceSink`] as it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Values printed by the program, in order — its observable output.
    pub output: Vec<i64>,
    /// Number of instructions executed — the deterministic cost metric.
    pub instructions: u64,
    /// Final static-field values.
    pub statics: Vec<i64>,
}

/// An interpreter for one program.
///
/// See the [crate-level example](crate) for basic use. For watermarking,
/// enable tracing and provide the secret input:
///
/// ```
/// use stackvm::builder::{FunctionBuilder, ProgramBuilder};
/// use stackvm::interp::Vm;
/// use stackvm::trace::TraceConfig;
///
/// let mut pb = ProgramBuilder::new();
/// let mut f = FunctionBuilder::new("main", 0, 0);
/// f.read_input().print().ret_void();
/// let main = pb.add_function(f.finish()?);
/// let program = pb.finish(main)?;
///
/// let outcome = Vm::new(&program)
///     .with_input(vec![42])
///     .with_trace(TraceConfig::full())
///     .run()?;
/// assert_eq!(outcome.output, vec![42]);
/// assert!(!outcome.trace.is_empty());
/// # Ok::<(), stackvm::VmError>(())
/// ```
#[derive(Debug)]
pub struct Vm<'p> {
    program: &'p Program,
    predecoded: Predecoded,
    input: Vec<i64>,
    budget: u64,
    trace_config: TraceConfig,
    tier: ExecTier,
    compile_budget: usize,
    /// Lazily-built compiled form (`None` inside = the program exceeded
    /// the compile budget and the predecoded engine runs instead).
    compiled: OnceLock<Option<Compiled>>,
}

/// A suspended caller in the dense engine: base offsets into the shared
/// operand stack and locals arena (calls allocate nothing).
#[derive(Clone, Copy)]
struct DenseFrame {
    func: FuncId,
    pc: usize,
    locals_base: usize,
    stack_base: usize,
}

/// A call frame of the reference engine (per-frame vectors, as the
/// original interpreter allocated them).
struct Frame {
    func: FuncId,
    pc: usize,
    locals: Vec<i64>,
    stack: Vec<i64>,
}

impl<'p> Vm<'p> {
    /// Prepares an interpreter, flattening the program into its dense
    /// [`Predecoded`] form (built once per program, linear in code size).
    pub fn new(program: &'p Program) -> Self {
        Vm {
            program,
            predecoded: Predecoded::build(program),
            input: Vec::new(),
            budget: DEFAULT_BUDGET,
            trace_config: TraceConfig::off(),
            tier: ExecTier::default(),
            compile_budget: DEFAULT_COMPILE_BUDGET,
            compiled: OnceLock::new(),
        }
    }

    /// Sets the input sequence consumed by `ReadInput` (the watermark
    /// key's secret input, during embedding and recognition).
    pub fn with_input(mut self, input: Vec<i64>) -> Self {
        self.input = input;
        self
    }

    /// Sets the instruction budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Enables trace recording.
    pub fn with_trace(mut self, config: TraceConfig) -> Self {
        self.trace_config = config;
        self
    }

    /// Selects the execution engine (default [`ExecTier::Compiled`]).
    pub fn with_exec_tier(mut self, tier: ExecTier) -> Self {
        self.tier = tier;
        self
    }

    /// Overrides the compile-tier size budget (flattened slots) past
    /// which [`ExecTier::Compiled`] falls back to the predecoded engine.
    pub fn with_compile_budget(mut self, slots: usize) -> Self {
        self.compile_budget = slots;
        self
    }

    /// The selected execution tier.
    pub fn exec_tier(&self) -> ExecTier {
        self.tier
    }

    /// Forces the compile step (normally lazy) and reports whether the
    /// compiled engine will actually execute under the current tier and
    /// trace configuration — `false` means a fallback to the predecoded
    /// engine (tier not [`ExecTier::Compiled`], block/snapshot recording
    /// requested, or the program exceeded the compile budget). Sessions
    /// call this under a telemetry span so compile time and fallbacks
    /// are observable.
    pub fn prepare(&self) -> bool {
        self.tier == ExecTier::Compiled
            && self.trace_config.compiled_compatible()
            && self.compiled().is_some()
    }

    fn compiled(&self) -> Option<&Compiled> {
        self.compiled
            .get_or_init(|| Compiled::build(&self.predecoded, self.compile_budget))
            .as_ref()
    }

    /// Runs the program's entry function to completion, collecting the
    /// trace into a vector (streaming into a [`Trace`] sink).
    ///
    /// # Errors
    ///
    /// Any [`VmError`] runtime fault: stack underflow, division by zero,
    /// bad array access, falling off a function end, budget exhaustion,
    /// or call-stack overflow. (Attacked programs routinely fault — the
    /// resilience experiments rely on observing this.)
    pub fn run(&self) -> Result<Outcome, VmError> {
        if self.tier == ExecTier::Reference {
            return self.run_reference();
        }
        let mut trace = Trace::new();
        let r = self.run_with_sink(&mut trace)?;
        Ok(Outcome {
            output: r.output,
            instructions: r.instructions,
            trace,
            statics: r.statics,
        })
    }

    /// Runs the program, streaming trace events into `sink` the moment
    /// they happen — no `Vec<TraceEvent>` is ever materialized. This is
    /// the recognition hot path: with a packed-bits sink the whole
    /// trace-to-bitstring pipeline allocates nothing per event.
    ///
    /// Dispatches to the selected [`ExecTier`]. The default compiled
    /// tier runs the flattened threaded-code form ([`crate::compile`])
    /// when the configuration allows it (no block/snapshot recording,
    /// program within the compile budget) and otherwise falls back to
    /// the predecoded engine; [`ExecTier::Reference`] runs the oracle
    /// and replays its collected trace into `sink` afterwards (on a
    /// fault, events recorded before the fault are not replayed —
    /// streaming engines deliver those as they happen).
    ///
    /// # Errors
    ///
    /// As for [`Vm::run`].
    pub fn run_with_sink<S: TraceSink>(&self, sink: &mut S) -> Result<RunResult, VmError> {
        match self.tier {
            ExecTier::Reference => {
                let out = self.run_reference()?;
                for event in &out.trace.events {
                    match event {
                        TraceEvent::EnterBlock { site } => sink.enter_block(*site),
                        TraceEvent::Branch { site, next } => sink.branch(*site, *next),
                        TraceEvent::Snapshot { site, data } => {
                            sink.snapshot(*site, &data.locals, &data.statics)
                        }
                    }
                }
                Ok(RunResult {
                    output: out.output,
                    instructions: out.instructions,
                    statics: out.statics,
                })
            }
            ExecTier::Predecoded => self.run_predecoded(sink),
            ExecTier::Compiled => {
                if !self.trace_config.compiled_compatible() {
                    return self.run_predecoded(sink);
                }
                match self.compiled() {
                    Some(compiled) if self.trace_config.branches => run_compiled::<S, true>(
                        compiled,
                        self.program,
                        &self.input,
                        self.budget,
                        sink,
                    ),
                    Some(compiled) => run_compiled::<S, false>(
                        compiled,
                        self.program,
                        &self.input,
                        self.budget,
                        sink,
                    ),
                    None => self.run_predecoded(sink),
                }
            }
        }
    }

    /// The dense predecoded dispatch loop: ops are 16 bytes, call
    /// arities are pre-resolved, per-function state (code, leader flags)
    /// is re-hoisted only when the frame changes, and all frames share
    /// one operand stack and one locals arena. Handles every trace
    /// configuration — the compiled tier's fallback as well as its
    /// equivalence baseline.
    fn run_predecoded<S: TraceSink>(&self, sink: &mut S) -> Result<RunResult, VmError> {
        let pre = &self.predecoded;
        let mut statics = vec![0i64; self.program.statics.len()];
        let mut heap: Vec<Vec<i64>> = Vec::new();
        let mut output = Vec::new();
        let mut snapshot_counts: std::collections::HashMap<Site, u32> =
            std::collections::HashMap::new();
        let mut input_pos = 0usize;
        let mut executed: u64 = 0;
        // Hoisted: under `branches_only` (the recognition-phase config)
        // the per-instruction leader lookup is dead work.
        let record_leaders = self.trace_config.blocks || self.trace_config.snapshots;
        let record_branches = self.trace_config.branches;

        let mut stack: Vec<i64> = Vec::with_capacity(64);
        let mut locals: Vec<i64> = Vec::with_capacity(64);
        let mut frames: Vec<DenseFrame> = Vec::new();

        let entry = self.program.entry;
        locals.resize(pre.funcs[entry.0 as usize].num_locals as usize, 0);
        let mut cur = DenseFrame {
            func: entry,
            pc: 0,
            locals_base: 0,
            stack_base: 0,
        };

        'frames: loop {
            let func = &pre.funcs[cur.func.0 as usize];
            let code = func.code.as_slice();
            let leaders = func.leaders.as_slice();
            loop {
                let pc = cur.pc;
                // One bounds check does double duty: `get` both fetches
                // the op and detects falling off the function end.
                let Some(&op) = code.get(pc) else {
                    return Err(VmError::FellOffEnd { func: cur.func });
                };
                executed += 1;
                if executed > self.budget {
                    return Err(VmError::BudgetExhausted {
                        budget: self.budget,
                    });
                }
                if record_leaders && leaders[pc] {
                    let site = Site {
                        func: cur.func,
                        pc,
                    };
                    if self.trace_config.blocks {
                        sink.enter_block(site);
                    }
                    if self.trace_config.snapshots {
                        let seen = snapshot_counts.entry(site).or_insert(0);
                        if self.trace_config.snapshot_limit == 0
                            || *seen < self.trace_config.snapshot_limit
                        {
                            *seen += 1;
                            sink.snapshot(site, &locals[cur.locals_base..], &statics);
                        }
                    }
                }

                // `pop!(p)` reports an underflow at pc `p` — fused ops
                // pass the consumed op's original pc so errors are
                // indistinguishable from the unfused execution.
                macro_rules! pop {
                    () => {
                        pop!(pc)
                    };
                    ($err_pc:expr) => {{
                        if stack.len() <= cur.stack_base {
                            return Err(VmError::StackUnderflow {
                                func: cur.func,
                                pc: $err_pc,
                            });
                        }
                        stack.pop().expect("stack is above the frame base")
                    }};
                }

                // Applies a binary operator, reporting a division by
                // zero at the given pc (fused ops pass the consumed
                // `Bin`'s original offset).
                macro_rules! binop {
                    ($op:expr, $a:expr, $b:expr, $err_pc:expr) => {{
                        let a: i64 = $a;
                        let b: i64 = $b;
                        match $op {
                            BinOp::Add => a.wrapping_add(b),
                            BinOp::Sub => a.wrapping_sub(b),
                            BinOp::Mul => a.wrapping_mul(b),
                            BinOp::Div => {
                                if b == 0 {
                                    return Err(VmError::DivisionByZero {
                                        func: cur.func,
                                        pc: $err_pc,
                                    });
                                }
                                a.wrapping_div(b)
                            }
                            BinOp::Rem => {
                                if b == 0 {
                                    return Err(VmError::DivisionByZero {
                                        func: cur.func,
                                        pc: $err_pc,
                                    });
                                }
                                a.wrapping_rem(b)
                            }
                            BinOp::And => a & b,
                            BinOp::Or => a | b,
                            BinOp::Xor => a ^ b,
                            BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                            BinOp::Shr => a.wrapping_shr(b as u32 & 63),
                            BinOp::UShr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
                        }
                    }};
                }

                // Charges the extra instructions a fused op stands for,
                // preserving exact budget semantics: work done by the
                // earlier ops of a fused group is unobservable once the
                // budget error returns, so one combined check is
                // equivalent to the reference's per-op checks.
                macro_rules! charge {
                    ($extra:expr) => {
                        executed += $extra;
                        if executed > self.budget {
                            return Err(VmError::BudgetExhausted {
                                budget: self.budget,
                            });
                        }
                    };
                }

                match op {
                    Op::Const(v) => {
                        stack.push(v);
                        cur.pc = pc + 1;
                    }
                    Op::Load(n) => {
                        stack.push(locals[cur.locals_base + n as usize]);
                        cur.pc = pc + 1;
                    }
                    Op::Store(n) => {
                        let v = pop!();
                        locals[cur.locals_base + n as usize] = v;
                        cur.pc = pc + 1;
                    }
                    Op::Iinc(n, d) => {
                        let slot = &mut locals[cur.locals_base + n as usize];
                        *slot = slot.wrapping_add(d as i64);
                        cur.pc = pc + 1;
                    }
                    Op::Bin(op) => {
                        let b = pop!();
                        let a = pop!();
                        let v = binop!(op, a, b, pc);
                        stack.push(v);
                        cur.pc = pc + 1;
                    }
                    Op::Neg => {
                        let v = pop!();
                        stack.push(v.wrapping_neg());
                        cur.pc = pc + 1;
                    }
                    Op::Dup => {
                        if stack.len() <= cur.stack_base {
                            return Err(VmError::StackUnderflow {
                                func: cur.func,
                                pc,
                            });
                        }
                        let v = *stack.last().expect("stack is above the frame base");
                        stack.push(v);
                        cur.pc = pc + 1;
                    }
                    Op::Pop => {
                        pop!();
                        cur.pc = pc + 1;
                    }
                    Op::Swap => {
                        let b = pop!();
                        let a = pop!();
                        stack.push(b);
                        stack.push(a);
                        cur.pc = pc + 1;
                    }
                    Op::GetStatic(s) => {
                        stack.push(statics[s as usize]);
                        cur.pc = pc + 1;
                    }
                    Op::PutStatic(s) => {
                        let v = pop!();
                        statics[s as usize] = v;
                        cur.pc = pc + 1;
                    }
                    Op::NewArray => {
                        let len = pop!();
                        if len < 0 {
                            return Err(VmError::NegativeArrayLength {
                                func: cur.func,
                                pc,
                                len,
                            });
                        }
                        heap.push(vec![0i64; len as usize]);
                        stack.push(heap.len() as i64 - 1);
                        cur.pc = pc + 1;
                    }
                    Op::ALoad => {
                        let idx = pop!();
                        let handle = pop!();
                        let v = *array(&heap, handle, cur.func, pc)?
                            .get(idx as usize)
                            .ok_or(VmError::BadArrayAccess {
                                func: cur.func,
                                pc,
                                value: idx,
                            })?;
                        stack.push(v);
                        cur.pc = pc + 1;
                    }
                    Op::AStore => {
                        let v = pop!();
                        let idx = pop!();
                        let handle = pop!();
                        let func_id = cur.func;
                        let arr = array_mut(&mut heap, handle, func_id, pc)?;
                        let slot = arr.get_mut(idx as usize).ok_or(VmError::BadArrayAccess {
                            func: func_id,
                            pc,
                            value: idx,
                        })?;
                        *slot = v;
                        cur.pc = pc + 1;
                    }
                    Op::ArrayLen => {
                        let handle = pop!();
                        let len = array(&heap, handle, cur.func, pc)?.len() as i64;
                        stack.push(len);
                        cur.pc = pc + 1;
                    }
                    Op::Goto(t) => cur.pc = t as usize,
                    Op::If(cond, t) => {
                        let v = pop!();
                        let next = if cond.eval(v, 0) { t as usize } else { pc + 1 };
                        if record_branches {
                            sink.branch(
                                Site {
                                    func: cur.func,
                                    pc,
                                },
                                next,
                            );
                        }
                        cur.pc = next;
                    }
                    Op::IfCmp(cond, t) => {
                        let b = pop!();
                        let a = pop!();
                        let next = if cond.eval(a, b) { t as usize } else { pc + 1 };
                        if record_branches {
                            sink.branch(
                                Site {
                                    func: cur.func,
                                    pc,
                                },
                                next,
                            );
                        }
                        cur.pc = next;
                    }
                    Op::Switch(idx) => {
                        let v = pop!();
                        let table = &func.switches[idx as usize];
                        cur.pc = table
                            .cases
                            .iter()
                            .find(|&&(k, _)| k == v)
                            .map(|&(_, t)| t)
                            .unwrap_or(table.default) as usize;
                    }
                    Op::Call {
                        callee,
                        argc,
                        num_locals,
                    } => {
                        if frames.len() + 1 >= MAX_CALL_DEPTH {
                            return Err(VmError::CallStackOverflow);
                        }
                        let argc = argc as usize;
                        if stack.len() - cur.stack_base < argc {
                            return Err(VmError::StackUnderflow {
                                func: cur.func,
                                pc,
                            });
                        }
                        // Arguments are already contiguous on the stack
                        // top; they become the callee's first locals.
                        let locals_base = locals.len();
                        let split = stack.len() - argc;
                        locals.extend_from_slice(&stack[split..]);
                        locals.resize(locals_base + num_locals as usize, 0);
                        stack.truncate(split);
                        cur.pc = pc + 1; // resume after the call on return
                        frames.push(cur);
                        cur = DenseFrame {
                            func: FuncId(callee),
                            pc: 0,
                            locals_base,
                            stack_base: split,
                        };
                        continue 'frames;
                    }
                    Op::BadCall(f) => {
                        if frames.len() + 1 >= MAX_CALL_DEPTH {
                            return Err(VmError::CallStackOverflow);
                        }
                        // Unresolvable at predecode time: take the
                        // reference slow path, which panics exactly
                        // where the original interpreter would.
                        let callee = self.program.function(FuncId(f));
                        let argc = callee.num_params as usize;
                        if stack.len() - cur.stack_base < argc {
                            return Err(VmError::StackUnderflow {
                                func: cur.func,
                                pc,
                            });
                        }
                        let mut callee_locals = vec![0i64; callee.num_locals as usize];
                        let split = stack.len() - argc;
                        for (i, v) in stack.drain(split..).enumerate() {
                            callee_locals[i] = v;
                        }
                        let locals_base = locals.len();
                        locals.extend_from_slice(&callee_locals);
                        cur.pc = pc + 1;
                        frames.push(cur);
                        cur = DenseFrame {
                            func: FuncId(f),
                            pc: 0,
                            locals_base,
                            stack_base: split,
                        };
                        continue 'frames;
                    }
                    Op::Return(with_value) => {
                        let ret = if with_value { Some(pop!()) } else { None };
                        stack.truncate(cur.stack_base);
                        locals.truncate(cur.locals_base);
                        match frames.pop() {
                            Some(caller) => {
                                cur = caller;
                                if let Some(v) = ret {
                                    stack.push(v);
                                }
                                continue 'frames;
                            }
                            None => {
                                return Ok(RunResult {
                                    output,
                                    instructions: executed,
                                    statics,
                                });
                            }
                        }
                    }
                    Op::Print => {
                        let v = pop!();
                        output.push(v);
                        cur.pc = pc + 1;
                    }
                    Op::ReadInput => {
                        let v = self.input.get(input_pos).copied().unwrap_or(0);
                        input_pos += 1;
                        stack.push(v);
                        cur.pc = pc + 1;
                    }
                    Op::Nop => cur.pc = pc + 1,

                    // Fused superinstructions: each stands for the two
                    // (or three) original ops at `pc..`, so it charges
                    // the extra instructions, reports consumed branch
                    // sites and error pcs at their original offsets,
                    // and falls through past the consumed slots.
                    Op::Load2(a, b) => {
                        charge!(1);
                        stack.push(locals[cur.locals_base + a as usize]);
                        stack.push(locals[cur.locals_base + b as usize]);
                        cur.pc = pc + 2;
                    }
                    Op::LoadConst(n, v) => {
                        charge!(1);
                        stack.push(locals[cur.locals_base + n as usize]);
                        stack.push(v);
                        cur.pc = pc + 2;
                    }
                    Op::StoreLoad(a, b) => {
                        charge!(1);
                        let v = pop!();
                        locals[cur.locals_base + a as usize] = v;
                        stack.push(locals[cur.locals_base + b as usize]);
                        cur.pc = pc + 2;
                    }
                    Op::StoreGoto(n, t) => {
                        charge!(1);
                        let v = pop!();
                        locals[cur.locals_base + n as usize] = v;
                        cur.pc = t as usize;
                    }
                    Op::LoadIf(n, cond, t) => {
                        charge!(1);
                        let v = locals[cur.locals_base + n as usize];
                        let next = if cond.eval(v, 0) { t as usize } else { pc + 2 };
                        if record_branches {
                            sink.branch(
                                Site {
                                    func: cur.func,
                                    pc: pc + 1,
                                },
                                next,
                            );
                        }
                        cur.pc = next;
                    }
                    Op::LoadIfCmp(n, cond, t) => {
                        charge!(1);
                        // The load pushed the *second* operand; the
                        // first comes from beneath it on the stack.
                        let b = locals[cur.locals_base + n as usize];
                        let a = pop!(pc + 1);
                        let next = if cond.eval(a, b) { t as usize } else { pc + 2 };
                        if record_branches {
                            sink.branch(
                                Site {
                                    func: cur.func,
                                    pc: pc + 1,
                                },
                                next,
                            );
                        }
                        cur.pc = next;
                    }
                    Op::ConstIfCmp(v, cond, t) => {
                        charge!(1);
                        let a = pop!(pc + 1);
                        let next = if cond.eval(a, v) { t as usize } else { pc + 2 };
                        if record_branches {
                            sink.branch(
                                Site {
                                    func: cur.func,
                                    pc: pc + 1,
                                },
                                next,
                            );
                        }
                        cur.pc = next;
                    }
                    Op::IincGoto(n, d, t) => {
                        charge!(1);
                        let slot = &mut locals[cur.locals_base + n as usize];
                        *slot = slot.wrapping_add(d as i64);
                        cur.pc = t as usize;
                    }
                    Op::Load2IfCmp(a, b, cond, t) => {
                        charge!(2);
                        let x = locals[cur.locals_base + a as usize];
                        let y = locals[cur.locals_base + b as usize];
                        let next = if cond.eval(x, y) { t as usize } else { pc + 3 };
                        if record_branches {
                            sink.branch(
                                Site {
                                    func: cur.func,
                                    pc: pc + 2,
                                },
                                next,
                            );
                        }
                        cur.pc = next;
                    }
                    Op::LoadConstIfCmp(n, cond, t, v) => {
                        charge!(2);
                        let x = locals[cur.locals_base + n as usize];
                        let next = if cond.eval(x, v) { t as usize } else { pc + 3 };
                        if record_branches {
                            sink.branch(
                                Site {
                                    func: cur.func,
                                    pc: pc + 2,
                                },
                                next,
                            );
                        }
                        cur.pc = next;
                    }
                    Op::ConstBin(v, op) => {
                        charge!(1);
                        let a = pop!(pc + 1);
                        let r = binop!(op, a, v, pc + 1);
                        stack.push(r);
                        cur.pc = pc + 2;
                    }
                    Op::LoadBin(n, op) => {
                        charge!(1);
                        let b = locals[cur.locals_base + n as usize];
                        let a = pop!(pc + 1);
                        let r = binop!(op, a, b, pc + 1);
                        stack.push(r);
                        cur.pc = pc + 2;
                    }
                    Op::BinConst(op, v) => {
                        charge!(1);
                        let b = pop!();
                        let a = pop!();
                        let r = binop!(op, a, b, pc);
                        stack.push(r);
                        stack.push(v);
                        cur.pc = pc + 2;
                    }
                    Op::Bin2(op1, op2) => {
                        charge!(1);
                        let b = pop!();
                        let a = pop!();
                        let r1 = binop!(op1, a, b, pc);
                        let c = pop!(pc + 1);
                        let r2 = binop!(op2, c, r1, pc + 1);
                        stack.push(r2);
                        cur.pc = pc + 2;
                    }
                    Op::BinStore(op, n) => {
                        charge!(1);
                        let b = pop!();
                        let a = pop!();
                        let r = binop!(op, a, b, pc);
                        locals[cur.locals_base + n as usize] = r;
                        cur.pc = pc + 2;
                    }
                    Op::StoreIinc(n, m, d) => {
                        charge!(1);
                        let v = pop!();
                        locals[cur.locals_base + n as usize] = v;
                        let slot = &mut locals[cur.locals_base + m as usize];
                        *slot = slot.wrapping_add(d as i64);
                        cur.pc = pc + 2;
                    }
                    Op::IincLoad(n, d, m) => {
                        charge!(1);
                        let slot = &mut locals[cur.locals_base + n as usize];
                        *slot = slot.wrapping_add(d as i64);
                        stack.push(locals[cur.locals_base + m as usize]);
                        cur.pc = pc + 2;
                    }
                    Op::Load2Bin(a, b, op) => {
                        charge!(2);
                        let x = locals[cur.locals_base + a as usize];
                        let y = locals[cur.locals_base + b as usize];
                        let r = binop!(op, x, y, pc + 2);
                        stack.push(r);
                        cur.pc = pc + 3;
                    }
                    Op::LoadConstBin(n, op, v) => {
                        charge!(2);
                        let x = locals[cur.locals_base + n as usize];
                        let r = binop!(op, x, v, pc + 2);
                        stack.push(r);
                        cur.pc = pc + 3;
                    }
                    Op::Load2BinStore(a, b, op, d) => {
                        charge!(3);
                        let x = locals[cur.locals_base + a as usize];
                        let y = locals[cur.locals_base + b as usize];
                        let r = binop!(op, x, y, pc + 2);
                        locals[cur.locals_base + d as usize] = r;
                        cur.pc = pc + 4;
                    }
                    Op::LoadConstBinStore(n, op, d, v) => {
                        charge!(3);
                        let x = locals[cur.locals_base + n as usize];
                        let r = binop!(op, x, v, pc + 2);
                        locals[cur.locals_base + d as usize] = r;
                        cur.pc = pc + 4;
                    }
                }
            }
        }
    }

    /// The original enum-dispatch interpreter, preserved as the semantic
    /// oracle: the `predecoded_engine_matches_reference` property test
    /// asserts [`Vm::run`] agrees with it — outcome, trace, and error —
    /// over randomized programs.
    ///
    /// # Errors
    ///
    /// As for [`Vm::run`].
    pub fn run_reference(&self) -> Result<Outcome, VmError> {
        let cfgs: Vec<Cfg> = self.program.functions.iter().map(Cfg::build).collect();
        let mut statics = vec![0i64; self.program.statics.len()];
        let mut heap: Vec<Vec<i64>> = Vec::new();
        let mut output = Vec::new();
        let mut trace = Trace::new();
        let mut snapshot_counts: std::collections::HashMap<Site, u32> =
            std::collections::HashMap::new();
        let mut input_pos = 0usize;
        let mut executed: u64 = 0;
        let record_leaders = self.trace_config.blocks || self.trace_config.snapshots;

        let entry_fn = self.program.function(self.program.entry);
        let mut frames = vec![Frame {
            func: self.program.entry,
            pc: 0,
            locals: vec![0i64; entry_fn.num_locals as usize],
            stack: Vec::new(),
        }];

        loop {
            let call_depth = frames.len();
            let Some(frame) = frames.last_mut() else {
                break;
            };
            let func = self.program.function(frame.func);
            let cfg = &cfgs[frame.func.0 as usize];
            let pc = frame.pc;
            if pc >= func.code.len() {
                return Err(VmError::FellOffEnd { func: frame.func });
            }
            executed += 1;
            if executed > self.budget {
                return Err(VmError::BudgetExhausted {
                    budget: self.budget,
                });
            }
            if record_leaders && cfg.is_leader[pc] {
                let site = Site {
                    func: frame.func,
                    pc,
                };
                if self.trace_config.blocks {
                    trace.events.push(TraceEvent::EnterBlock { site });
                }
                if self.trace_config.snapshots {
                    let seen = snapshot_counts.entry(site).or_insert(0);
                    if self.trace_config.snapshot_limit == 0
                        || *seen < self.trace_config.snapshot_limit
                    {
                        *seen += 1;
                        trace.events.push(TraceEvent::Snapshot {
                            site,
                            data: Box::new(SnapshotData {
                                locals: frame.locals.clone(),
                                statics: statics.clone(),
                            }),
                        });
                    }
                }
            }

            macro_rules! pop {
                () => {
                    frame.stack.pop().ok_or(VmError::StackUnderflow {
                        func: frame.func,
                        pc,
                    })?
                };
            }

            match &func.code[pc] {
                Insn::Const(v) => {
                    frame.stack.push(*v);
                    frame.pc += 1;
                }
                Insn::Load(n) => {
                    frame.stack.push(frame.locals[*n as usize]);
                    frame.pc += 1;
                }
                Insn::Store(n) => {
                    let v = pop!();
                    frame.locals[*n as usize] = v;
                    frame.pc += 1;
                }
                Insn::Iinc(n, d) => {
                    let slot = &mut frame.locals[*n as usize];
                    *slot = slot.wrapping_add(*d as i64);
                    frame.pc += 1;
                }
                Insn::Bin(op) => {
                    let b = pop!();
                    let a = pop!();
                    let v = match op {
                        BinOp::Add => a.wrapping_add(b),
                        BinOp::Sub => a.wrapping_sub(b),
                        BinOp::Mul => a.wrapping_mul(b),
                        BinOp::Div => {
                            if b == 0 {
                                return Err(VmError::DivisionByZero {
                                    func: frame.func,
                                    pc,
                                });
                            }
                            a.wrapping_div(b)
                        }
                        BinOp::Rem => {
                            if b == 0 {
                                return Err(VmError::DivisionByZero {
                                    func: frame.func,
                                    pc,
                                });
                            }
                            a.wrapping_rem(b)
                        }
                        BinOp::And => a & b,
                        BinOp::Or => a | b,
                        BinOp::Xor => a ^ b,
                        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                        BinOp::Shr => a.wrapping_shr(b as u32 & 63),
                        BinOp::UShr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
                    };
                    frame.stack.push(v);
                    frame.pc += 1;
                }
                Insn::Neg => {
                    let v = pop!();
                    frame.stack.push(v.wrapping_neg());
                    frame.pc += 1;
                }
                Insn::Dup => {
                    let v = *frame.stack.last().ok_or(VmError::StackUnderflow {
                        func: frame.func,
                        pc,
                    })?;
                    frame.stack.push(v);
                    frame.pc += 1;
                }
                Insn::Pop => {
                    pop!();
                    frame.pc += 1;
                }
                Insn::Swap => {
                    let b = pop!();
                    let a = pop!();
                    frame.stack.push(b);
                    frame.stack.push(a);
                    frame.pc += 1;
                }
                Insn::GetStatic(s) => {
                    frame.stack.push(statics[*s as usize]);
                    frame.pc += 1;
                }
                Insn::PutStatic(s) => {
                    let v = pop!();
                    statics[*s as usize] = v;
                    frame.pc += 1;
                }
                Insn::NewArray => {
                    let len = pop!();
                    if len < 0 {
                        return Err(VmError::NegativeArrayLength {
                            func: frame.func,
                            pc,
                            len,
                        });
                    }
                    heap.push(vec![0i64; len as usize]);
                    frame.stack.push(heap.len() as i64 - 1);
                    frame.pc += 1;
                }
                Insn::ALoad => {
                    let idx = pop!();
                    let handle = pop!();
                    let v = *array(&heap, handle, frame.func, pc)?
                        .get(idx as usize)
                        .ok_or(VmError::BadArrayAccess {
                            func: frame.func,
                            pc,
                            value: idx,
                        })?;
                    frame.stack.push(v);
                    frame.pc += 1;
                }
                Insn::AStore => {
                    let v = pop!();
                    let idx = pop!();
                    let handle = pop!();
                    let func_id = frame.func;
                    let arr = array_mut(&mut heap, handle, func_id, pc)?;
                    let slot = arr.get_mut(idx as usize).ok_or(VmError::BadArrayAccess {
                        func: func_id,
                        pc,
                        value: idx,
                    })?;
                    *slot = v;
                    frame.pc += 1;
                }
                Insn::ArrayLen => {
                    let handle = pop!();
                    let len = array(&heap, handle, frame.func, pc)?.len() as i64;
                    frame.stack.push(len);
                    frame.pc += 1;
                }
                Insn::Goto(t) => frame.pc = *t,
                Insn::If(cond, t) => {
                    let v = pop!();
                    let next = if cond.eval(v, 0) { *t } else { pc + 1 };
                    if self.trace_config.branches {
                        trace.events.push(TraceEvent::Branch {
                            site: Site {
                                func: frame.func,
                                pc,
                            },
                            next,
                        });
                    }
                    frame.pc = next;
                }
                Insn::IfCmp(cond, t) => {
                    let b = pop!();
                    let a = pop!();
                    let next = if cond.eval(a, b) { *t } else { pc + 1 };
                    if self.trace_config.branches {
                        trace.events.push(TraceEvent::Branch {
                            site: Site {
                                func: frame.func,
                                pc,
                            },
                            next,
                        });
                    }
                    frame.pc = next;
                }
                Insn::Switch { cases, default } => {
                    let v = pop!();
                    frame.pc = cases
                        .iter()
                        .find(|&&(k, _)| k == v)
                        .map(|&(_, t)| t)
                        .unwrap_or(*default);
                }
                Insn::Call(f) => {
                    if call_depth >= MAX_CALL_DEPTH {
                        return Err(VmError::CallStackOverflow);
                    }
                    let callee_id = FuncId(*f);
                    let callee = self.program.function(callee_id);
                    let argc = callee.num_params as usize;
                    if frame.stack.len() < argc {
                        return Err(VmError::StackUnderflow {
                            func: frame.func,
                            pc,
                        });
                    }
                    let mut locals = vec![0i64; callee.num_locals as usize];
                    let split = frame.stack.len() - argc;
                    for (i, v) in frame.stack.drain(split..).enumerate() {
                        locals[i] = v;
                    }
                    frame.pc += 1; // resume after the call on return
                    frames.push(Frame {
                        func: callee_id,
                        pc: 0,
                        locals,
                        stack: Vec::new(),
                    });
                }
                Insn::Return(with_value) => {
                    let ret = if *with_value { Some(pop!()) } else { None };
                    frames.pop();
                    match frames.last_mut() {
                        Some(caller) => {
                            if let Some(v) = ret {
                                caller.stack.push(v);
                            }
                        }
                        None => {
                            return Ok(Outcome {
                                output,
                                instructions: executed,
                                trace,
                                statics,
                            });
                        }
                    }
                }
                Insn::Print => {
                    let v = pop!();
                    output.push(v);
                    frame.pc += 1;
                }
                Insn::ReadInput => {
                    let v = self.input.get(input_pos).copied().unwrap_or(0);
                    input_pos += 1;
                    frame.stack.push(v);
                    frame.pc += 1;
                }
                Insn::Nop => frame.pc += 1,
            }
        }
        unreachable!("loop exits via Return from the entry frame");
    }
}

fn array(
    heap: &[Vec<i64>],
    handle: i64,
    func: FuncId,
    pc: usize,
) -> Result<&Vec<i64>, VmError> {
    usize::try_from(handle)
        .ok()
        .and_then(|h| heap.get(h))
        .ok_or(VmError::BadArrayAccess {
            func,
            pc,
            value: handle,
        })
}

fn array_mut(
    heap: &mut [Vec<i64>],
    handle: i64,
    func: FuncId,
    pc: usize,
) -> Result<&mut Vec<i64>, VmError> {
    usize::try_from(handle)
        .ok()
        .and_then(|h| heap.get_mut(h))
        .ok_or(VmError::BadArrayAccess {
            func,
            pc,
            value: handle,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ProgramBuilder};
    use crate::insn::Cond;
    use crate::trace::{CountingSink, TraceEvent};

    fn run_program(p: &Program) -> Outcome {
        Vm::new(p).run().expect("program runs")
    }

    fn gcd_program() -> Program {
        // The paper's Figure 2 example: gcd(25, 10) via repeated remainder.
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 3); // a, b, tmp
        f.push(25).store(0).push(10).store(1);
        let head = f.new_label();
        let out = f.new_label();
        f.bind(head);
        f.load(0).load(1).rem().if_zero(Cond::Eq, out);
        f.load(1).load(0).rem().store(2); // tmp = b % a
        f.load(0).store(1); // b = a
        f.load(2).store(0); // a = tmp
        f.goto(head);
        f.bind(out);
        f.load(1).print().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        pb.finish(main).unwrap()
    }

    #[test]
    fn gcd_of_25_and_10_is_5() {
        let out = run_program(&gcd_program());
        assert_eq!(out.output, vec![5]);
        assert!(out.instructions > 10);
    }

    #[test]
    fn arithmetic_semantics() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 0);
        f.push(7).push(3).bin(crate::insn::BinOp::Div).print();
        f.push(7).push(3).bin(crate::insn::BinOp::Rem).print();
        f.push(-7).push(3).bin(crate::insn::BinOp::Shl).print();
        f.push(-8).push(1).bin(crate::insn::BinOp::Shr).print();
        f.push(-8).push(62).bin(crate::insn::BinOp::UShr).print();
        f.push(5).raw(Insn::Neg).print();
        f.ret_void();
        let main = pb.add_function(f.finish().unwrap());
        let out = run_program(&pb.finish(main).unwrap());
        assert_eq!(out.output, vec![2, 1, -56, -4, 3, -5]);
    }

    #[test]
    fn division_by_zero_faults() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 0);
        f.push(1).push(0).div().print().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        let p = pb.finish(main).unwrap();
        assert!(matches!(
            Vm::new(&p).run(),
            Err(VmError::DivisionByZero { .. })
        ));
    }

    #[test]
    fn arrays_store_and_load() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 1);
        f.push(3).new_array().store(0);
        f.load(0).push(1).push(42).astore();
        f.load(0).push(1).aload().print();
        f.load(0).array_len().print();
        f.ret_void();
        let main = pb.add_function(f.finish().unwrap());
        let out = run_program(&pb.finish(main).unwrap());
        assert_eq!(out.output, vec![42, 3]);
    }

    #[test]
    fn array_out_of_bounds_faults() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 1);
        f.push(2).new_array().store(0);
        f.load(0).push(5).aload().print().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        let p = pb.finish(main).unwrap();
        assert!(matches!(
            Vm::new(&p).run(),
            Err(VmError::BadArrayAccess { value: 5, .. })
        ));
    }

    #[test]
    fn negative_array_length_faults() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 0);
        f.push(-1).new_array().pop().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        let p = pb.finish(main).unwrap();
        assert!(matches!(
            Vm::new(&p).run(),
            Err(VmError::NegativeArrayLength { len: -1, .. })
        ));
    }

    #[test]
    fn calls_pass_arguments_and_return_values() {
        let mut pb = ProgramBuilder::new();
        let mut callee = FunctionBuilder::new("sub", 2, 0);
        callee.load(0).load(1).sub().ret();
        let callee_id = pb.add_function(callee.finish().unwrap());
        let mut main = FunctionBuilder::new("main", 0, 0);
        main.push(10).push(4).call(callee_id).print().ret_void();
        let main_id = pb.add_function(main.finish().unwrap());
        let out = run_program(&pb.finish(main_id).unwrap());
        assert_eq!(out.output, vec![6]); // 10 - 4, argument order preserved
    }

    #[test]
    fn statics_are_shared_across_calls() {
        let mut pb = ProgramBuilder::new();
        let g = pb.add_static("g");
        let mut setter = FunctionBuilder::new("set", 1, 0);
        setter.load(0).put_static(g).ret_void();
        let setter_id = pb.add_function(setter.finish().unwrap());
        let mut main = FunctionBuilder::new("main", 0, 0);
        main.push(99).call(setter_id).get_static(g).print().ret_void();
        let main_id = pb.add_function(main.finish().unwrap());
        let out = run_program(&pb.finish(main_id).unwrap());
        assert_eq!(out.output, vec![99]);
        assert_eq!(out.statics, vec![99]);
    }

    #[test]
    fn budget_exhaustion_detected() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 0);
        let top = f.new_label();
        f.bind(top);
        f.goto(top);
        let main = pb.add_function(f.finish().unwrap());
        let p = pb.finish(main).unwrap();
        assert_eq!(
            Vm::new(&p).with_budget(1000).run(),
            Err(VmError::BudgetExhausted { budget: 1000 })
        );
    }

    #[test]
    fn deep_recursion_overflows() {
        let mut pb = ProgramBuilder::new();
        let id = pb.declare_function("inf");
        let mut f = FunctionBuilder::new("inf", 0, 0);
        f.call(id).ret_void();
        pb.set_function(id, f.finish().unwrap());
        let p = pb.finish(id).unwrap();
        assert_eq!(Vm::new(&p).run(), Err(VmError::CallStackOverflow));
    }

    #[test]
    fn input_sequence_consumed_then_zero() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 0);
        f.read_input().print();
        f.read_input().print();
        f.read_input().print();
        f.ret_void();
        let main = pb.add_function(f.finish().unwrap());
        let p = pb.finish(main).unwrap();
        let out = Vm::new(&p).with_input(vec![7, 8]).run().unwrap();
        assert_eq!(out.output, vec![7, 8, 0]);
    }

    #[test]
    fn switch_dispatches_and_is_not_traced_as_branch() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 0);
        let one = f.new_label();
        let dfl = f.new_label();
        f.push(1);
        f.switch(&[(1, one)], dfl);
        f.bind(one);
        f.push(111).print().ret_void();
        f.bind(dfl);
        f.push(222).print().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        let p = pb.finish(main).unwrap();
        let out = Vm::new(&p)
            .with_trace(TraceConfig::full())
            .run()
            .unwrap();
        assert_eq!(out.output, vec![111]);
        assert_eq!(out.trace.dynamic_branch_count(), 0);
    }

    #[test]
    fn trace_records_branches_with_following_block() {
        let p = gcd_program();
        let out = Vm::new(&p).with_trace(TraceConfig::full()).run().unwrap();
        let branches: Vec<_> = out.trace.branch_sequence().collect();
        // gcd(25,10): 25 % 10 = 5 ≠ 0 (fall through), then a=5, b=10;
        // 10 % 5 = 0 (taken). Wait — first iteration: a=25, b=10,
        // a % b = 5 ≠ 0 → loop body; second: a = 10 % 25?  The trace
        // length is what matters here: the branch executed twice, and the
        // two executions went to *different* following blocks.
        assert!(branches.len() >= 2);
        let first_site = branches[0].0;
        assert!(branches.iter().all(|(s, _)| *s == first_site));
        let nexts: std::collections::HashSet<usize> =
            branches.iter().map(|&(_, n)| n).collect();
        assert_eq!(nexts.len(), 2, "loop exit and loop body both followed");
        // Block events and snapshots were recorded too.
        assert!(out
            .trace
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::EnterBlock { .. })));
        assert!(out
            .trace
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Snapshot { .. })));
    }

    #[test]
    fn tracing_does_not_change_semantics() {
        let p = gcd_program();
        let plain = Vm::new(&p).run().unwrap();
        let traced = Vm::new(&p).with_trace(TraceConfig::full()).run().unwrap();
        assert_eq!(plain.output, traced.output);
        assert_eq!(plain.instructions, traced.instructions);
    }

    #[test]
    fn streaming_sink_sees_the_collected_trace() {
        let p = gcd_program();
        let collected = Vm::new(&p).with_trace(TraceConfig::full()).run().unwrap();
        let mut counter = CountingSink::new();
        let streamed = Vm::new(&p)
            .with_trace(TraceConfig::full())
            .run_with_sink(&mut counter)
            .unwrap();
        assert_eq!(streamed.output, collected.output);
        assert_eq!(streamed.instructions, collected.instructions);
        assert_eq!(streamed.statics, collected.statics);
        assert_eq!(
            counter.branches as usize,
            collected.trace.dynamic_branch_count()
        );
        assert_eq!(
            counter.blocks as usize,
            collected
                .trace
                .events
                .iter()
                .filter(|e| matches!(e, TraceEvent::EnterBlock { .. }))
                .count()
        );
        assert_eq!(
            counter.snapshots as usize,
            collected
                .trace
                .events
                .iter()
                .filter(|e| matches!(e, TraceEvent::Snapshot { .. }))
                .count()
        );
    }

    /// Deterministic xorshift64 — the crate is offline, so property
    /// tests hand-roll their randomness.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Generates a random two-function program: bounded loops, forward
    /// branches, switches, calls, arrays, statics. Local/static/callee
    /// indices are always valid (so nothing panics), but stack
    /// discipline and arithmetic are unconstrained — runtime faults
    /// (underflow, division by zero, bad array access, budget
    /// exhaustion) are legitimate outcomes both engines must agree on.
    fn random_program(rng: &mut XorShift) -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.add_static("g");

        let mut helper = FunctionBuilder::new("helper", 2, 2);
        random_body(rng, &mut helper, g, None, 12);
        helper.push(1).ret(); // a value is always available to return
        let helper_id = pb.add_function(helper.finish().unwrap());

        let mut main = FunctionBuilder::new("main", 0, 4);
        random_body(rng, &mut main, g, Some(helper_id), 30);
        main.ret_void();
        let main_id = pb.add_function(main.finish().unwrap());
        // Deliberately unverified: the generator keeps indices valid but
        // not stack discipline, and the engines must agree on faults too.
        pb.finish_unverified(main_id)
    }

    fn random_body(
        rng: &mut XorShift,
        f: &mut FunctionBuilder,
        g: crate::StaticId,
        callee: Option<FuncId>,
        len: usize,
    ) {
        use crate::insn::BinOp;
        let conds = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge];
        let bins = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::UShr,
        ];
        let mut pending: Vec<crate::builder::Label> = Vec::new();
        // Tracked operand-stack depth along the emission order. Forward
        // branches only jump *out* past the loop, and the loop back edge
        // re-enters with at least this depth, so gating each op on `d`
        // keeps most programs underflow-free (faults that remain —
        // division by zero, the occasional sneaky underflow — are
        // legitimate outcomes the engines must agree on).
        let mut d: usize = 0;
        // A bounded counting loop around the whole body: local 0 counts
        // down from a small bound, so back edges terminate.
        let head = f.new_label();
        f.push(rng.below(4) as i64 + 2).store(0);
        f.bind(head);
        for _ in 0..len {
            match rng.below(14) {
                0 => {
                    f.push(rng.next() as i64 % 100);
                    d += 1;
                }
                1 => {
                    f.load((rng.below(2) + 1) as u16);
                    d += 1;
                }
                2 => {
                    f.read_input();
                    d += 1;
                }
                3 if d >= 1 => {
                    f.store((rng.below(2) + 1) as u16);
                    d -= 1;
                }
                4 if d >= 2 => {
                    f.bin(bins[rng.below(bins.len() as u64) as usize]);
                    d -= 1;
                }
                5 if d >= 1 => {
                    f.raw(Insn::Dup);
                    d += 1;
                }
                6 if d >= 2 => {
                    f.raw(Insn::Swap);
                }
                7 => {
                    f.iinc((rng.below(2) + 1) as u16, rng.next() as i32 % 5);
                }
                8 => {
                    f.get_static(g);
                    d += 1;
                }
                9 if d >= 1 => {
                    f.put_static(g);
                    d -= 1;
                }
                10 if d >= 1 => {
                    let l = f.new_label();
                    f.if_zero(conds[rng.below(6) as usize], l);
                    pending.push(l);
                    d -= 1;
                }
                11 if d >= 2 => {
                    let l = f.new_label();
                    f.if_cmp(conds[rng.below(6) as usize], l);
                    pending.push(l);
                    d -= 2;
                }
                12 if d >= 1 => {
                    let a = f.new_label();
                    let dfl = f.new_label();
                    f.switch(&[(rng.below(3) as i64, a)], dfl);
                    f.bind(a);
                    f.bind(dfl);
                    d -= 1;
                }
                13 if d >= 2 => {
                    if let Some(id) = callee {
                        f.call(id);
                        d -= 1;
                    } else {
                        f.push(3).new_array().array_len().print();
                    }
                }
                _ => {
                    f.push(rng.next() as i64 % 7);
                    d += 1;
                }
            }
        }
        // Close the loop: while (--counter > 0) repeat.
        f.iinc(0, -1);
        f.load(0).if_zero(Cond::Gt, head);
        for l in pending {
            f.bind(l);
        }
    }

    /// The cross-tier equivalence property: over randomized programs
    /// (faults included), all three execution tiers produce identical
    /// outcomes — output, instruction counts, trace events, final
    /// statics — and identical `VmError`s with identical error offsets,
    /// including mid-trace faults under every configuration.
    #[test]
    fn execution_tiers_match_reference() {
        let mut rng = XorShift(0x5EED_CAFE_F00D_0001);
        let mut completed = 0u32;
        let mut compiled_active = 0u32;
        for _ in 0..150 {
            let p = random_program(&mut rng);
            let input: Vec<i64> = (0..4).map(|_| rng.next() as i64 % 50).collect();
            for config in [
                TraceConfig::off(),
                TraceConfig::branches_only(),
                TraceConfig::full(),
            ] {
                let vm = |tier: ExecTier| {
                    Vm::new(&p)
                        .with_input(input.clone())
                        .with_budget(50_000)
                        .with_trace(config)
                        .with_exec_tier(tier)
                };
                let reference = vm(ExecTier::Reference).run();
                let dense = vm(ExecTier::Predecoded).run();
                let compiled_vm = vm(ExecTier::Compiled);
                if compiled_vm.prepare() {
                    compiled_active += 1;
                }
                let compiled = compiled_vm.run();
                assert_eq!(dense, reference, "predecoded diverged on {p:?}");
                assert_eq!(compiled, reference, "compiled diverged on {p:?}");
                if reference.is_ok() {
                    completed += 1;
                }
            }
        }
        // The generator must exercise the success path too, not just
        // agree on faults — and the compiled engine must actually have
        // run (not silently fallen back everywhere).
        assert!(completed > 50, "only {completed} runs completed");
        assert!(
            compiled_active > 100,
            "compiled tier only active {compiled_active} times"
        );
    }

    #[test]
    fn compiled_tier_falls_back_over_the_compile_budget() {
        let p = gcd_program();
        let vm = Vm::new(&p)
            .with_trace(TraceConfig::branches_only())
            .with_compile_budget(2);
        assert!(!vm.prepare(), "a 2-slot budget cannot hold gcd");
        let fallback = vm.run().unwrap();
        let reference = Vm::new(&p)
            .with_trace(TraceConfig::branches_only())
            .with_exec_tier(ExecTier::Reference)
            .run()
            .unwrap();
        assert_eq!(fallback, reference, "fallback stays bit-identical");

        // Under block/snapshot recording the compiled tier declines too.
        let full = Vm::new(&p).with_trace(TraceConfig::full());
        assert!(!full.prepare());
        // But within budget and branches-only, it engages.
        let fast = Vm::new(&p).with_trace(TraceConfig::branches_only());
        assert!(fast.prepare());
        assert_eq!(fast.run().unwrap(), reference);
    }
}
