//! The instrumenting interpreter.
//!
//! Executes a verified [`Program`] and, when tracing is enabled, records
//! the basic-block / branch / snapshot events of Section 3.1. Instruction
//! counts stand in for wall-clock time in the cost experiments (Figure 8):
//! they are deterministic and proportional to interpreter work.

use crate::cfg::Cfg;
use crate::insn::{BinOp, Insn};
use crate::program::{FuncId, Program};
use crate::trace::{Site, SnapshotData, Trace, TraceConfig, TraceEvent};
use crate::VmError;

/// Default instruction budget (generous; guards against runaway loops in
/// attacked programs).
pub const DEFAULT_BUDGET: u64 = 200_000_000;

/// Maximum call-stack depth.
pub const MAX_CALL_DEPTH: usize = 10_000;

/// Result of a completed execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Values printed by the program, in order — its observable output.
    pub output: Vec<i64>,
    /// Number of instructions executed — the deterministic cost metric.
    pub instructions: u64,
    /// The recorded trace (empty unless tracing was enabled).
    pub trace: Trace,
    /// Final static-field values.
    pub statics: Vec<i64>,
}

/// An interpreter for one program.
///
/// See the [crate-level example](crate) for basic use. For watermarking,
/// enable tracing and provide the secret input:
///
/// ```
/// use stackvm::builder::{FunctionBuilder, ProgramBuilder};
/// use stackvm::interp::Vm;
/// use stackvm::trace::TraceConfig;
///
/// let mut pb = ProgramBuilder::new();
/// let mut f = FunctionBuilder::new("main", 0, 0);
/// f.read_input().print().ret_void();
/// let main = pb.add_function(f.finish()?);
/// let program = pb.finish(main)?;
///
/// let outcome = Vm::new(&program)
///     .with_input(vec![42])
///     .with_trace(TraceConfig::full())
///     .run()?;
/// assert_eq!(outcome.output, vec![42]);
/// assert!(!outcome.trace.is_empty());
/// # Ok::<(), stackvm::VmError>(())
/// ```
#[derive(Debug)]
pub struct Vm<'p> {
    program: &'p Program,
    cfgs: Vec<Cfg>,
    input: Vec<i64>,
    budget: u64,
    trace_config: TraceConfig,
}

struct Frame {
    func: FuncId,
    pc: usize,
    locals: Vec<i64>,
    stack: Vec<i64>,
}

impl<'p> Vm<'p> {
    /// Prepares an interpreter (precomputing per-function CFGs).
    pub fn new(program: &'p Program) -> Self {
        let cfgs = program.functions.iter().map(Cfg::build).collect();
        Vm {
            program,
            cfgs,
            input: Vec::new(),
            budget: DEFAULT_BUDGET,
            trace_config: TraceConfig::off(),
        }
    }

    /// Sets the input sequence consumed by `ReadInput` (the watermark
    /// key's secret input, during embedding and recognition).
    pub fn with_input(mut self, input: Vec<i64>) -> Self {
        self.input = input;
        self
    }

    /// Sets the instruction budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Enables trace recording.
    pub fn with_trace(mut self, config: TraceConfig) -> Self {
        self.trace_config = config;
        self
    }

    /// Runs the program's entry function to completion.
    ///
    /// # Errors
    ///
    /// Any [`VmError`] runtime fault: stack underflow, division by zero,
    /// bad array access, falling off a function end, budget exhaustion,
    /// or call-stack overflow. (Attacked programs routinely fault — the
    /// resilience experiments rely on observing this.)
    pub fn run(&self) -> Result<Outcome, VmError> {
        let mut statics = vec![0i64; self.program.statics.len()];
        let mut heap: Vec<Vec<i64>> = Vec::new();
        let mut output = Vec::new();
        let mut trace = Trace::new();
        let mut snapshot_counts: std::collections::HashMap<Site, u32> =
            std::collections::HashMap::new();
        let mut input_pos = 0usize;
        let mut executed: u64 = 0;
        // Hoisted: under `branches_only` (the recognition-phase config)
        // the per-instruction leader lookup is dead work.
        let record_leaders = self.trace_config.blocks || self.trace_config.snapshots;

        let entry_fn = self.program.function(self.program.entry);
        let mut frames = vec![Frame {
            func: self.program.entry,
            pc: 0,
            locals: vec![0i64; entry_fn.num_locals as usize],
            stack: Vec::new(),
        }];

        loop {
            let call_depth = frames.len();
            let Some(frame) = frames.last_mut() else {
                break;
            };
            let func = self.program.function(frame.func);
            let cfg = &self.cfgs[frame.func.0 as usize];
            let pc = frame.pc;
            if pc >= func.code.len() {
                return Err(VmError::FellOffEnd { func: frame.func });
            }
            executed += 1;
            if executed > self.budget {
                return Err(VmError::BudgetExhausted {
                    budget: self.budget,
                });
            }
            if record_leaders && cfg.is_leader[pc] {
                let site = Site {
                    func: frame.func,
                    pc,
                };
                if self.trace_config.blocks {
                    trace.events.push(TraceEvent::EnterBlock { site });
                }
                if self.trace_config.snapshots {
                    let seen = snapshot_counts.entry(site).or_insert(0);
                    if self.trace_config.snapshot_limit == 0
                        || *seen < self.trace_config.snapshot_limit
                    {
                        *seen += 1;
                        trace.events.push(TraceEvent::Snapshot {
                            site,
                            data: Box::new(SnapshotData {
                                locals: frame.locals.clone(),
                                statics: statics.clone(),
                            }),
                        });
                    }
                }
            }

            macro_rules! pop {
                () => {
                    frame.stack.pop().ok_or(VmError::StackUnderflow {
                        func: frame.func,
                        pc,
                    })?
                };
            }

            match &func.code[pc] {
                Insn::Const(v) => {
                    frame.stack.push(*v);
                    frame.pc += 1;
                }
                Insn::Load(n) => {
                    frame.stack.push(frame.locals[*n as usize]);
                    frame.pc += 1;
                }
                Insn::Store(n) => {
                    let v = pop!();
                    frame.locals[*n as usize] = v;
                    frame.pc += 1;
                }
                Insn::Iinc(n, d) => {
                    let slot = &mut frame.locals[*n as usize];
                    *slot = slot.wrapping_add(*d as i64);
                    frame.pc += 1;
                }
                Insn::Bin(op) => {
                    let b = pop!();
                    let a = pop!();
                    let v = match op {
                        BinOp::Add => a.wrapping_add(b),
                        BinOp::Sub => a.wrapping_sub(b),
                        BinOp::Mul => a.wrapping_mul(b),
                        BinOp::Div => {
                            if b == 0 {
                                return Err(VmError::DivisionByZero {
                                    func: frame.func,
                                    pc,
                                });
                            }
                            a.wrapping_div(b)
                        }
                        BinOp::Rem => {
                            if b == 0 {
                                return Err(VmError::DivisionByZero {
                                    func: frame.func,
                                    pc,
                                });
                            }
                            a.wrapping_rem(b)
                        }
                        BinOp::And => a & b,
                        BinOp::Or => a | b,
                        BinOp::Xor => a ^ b,
                        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                        BinOp::Shr => a.wrapping_shr(b as u32 & 63),
                        BinOp::UShr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
                    };
                    frame.stack.push(v);
                    frame.pc += 1;
                }
                Insn::Neg => {
                    let v = pop!();
                    frame.stack.push(v.wrapping_neg());
                    frame.pc += 1;
                }
                Insn::Dup => {
                    let v = *frame.stack.last().ok_or(VmError::StackUnderflow {
                        func: frame.func,
                        pc,
                    })?;
                    frame.stack.push(v);
                    frame.pc += 1;
                }
                Insn::Pop => {
                    pop!();
                    frame.pc += 1;
                }
                Insn::Swap => {
                    let b = pop!();
                    let a = pop!();
                    frame.stack.push(b);
                    frame.stack.push(a);
                    frame.pc += 1;
                }
                Insn::GetStatic(s) => {
                    frame.stack.push(statics[*s as usize]);
                    frame.pc += 1;
                }
                Insn::PutStatic(s) => {
                    let v = pop!();
                    statics[*s as usize] = v;
                    frame.pc += 1;
                }
                Insn::NewArray => {
                    let len = pop!();
                    if len < 0 {
                        return Err(VmError::NegativeArrayLength {
                            func: frame.func,
                            pc,
                            len,
                        });
                    }
                    heap.push(vec![0i64; len as usize]);
                    frame.stack.push(heap.len() as i64 - 1);
                    frame.pc += 1;
                }
                Insn::ALoad => {
                    let idx = pop!();
                    let handle = pop!();
                    let v = *array(&heap, handle, frame.func, pc)?
                        .get(idx as usize)
                        .ok_or(VmError::BadArrayAccess {
                            func: frame.func,
                            pc,
                            value: idx,
                        })?;
                    frame.stack.push(v);
                    frame.pc += 1;
                }
                Insn::AStore => {
                    let v = pop!();
                    let idx = pop!();
                    let handle = pop!();
                    let func_id = frame.func;
                    let arr = array_mut(&mut heap, handle, func_id, pc)?;
                    let slot = arr.get_mut(idx as usize).ok_or(VmError::BadArrayAccess {
                        func: func_id,
                        pc,
                        value: idx,
                    })?;
                    *slot = v;
                    frame.pc += 1;
                }
                Insn::ArrayLen => {
                    let handle = pop!();
                    let len = array(&heap, handle, frame.func, pc)?.len() as i64;
                    frame.stack.push(len);
                    frame.pc += 1;
                }
                Insn::Goto(t) => frame.pc = *t,
                Insn::If(cond, t) => {
                    let v = pop!();
                    let next = if cond.eval(v, 0) { *t } else { pc + 1 };
                    if self.trace_config.branches {
                        trace.events.push(TraceEvent::Branch {
                            site: Site {
                                func: frame.func,
                                pc,
                            },
                            next,
                        });
                    }
                    frame.pc = next;
                }
                Insn::IfCmp(cond, t) => {
                    let b = pop!();
                    let a = pop!();
                    let next = if cond.eval(a, b) { *t } else { pc + 1 };
                    if self.trace_config.branches {
                        trace.events.push(TraceEvent::Branch {
                            site: Site {
                                func: frame.func,
                                pc,
                            },
                            next,
                        });
                    }
                    frame.pc = next;
                }
                Insn::Switch { cases, default } => {
                    let v = pop!();
                    frame.pc = cases
                        .iter()
                        .find(|&&(k, _)| k == v)
                        .map(|&(_, t)| t)
                        .unwrap_or(*default);
                }
                Insn::Call(f) => {
                    if call_depth >= MAX_CALL_DEPTH {
                        return Err(VmError::CallStackOverflow);
                    }
                    let callee_id = FuncId(*f);
                    let callee = self.program.function(callee_id);
                    let argc = callee.num_params as usize;
                    if frame.stack.len() < argc {
                        return Err(VmError::StackUnderflow {
                            func: frame.func,
                            pc,
                        });
                    }
                    let mut locals = vec![0i64; callee.num_locals as usize];
                    let split = frame.stack.len() - argc;
                    for (i, v) in frame.stack.drain(split..).enumerate() {
                        locals[i] = v;
                    }
                    frame.pc += 1; // resume after the call on return
                    frames.push(Frame {
                        func: callee_id,
                        pc: 0,
                        locals,
                        stack: Vec::new(),
                    });
                }
                Insn::Return(with_value) => {
                    let ret = if *with_value { Some(pop!()) } else { None };
                    frames.pop();
                    match frames.last_mut() {
                        Some(caller) => {
                            if let Some(v) = ret {
                                caller.stack.push(v);
                            }
                        }
                        None => {
                            return Ok(Outcome {
                                output,
                                instructions: executed,
                                trace,
                                statics,
                            });
                        }
                    }
                }
                Insn::Print => {
                    let v = pop!();
                    output.push(v);
                    frame.pc += 1;
                }
                Insn::ReadInput => {
                    let v = self.input.get(input_pos).copied().unwrap_or(0);
                    input_pos += 1;
                    frame.stack.push(v);
                    frame.pc += 1;
                }
                Insn::Nop => frame.pc += 1,
            }
        }
        unreachable!("loop exits via Return from the entry frame");
    }
}

fn array(
    heap: &[Vec<i64>],
    handle: i64,
    func: FuncId,
    pc: usize,
) -> Result<&Vec<i64>, VmError> {
    usize::try_from(handle)
        .ok()
        .and_then(|h| heap.get(h))
        .ok_or(VmError::BadArrayAccess {
            func,
            pc,
            value: handle,
        })
}

fn array_mut(
    heap: &mut [Vec<i64>],
    handle: i64,
    func: FuncId,
    pc: usize,
) -> Result<&mut Vec<i64>, VmError> {
    usize::try_from(handle)
        .ok()
        .and_then(|h| heap.get_mut(h))
        .ok_or(VmError::BadArrayAccess {
            func,
            pc,
            value: handle,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ProgramBuilder};
    use crate::insn::Cond;
    use crate::trace::TraceEvent;

    fn run_program(p: &Program) -> Outcome {
        Vm::new(p).run().expect("program runs")
    }

    fn gcd_program() -> Program {
        // The paper's Figure 2 example: gcd(25, 10) via repeated remainder.
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 3); // a, b, tmp
        f.push(25).store(0).push(10).store(1);
        let head = f.new_label();
        let out = f.new_label();
        f.bind(head);
        f.load(0).load(1).rem().if_zero(Cond::Eq, out);
        f.load(1).load(0).rem().store(2); // tmp = b % a
        f.load(0).store(1); // b = a
        f.load(2).store(0); // a = tmp
        f.goto(head);
        f.bind(out);
        f.load(1).print().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        pb.finish(main).unwrap()
    }

    #[test]
    fn gcd_of_25_and_10_is_5() {
        let out = run_program(&gcd_program());
        assert_eq!(out.output, vec![5]);
        assert!(out.instructions > 10);
    }

    #[test]
    fn arithmetic_semantics() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 0);
        f.push(7).push(3).bin(crate::insn::BinOp::Div).print();
        f.push(7).push(3).bin(crate::insn::BinOp::Rem).print();
        f.push(-7).push(3).bin(crate::insn::BinOp::Shl).print();
        f.push(-8).push(1).bin(crate::insn::BinOp::Shr).print();
        f.push(-8).push(62).bin(crate::insn::BinOp::UShr).print();
        f.push(5).raw(Insn::Neg).print();
        f.ret_void();
        let main = pb.add_function(f.finish().unwrap());
        let out = run_program(&pb.finish(main).unwrap());
        assert_eq!(out.output, vec![2, 1, -56, -4, 3, -5]);
    }

    #[test]
    fn division_by_zero_faults() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 0);
        f.push(1).push(0).div().print().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        let p = pb.finish(main).unwrap();
        assert!(matches!(
            Vm::new(&p).run(),
            Err(VmError::DivisionByZero { .. })
        ));
    }

    #[test]
    fn arrays_store_and_load() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 1);
        f.push(3).new_array().store(0);
        f.load(0).push(1).push(42).astore();
        f.load(0).push(1).aload().print();
        f.load(0).array_len().print();
        f.ret_void();
        let main = pb.add_function(f.finish().unwrap());
        let out = run_program(&pb.finish(main).unwrap());
        assert_eq!(out.output, vec![42, 3]);
    }

    #[test]
    fn array_out_of_bounds_faults() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 1);
        f.push(2).new_array().store(0);
        f.load(0).push(5).aload().print().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        let p = pb.finish(main).unwrap();
        assert!(matches!(
            Vm::new(&p).run(),
            Err(VmError::BadArrayAccess { value: 5, .. })
        ));
    }

    #[test]
    fn negative_array_length_faults() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 0);
        f.push(-1).new_array().pop().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        let p = pb.finish(main).unwrap();
        assert!(matches!(
            Vm::new(&p).run(),
            Err(VmError::NegativeArrayLength { len: -1, .. })
        ));
    }

    #[test]
    fn calls_pass_arguments_and_return_values() {
        let mut pb = ProgramBuilder::new();
        let mut callee = FunctionBuilder::new("sub", 2, 0);
        callee.load(0).load(1).sub().ret();
        let callee_id = pb.add_function(callee.finish().unwrap());
        let mut main = FunctionBuilder::new("main", 0, 0);
        main.push(10).push(4).call(callee_id).print().ret_void();
        let main_id = pb.add_function(main.finish().unwrap());
        let out = run_program(&pb.finish(main_id).unwrap());
        assert_eq!(out.output, vec![6]); // 10 - 4, argument order preserved
    }

    #[test]
    fn statics_are_shared_across_calls() {
        let mut pb = ProgramBuilder::new();
        let g = pb.add_static("g");
        let mut setter = FunctionBuilder::new("set", 1, 0);
        setter.load(0).put_static(g).ret_void();
        let setter_id = pb.add_function(setter.finish().unwrap());
        let mut main = FunctionBuilder::new("main", 0, 0);
        main.push(99).call(setter_id).get_static(g).print().ret_void();
        let main_id = pb.add_function(main.finish().unwrap());
        let out = run_program(&pb.finish(main_id).unwrap());
        assert_eq!(out.output, vec![99]);
        assert_eq!(out.statics, vec![99]);
    }

    #[test]
    fn budget_exhaustion_detected() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 0);
        let top = f.new_label();
        f.bind(top);
        f.goto(top);
        let main = pb.add_function(f.finish().unwrap());
        let p = pb.finish(main).unwrap();
        assert_eq!(
            Vm::new(&p).with_budget(1000).run(),
            Err(VmError::BudgetExhausted { budget: 1000 })
        );
    }

    #[test]
    fn deep_recursion_overflows() {
        let mut pb = ProgramBuilder::new();
        let id = pb.declare_function("inf");
        let mut f = FunctionBuilder::new("inf", 0, 0);
        f.call(id).ret_void();
        pb.set_function(id, f.finish().unwrap());
        let p = pb.finish(id).unwrap();
        assert_eq!(Vm::new(&p).run(), Err(VmError::CallStackOverflow));
    }

    #[test]
    fn input_sequence_consumed_then_zero() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 0);
        f.read_input().print();
        f.read_input().print();
        f.read_input().print();
        f.ret_void();
        let main = pb.add_function(f.finish().unwrap());
        let p = pb.finish(main).unwrap();
        let out = Vm::new(&p).with_input(vec![7, 8]).run().unwrap();
        assert_eq!(out.output, vec![7, 8, 0]);
    }

    #[test]
    fn switch_dispatches_and_is_not_traced_as_branch() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 0);
        let one = f.new_label();
        let dfl = f.new_label();
        f.push(1);
        f.switch(&[(1, one)], dfl);
        f.bind(one);
        f.push(111).print().ret_void();
        f.bind(dfl);
        f.push(222).print().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        let p = pb.finish(main).unwrap();
        let out = Vm::new(&p)
            .with_trace(TraceConfig::full())
            .run()
            .unwrap();
        assert_eq!(out.output, vec![111]);
        assert_eq!(out.trace.dynamic_branch_count(), 0);
    }

    #[test]
    fn trace_records_branches_with_following_block() {
        let p = gcd_program();
        let out = Vm::new(&p).with_trace(TraceConfig::full()).run().unwrap();
        let branches: Vec<_> = out.trace.branch_sequence().collect();
        // gcd(25,10): 25 % 10 = 5 ≠ 0 (fall through), then a=5, b=10;
        // 10 % 5 = 0 (taken). Wait — first iteration: a=25, b=10,
        // a % b = 5 ≠ 0 → loop body; second: a = 10 % 25?  The trace
        // length is what matters here: the branch executed twice, and the
        // two executions went to *different* following blocks.
        assert!(branches.len() >= 2);
        let first_site = branches[0].0;
        assert!(branches.iter().all(|(s, _)| *s == first_site));
        let nexts: std::collections::HashSet<usize> =
            branches.iter().map(|&(_, n)| n).collect();
        assert_eq!(nexts.len(), 2, "loop exit and loop body both followed");
        // Block events and snapshots were recorded too.
        assert!(out
            .trace
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::EnterBlock { .. })));
        assert!(out
            .trace
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Snapshot { .. })));
    }

    #[test]
    fn tracing_does_not_change_semantics() {
        let p = gcd_program();
        let plain = Vm::new(&p).run().unwrap();
        let traced = Vm::new(&p).with_trace(TraceConfig::full()).run().unwrap();
        assert_eq!(plain.output, traced.output);
        assert_eq!(plain.instructions, traced.instructions);
    }
}
