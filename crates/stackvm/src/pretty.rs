//! Human-readable disassembly of programs and functions.

use std::fmt::Write as _;

use crate::insn::Insn;
use crate::program::{Function, Program};

/// Renders one function as an indented listing with block markers.
pub fn disassemble_function(func: &Function) -> String {
    let cfg = crate::cfg::Cfg::build(func);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fn {}(params={}, locals={}){}:",
        func.name,
        func.num_params,
        func.num_locals,
        if func.returns_value { " -> value" } else { "" }
    );
    for (pc, insn) in func.code.iter().enumerate() {
        if pc < cfg.is_leader.len() && cfg.is_leader[pc] {
            let _ = writeln!(out, "  B{}:", cfg.block_of[pc]);
        }
        let _ = writeln!(out, "    {pc:4}: {}", render(insn));
    }
    out
}

/// Renders a whole program.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    if !program.statics.is_empty() {
        let _ = writeln!(out, "statics: {}", program.statics.join(", "));
    }
    for (id, func) in program.iter_functions() {
        let marker = if id == program.entry { " (entry)" } else { "" };
        let _ = writeln!(out, "; {id}{marker}");
        out.push_str(&disassemble_function(func));
        out.push('\n');
    }
    out
}

fn render(insn: &Insn) -> String {
    match insn {
        Insn::Const(v) => format!("const {v}"),
        Insn::Load(n) => format!("load {n}"),
        Insn::Store(n) => format!("store {n}"),
        Insn::Iinc(n, d) => format!("iinc {n}, {d}"),
        Insn::Bin(op) => op.to_string(),
        Insn::Neg => "neg".into(),
        Insn::Dup => "dup".into(),
        Insn::Pop => "pop".into(),
        Insn::Swap => "swap".into(),
        Insn::GetStatic(s) => format!("getstatic {s}"),
        Insn::PutStatic(s) => format!("putstatic {s}"),
        Insn::NewArray => "newarray".into(),
        Insn::ALoad => "aload".into(),
        Insn::AStore => "astore".into(),
        Insn::ArrayLen => "arraylen".into(),
        Insn::Goto(t) => format!("goto -> {t}"),
        Insn::If(c, t) => format!("if{c} -> {t}"),
        Insn::IfCmp(c, t) => format!("ifcmp{c} -> {t}"),
        Insn::Switch { cases, default } => {
            let cs: Vec<String> = cases.iter().map(|(v, t)| format!("{v} -> {t}")).collect();
            format!("switch [{}] default -> {default}", cs.join(", "))
        }
        Insn::Call(f) => format!("call fn#{f}"),
        Insn::Return(true) => "return value".into(),
        Insn::Return(false) => "return".into(),
        Insn::Print => "print".into(),
        Insn::ReadInput => "readinput".into(),
        Insn::Nop => "nop".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ProgramBuilder};
    use crate::insn::Cond;

    #[test]
    fn listing_contains_blocks_and_mnemonics() {
        let mut pb = ProgramBuilder::new();
        pb.add_static("counter");
        let mut f = FunctionBuilder::new("main", 0, 1);
        let out = f.new_label();
        f.load(0).if_zero(Cond::Ne, out);
        f.push(3).print();
        f.bind(out);
        f.ret_void();
        let main = pb.add_function(f.finish().unwrap());
        let p = pb.finish(main).unwrap();
        let text = disassemble(&p);
        assert!(text.contains("statics: counter"));
        assert!(text.contains("fn main"));
        assert!(text.contains("B0:"));
        assert!(text.contains("ifne ->"));
        assert!(text.contains("(entry)"));
    }

    #[test]
    fn every_mnemonic_renders_nonempty() {
        use crate::insn::BinOp;
        let all = vec![
            Insn::Const(1),
            Insn::Load(0),
            Insn::Store(0),
            Insn::Iinc(0, -1),
            Insn::Bin(BinOp::UShr),
            Insn::Neg,
            Insn::Dup,
            Insn::Pop,
            Insn::Swap,
            Insn::GetStatic(0),
            Insn::PutStatic(0),
            Insn::NewArray,
            Insn::ALoad,
            Insn::AStore,
            Insn::ArrayLen,
            Insn::Goto(0),
            Insn::If(Cond::Lt, 0),
            Insn::IfCmp(Cond::Ge, 0),
            Insn::Switch {
                cases: vec![(1, 0)],
                default: 0,
            },
            Insn::Call(0),
            Insn::Return(true),
            Insn::Return(false),
            Insn::Print,
            Insn::ReadInput,
            Insn::Nop,
        ];
        for insn in all {
            assert!(!render(&insn).is_empty());
        }
    }
}
