//! The bytecode instruction set.
//!
//! Branch targets are absolute instruction indices within the containing
//! function (the JVM uses byte offsets; instruction indices are equivalent
//! for every algorithm in this system and make editing fix-ups simpler).

use std::fmt;

/// Comparison condition for conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl Cond {
    /// The condition with branch/fall-through roles exchanged
    /// (`a OP b` ⇔ `!(a NEG(OP) b)`).
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }

    /// Evaluates the condition on two operands.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Binary arithmetic/logic operators (operate on the top two stack slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (faults on divide-by-zero).
    Div,
    /// Signed remainder (faults on divide-by-zero).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (by low 6 bits of rhs).
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Logical shift right.
    UShr,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::UShr => "ushr",
        };
        f.write_str(s)
    }
}

/// One bytecode instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Insn {
    /// Push a constant.
    Const(i64),
    /// Push local variable `n`.
    Load(u16),
    /// Pop into local variable `n`.
    Store(u16),
    /// Add an immediate to local `n` without touching the stack
    /// (the JVM's `iinc`).
    Iinc(u16, i32),
    /// Apply a binary operator to the top two slots (lhs below rhs).
    Bin(BinOp),
    /// Negate the top slot.
    Neg,
    /// Duplicate the top slot.
    Dup,
    /// Discard the top slot.
    Pop,
    /// Exchange the top two slots.
    Swap,
    /// Push static field `s`.
    GetStatic(u32),
    /// Pop into static field `s`.
    PutStatic(u32),
    /// Pop a length, allocate a zeroed array, push its handle.
    NewArray,
    /// Pop index then handle, push `array[index]`.
    ALoad,
    /// Pop value, index, handle; store `array[index] = value`.
    AStore,
    /// Pop a handle, push the array's length.
    ArrayLen,
    /// Unconditional branch to an instruction index.
    Goto(usize),
    /// Pop one value, branch to the target if `value COND 0`.
    If(Cond, usize),
    /// Pop rhs then lhs, branch to the target if `lhs COND rhs`.
    IfCmp(Cond, usize),
    /// Pop a scrutinee; jump to the matching case or the default.
    ///
    /// Deliberately *not* a conditional branch for trace purposes —
    /// mirrors the JVM's `lookupswitch`, which the embedder's loop
    /// code-generator uses for loop control (see `pathmark-core`).
    Switch {
        /// `(match value, target)` pairs.
        cases: Vec<(i64, usize)>,
        /// Target when no case matches.
        default: usize,
    },
    /// Call a function; pops its arguments (last argument on top), pushes
    /// its return value if it has one.
    Call(u32),
    /// Return from the current function, popping a return value if
    /// `true`.
    Return(bool),
    /// Pop a value and append it to the program output.
    Print,
    /// Push the next value of the program's input sequence (0 once the
    /// input is exhausted). This models the paper's "secret input
    /// sequence" `I = I_0, I_1, …` — file IO, GUI interaction, network
    /// packets — whose only requirement is that "the trace be
    /// reproducible during recognition" (Section 3.1).
    ReadInput,
    /// No operation.
    Nop,
}

impl Insn {
    /// Whether this instruction is a *conditional branch* in the sense of
    /// the trace bit-string definition (Section 3.1 of the paper).
    pub fn is_conditional_branch(&self) -> bool {
        matches!(self, Insn::If(..) | Insn::IfCmp(..))
    }

    /// Whether this instruction unconditionally diverts control
    /// (execution never falls through to the next instruction).
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Insn::Goto(_) | Insn::Switch { .. } | Insn::Return(_)
        )
    }

    /// Whether this instruction may branch (conditionally or not).
    pub fn is_branch(&self) -> bool {
        self.is_conditional_branch() || matches!(self, Insn::Goto(_) | Insn::Switch { .. })
    }

    /// All explicit branch targets of this instruction.
    pub fn targets(&self) -> Vec<usize> {
        match self {
            Insn::Goto(t) | Insn::If(_, t) | Insn::IfCmp(_, t) => vec![*t],
            Insn::Switch { cases, default } => {
                let mut ts: Vec<usize> = cases.iter().map(|&(_, t)| t).collect();
                ts.push(*default);
                ts
            }
            _ => Vec::new(),
        }
    }

    /// Rewrites every branch target with `f`. Used by the editing layer
    /// to fix up targets after insertions and deletions.
    pub fn map_targets(&mut self, mut f: impl FnMut(usize) -> usize) {
        match self {
            Insn::Goto(t) | Insn::If(_, t) | Insn::IfCmp(_, t) => *t = f(*t),
            Insn::Switch { cases, default } => {
                for (_, t) in cases.iter_mut() {
                    *t = f(*t);
                }
                *default = f(*default);
            }
            _ => {}
        }
    }

    /// Net operand-stack effect `(pops, pushes)` of the instruction,
    /// excluding control flow. `Call` is resolved by the verifier, which
    /// knows arities; here it reports `(0, 0)`.
    pub fn stack_effect(&self) -> (usize, usize) {
        match self {
            Insn::Const(_) | Insn::Load(_) | Insn::GetStatic(_) | Insn::ReadInput => (0, 1),
            Insn::Store(_) | Insn::PutStatic(_) | Insn::Pop | Insn::Print => (1, 0),
            Insn::Iinc(..) | Insn::Nop | Insn::Goto(_) => (0, 0),
            Insn::Bin(_) => (2, 1),
            Insn::Neg | Insn::NewArray | Insn::ArrayLen => (1, 1),
            Insn::Dup => (1, 2),
            Insn::Swap => (2, 2),
            Insn::ALoad => (2, 1),
            Insn::AStore => (3, 0),
            Insn::If(..) | Insn::Switch { .. } => (1, 0),
            Insn::IfCmp(..) => (2, 0),
            Insn::Call(_) => (0, 0),
            Insn::Return(pops) => (usize::from(*pops), 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_negation_is_involutive_and_complementary() {
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge] {
            assert_eq!(c.negate().negate(), c);
            for (a, b) in [(0i64, 0i64), (1, 2), (2, 1), (-5, 5)] {
                assert_eq!(c.eval(a, b), !c.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn classification_of_branches() {
        assert!(Insn::If(Cond::Eq, 3).is_conditional_branch());
        assert!(Insn::IfCmp(Cond::Lt, 3).is_conditional_branch());
        assert!(!Insn::Goto(3).is_conditional_branch());
        // The crucial property the embedder relies on: Switch is a branch
        // but NOT a conditional branch.
        let sw = Insn::Switch {
            cases: vec![(0, 1)],
            default: 2,
        };
        assert!(sw.is_branch());
        assert!(!sw.is_conditional_branch());
        assert!(sw.is_terminator());
        assert!(!Insn::If(Cond::Eq, 3).is_terminator());
    }

    #[test]
    fn targets_and_map_targets_round_trip() {
        let mut sw = Insn::Switch {
            cases: vec![(1, 10), (2, 20)],
            default: 30,
        };
        assert_eq!(sw.targets(), vec![10, 20, 30]);
        sw.map_targets(|t| t + 5);
        assert_eq!(sw.targets(), vec![15, 25, 35]);
        let mut g = Insn::Goto(7);
        g.map_targets(|t| t * 2);
        assert_eq!(g.targets(), vec![14]);
        assert!(Insn::Nop.targets().is_empty());
    }
}
