use std::error::Error;
use std::fmt;

use crate::program::FuncId;

/// Errors raised while building, verifying, or executing bytecode.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmError {
    /// Operand stack underflow at runtime.
    StackUnderflow {
        /// Function in which the fault occurred.
        func: FuncId,
        /// Program counter of the faulting instruction.
        pc: usize,
    },
    /// Division or remainder by zero.
    DivisionByZero {
        /// Function in which the fault occurred.
        func: FuncId,
        /// Program counter of the faulting instruction.
        pc: usize,
    },
    /// An array access was out of bounds or used an invalid handle.
    BadArrayAccess {
        /// Function in which the fault occurred.
        func: FuncId,
        /// Program counter of the faulting instruction.
        pc: usize,
        /// The offending index or handle value.
        value: i64,
    },
    /// Execution fell off the end of a function without `Return`.
    FellOffEnd {
        /// The function that ended without returning.
        func: FuncId,
    },
    /// The configured instruction budget was exhausted (runaway program).
    BudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// The call stack exceeded its depth limit.
    CallStackOverflow,
    /// A structural verification failure (bad branch target, local index,
    /// unbalanced stack, …).
    Verify {
        /// Function that failed verification.
        func_name: String,
        /// Program counter of the offending instruction, when applicable.
        pc: Option<usize>,
        /// Human-readable reason.
        reason: String,
    },
    /// A label was used but never bound while building a function.
    UnboundLabel {
        /// Name of the function being built.
        func_name: String,
    },
    /// A negative array length was requested.
    NegativeArrayLength {
        /// Function in which the fault occurred.
        func: FuncId,
        /// Program counter of the faulting instruction.
        pc: usize,
        /// The requested length.
        len: i64,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::StackUnderflow { func, pc } => {
                write!(f, "operand stack underflow in fn#{} at pc {pc}", func.0)
            }
            VmError::DivisionByZero { func, pc } => {
                write!(f, "division by zero in fn#{} at pc {pc}", func.0)
            }
            VmError::BadArrayAccess { func, pc, value } => write!(
                f,
                "bad array access ({value}) in fn#{} at pc {pc}",
                func.0
            ),
            VmError::FellOffEnd { func } => {
                write!(f, "execution fell off the end of fn#{}", func.0)
            }
            VmError::BudgetExhausted { budget } => {
                write!(f, "instruction budget of {budget} exhausted")
            }
            VmError::CallStackOverflow => write!(f, "call stack overflow"),
            VmError::Verify {
                func_name,
                pc,
                reason,
            } => match pc {
                Some(pc) => write!(f, "verification of `{func_name}` failed at pc {pc}: {reason}"),
                None => write!(f, "verification of `{func_name}` failed: {reason}"),
            },
            VmError::UnboundLabel { func_name } => {
                write!(f, "unbound label while building `{func_name}`")
            }
            VmError::NegativeArrayLength { func, pc, len } => write!(
                f,
                "negative array length {len} in fn#{} at pc {pc}",
                func.0
            ),
        }
    }
}

impl Error for VmError {}
