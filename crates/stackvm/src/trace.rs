//! Execution traces — the raw material of path-based watermarking.
//!
//! Section 3.1 of the paper: "we instrument the input program to write to
//! a file the sequence of basic blocks it executes. At each trace point we
//! also store the value of every local variable and every static … field."
//! A [`Trace`] holds exactly that, plus one record per dynamic conditional
//! branch with the identity of the block that followed it (which is what
//! the bit-string decoder consumes).

use std::collections::HashMap;

use crate::program::FuncId;

/// A dynamic program point: a function and an instruction index in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Site {
    /// The containing function.
    pub func: FuncId,
    /// Instruction index within the function.
    pub pc: usize,
}

/// One trace record.
///
/// The snapshot payload is boxed so the enum stays pointer-sized-small:
/// recognition traces are almost entirely `Branch` events, and every
/// event in the trace vector occupies the size of the *largest* variant
/// — inline snapshot vectors would triple the memory traffic of the
/// branch-recording hot path for data that recognition never records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A basic block (identified by its leader) began executing.
    EnterBlock {
        /// The block's leader.
        site: Site,
    },
    /// A conditional branch executed; `next` is the leader of the block
    /// control went to (target or fall-through).
    Branch {
        /// The branch instruction.
        site: Site,
        /// Leader pc of the block that followed, in the same function.
        next: usize,
    },
    /// Variable values observed at a block entry (recorded only when
    /// snapshotting is enabled; used by the condition code generator).
    Snapshot {
        /// The block's leader.
        site: Site,
        /// The observed values.
        data: Box<SnapshotData>,
    },
}

/// The payload of a [`TraceEvent::Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotData {
    /// Local-variable values, index-aligned with the function frame.
    pub locals: Vec<i64>,
    /// Static-field values, index-aligned with `Program::statics`.
    pub statics: Vec<i64>,
}

/// What the interpreter records while running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceConfig {
    /// Record [`TraceEvent::EnterBlock`] events.
    pub blocks: bool,
    /// Record [`TraceEvent::Branch`] events.
    pub branches: bool,
    /// Record [`TraceEvent::Snapshot`] events at block entries.
    pub snapshots: bool,
    /// At most this many snapshots are kept *per block* (0 = unlimited).
    /// The condition code generator only ever inspects the first two
    /// visits, so a small cap keeps embedding-phase traces of hot
    /// programs from ballooning.
    pub snapshot_limit: u32,
}

impl TraceConfig {
    /// Records nothing (plain execution).
    pub fn off() -> Self {
        TraceConfig::default()
    }

    /// Records everything the embedder needs, with snapshots capped at
    /// four visits per block.
    pub fn full() -> Self {
        TraceConfig {
            blocks: true,
            branches: true,
            snapshots: true,
            snapshot_limit: 4,
        }
    }

    /// Records only dynamic branches — the recognition-phase
    /// configuration (cheap, and all the decoder needs).
    pub fn branches_only() -> Self {
        TraceConfig {
            blocks: false,
            branches: true,
            snapshots: false,
            snapshot_limit: 0,
        }
    }

    /// Whether any recording is enabled.
    pub fn any(&self) -> bool {
        self.blocks || self.branches || self.snapshots
    }

    /// Whether the compiled execution tier covers this configuration.
    /// The threaded-code backend handles the recognition-phase configs
    /// (`off` / `branches_only`); block and snapshot recording need the
    /// leader bitmap and stay on the predecoded engine.
    pub fn compiled_compatible(&self) -> bool {
        !self.blocks && !self.snapshots
    }
}

/// The recorded execution trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Events in execution order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over `(branch site, following leader)` pairs in order —
    /// the sequence the bit-string is decoded from.
    pub fn branch_sequence(&self) -> impl Iterator<Item = (Site, usize)> + '_ {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Branch { site, next } => Some((*site, *next)),
            _ => None,
        })
    }

    /// How often each basic block was entered. The embedder weights
    /// insertion points inversely by these frequencies ("code is less
    /// likely to be inserted in program hotspots", Section 3.2).
    pub fn block_frequencies(&self) -> HashMap<Site, u64> {
        let mut freq = HashMap::new();
        for e in &self.events {
            if let TraceEvent::EnterBlock { site } = e {
                *freq.entry(*site).or_insert(0) += 1;
            }
        }
        freq
    }

    /// All snapshots taken at a given block leader, in execution order.
    /// The condition code generator compares the first visit's values
    /// with later visits' (Section 3.2.2).
    pub fn snapshots_at(&self, site: Site) -> Vec<(&[i64], &[i64])> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Snapshot { site: s, data } if *s == site => {
                    Some((data.locals.as_slice(), data.statics.as_slice()))
                }
                _ => None,
            })
            .collect()
    }

    /// Distinct block leaders that appear in the trace with their visit
    /// counts, sorted by site. (Deterministic iteration order for the
    /// embedder's weighted choice.)
    pub fn visited_blocks(&self) -> Vec<(Site, u64)> {
        let mut v: Vec<(Site, u64)> = self.block_frequencies().into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Number of dynamic conditional-branch executions.
    pub fn dynamic_branch_count(&self) -> usize {
        self.branch_sequence().count()
    }
}

/// Streaming consumer of trace events.
///
/// The interpreter hot loop hands each event to a sink the moment it
/// happens instead of materializing a `Vec<TraceEvent>`. Recognition only
/// ever needs one bit per dynamic branch, so a streaming sink lets it
/// skip the event vector entirely (the packed-bits sink lives in
/// `pathmark-core`, next to its `BitString` builder); embedding keeps the
/// full event record by sinking into a [`Trace`].
///
/// The interpreter consults its [`TraceConfig`] *before* calling a sink
/// method: a sink only ever receives event kinds that recording was
/// enabled for, so implementations do not re-filter.
pub trait TraceSink {
    /// A basic block (identified by its leader) began executing.
    fn enter_block(&mut self, site: Site);
    /// A conditional branch executed; `next` is the leader of the block
    /// control went to (target or fall-through).
    fn branch(&mut self, site: Site, next: usize);
    /// Variable values observed at a block entry.
    fn snapshot(&mut self, site: Site, locals: &[i64], statics: &[i64]);
}

/// The compatibility sink: collects events into the [`Trace`] vector,
/// exactly as the pre-streaming interpreter recorded them.
impl TraceSink for Trace {
    fn enter_block(&mut self, site: Site) {
        self.events.push(TraceEvent::EnterBlock { site });
    }

    fn branch(&mut self, site: Site, next: usize) {
        self.events.push(TraceEvent::Branch { site, next });
    }

    fn snapshot(&mut self, site: Site, locals: &[i64], statics: &[i64]) {
        self.events.push(TraceEvent::Snapshot {
            site,
            data: Box::new(SnapshotData {
                locals: locals.to_vec(),
                statics: statics.to_vec(),
            }),
        });
    }
}

/// A null sink that only counts events — for callers that want dynamic
/// branch/block totals (cost experiments) without storing anything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of block entries observed.
    pub blocks: u64,
    /// Number of dynamic conditional branches observed.
    pub branches: u64,
    /// Number of snapshots observed.
    pub snapshots: u64,
}

impl CountingSink {
    /// A fresh sink with all counts at zero.
    pub fn new() -> Self {
        CountingSink::default()
    }
}

impl TraceSink for CountingSink {
    fn enter_block(&mut self, _site: Site) {
        self.blocks += 1;
    }

    fn branch(&mut self, _site: Site, _next: usize) {
        self.branches += 1;
    }

    fn snapshot(&mut self, _site: Site, _locals: &[i64], _statics: &[i64]) {
        self.snapshots += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(f: u32, pc: usize) -> Site {
        Site {
            func: FuncId(f),
            pc,
        }
    }

    #[test]
    fn branch_sequence_filters_and_orders() {
        let t = Trace {
            events: vec![
                TraceEvent::EnterBlock { site: site(0, 0) },
                TraceEvent::Branch {
                    site: site(0, 2),
                    next: 3,
                },
                TraceEvent::EnterBlock { site: site(0, 3) },
                TraceEvent::Branch {
                    site: site(0, 2),
                    next: 7,
                },
            ],
        };
        let seq: Vec<_> = t.branch_sequence().collect();
        assert_eq!(seq, vec![(site(0, 2), 3), (site(0, 2), 7)]);
        assert_eq!(t.dynamic_branch_count(), 2);
    }

    #[test]
    fn frequencies_count_reentries() {
        let t = Trace {
            events: vec![
                TraceEvent::EnterBlock { site: site(0, 0) },
                TraceEvent::EnterBlock { site: site(0, 4) },
                TraceEvent::EnterBlock { site: site(0, 0) },
            ],
        };
        let freq = t.block_frequencies();
        assert_eq!(freq[&site(0, 0)], 2);
        assert_eq!(freq[&site(0, 4)], 1);
        assert_eq!(
            t.visited_blocks(),
            vec![(site(0, 0), 2), (site(0, 4), 1)]
        );
    }

    #[test]
    fn snapshots_at_filters_by_site() {
        let t = Trace {
            events: vec![
                TraceEvent::Snapshot {
                    site: site(0, 0),
                    data: Box::new(SnapshotData {
                        locals: vec![1, 2],
                        statics: vec![9],
                    }),
                },
                TraceEvent::Snapshot {
                    site: site(0, 5),
                    data: Box::new(SnapshotData {
                        locals: vec![3],
                        statics: vec![9],
                    }),
                },
                TraceEvent::Snapshot {
                    site: site(0, 0),
                    data: Box::new(SnapshotData {
                        locals: vec![4, 5],
                        statics: vec![8],
                    }),
                },
            ],
        };
        let snaps = t.snapshots_at(site(0, 0));
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].0, &[1, 2]);
        assert_eq!(snaps[1].0, &[4, 5]);
        assert_eq!(snaps[1].1, &[8]);
    }

    #[test]
    fn trace_event_stays_small() {
        // Branch events dominate recognition traces; the snapshot
        // payload is boxed precisely so they stay this size.
        assert!(std::mem::size_of::<TraceEvent>() <= 32);
    }

    #[test]
    fn trace_sink_collects_the_same_events_as_direct_pushes() {
        let mut collected = Trace::new();
        collected.enter_block(site(0, 0));
        collected.branch(site(0, 2), 3);
        collected.snapshot(site(0, 3), &[1, 2], &[9]);
        let expected = Trace {
            events: vec![
                TraceEvent::EnterBlock { site: site(0, 0) },
                TraceEvent::Branch {
                    site: site(0, 2),
                    next: 3,
                },
                TraceEvent::Snapshot {
                    site: site(0, 3),
                    data: Box::new(SnapshotData {
                        locals: vec![1, 2],
                        statics: vec![9],
                    }),
                },
            ],
        };
        assert_eq!(collected, expected);
    }

    #[test]
    fn counting_sink_counts_without_storing() {
        let mut c = CountingSink::new();
        c.enter_block(site(0, 0));
        c.branch(site(0, 1), 2);
        c.branch(site(0, 1), 4);
        c.snapshot(site(0, 0), &[], &[]);
        assert_eq!(
            c,
            CountingSink {
                blocks: 1,
                branches: 2,
                snapshots: 1,
            }
        );
    }

    #[test]
    fn config_presets() {
        assert!(!TraceConfig::off().any());
        assert!(TraceConfig::full().snapshots);
        let r = TraceConfig::branches_only();
        assert!(r.branches && !r.blocks && !r.snapshots && r.any());
    }
}
