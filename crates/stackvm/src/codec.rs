//! Compact binary serialization of programs.
//!
//! A self-contained byte codec (no external format crates), used to
//! persist programs and — in the attack suite — to model the "class
//! encryption" attack, which stores bytecode in an opaque encrypted form
//! that instrumentation cannot read.

use std::error::Error;
use std::fmt;

use crate::insn::{BinOp, Cond, Insn};
use crate::program::{FuncId, Function, Program};
use crate::trace::{Site, SnapshotData, Trace, TraceEvent};

const MAGIC: &[u8; 4] = b"PMVM";
const TRACE_MAGIC: &[u8; 4] = b"PMTR";

/// Error decoding a serialized program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program decode failed at byte {}: {}",
            self.offset, self.reason
        )
    }
}

impl Error for DecodeError {}

/// Serializes a program to bytes.
pub fn encode_program(program: &Program) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    write_u32(&mut out, program.statics.len() as u32);
    for s in &program.statics {
        write_str(&mut out, s);
    }
    write_u32(&mut out, program.functions.len() as u32);
    for f in &program.functions {
        write_str(&mut out, &f.name);
        write_u16(&mut out, f.num_params);
        write_u16(&mut out, f.num_locals);
        out.push(f.returns_value as u8);
        write_u32(&mut out, f.code.len() as u32);
        for insn in &f.code {
            encode_insn(insn, &mut out);
        }
    }
    write_u32(&mut out, program.entry.0);
    out
}

/// Deserializes a program from bytes (structure only; run
/// [`crate::verify::verify`] afterwards for semantic checks).
///
/// # Errors
///
/// [`DecodeError`] on truncation or malformed tags.
pub fn decode_program(bytes: &[u8]) -> Result<Program, DecodeError> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(r.err("bad magic"));
    }
    let nstatics = r.u32()? as usize;
    let mut statics = Vec::with_capacity(nstatics.min(1 << 16));
    for _ in 0..nstatics {
        statics.push(r.string()?);
    }
    let nfuncs = r.u32()? as usize;
    let mut functions = Vec::with_capacity(nfuncs.min(1 << 16));
    for _ in 0..nfuncs {
        let name = r.string()?;
        let num_params = r.u16()?;
        let num_locals = r.u16()?;
        let returns_value = r.u8()? != 0;
        let ninsns = r.u32()? as usize;
        let mut code = Vec::with_capacity(ninsns.min(1 << 20));
        for _ in 0..ninsns {
            code.push(decode_insn(&mut r)?);
        }
        functions.push(Function {
            name,
            num_params,
            num_locals,
            returns_value,
            code,
        });
    }
    let entry = FuncId(r.u32()?);
    Ok(Program {
        functions,
        statics,
        entry,
    })
}

/// Serializes a trace to bytes (the hand-rolled replacement for the
/// derive-based serialization the trace types used to carry).
pub fn encode_trace(trace: &Trace) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(TRACE_MAGIC);
    write_u32(&mut out, trace.events.len() as u32);
    for event in &trace.events {
        match event {
            TraceEvent::EnterBlock { site } => {
                out.push(0);
                encode_site(site, &mut out);
            }
            TraceEvent::Branch { site, next } => {
                out.push(1);
                encode_site(site, &mut out);
                write_u32(&mut out, *next as u32);
            }
            TraceEvent::Snapshot { site, data } => {
                out.push(2);
                encode_site(site, &mut out);
                write_u32(&mut out, data.locals.len() as u32);
                for &v in &data.locals {
                    write_u64(&mut out, v as u64);
                }
                write_u32(&mut out, data.statics.len() as u32);
                for &v in &data.statics {
                    write_u64(&mut out, v as u64);
                }
            }
        }
    }
    out
}

/// Deserializes a trace from bytes.
///
/// # Errors
///
/// [`DecodeError`] on truncation or malformed tags.
pub fn decode_trace(bytes: &[u8]) -> Result<Trace, DecodeError> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(4)?;
    if magic != TRACE_MAGIC {
        return Err(r.err("bad trace magic"));
    }
    let nevents = r.u32()? as usize;
    let mut events = Vec::with_capacity(nevents.min(1 << 20));
    for _ in 0..nevents {
        let tag = r.u8()?;
        events.push(match tag {
            0 => TraceEvent::EnterBlock {
                site: decode_site(&mut r)?,
            },
            1 => TraceEvent::Branch {
                site: decode_site(&mut r)?,
                next: r.u32()? as usize,
            },
            2 => {
                let site = decode_site(&mut r)?;
                let nlocals = r.u32()? as usize;
                let mut locals = Vec::with_capacity(nlocals.min(1 << 16));
                for _ in 0..nlocals {
                    locals.push(r.u64()? as i64);
                }
                let nstatics = r.u32()? as usize;
                let mut statics = Vec::with_capacity(nstatics.min(1 << 16));
                for _ in 0..nstatics {
                    statics.push(r.u64()? as i64);
                }
                TraceEvent::Snapshot {
                    site,
                    data: Box::new(SnapshotData { locals, statics }),
                }
            }
            _ => return Err(r.err("bad trace event tag")),
        });
    }
    Ok(Trace { events })
}

fn encode_site(site: &Site, out: &mut Vec<u8>) {
    write_u32(out, site.func.0);
    write_u32(out, site.pc as u32);
}

fn decode_site(r: &mut Reader<'_>) -> Result<Site, DecodeError> {
    Ok(Site {
        func: FuncId(r.u32()?),
        pc: r.u32()? as usize,
    })
}

fn write_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn cond_byte(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Le => 3,
        Cond::Gt => 4,
        Cond::Ge => 5,
    }
}

fn byte_cond(b: u8) -> Option<Cond> {
    [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge]
        .get(b as usize)
        .copied()
}

fn binop_byte(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::And => 5,
        BinOp::Or => 6,
        BinOp::Xor => 7,
        BinOp::Shl => 8,
        BinOp::Shr => 9,
        BinOp::UShr => 10,
    }
}

fn byte_binop(b: u8) -> Option<BinOp> {
    [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::UShr,
    ]
    .get(b as usize)
    .copied()
}

fn encode_insn(insn: &Insn, out: &mut Vec<u8>) {
    match insn {
        Insn::Const(v) => {
            out.push(0);
            write_u64(out, *v as u64);
        }
        Insn::Load(n) => {
            out.push(1);
            write_u16(out, *n);
        }
        Insn::Store(n) => {
            out.push(2);
            write_u16(out, *n);
        }
        Insn::Iinc(n, d) => {
            out.push(3);
            write_u16(out, *n);
            write_u32(out, *d as u32);
        }
        Insn::Bin(op) => {
            out.push(4);
            out.push(binop_byte(*op));
        }
        Insn::Neg => out.push(5),
        Insn::Dup => out.push(6),
        Insn::Pop => out.push(7),
        Insn::Swap => out.push(8),
        Insn::GetStatic(s) => {
            out.push(9);
            write_u32(out, *s);
        }
        Insn::PutStatic(s) => {
            out.push(10);
            write_u32(out, *s);
        }
        Insn::NewArray => out.push(11),
        Insn::ALoad => out.push(12),
        Insn::AStore => out.push(13),
        Insn::ArrayLen => out.push(14),
        Insn::Goto(t) => {
            out.push(15);
            write_u32(out, *t as u32);
        }
        Insn::If(c, t) => {
            out.push(16);
            out.push(cond_byte(*c));
            write_u32(out, *t as u32);
        }
        Insn::IfCmp(c, t) => {
            out.push(17);
            out.push(cond_byte(*c));
            write_u32(out, *t as u32);
        }
        Insn::Switch { cases, default } => {
            out.push(18);
            write_u32(out, cases.len() as u32);
            for &(v, t) in cases {
                write_u64(out, v as u64);
                write_u32(out, t as u32);
            }
            write_u32(out, *default as u32);
        }
        Insn::Call(f) => {
            out.push(19);
            write_u32(out, *f);
        }
        Insn::Return(w) => {
            out.push(20);
            out.push(*w as u8);
        }
        Insn::Print => out.push(21),
        Insn::ReadInput => out.push(22),
        Insn::Nop => out.push(23),
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, reason: &'static str) -> DecodeError {
        DecodeError {
            offset: self.pos,
            reason,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.err("truncated input"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("invalid utf-8"))
    }
}

fn decode_insn(r: &mut Reader<'_>) -> Result<Insn, DecodeError> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => Insn::Const(r.u64()? as i64),
        1 => Insn::Load(r.u16()?),
        2 => Insn::Store(r.u16()?),
        3 => Insn::Iinc(r.u16()?, r.u32()? as i32),
        4 => {
            let b = r.u8()?;
            Insn::Bin(byte_binop(b).ok_or_else(|| r.err("bad binop"))?)
        }
        5 => Insn::Neg,
        6 => Insn::Dup,
        7 => Insn::Pop,
        8 => Insn::Swap,
        9 => Insn::GetStatic(r.u32()?),
        10 => Insn::PutStatic(r.u32()?),
        11 => Insn::NewArray,
        12 => Insn::ALoad,
        13 => Insn::AStore,
        14 => Insn::ArrayLen,
        15 => Insn::Goto(r.u32()? as usize),
        16 => {
            let c = byte_cond(r.u8()?).ok_or_else(|| r.err("bad cond"))?;
            Insn::If(c, r.u32()? as usize)
        }
        17 => {
            let c = byte_cond(r.u8()?).ok_or_else(|| r.err("bad cond"))?;
            Insn::IfCmp(c, r.u32()? as usize)
        }
        18 => {
            let n = r.u32()? as usize;
            let mut cases = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let v = r.u64()? as i64;
                let t = r.u32()? as usize;
                cases.push((v, t));
            }
            Insn::Switch {
                cases,
                default: r.u32()? as usize,
            }
        }
        19 => Insn::Call(r.u32()?),
        20 => Insn::Return(r.u8()? != 0),
        21 => Insn::Print,
        22 => Insn::ReadInput,
        23 => Insn::Nop,
        _ => return Err(r.err("bad instruction tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ProgramBuilder};

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.add_static("global");
        let mut f = FunctionBuilder::new("main", 0, 3);
        let a = f.new_label();
        let b = f.new_label();
        f.push(-5).store(0);
        f.load(0).if_zero(Cond::Lt, a);
        f.push(1).put_static(g);
        f.bind(a);
        f.load(0);
        f.switch(&[(1, b)], b);
        f.bind(b);
        f.push(2).new_array().pop();
        f.read_input().print();
        f.ret_void();
        let main = pb.add_function(f.finish().unwrap());
        pb.finish(main).unwrap()
    }

    #[test]
    fn round_trip_preserves_program() {
        let p = sample();
        let bytes = encode_program(&p);
        let q = decode_program(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn every_instruction_round_trips() {
        use crate::insn::{BinOp, Insn};
        let all = vec![
            Insn::Const(i64::MIN),
            Insn::Const(i64::MAX),
            Insn::Load(9),
            Insn::Store(0),
            Insn::Iinc(3, -100),
            Insn::Bin(BinOp::UShr),
            Insn::Neg,
            Insn::Dup,
            Insn::Pop,
            Insn::Swap,
            Insn::GetStatic(7),
            Insn::PutStatic(8),
            Insn::NewArray,
            Insn::ALoad,
            Insn::AStore,
            Insn::ArrayLen,
            Insn::Goto(42),
            Insn::If(Cond::Ge, 1),
            Insn::IfCmp(Cond::Ne, 2),
            Insn::Switch {
                cases: vec![(-1, 0), (i64::MAX, 3)],
                default: 4,
            },
            Insn::Call(2),
            Insn::Return(true),
            Insn::Return(false),
            Insn::Print,
            Insn::ReadInput,
            Insn::Nop,
        ];
        let p = Program {
            functions: vec![Function {
                name: "all".into(),
                num_params: 0,
                num_locals: 10,
                returns_value: true,
                code: all,
            }],
            statics: vec!["s".into()],
            entry: FuncId(0),
        };
        let q = decode_program(&encode_program(&p)).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            decode_program(b"NOPE"),
            Err(DecodeError {
                offset: 4,
                reason: "bad magic"
            })
        );
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode_program(&sample());
        for cut in [0usize, 3, 10, bytes.len() - 1] {
            assert!(decode_program(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trace_round_trips() {
        let site = |f: u32, pc: usize| Site {
            func: FuncId(f),
            pc,
        };
        let trace = Trace {
            events: vec![
                TraceEvent::EnterBlock { site: site(0, 0) },
                TraceEvent::Branch {
                    site: site(0, 3),
                    next: 9,
                },
                TraceEvent::Snapshot {
                    site: site(1, 7),
                    data: Box::new(SnapshotData {
                        locals: vec![i64::MIN, -1, 0, i64::MAX],
                        statics: vec![42],
                    }),
                },
            ],
        };
        let bytes = encode_trace(&trace);
        assert_eq!(decode_trace(&bytes).unwrap(), trace);
        assert_eq!(
            decode_trace(&encode_trace(&Trace::new())).unwrap(),
            Trace::new()
        );
    }

    #[test]
    fn truncated_trace_rejected() {
        let trace = Trace {
            events: vec![TraceEvent::Branch {
                site: Site {
                    func: FuncId(0),
                    pc: 1,
                },
                next: 2,
            }],
        };
        let bytes = encode_trace(&trace);
        for cut in [0usize, 3, 6, bytes.len() - 1] {
            assert!(decode_trace(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        assert!(decode_trace(b"NOPE").is_err());
    }

    #[test]
    fn garbage_tags_rejected() {
        let mut bytes = encode_program(&sample());
        // Corrupt an instruction tag region aggressively.
        let mid = bytes.len() / 2;
        bytes[mid] = 0xEE;
        // Either a decode error or a different program; never a panic.
        let _ = decode_program(&bytes);
    }
}
