//! In-place code editing with branch-target fix-up.
//!
//! Both the watermark embedder (inserting branch code at trace-chosen
//! points, Section 3.2) and the attack suite (inserting bogus branches,
//! no-ops, reordering, Section 5.1.2) splice instructions into existing
//! functions. Splicing shifts instruction indices, so every branch target
//! at or beyond the splice point must be adjusted.

use crate::insn::Insn;
use crate::program::Function;

/// Inserts `snippet` so it executes immediately before the instruction
/// currently at index `at` (or at function end if `at == code.len()`).
///
/// Branch targets *inside the snippet* are interpreted relative to the
/// snippet start; a target equal to `snippet.len()` means "the
/// instruction after the snippet". Pre-existing targets strictly beyond
/// `at` are shifted; targets equal to `at` are left pointing at the
/// snippet start, so jumps into the splice point execute the snippet
/// first — which is precisely what block-entry watermark insertion
/// wants (a loop head visited `k` times runs the snippet `k` times).
///
/// # Panics
///
/// Panics if `at > code.len()` or a snippet target exceeds
/// `snippet.len()`.
pub fn insert_snippet(func: &mut Function, at: usize, snippet: Vec<Insn>) {
    assert!(at <= func.code.len(), "insertion point out of range");
    let len = snippet.len();
    if len == 0 {
        return;
    }
    for insn in &mut func.code {
        insn.map_targets(|t| if t > at { t + len } else { t });
    }
    let rebased: Vec<Insn> = snippet
        .into_iter()
        .map(|mut insn| {
            insn.map_targets(|rel| {
                assert!(rel <= len, "snippet target {rel} exceeds snippet length {len}");
                at + rel
            });
            insn
        })
        .collect();
    func.code.splice(at..at, rebased);
}

/// Deletes the instruction at `at`, retargeting branches: targets beyond
/// `at` shift down by one; targets equal to `at` now point at the
/// instruction that followed it.
///
/// # Panics
///
/// Panics if `at >= code.len()`.
pub fn delete_insn(func: &mut Function, at: usize) {
    assert!(at < func.code.len(), "deletion point out of range");
    func.code.remove(at);
    for insn in &mut func.code {
        insn.map_targets(|t| if t > at { t - 1 } else { t });
    }
}

/// Replaces the instruction at `at`, leaving all targets untouched.
///
/// # Panics
///
/// Panics if `at >= code.len()`.
pub fn replace_insn(func: &mut Function, at: usize, with: Insn) -> Insn {
    assert!(at < func.code.len(), "replacement point out of range");
    std::mem::replace(&mut func.code[at], with)
}

/// Grows the local-variable area by `extra` slots, returning the index of
/// the first new slot. Inserted watermark code uses fresh locals so it
/// cannot clobber program state.
pub fn reserve_locals(func: &mut Function, extra: u16) -> u16 {
    let first = func.num_locals;
    func.num_locals += extra;
    first
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::insn::Cond;
    use crate::interp::Vm;
    use crate::program::{FuncId, Program};

    fn counting_function() -> Function {
        // prints 0,1,2 then returns
        let mut f = FunctionBuilder::new("main", 0, 1);
        let top = f.new_label();
        let out = f.new_label();
        f.bind(top);
        f.load(0).push(3).if_cmp(Cond::Ge, out);
        f.load(0).print().iinc(0, 1).goto(top);
        f.bind(out);
        f.ret_void();
        f.finish().unwrap()
    }

    fn run(func: Function) -> Vec<i64> {
        let p = Program {
            functions: vec![func],
            statics: vec![],
            entry: FuncId(0),
        };
        crate::verify::verify(&p).expect("edited program verifies");
        Vm::new(&p).run().expect("edited program runs").output
    }

    #[test]
    fn insert_preserves_loop_semantics() {
        let mut f = counting_function();
        // Insert a no-op-ish snippet at the loop head (pc 0).
        insert_snippet(&mut f, 0, vec![Insn::Const(9), Insn::Pop]);
        assert_eq!(run(f), vec![0, 1, 2]);
    }

    #[test]
    fn insert_mid_block_and_at_end() {
        let mut f = counting_function();
        let end = f.code.len();
        insert_snippet(&mut f, 4, vec![Insn::Nop]);
        insert_snippet(&mut f, end + 1, vec![Insn::Nop]);
        // The trailing Nop sits after Return and is dead but must not
        // break verification (it is unreachable, so depth checks skip it).
        assert_eq!(run(f), vec![0, 1, 2]);
    }

    #[test]
    fn snippet_internal_branches_are_rebased() {
        let mut f = counting_function();
        // Snippet: if local0 >= 0 skip the poison print (always skips).
        let snippet = vec![
            Insn::Load(0),
            Insn::If(Cond::Ge, 4), // relative: skip to snippet end
            Insn::Const(-999),
            Insn::Print,
        ];
        insert_snippet(&mut f, 3, snippet);
        assert_eq!(run(f), vec![0, 1, 2]);
    }

    #[test]
    fn jump_into_insertion_point_executes_snippet() {
        // Insert a print at the loop head: it runs once per iteration
        // (4 entries: three iterations plus the final test).
        let mut f = counting_function();
        insert_snippet(&mut f, 0, vec![Insn::Const(7), Insn::Print]);
        assert_eq!(run(f), vec![7, 0, 7, 1, 7, 2, 7]);
    }

    #[test]
    fn delete_shifts_targets() {
        let mut f = counting_function();
        // Delete the `print` at pc 4; loop still terminates.
        delete_insn(&mut f, 4);
        // load(0) at pc 3 now feeds... nothing pops it: stack depth would
        // break; delete that too.
        delete_insn(&mut f, 3);
        assert_eq!(run(f), Vec::<i64>::new());
    }

    #[test]
    fn replace_swaps_single_instruction() {
        let mut f = counting_function();
        let old = replace_insn(&mut f, 1, Insn::Const(5));
        assert_eq!(old, Insn::Const(3));
        assert_eq!(run(f), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn reserve_locals_appends() {
        let mut f = counting_function();
        let first = reserve_locals(&mut f, 3);
        assert_eq!(first, 1);
        assert_eq!(f.num_locals, 4);
    }

    #[test]
    #[should_panic(expected = "insertion point out of range")]
    fn insert_past_end_panics() {
        let mut f = counting_function();
        let end = f.code.len();
        insert_snippet(&mut f, end + 1, vec![Insn::Nop]);
    }

    #[test]
    #[should_panic(expected = "snippet target")]
    fn oversized_snippet_target_panics() {
        let mut f = counting_function();
        insert_snippet(&mut f, 0, vec![Insn::Goto(5)]);
    }
}
