//! Program, function, and static-field models.

use std::fmt;

use crate::insn::Insn;

/// Identifier of a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// Identifier of a static field within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StaticId(pub u32);

/// A single function: a flat instruction vector plus frame metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Human-readable name (diagnostics and disassembly only).
    pub name: String,
    /// Number of parameters; the first `num_params` locals are
    /// initialized from the arguments.
    pub num_params: u16,
    /// Total number of local-variable slots (≥ `num_params`).
    pub num_locals: u16,
    /// Whether the function returns a value.
    pub returns_value: bool,
    /// The code.
    pub code: Vec<Insn>,
}

impl Function {
    /// Size of the function in *emulated bytecode bytes*, the unit
    /// Figure 8(b) measures. Modeled on JVM encoding sizes: most opcodes
    /// are 1–3 bytes; switches pay per case.
    pub fn byte_size(&self) -> usize {
        self.code.iter().map(encoded_size).sum()
    }
}

/// Emulated JVM-style encoded size of one instruction, in bytes.
pub fn encoded_size(insn: &Insn) -> usize {
    match insn {
        Insn::Nop | Insn::Dup | Insn::Pop | Insn::Swap | Insn::Neg => 1,
        Insn::Bin(_) | Insn::Return(_) | Insn::Print => 1,
        Insn::NewArray | Insn::ALoad | Insn::AStore | Insn::ArrayLen => 1,
        Insn::Load(n) | Insn::Store(n) => {
            if *n < 4 {
                1
            } else {
                2
            }
        }
        Insn::Iinc(..) => 3,
        Insn::Const(v) => match *v {
            -1..=5 => 1,
            -128..=127 => 2,
            -32768..=32767 => 3,
            _ => 3, // ldc of a constant-pool entry
        },
        Insn::GetStatic(_) | Insn::PutStatic(_) | Insn::Call(_) | Insn::ReadInput => 3,
        Insn::Goto(_) | Insn::If(..) | Insn::IfCmp(..) => 3,
        Insn::Switch { cases, .. } => 12 + 8 * cases.len(),
    }
}

/// A complete program: functions, static fields, and an entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// All functions; [`FuncId`] indexes into this vector.
    pub functions: Vec<Function>,
    /// Names of static fields; [`StaticId`] indexes into this vector.
    pub statics: Vec<String>,
    /// The function executed by [`crate::interp::Vm::run`].
    pub entry: FuncId,
}

impl Program {
    /// Looks up a function.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (program construction goes
    /// through [`crate::builder::ProgramBuilder`], which hands out only
    /// valid ids).
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Mutable function lookup.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.0 as usize]
    }

    /// Finds a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Iterates over `(id, function)` pairs.
    pub fn iter_functions(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Total emulated size in bytes (sum of [`Function::byte_size`]) —
    /// the "program size" axis of Figure 8(b).
    pub fn byte_size(&self) -> usize {
        self.functions.iter().map(Function::byte_size).sum()
    }

    /// Total number of instructions across all functions.
    pub fn insn_count(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }

    /// Total number of static conditional-branch instructions — the
    /// denominator of the "branch increase" axis in Figures 8(c,d).
    pub fn conditional_branch_count(&self) -> usize {
        self.functions
            .iter()
            .flat_map(|f| &f.code)
            .filter(|i| i.is_conditional_branch())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{BinOp, Cond};

    fn sample_function() -> Function {
        Function {
            name: "f".into(),
            num_params: 1,
            num_locals: 2,
            returns_value: true,
            code: vec![
                Insn::Load(0),
                Insn::Const(3),
                Insn::Bin(BinOp::Add),
                Insn::Return(true),
            ],
        }
    }

    #[test]
    fn byte_size_models_jvm_encoding() {
        let f = sample_function();
        // load_0 (1) + iconst_3 (1) + iadd (1) + ireturn (1)
        assert_eq!(f.byte_size(), 4);
        assert_eq!(encoded_size(&Insn::Const(1000)), 3);
        assert_eq!(encoded_size(&Insn::Const(100)), 2);
        assert_eq!(encoded_size(&Insn::Load(9)), 2);
        assert_eq!(
            encoded_size(&Insn::Switch {
                cases: vec![(0, 0), (1, 1)],
                default: 2
            }),
            12 + 16
        );
    }

    #[test]
    fn program_queries() {
        let p = Program {
            functions: vec![sample_function()],
            statics: vec!["g".into()],
            entry: FuncId(0),
        };
        assert_eq!(p.insn_count(), 4);
        assert_eq!(p.conditional_branch_count(), 0);
        assert_eq!(p.function_by_name("f").unwrap().0, FuncId(0));
        assert!(p.function_by_name("missing").is_none());
        assert_eq!(p.byte_size(), 4);
    }

    #[test]
    fn conditional_branch_count_sees_only_if_forms() {
        let mut f = sample_function();
        f.code.insert(0, Insn::If(Cond::Eq, 1));
        f.code.insert(0, Insn::Goto(1));
        f.code.insert(
            0,
            Insn::Switch {
                cases: vec![],
                default: 1,
            },
        );
        let p = Program {
            functions: vec![f],
            statics: vec![],
            entry: FuncId(0),
        };
        assert_eq!(p.conditional_branch_count(), 1);
    }

}
