//! Fluent construction of functions and programs with symbolic labels.
//!
//! The watermark embedder, the attack suite, and the workload programs
//! all synthesize bytecode; a label-based builder keeps branch targets
//! symbolic until [`FunctionBuilder::finish`] patches them to instruction
//! indices.

use crate::insn::{BinOp, Cond, Insn};
use crate::program::{FuncId, Function, Program, StaticId};
use crate::VmError;

/// A forward-referenceable label within one function under construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builds one [`Function`] instruction-by-instruction.
///
/// All emit methods return `&mut Self` for chaining. See the
/// [crate-level example](crate) for a complete program.
#[derive(Debug, Clone)]
pub struct FunctionBuilder {
    name: String,
    num_params: u16,
    num_locals: u16,
    returns_value: bool,
    code: Vec<Insn>,
    /// `labels[l]` = Some(instruction index) once bound.
    labels: Vec<Option<usize>>,
    /// `(instruction index, label)` pairs to patch at finish.
    fixups: Vec<(usize, Label)>,
}

impl FunctionBuilder {
    /// Starts a function with `num_params` parameters and
    /// `extra_locals` additional local slots.
    pub fn new(name: impl Into<String>, num_params: u16, extra_locals: u16) -> Self {
        FunctionBuilder {
            name: name.into(),
            num_params,
            num_locals: num_params + extra_locals,
            returns_value: false,
            code: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Declares that the function returns a value. `ret()` implies this;
    /// call it explicitly only for functions whose returns are emitted
    /// through raw instructions.
    pub fn returns_value(&mut self) -> &mut Self {
        self.returns_value = true;
        self
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        assert!(
            self.labels[label.0].is_none(),
            "label bound twice in `{}`",
            self.name
        );
        self.labels[label.0] = Some(self.code.len());
        self
    }

    /// Current instruction index (where the next instruction lands).
    pub fn here(&self) -> usize {
        self.code.len()
    }

    /// Emits a raw instruction. Branch instructions emitted this way must
    /// carry final numeric targets; prefer the labeled helpers.
    pub fn raw(&mut self, insn: Insn) -> &mut Self {
        self.code.push(insn);
        self
    }

    /// Pushes a constant.
    pub fn push(&mut self, v: i64) -> &mut Self {
        self.raw(Insn::Const(v))
    }

    /// Loads local `n`.
    pub fn load(&mut self, n: u16) -> &mut Self {
        self.raw(Insn::Load(n))
    }

    /// Stores into local `n`.
    pub fn store(&mut self, n: u16) -> &mut Self {
        self.raw(Insn::Store(n))
    }

    /// Adds `delta` to local `n`.
    pub fn iinc(&mut self, n: u16, delta: i32) -> &mut Self {
        self.raw(Insn::Iinc(n, delta))
    }

    /// Emits a binary operation.
    pub fn bin(&mut self, op: BinOp) -> &mut Self {
        self.raw(Insn::Bin(op))
    }

    /// Shorthand binary ops.
    pub fn add(&mut self) -> &mut Self {
        self.bin(BinOp::Add)
    }
    /// Emits a subtraction.
    pub fn sub(&mut self) -> &mut Self {
        self.bin(BinOp::Sub)
    }
    /// Emits a multiplication.
    pub fn mul(&mut self) -> &mut Self {
        self.bin(BinOp::Mul)
    }
    /// Emits a division.
    pub fn div(&mut self) -> &mut Self {
        self.bin(BinOp::Div)
    }
    /// Emits a remainder.
    pub fn rem(&mut self) -> &mut Self {
        self.bin(BinOp::Rem)
    }

    /// Reads a static field.
    pub fn get_static(&mut self, s: StaticId) -> &mut Self {
        self.raw(Insn::GetStatic(s.0))
    }

    /// Writes a static field.
    pub fn put_static(&mut self, s: StaticId) -> &mut Self {
        self.raw(Insn::PutStatic(s.0))
    }

    /// Unconditional branch to a label.
    pub fn goto(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.code.len(), label));
        self.raw(Insn::Goto(usize::MAX))
    }

    /// Branch to `label` if the popped value satisfies `cond` vs zero.
    pub fn if_zero(&mut self, cond: Cond, label: Label) -> &mut Self {
        self.fixups.push((self.code.len(), label));
        self.raw(Insn::If(cond, usize::MAX))
    }

    /// Branch to `label` if the popped pair satisfies `cond`.
    pub fn if_cmp(&mut self, cond: Cond, label: Label) -> &mut Self {
        self.fixups.push((self.code.len(), label));
        self.raw(Insn::IfCmp(cond, usize::MAX))
    }

    /// Emits a switch over `(value, label)` cases with a default label.
    pub fn switch(&mut self, cases: &[(i64, Label)], default: Label) -> &mut Self {
        let at = self.code.len();
        // Targets are patched via a placeholder encoding: store each
        // label id and patch by position at finish-time.
        for (_, l) in cases {
            self.fixups.push((at, *l));
        }
        self.fixups.push((at, default));
        self.raw(Insn::Switch {
            cases: cases.iter().map(|&(v, _)| (v, usize::MAX)).collect(),
            default: usize::MAX,
        })
    }

    /// Calls a function by id.
    pub fn call(&mut self, f: FuncId) -> &mut Self {
        self.raw(Insn::Call(f.0))
    }

    /// Returns with the top-of-stack value.
    pub fn ret(&mut self) -> &mut Self {
        self.returns_value = true;
        self.raw(Insn::Return(true))
    }

    /// Returns without a value.
    pub fn ret_void(&mut self) -> &mut Self {
        self.raw(Insn::Return(false))
    }

    /// Pops and prints the top of stack.
    pub fn print(&mut self) -> &mut Self {
        self.raw(Insn::Print)
    }

    /// Emits array allocation.
    pub fn new_array(&mut self) -> &mut Self {
        self.raw(Insn::NewArray)
    }
    /// Emits an array load.
    pub fn aload(&mut self) -> &mut Self {
        self.raw(Insn::ALoad)
    }
    /// Emits an array store.
    pub fn astore(&mut self) -> &mut Self {
        self.raw(Insn::AStore)
    }
    /// Emits an array-length query.
    pub fn array_len(&mut self) -> &mut Self {
        self.raw(Insn::ArrayLen)
    }
    /// Emits a stack duplication.
    pub fn dup(&mut self) -> &mut Self {
        self.raw(Insn::Dup)
    }
    /// Emits a stack pop.
    pub fn pop(&mut self) -> &mut Self {
        self.raw(Insn::Pop)
    }
    /// Reads the next value of the program input sequence.
    pub fn read_input(&mut self) -> &mut Self {
        self.raw(Insn::ReadInput)
    }

    /// Finalizes the function, patching all label references.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UnboundLabel`] if any referenced label was
    /// never bound.
    pub fn finish(mut self) -> Result<Function, VmError> {
        // Resolve fixups in emission order. Switch instructions consumed
        // several fixups at the same index; replay them positionally.
        let mut by_index: std::collections::BTreeMap<usize, Vec<Label>> =
            std::collections::BTreeMap::new();
        for (at, label) in self.fixups.drain(..) {
            by_index.entry(at).or_default().push(label);
        }
        for (at, labels) in by_index {
            let mut resolved = Vec::with_capacity(labels.len());
            for l in labels {
                match self.labels[l.0] {
                    Some(target) => resolved.push(target),
                    None => {
                        return Err(VmError::UnboundLabel {
                            func_name: self.name,
                        })
                    }
                }
            }
            match &mut self.code[at] {
                Insn::Goto(t) | Insn::If(_, t) | Insn::IfCmp(_, t) => *t = resolved[0],
                Insn::Switch { cases, default } => {
                    for (k, (_, t)) in cases.iter_mut().enumerate() {
                        *t = resolved[k];
                    }
                    *default = *resolved.last().expect("switch emits >= 1 fixup");
                }
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        Ok(Function {
            name: self.name,
            num_params: self.num_params,
            num_locals: self.num_locals,
            returns_value: self.returns_value,
            code: self.code,
        })
    }
}

/// Accumulates functions and static fields into a [`Program`].
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    functions: Vec<Function>,
    statics: Vec<String>,
}

impl ProgramBuilder {
    /// Starts an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a finished function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        self.functions.push(f);
        FuncId(self.functions.len() as u32 - 1)
    }

    /// Reserves a function slot before its body exists (for mutual
    /// recursion); fill it later with [`Self::set_function`].
    pub fn declare_function(&mut self, name: impl Into<String>) -> FuncId {
        self.functions.push(Function {
            name: name.into(),
            num_params: 0,
            num_locals: 0,
            returns_value: false,
            code: vec![Insn::Return(false)],
        });
        FuncId(self.functions.len() as u32 - 1)
    }

    /// Replaces a declared function's body.
    ///
    /// # Panics
    ///
    /// Panics if the id was not handed out by this builder.
    pub fn set_function(&mut self, id: FuncId, f: Function) {
        self.functions[id.0 as usize] = f;
    }

    /// Declares a static field, returning its id.
    pub fn add_static(&mut self, name: impl Into<String>) -> StaticId {
        self.statics.push(name.into());
        StaticId(self.statics.len() as u32 - 1)
    }

    /// Finalizes the program and verifies it.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError::Verify`] if the assembled program is
    /// structurally invalid.
    pub fn finish(self, entry: FuncId) -> Result<Program, VmError> {
        let program = Program {
            functions: self.functions,
            statics: self.statics,
            entry,
        };
        crate::verify::verify(&program)?;
        Ok(program)
    }

    /// Finalizes without verification (used by tests that construct
    /// deliberately broken programs).
    pub fn finish_unverified(self, entry: FuncId) -> Program {
        Program {
            functions: self.functions,
            statics: self.statics,
            entry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Insn;

    #[test]
    fn labels_patch_forward_and_backward() {
        let mut f = FunctionBuilder::new("t", 0, 1);
        let top = f.new_label();
        let out = f.new_label();
        f.bind(top);
        f.load(0).push(3).if_cmp(Cond::Ge, out);
        f.iinc(0, 1).goto(top);
        f.bind(out);
        f.ret_void();
        let func = f.finish().unwrap();
        assert_eq!(func.code[2], Insn::IfCmp(Cond::Ge, 5));
        assert_eq!(func.code[4], Insn::Goto(0));
    }

    #[test]
    fn switch_targets_patch_in_order() {
        let mut f = FunctionBuilder::new("s", 1, 0);
        let a = f.new_label();
        let b = f.new_label();
        let d = f.new_label();
        f.load(0);
        f.switch(&[(10, a), (20, b)], d);
        f.bind(a);
        f.push(1).print().ret_void();
        f.bind(b);
        f.push(2).print().ret_void();
        f.bind(d);
        f.push(3).print().ret_void();
        let func = f.finish().unwrap();
        match &func.code[1] {
            Insn::Switch { cases, default } => {
                assert_eq!(cases, &vec![(10, 2), (20, 5)]);
                assert_eq!(*default, 8);
            }
            other => panic!("expected switch, got {other:?}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut f = FunctionBuilder::new("u", 0, 0);
        let l = f.new_label();
        f.goto(l);
        assert!(matches!(f.finish(), Err(VmError::UnboundLabel { .. })));
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut f = FunctionBuilder::new("d", 0, 0);
        let l = f.new_label();
        f.bind(l);
        f.bind(l);
    }

    #[test]
    fn declare_then_set_supports_recursion() {
        let mut p = ProgramBuilder::new();
        let id = p.declare_function("self_call");
        let mut f = FunctionBuilder::new("self_call", 1, 0);
        let base = f.new_label();
        f.load(0).if_zero(Cond::Le, base);
        f.load(0).push(1).sub().call(id);
        f.bind(base);
        f.ret_void();
        p.set_function(id, f.finish().unwrap());
        let mut main = FunctionBuilder::new("main", 0, 0);
        main.push(3).call(id).ret_void();
        let main_id = p.add_function(main.finish().unwrap());
        let program = p.finish(main_id).unwrap();
        assert_eq!(program.functions.len(), 2);
    }
}
