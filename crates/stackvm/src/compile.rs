//! The compile tier: a flattened threaded-code backend for the tracer.
//!
//! Recognition re-runs every suspect copy (Section 4.3), so the tracer's
//! dispatch loop bounds serial copies/s. The [`Predecoded`] engine already
//! decodes once and fuses 21 superinstructions, but it still pays, per
//! dynamic op, a block-leader test, per-frame code/leader re-hoisting on
//! every call boundary, and one dispatch per predecoded head. This module
//! translates the predecoded form **once more** into a program-wide
//! flattened instruction array tuned for the recognition configuration
//! (`branches_only` / `off` — no block or snapshot events):
//!
//! * all functions are concatenated into one `Vec<COp>` with a
//!   [`COp::EndGuard`] sentinel slot after each function, so "fell off
//!   the end" and clamped out-of-range branch targets are ordinary
//!   fetches of a guard op — the hot loop has no per-function slices to
//!   re-hoist and no leader bitmap to consult;
//! * call sites carry the callee's pre-resolved absolute entry offset,
//!   arity, and frame size, so a call is a frame push plus a jump;
//! * branch recording is a compile-time const (`TRACED`), not a runtime
//!   flag, and branch events stream into the caller's [`TraceSink`] —
//!   with the packed-bits sink the bit lands straight in the builder's
//!   accumulator word;
//! * a second peephole pass fuses sequences the 16-byte predecoded form
//!   cannot express — most importantly [`COp::FusedExpr`], the
//!   watermark-decoder's whole `t = (x >> (i - 1)) & 1` loop body
//!   (eight original ops, four predecoded dispatches) as a single
//!   stack-free dispatch, plus [`COp::BinIf`] (the opaque-predicate
//!   tail) and [`COp::IincLoadSwitch`] (the switch-controlled loop back
//!   edge the embedder emits).
//!
//! Every fused op charges the instruction count the originals would
//! have cost and reports error pcs / branch sites at their original
//! offsets, so outcomes, traces, and faults are bit-identical to the
//! reference interpreter — the cross-tier property test in `interp.rs`
//! holds all three engines to that.
//!
//! Translation is linear and cheap, but unbounded programs (an attacked
//! copy could be arbitrarily large) fall back: [`Compiled::build`]
//! returns `None` past a compile budget and the [`Vm`] silently runs
//! the predecoded engine instead.
//!
//! [`Vm`]: crate::interp::Vm

use crate::insn::{BinOp, Cond};
use crate::interp::{RunResult, MAX_CALL_DEPTH};
use crate::predecode::{op_width, Op, Predecoded};
use crate::program::{FuncId, Program};
use crate::trace::{Site, TraceSink};
use crate::VmError;

/// Maximum number of flattened slots a program may occupy before the
/// compile tier declines and the [`Vm`](crate::interp::Vm) falls back to
/// the predecoded engine. Marked workloads are a few thousand ops; the
/// budget only exists so an adversarially bloated copy cannot make the
/// per-run translation pass dominate the run itself.
pub const DEFAULT_COMPILE_BUDGET: usize = 1 << 16;

/// A flattened, pre-resolved instruction. Branch targets stay
/// *function-relative* (trace sites and error offsets are relative, and
/// `abs = frame base + rel` is one add); call entries are *absolute*
/// offsets into the flattened array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum COp {
    Const(i64),
    Load(u32),
    Store(u32),
    Iinc(u32, i32),
    Bin(BinOp),
    Neg,
    Dup,
    Pop,
    Swap,
    GetStatic(u32),
    PutStatic(u32),
    NewArray,
    ALoad,
    AStore,
    ArrayLen,
    Goto(u32),
    If(Cond, u32),
    IfCmp(Cond, u32),
    /// Index into [`Compiled::switches`] (program-wide table).
    Switch(u32),
    /// Pre-resolved call: absolute entry offset, callee id, arity,
    /// frame size.
    Call {
        entry: u32,
        callee: u32,
        argc: u16,
        num_locals: u16,
    },
    /// Unresolvable call site — the reference slow path, which panics
    /// exactly where the original interpreter would.
    BadCall(u32),
    Return(bool),
    Print,
    ReadInput,
    Nop,
    /// Sentinel slot after each function's code: fetching it is the
    /// clamped-target / fell-off-the-end fault for that function.
    EndGuard(u32),

    // ---- predecoded superinstructions, carried over 1:1 ----
    Load2(u32, u32),
    LoadConst(u32, i64),
    StoreLoad(u32, u32),
    StoreGoto(u32, u32),
    LoadIf(u32, Cond, u32),
    LoadIfCmp(u32, Cond, u32),
    ConstIfCmp(i64, Cond, u32),
    IincGoto(u32, i32, u32),
    Load2IfCmp(u16, u16, Cond, u16),
    LoadConstIfCmp(u16, Cond, u16, i64),
    ConstBin(i64, BinOp),
    LoadBin(u32, BinOp),
    BinConst(BinOp, i64),
    Bin2(BinOp, BinOp),
    BinStore(BinOp, u32),
    StoreIinc(u32, u32, i32),
    IincLoad(u32, i32, u32),
    Load2Bin(u16, u16, BinOp),
    LoadConstBin(u16, BinOp, i64),
    Load2BinStore(u16, u16, BinOp, u16),
    LoadConstBinStore(u16, BinOp, u16, i64),

    // ---- compile-tier fusions (see `fuse_compiled`) ----
    /// `Load a; Load b; Const c1; Bin o1; Bin o2; Const c2; Bin o3;
    /// Store d` — i.e. `locals[d] = (locals[a] o2 (locals[b] o1 c1)) o3
    /// c2`, the watermark loop's bit-extract body, in one stack-free
    /// dispatch. Fused only when no `oN` can fault (no `Div`/`Rem`), so
    /// the op is pure and charges all eight instructions up front.
    FusedExpr {
        a: u16,
        b: u16,
        d: u16,
        c1: i16,
        c2: i16,
        o1: BinOp,
        o2: BinOp,
        o3: BinOp,
    },
    /// `Bin op; If(cond, t)` — an expression tail feeding a branch (the
    /// opaque-predicate shape). Reports a division fault at the `Bin`'s
    /// pc and the branch site at `pc + 1`.
    BinIf(BinOp, Cond, u32),
    /// `Iinc(n, d); Load m; Switch(table)` — the embedder's
    /// switch-controlled loop back edge (`i += 1; switch i`), untraced
    /// by construction.
    IincLoadSwitch {
        n: u16,
        d: i16,
        m: u16,
        table: u32,
    },
    /// `Load2 a b; LoadBin c o1; ConstBin v o2; BinStore o3 d` — the
    /// host compute kernels' reduction body, `locals[d] = locals[a] o3
    /// ((locals[b] o1 locals[c]) o2 v)`, eight original ops in one
    /// stack-free dispatch. Fused only when no `oN` can fault.
    FusedExpr2 {
        a: u16,
        b: u16,
        c: u16,
        d: u16,
        o1: BinOp,
        o2: BinOp,
        o3: BinOp,
        v: i32,
    },
    /// `Iinc(n, d); LoadConstIfCmp(m, cond, t, v)` — a do-while
    /// counting loop's entire back edge (`i += d; if (m cmp v) goto t`)
    /// in one dispatch. The branch site stays the original `IfCmp`'s.
    IincLoadConstIfCmp {
        n: u16,
        d: i16,
        m: u16,
        cond: Cond,
        t: u16,
        v: i32,
    },
    /// A jump-threaded back edge: `Goto t` whose target is a
    /// `LoadConstIfCmp(m, cond, tt, v)` loop header. The header's copy
    /// runs inline — its slot at `t` stays live for every other
    /// predecessor — so the back edge costs one dispatch instead of
    /// two, and the hot taken-goto round trip disappears.
    GotoLoadConstIfCmp {
        m: u16,
        cond: Cond,
        /// The header's own offset (branch site `t + 2`, fall-through
        /// `t + 3`).
        t: u16,
        /// The header's taken target.
        tt: u16,
        v: i32,
    },
    /// The threaded form of `IincGoto(n, d, t)` whose target is a
    /// `Load2IfCmp(a, b, cond, tt)` loop header — the dominant compute
    /// kernel back edge (`i += d; goto header; if (a cmp b) ...`).
    IincGotoLoad2IfCmp {
        n: u16,
        d: i16,
        a: u16,
        b: u16,
        cond: Cond,
        t: u16,
        tt: u16,
    },
    /// A whole compute-kernel loop iteration — [`COp::FusedExpr2`]
    /// followed by its [`COp::IincGotoLoad2IfCmp`] back edge — as one
    /// dispatch. Too wide for an inline op, so the operands live in
    /// [`Compiled::kernels`]; the handful of hot loops keep their
    /// entries resident in cache.
    Kernel(u32),
    /// [`COp::IincLoadConstIfCmp`] whose compare constant needs the
    /// full 64 bits (watermark piece values): operands spill to
    /// [`Compiled::wides`].
    IincLoadConstIfCmpW(u32),
    /// [`COp::GotoLoadConstIfCmp`] with a 64-bit compare constant,
    /// operands in [`Compiled::wides`].
    GotoLoadConstIfCmpW(u32),
    /// `Load m; Switch(table)` — the piece-dispatch hop at the top of
    /// the watermark decoder loop.
    LoadSwitch(u16, u32),
    /// A watermark-decoder piece body and its exit test —
    /// [`COp::FusedExpr`] followed by [`COp::LoadIf`] — as one
    /// dispatch over [`Compiled::expr_ifs`].
    KernelExprIf(u32),
}

/// The operand block of one [`COp::KernelExprIf`]: the decoder's
/// bit-extract body plus the piece-done test, ten original ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ExprIf {
    pub(crate) a: u16,
    pub(crate) b: u16,
    pub(crate) d: u16,
    pub(crate) c1: i16,
    pub(crate) c2: i16,
    pub(crate) o1: BinOp,
    pub(crate) o2: BinOp,
    pub(crate) o3: BinOp,
    /// The trailing `LoadIf`: `if locals[n] cond 0 goto t`.
    pub(crate) n: u16,
    pub(crate) cond: Cond,
    pub(crate) t: u16,
}

/// Operand block for the compare-branch fusions whose constant does
/// not fit the inline `i32` (the `n`/`d` increment fields are unused
/// by the `Goto` form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WideCmp {
    pub(crate) n: u16,
    pub(crate) d: i16,
    pub(crate) m: u16,
    pub(crate) cond: Cond,
    pub(crate) t: u16,
    pub(crate) tt: u16,
    pub(crate) v: i64,
}

/// The operand block of one [`COp::Kernel`]: reduction body plus
/// threaded back edge, thirteen original ops per iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct KernelLoop {
    pub(crate) a: u16,
    pub(crate) b: u16,
    pub(crate) c: u16,
    pub(crate) d: u16,
    pub(crate) o1: BinOp,
    pub(crate) o2: BinOp,
    pub(crate) o3: BinOp,
    pub(crate) v: i32,
    /// The `Iinc` of the back edge.
    pub(crate) n: u16,
    pub(crate) dd: i16,
    /// The threaded header compare: `locals[ca] cond locals[cb]`.
    pub(crate) ca: u16,
    pub(crate) cb: u16,
    pub(crate) cond: Cond,
    /// The header's own offset (branch site `t + 2`, fall-through
    /// `t + 3`).
    pub(crate) t: u16,
    pub(crate) tt: u16,
}

/// One switch's dispatch table, targets function-relative (clamped, like
/// every other target).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CSwitch {
    pub(crate) cases: Vec<(i64, u32)>,
    pub(crate) default: u32,
    /// Direct-index form, built when the case keys span a small dense
    /// range: `dense[v - lo]` replaces the linear scan. The embedder's
    /// piece-dispatch switches (keys `0..k`) always qualify.
    pub(crate) lo: i64,
    pub(crate) dense: Vec<u32>,
}

impl CSwitch {
    /// Bound on how sparse a dense table may be: the embedder's
    /// switches are perfectly dense, so anything past a 4x blowup
    /// falls back to the scan.
    const DENSE_LIMIT: usize = 4096;

    fn new(cases: Vec<(i64, u32)>, default: u32) -> CSwitch {
        let mut lo = 0i64;
        let mut dense = Vec::new();
        if let (Some(&min), Some(&max)) = (
            cases.iter().map(|(k, _)| k).min(),
            cases.iter().map(|(k, _)| k).max(),
        ) {
            let span = (max as i128 - min as i128 + 1) as u128;
            if span <= Self::DENSE_LIMIT as u128 && span <= 4 * cases.len() as u128 + 16 {
                lo = min;
                dense = vec![default; span as usize];
                // First match wins in the scan, so later duplicate
                // keys must not overwrite earlier ones.
                for &(k, t) in cases.iter().rev() {
                    dense[(k - min) as usize] = t;
                }
            }
        }
        CSwitch {
            cases,
            default,
            lo,
            dense,
        }
    }

    #[inline]
    fn target_for(&self, v: i64) -> u32 {
        if !self.dense.is_empty() {
            let idx = v.wrapping_sub(self.lo);
            if (0..self.dense.len() as i64).contains(&idx) {
                return self.dense[idx as usize];
            }
            return self.default;
        }
        self.cases
            .iter()
            .find(|&&(k, _)| k == v)
            .map(|&(_, t)| t)
            .unwrap_or(self.default)
    }
}

/// A suspended caller: everything needed to resume it after `Return`.
struct CFrame {
    ret_pc: usize,
    base: usize,
    func: u32,
    locals_base: usize,
    stack_base: usize,
}

/// A whole program translated to the flattened compiled form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Compiled {
    code: Vec<COp>,
    switches: Vec<CSwitch>,
    kernels: Vec<KernelLoop>,
    expr_ifs: Vec<ExprIf>,
    wides: Vec<WideCmp>,
    /// Absolute start offset of each function's region (its `EndGuard`
    /// sits at `starts[f] + code_len(f)`).
    starts: Vec<u32>,
    /// Frame sizes, indexed by function id (the `BadCall` slow path and
    /// the entry frame need them).
    num_locals: Vec<u32>,
}

impl Compiled {
    /// Translates `pre` into the flattened form, or `None` when the
    /// program exceeds `budget` flattened slots (the caller falls back
    /// to the predecoded engine).
    pub fn build(pre: &Predecoded, budget: usize) -> Option<Compiled> {
        let total: usize = pre.funcs.iter().map(|f| f.code.len() + 1).sum();
        if total > budget || total > u32::MAX as usize {
            return None;
        }

        let mut starts = Vec::with_capacity(pre.funcs.len());
        let mut at = 0u32;
        for f in &pre.funcs {
            starts.push(at);
            at += f.code.len() as u32 + 1;
        }

        let mut code = Vec::with_capacity(total);
        let mut switches = Vec::new();
        let mut kernels = Vec::new();
        let mut expr_ifs = Vec::new();
        let mut wides = Vec::new();
        for (fid, f) in pre.funcs.iter().enumerate() {
            let switch_base = switches.len() as u32;
            for tbl in &f.switches {
                switches.push(CSwitch::new(tbl.cases.clone(), tbl.default));
            }
            let lo = code.len();
            for &op in &f.code {
                code.push(translate(op, switch_base, &starts));
            }
            fuse_compiled(&mut code[lo..], &f.leaders, &f.code, &mut wides);
            fuse_kernels(&mut code[lo..], &mut kernels, &mut expr_ifs);
            code.push(COp::EndGuard(fid as u32));
        }

        Some(Compiled {
            code,
            switches,
            kernels,
            expr_ifs,
            wides,
            starts,
            num_locals: pre.funcs.iter().map(|f| f.num_locals).collect(),
        })
    }
}

/// 1:1 translation of one predecoded op. Targets stay relative; calls
/// gain their absolute entry; switch indices shift into the program-wide
/// table.
fn translate(op: Op, switch_base: u32, starts: &[u32]) -> COp {
    match op {
        Op::Const(v) => COp::Const(v),
        Op::Load(n) => COp::Load(n),
        Op::Store(n) => COp::Store(n),
        Op::Iinc(n, d) => COp::Iinc(n, d),
        Op::Bin(o) => COp::Bin(o),
        Op::Neg => COp::Neg,
        Op::Dup => COp::Dup,
        Op::Pop => COp::Pop,
        Op::Swap => COp::Swap,
        Op::GetStatic(s) => COp::GetStatic(s),
        Op::PutStatic(s) => COp::PutStatic(s),
        Op::NewArray => COp::NewArray,
        Op::ALoad => COp::ALoad,
        Op::AStore => COp::AStore,
        Op::ArrayLen => COp::ArrayLen,
        Op::Goto(t) => COp::Goto(t),
        Op::If(c, t) => COp::If(c, t),
        Op::IfCmp(c, t) => COp::IfCmp(c, t),
        Op::Switch(i) => COp::Switch(switch_base + i),
        Op::Call {
            callee,
            argc,
            num_locals,
        } => {
            COp::Call {
                entry: starts[callee as usize],
                callee,
                argc: argc as u16,
                num_locals: num_locals as u16,
            }
        }
        Op::BadCall(f) => COp::BadCall(f),
        Op::Return(v) => COp::Return(v),
        Op::Print => COp::Print,
        Op::ReadInput => COp::ReadInput,
        Op::Nop => COp::Nop,
        Op::Load2(a, b) => COp::Load2(a, b),
        Op::LoadConst(n, v) => COp::LoadConst(n, v),
        Op::StoreLoad(a, b) => COp::StoreLoad(a, b),
        Op::StoreGoto(n, t) => COp::StoreGoto(n, t),
        Op::LoadIf(n, c, t) => COp::LoadIf(n, c, t),
        Op::LoadIfCmp(n, c, t) => COp::LoadIfCmp(n, c, t),
        Op::ConstIfCmp(v, c, t) => COp::ConstIfCmp(v, c, t),
        Op::IincGoto(n, d, t) => COp::IincGoto(n, d, t),
        Op::Load2IfCmp(a, b, c, t) => COp::Load2IfCmp(a, b, c, t),
        Op::LoadConstIfCmp(n, c, t, v) => COp::LoadConstIfCmp(n, c, t, v),
        Op::ConstBin(v, o) => COp::ConstBin(v, o),
        Op::LoadBin(n, o) => COp::LoadBin(n, o),
        Op::BinConst(o, v) => COp::BinConst(o, v),
        Op::Bin2(o1, o2) => COp::Bin2(o1, o2),
        Op::BinStore(o, n) => COp::BinStore(o, n),
        Op::StoreIinc(n, m, d) => COp::StoreIinc(n, m, d),
        Op::IincLoad(n, d, m) => COp::IincLoad(n, d, m),
        Op::Load2Bin(a, b, o) => COp::Load2Bin(a, b, o),
        Op::LoadConstBin(n, o, v) => COp::LoadConstBin(n, o, v),
        Op::Load2BinStore(a, b, o, d) => COp::Load2BinStore(a, b, o, d),
        Op::LoadConstBinStore(n, o, d, v) => COp::LoadConstBinStore(n, o, d, v),
    }
}

fn no_fault(op: BinOp) -> bool {
    !matches!(op, BinOp::Div | BinOp::Rem)
}

/// Second peephole pass over one function's translated code: fuses
/// head sequences the predecoded 16-byte form could not hold. The walk
/// steps by predecoded op width, which visits exactly the reachable
/// heads; a fusion additionally requires every interior head to be a
/// non-leader so no branch can land inside the group. Consumed slots
/// keep their 1:1 translations but become unreachable — pc numbering,
/// branch targets, and trace sites are untouched.
fn fuse_compiled(code: &mut [COp], leaders: &[bool], pre: &[Op], wides: &mut Vec<WideCmp>) {
    let n = code.len();
    let mut pc = 0;
    while pc < n {
        let w = op_width(pre[pc]);
        // The watermark-decoder loop body: Load2 + ConstBin + BinConst
        // + BinStore — eight original ops, pure, one dispatch.
        if pc + 8 <= n && !leaders[pc + 2] && !leaders[pc + 4] && !leaders[pc + 6] {
            if let (
                COp::Load2(a, b),
                COp::ConstBin(c1, o1),
                COp::BinConst(o2, c2),
                COp::BinStore(o3, d),
            ) = (code[pc], code[pc + 2], code[pc + 4], code[pc + 6])
            {
                let pure = no_fault(o1) && no_fault(o2) && no_fault(o3);
                if let (true, Ok(a), Ok(b), Ok(d), Ok(c1), Ok(c2)) = (
                    pure,
                    u16::try_from(a),
                    u16::try_from(b),
                    u16::try_from(d),
                    i16::try_from(c1),
                    i16::try_from(c2),
                ) {
                    code[pc] = COp::FusedExpr {
                        a,
                        b,
                        d,
                        c1,
                        c2,
                        o1,
                        o2,
                        o3,
                    };
                    pc += 8;
                    continue;
                }
            }
        }
        // The decoder loop's piece dispatch: Load + Switch.
        if pc + 2 <= n && !leaders[pc + 1] {
            if let (COp::Load(m), COp::Switch(table)) = (code[pc], code[pc + 1]) {
                if let Ok(m) = u16::try_from(m) {
                    code[pc] = COp::LoadSwitch(m, table);
                    pc += 2;
                    continue;
                }
            }
        }
        // The switch-controlled loop back edge: Iinc + Load + Switch.
        if pc + 3 <= n && !leaders[pc + 2] {
            if let (COp::IincLoad(iinc_n, d, m), COp::Switch(table)) = (code[pc], code[pc + 2]) {
                if let (Ok(iinc_n), Ok(m), Ok(d)) =
                    (u16::try_from(iinc_n), u16::try_from(m), i16::try_from(d))
                {
                    code[pc] = COp::IincLoadSwitch {
                        n: iinc_n,
                        d,
                        m,
                        table,
                    };
                    pc += 3;
                    continue;
                }
            }
        }
        // An expression tail feeding a branch: Bin + If.
        if pc + 2 <= n && !leaders[pc + 1] {
            if let (COp::Bin(o), COp::If(c, t)) = (code[pc], code[pc + 1]) {
                code[pc] = COp::BinIf(o, c, t);
                pc += 2;
                continue;
            }
        }
        // The compute kernels' reduction body: Load2 + LoadBin +
        // ConstBin + BinStore, stack-free in one dispatch.
        if pc + 8 <= n && !leaders[pc + 2] && !leaders[pc + 4] && !leaders[pc + 6] {
            if let (
                COp::Load2(a, b),
                COp::LoadBin(c, o1),
                COp::ConstBin(v, o2),
                COp::BinStore(o3, d),
            ) = (code[pc], code[pc + 2], code[pc + 4], code[pc + 6])
            {
                let pure = no_fault(o1) && no_fault(o2) && no_fault(o3);
                if let (true, Ok(a), Ok(b), Ok(c), Ok(d), Ok(v)) = (
                    pure,
                    u16::try_from(a),
                    u16::try_from(b),
                    u16::try_from(c),
                    u16::try_from(d),
                    i32::try_from(v),
                ) {
                    code[pc] = COp::FusedExpr2 {
                        a,
                        b,
                        c,
                        d,
                        o1,
                        o2,
                        o3,
                        v,
                    };
                    pc += 8;
                    continue;
                }
            }
        }
        // A counting loop's increment feeding its compare-branch header:
        // Iinc + LoadConstIfCmp. The header may be a leader — its slot
        // keeps the 1:1 translation, so branches landing on it execute
        // the original op; only the fall-through edge takes the fused
        // path, which emits the identical branch event.
        if pc + 4 <= n {
            if let (COp::Iinc(iinc_n, d), COp::LoadConstIfCmp(m, cond, t, v)) =
                (code[pc], code[pc + 1])
            {
                if let (Ok(iinc_n), Ok(d)) = (u16::try_from(iinc_n), i16::try_from(d)) {
                    code[pc] = match i32::try_from(v) {
                        Ok(v) => COp::IincLoadConstIfCmp {
                            n: iinc_n,
                            d,
                            m,
                            cond,
                            t,
                            v,
                        },
                        Err(_) => {
                            let idx = u32::try_from(wides.len())
                                .expect("within the compile budget");
                            wides.push(WideCmp {
                                n: iinc_n,
                                d,
                                m,
                                cond,
                                t,
                                tt: 0,
                                v,
                            });
                            COp::IincLoadConstIfCmpW(idx)
                        }
                    };
                    pc += 4;
                    continue;
                }
            }
        }
        // Jump-threaded back edges: a `Goto`/`IincGoto` whose target is
        // a compare-branch loop header gets a copy of the header
        // inlined into the back-edge slot. The header itself stays live
        // at its own offset for every other predecessor, so pc
        // numbering, branch sites, and targets are untouched — the
        // back edge just stops costing a separate dispatch. The header
        // patterns are never fusion heads in any pass, so the target
        // slot always still holds its 1:1 translation whichever order
        // the walk visits the two.
        if let COp::Goto(t) = code[pc] {
            let ti = t as usize;
            if ti < n {
                if let COp::LoadConstIfCmp(m, cond, tt, v) = code[ti] {
                    if let Ok(t) = u16::try_from(t) {
                        code[pc] = match i32::try_from(v) {
                            Ok(v) => COp::GotoLoadConstIfCmp { m, cond, t, tt, v },
                            Err(_) => {
                                let idx = u32::try_from(wides.len())
                                    .expect("within the compile budget");
                                wides.push(WideCmp {
                                    n: 0,
                                    d: 0,
                                    m,
                                    cond,
                                    t,
                                    tt,
                                    v,
                                });
                                COp::GotoLoadConstIfCmpW(idx)
                            }
                        };
                        pc += 1;
                        continue;
                    }
                }
            }
        }
        if let COp::IincGoto(iinc_n, d, t) = code[pc] {
            let ti = t as usize;
            if ti < n {
                if let COp::Load2IfCmp(a, b, cond, tt) = code[ti] {
                    if let (Ok(iinc_n), Ok(d), Ok(t)) =
                        (u16::try_from(iinc_n), i16::try_from(d), u16::try_from(t))
                    {
                        code[pc] = COp::IincGotoLoad2IfCmp {
                            n: iinc_n,
                            d,
                            a,
                            b,
                            cond,
                            t,
                            tt,
                        };
                        pc += 2;
                        continue;
                    }
                }
            }
        }
        pc += w;
    }
}

/// Third pass: collapses a whole compute-kernel loop iteration — a
/// [`COp::FusedExpr2`] body immediately followed by its
/// [`COp::IincGotoLoad2IfCmp`] back edge — into one [`COp::Kernel`]
/// dispatch over a side-table operand block. Both constituent ops were
/// built by `fuse_compiled`, so the pattern is only ever present where
/// their own preconditions already held; the back-edge slot keeps its
/// threaded form for branches that land on it directly.
fn fuse_kernels(code: &mut [COp], kernels: &mut Vec<KernelLoop>, expr_ifs: &mut Vec<ExprIf>) {
    let n = code.len();
    for pc in 0..n.saturating_sub(8) {
        if let (
            COp::FusedExpr {
                a,
                b,
                d,
                c1,
                c2,
                o1,
                o2,
                o3,
            },
            COp::LoadIf(lif_n, cond, t),
        ) = (code[pc], code[pc + 8])
        {
            if let (Ok(lif_n), Ok(t)) = (u16::try_from(lif_n), u16::try_from(t)) {
                let idx = u32::try_from(expr_ifs.len()).expect("within the compile budget");
                expr_ifs.push(ExprIf {
                    a,
                    b,
                    d,
                    c1,
                    c2,
                    o1,
                    o2,
                    o3,
                    n: lif_n,
                    cond,
                    t,
                });
                code[pc] = COp::KernelExprIf(idx);
                continue;
            }
        }
        if let (
            COp::FusedExpr2 {
                a,
                b,
                c,
                d,
                o1,
                o2,
                o3,
                v,
            },
            COp::IincGotoLoad2IfCmp {
                n: iinc_n,
                d: dd,
                a: ca,
                b: cb,
                cond,
                t,
                tt,
            },
        ) = (code[pc], code[pc + 8])
        {
            let idx = u32::try_from(kernels.len()).expect("within the compile budget");
            kernels.push(KernelLoop {
                a,
                b,
                c,
                d,
                o1,
                o2,
                o3,
                v,
                n: iinc_n,
                dd,
                ca,
                cb,
                cond,
                t,
                tt,
            });
            code[pc] = COp::Kernel(idx);
        }
    }
}

/// Runs a compiled program. `TRACED` selects branch recording at
/// monomorphization time — the recognition configs are `branches_only`
/// (true) and `off` (false); block/snapshot recording is not supported
/// here (the [`Vm`](crate::interp::Vm) falls back to the predecoded
/// engine for those configs).
pub(crate) fn run_compiled<S: TraceSink, const TRACED: bool>(
    compiled: &Compiled,
    program: &Program,
    input: &[i64],
    budget: u64,
    sink: &mut S,
) -> Result<RunResult, VmError> {
    let code = compiled.code.as_slice();
    let mut statics = vec![0i64; program.statics.len()];
    let mut heap: Vec<Vec<i64>> = Vec::new();
    let mut output = Vec::new();
    let mut input_pos = 0usize;
    let mut executed: u64 = 0;

    let mut stack: Vec<i64> = Vec::with_capacity(64);
    let mut locals: Vec<i64> = Vec::with_capacity(64);
    let mut frames: Vec<CFrame> = Vec::new();

    let entry = program.entry.0;
    locals.resize(compiled.num_locals[entry as usize] as usize, 0);
    let mut func: u32 = entry;
    let mut base: usize = compiled.starts[entry as usize] as usize;
    let mut pc: usize = base;
    let mut locals_base: usize = 0;
    let mut stack_base: usize = 0;

    loop {
        let op = code[pc];
        executed += 1;
        if executed > budget {
            // The guard fetch *is* the fell-off-the-end fault, and —
            // like the predecoded engine's failed `code.get(pc)` — it
            // precedes the instruction charge, so a guard fetched
            // exactly at budget exhaustion still reports `FellOffEnd`.
            // Testing for it only on this cold path keeps the guard
            // comparison out of the dispatch loop entirely; the warm
            // path handles guards in their own match arm below.
            if let COp::EndGuard(f) = op {
                return Err(VmError::FellOffEnd { func: FuncId(f) });
            }
            return Err(VmError::BudgetExhausted { budget });
        }

        // Errors and trace sites report *function-relative* offsets —
        // one subtraction recovers them from the flat pc.
        macro_rules! pop {
            () => {
                pop!(pc - base)
            };
            ($err_pc:expr) => {{
                if stack.len() <= stack_base {
                    return Err(VmError::StackUnderflow {
                        func: FuncId(func),
                        pc: $err_pc,
                    });
                }
                stack.pop().expect("stack is above the frame base")
            }};
        }

        macro_rules! binop {
            ($op:expr, $a:expr, $b:expr, $err_pc:expr) => {{
                let a: i64 = $a;
                let b: i64 = $b;
                match $op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(VmError::DivisionByZero {
                                func: FuncId(func),
                                pc: $err_pc,
                            });
                        }
                        a.wrapping_div(b)
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            return Err(VmError::DivisionByZero {
                                func: FuncId(func),
                                pc: $err_pc,
                            });
                        }
                        a.wrapping_rem(b)
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                    BinOp::Shr => a.wrapping_shr(b as u32 & 63),
                    BinOp::UShr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
                }
            }};
        }

        // Same budget discipline as the predecoded engine: a fused op
        // charges the instructions the originals would have cost; the
        // earlier ops' work is unobservable once the budget error
        // returns, so one combined check is equivalent.
        macro_rules! charge {
            ($extra:expr) => {
                executed += $extra;
                if executed > budget {
                    return Err(VmError::BudgetExhausted { budget });
                }
            };
        }

        macro_rules! branch_event {
            ($site_rel:expr, $next_rel:expr) => {
                if TRACED {
                    sink.branch(
                        Site {
                            func: FuncId(func),
                            pc: $site_rel,
                        },
                        $next_rel,
                    );
                }
            };
        }

        match op {
            COp::Const(v) => {
                stack.push(v);
                pc += 1;
            }
            COp::Load(n) => {
                stack.push(locals[locals_base + n as usize]);
                pc += 1;
            }
            COp::Store(n) => {
                let v = pop!();
                locals[locals_base + n as usize] = v;
                pc += 1;
            }
            COp::Iinc(n, d) => {
                let slot = &mut locals[locals_base + n as usize];
                *slot = slot.wrapping_add(d as i64);
                pc += 1;
            }
            COp::Bin(o) => {
                let b = pop!();
                let a = pop!();
                let v = binop!(o, a, b, pc - base);
                stack.push(v);
                pc += 1;
            }
            COp::Neg => {
                let v = pop!();
                stack.push(v.wrapping_neg());
                pc += 1;
            }
            COp::Dup => {
                if stack.len() <= stack_base {
                    return Err(VmError::StackUnderflow {
                        func: FuncId(func),
                        pc: pc - base,
                    });
                }
                let v = *stack.last().expect("stack is above the frame base");
                stack.push(v);
                pc += 1;
            }
            COp::Pop => {
                pop!();
                pc += 1;
            }
            COp::Swap => {
                let b = pop!();
                let a = pop!();
                stack.push(b);
                stack.push(a);
                pc += 1;
            }
            COp::GetStatic(s) => {
                stack.push(statics[s as usize]);
                pc += 1;
            }
            COp::PutStatic(s) => {
                let v = pop!();
                statics[s as usize] = v;
                pc += 1;
            }
            COp::NewArray => {
                let len = pop!();
                if len < 0 {
                    return Err(VmError::NegativeArrayLength {
                        func: FuncId(func),
                        pc: pc - base,
                        len,
                    });
                }
                heap.push(vec![0i64; len as usize]);
                stack.push(heap.len() as i64 - 1);
                pc += 1;
            }
            COp::ALoad => {
                let idx = pop!();
                let handle = pop!();
                let v = *array(&heap, handle, func, pc - base)?
                    .get(idx as usize)
                    .ok_or(VmError::BadArrayAccess {
                        func: FuncId(func),
                        pc: pc - base,
                        value: idx,
                    })?;
                stack.push(v);
                pc += 1;
            }
            COp::AStore => {
                let v = pop!();
                let idx = pop!();
                let handle = pop!();
                let arr = array_mut(&mut heap, handle, func, pc - base)?;
                let slot = arr.get_mut(idx as usize).ok_or(VmError::BadArrayAccess {
                    func: FuncId(func),
                    pc: pc - base,
                    value: idx,
                })?;
                *slot = v;
                pc += 1;
            }
            COp::ArrayLen => {
                let handle = pop!();
                let len = array(&heap, handle, func, pc - base)?.len() as i64;
                stack.push(len);
                pc += 1;
            }
            COp::Goto(t) => pc = base + t as usize,
            COp::If(cond, t) => {
                let rel = pc - base;
                let v = pop!();
                let next = if cond.eval(v, 0) { t as usize } else { rel + 1 };
                branch_event!(rel, next);
                pc = base + next;
            }
            COp::IfCmp(cond, t) => {
                let rel = pc - base;
                let b = pop!();
                let a = pop!();
                let next = if cond.eval(a, b) { t as usize } else { rel + 1 };
                branch_event!(rel, next);
                pc = base + next;
            }
            COp::Switch(idx) => {
                let v = pop!();
                let t = compiled.switches[idx as usize].target_for(v);
                pc = base + t as usize;
            }
            COp::Call {
                entry,
                callee,
                argc,
                num_locals,
            } => {
                if frames.len() + 1 >= MAX_CALL_DEPTH {
                    return Err(VmError::CallStackOverflow);
                }
                let argc = argc as usize;
                if stack.len() - stack_base < argc {
                    return Err(VmError::StackUnderflow {
                        func: FuncId(func),
                        pc: pc - base,
                    });
                }
                let new_locals_base = locals.len();
                let split = stack.len() - argc;
                locals.extend_from_slice(&stack[split..]);
                locals.resize(new_locals_base + num_locals as usize, 0);
                stack.truncate(split);
                frames.push(CFrame {
                    ret_pc: pc + 1,
                    base,
                    func,
                    locals_base,
                    stack_base,
                });
                func = callee;
                base = entry as usize;
                pc = base;
                locals_base = new_locals_base;
                stack_base = split;
            }
            COp::BadCall(f) => {
                if frames.len() + 1 >= MAX_CALL_DEPTH {
                    return Err(VmError::CallStackOverflow);
                }
                // Unresolvable at predecode time: the reference slow
                // path, panicking exactly where the original would.
                let callee = program.function(FuncId(f));
                let argc = callee.num_params as usize;
                if stack.len() - stack_base < argc {
                    return Err(VmError::StackUnderflow {
                        func: FuncId(func),
                        pc: pc - base,
                    });
                }
                let mut callee_locals = vec![0i64; callee.num_locals as usize];
                let split = stack.len() - argc;
                for (i, v) in stack.drain(split..).enumerate() {
                    callee_locals[i] = v;
                }
                let new_locals_base = locals.len();
                locals.extend_from_slice(&callee_locals);
                frames.push(CFrame {
                    ret_pc: pc + 1,
                    base,
                    func,
                    locals_base,
                    stack_base,
                });
                func = f;
                base = compiled.starts[f as usize] as usize;
                pc = base;
                locals_base = new_locals_base;
                stack_base = split;
            }
            COp::Return(with_value) => {
                let ret = if with_value { Some(pop!()) } else { None };
                stack.truncate(stack_base);
                locals.truncate(locals_base);
                match frames.pop() {
                    Some(caller) => {
                        pc = caller.ret_pc;
                        base = caller.base;
                        func = caller.func;
                        locals_base = caller.locals_base;
                        stack_base = caller.stack_base;
                        if let Some(v) = ret {
                            stack.push(v);
                        }
                    }
                    None => {
                        return Ok(RunResult {
                            output,
                            instructions: executed,
                            statics,
                        });
                    }
                }
            }
            COp::Print => {
                let v = pop!();
                output.push(v);
                pc += 1;
            }
            COp::ReadInput => {
                let v = input.get(input_pos).copied().unwrap_or(0);
                input_pos += 1;
                stack.push(v);
                pc += 1;
            }
            COp::Nop => pc += 1,
            COp::EndGuard(f) => return Err(VmError::FellOffEnd { func: FuncId(f) }),

            COp::Load2(a, b) => {
                charge!(1);
                stack.push(locals[locals_base + a as usize]);
                stack.push(locals[locals_base + b as usize]);
                pc += 2;
            }
            COp::LoadConst(n, v) => {
                charge!(1);
                stack.push(locals[locals_base + n as usize]);
                stack.push(v);
                pc += 2;
            }
            COp::StoreLoad(a, b) => {
                charge!(1);
                let v = pop!();
                locals[locals_base + a as usize] = v;
                stack.push(locals[locals_base + b as usize]);
                pc += 2;
            }
            COp::StoreGoto(n, t) => {
                charge!(1);
                let v = pop!();
                locals[locals_base + n as usize] = v;
                pc = base + t as usize;
            }
            COp::LoadIf(n, cond, t) => {
                charge!(1);
                let rel = pc - base;
                let v = locals[locals_base + n as usize];
                let next = if cond.eval(v, 0) { t as usize } else { rel + 2 };
                branch_event!(rel + 1, next);
                pc = base + next;
            }
            COp::LoadIfCmp(n, cond, t) => {
                charge!(1);
                let rel = pc - base;
                // The load pushed the *second* operand; the first comes
                // from beneath it on the stack.
                let b = locals[locals_base + n as usize];
                let a = pop!(rel + 1);
                let next = if cond.eval(a, b) { t as usize } else { rel + 2 };
                branch_event!(rel + 1, next);
                pc = base + next;
            }
            COp::ConstIfCmp(v, cond, t) => {
                charge!(1);
                let rel = pc - base;
                let a = pop!(rel + 1);
                let next = if cond.eval(a, v) { t as usize } else { rel + 2 };
                branch_event!(rel + 1, next);
                pc = base + next;
            }
            COp::IincGoto(n, d, t) => {
                charge!(1);
                let slot = &mut locals[locals_base + n as usize];
                *slot = slot.wrapping_add(d as i64);
                pc = base + t as usize;
            }
            COp::Load2IfCmp(a, b, cond, t) => {
                charge!(2);
                let rel = pc - base;
                let x = locals[locals_base + a as usize];
                let y = locals[locals_base + b as usize];
                let next = if cond.eval(x, y) { t as usize } else { rel + 3 };
                branch_event!(rel + 2, next);
                pc = base + next;
            }
            COp::LoadConstIfCmp(n, cond, t, v) => {
                charge!(2);
                let rel = pc - base;
                let x = locals[locals_base + n as usize];
                let next = if cond.eval(x, v) { t as usize } else { rel + 3 };
                branch_event!(rel + 2, next);
                pc = base + next;
            }
            COp::ConstBin(v, o) => {
                charge!(1);
                let rel = pc - base;
                let a = pop!(rel + 1);
                let r = binop!(o, a, v, rel + 1);
                stack.push(r);
                pc += 2;
            }
            COp::LoadBin(n, o) => {
                charge!(1);
                let rel = pc - base;
                let b = locals[locals_base + n as usize];
                let a = pop!(rel + 1);
                let r = binop!(o, a, b, rel + 1);
                stack.push(r);
                pc += 2;
            }
            COp::BinConst(o, v) => {
                charge!(1);
                let b = pop!();
                let a = pop!();
                let r = binop!(o, a, b, pc - base);
                stack.push(r);
                stack.push(v);
                pc += 2;
            }
            COp::Bin2(o1, o2) => {
                charge!(1);
                let rel = pc - base;
                let b = pop!();
                let a = pop!();
                let r1 = binop!(o1, a, b, rel);
                let c = pop!(rel + 1);
                let r2 = binop!(o2, c, r1, rel + 1);
                stack.push(r2);
                pc += 2;
            }
            COp::BinStore(o, n) => {
                charge!(1);
                let b = pop!();
                let a = pop!();
                let r = binop!(o, a, b, pc - base);
                locals[locals_base + n as usize] = r;
                pc += 2;
            }
            COp::StoreIinc(n, m, d) => {
                charge!(1);
                let v = pop!();
                locals[locals_base + n as usize] = v;
                let slot = &mut locals[locals_base + m as usize];
                *slot = slot.wrapping_add(d as i64);
                pc += 2;
            }
            COp::IincLoad(n, d, m) => {
                charge!(1);
                let slot = &mut locals[locals_base + n as usize];
                *slot = slot.wrapping_add(d as i64);
                stack.push(locals[locals_base + m as usize]);
                pc += 2;
            }
            COp::Load2Bin(a, b, o) => {
                charge!(2);
                let x = locals[locals_base + a as usize];
                let y = locals[locals_base + b as usize];
                let r = binop!(o, x, y, pc - base + 2);
                stack.push(r);
                pc += 3;
            }
            COp::LoadConstBin(n, o, v) => {
                charge!(2);
                let x = locals[locals_base + n as usize];
                let r = binop!(o, x, v, pc - base + 2);
                stack.push(r);
                pc += 3;
            }
            COp::Load2BinStore(a, b, o, d) => {
                charge!(3);
                let x = locals[locals_base + a as usize];
                let y = locals[locals_base + b as usize];
                let r = binop!(o, x, y, pc - base + 2);
                locals[locals_base + d as usize] = r;
                pc += 4;
            }
            COp::LoadConstBinStore(n, o, d, v) => {
                charge!(3);
                let x = locals[locals_base + n as usize];
                let r = binop!(o, x, v, pc - base + 2);
                locals[locals_base + d as usize] = r;
                pc += 4;
            }

            COp::FusedExpr {
                a,
                b,
                d,
                c1,
                c2,
                o1,
                o2,
                o3,
            } => {
                // Eight original ops; pure by construction (no Div/Rem,
                // all operands produced within the group).
                charge!(7);
                let rel = pc - base;
                let x = locals[locals_base + a as usize];
                let y = locals[locals_base + b as usize];
                let r1 = binop!(o1, y, c1 as i64, rel + 3);
                let r2 = binop!(o2, x, r1, rel + 4);
                let r3 = binop!(o3, r2, c2 as i64, rel + 6);
                locals[locals_base + d as usize] = r3;
                pc += 8;
            }
            COp::BinIf(o, cond, t) => {
                let rel = pc - base;
                let b = pop!();
                let a = pop!();
                // Charge the `If` only after the `Bin` executed: a
                // division fault exactly at budget exhaustion must
                // report the fault, as the unfused sequence would.
                let r = binop!(o, a, b, rel);
                charge!(1);
                let next = if cond.eval(r, 0) { t as usize } else { rel + 2 };
                branch_event!(rel + 1, next);
                pc = base + next;
            }
            COp::IincLoadSwitch { n, d, m, table } => {
                charge!(2);
                let slot = &mut locals[locals_base + n as usize];
                *slot = slot.wrapping_add(d as i64);
                let v = locals[locals_base + m as usize];
                let t = compiled.switches[table as usize].target_for(v);
                pc = base + t as usize;
            }
            COp::FusedExpr2 {
                a,
                b,
                c,
                d,
                o1,
                o2,
                o3,
                v,
            } => {
                // Eight original ops; pure by construction (no
                // Div/Rem, all intermediates produced in-group).
                charge!(7);
                let rel = pc - base;
                let x = locals[locals_base + a as usize];
                let y = locals[locals_base + b as usize];
                let z = locals[locals_base + c as usize];
                let r1 = binop!(o1, y, z, rel + 3);
                let r2 = binop!(o2, r1, v as i64, rel + 5);
                let r3 = binop!(o3, x, r2, rel + 6);
                locals[locals_base + d as usize] = r3;
                pc += 8;
            }
            COp::IincLoadConstIfCmp {
                n,
                d,
                m,
                cond,
                t,
                v,
            } => {
                charge!(3);
                let rel = pc - base;
                let slot = &mut locals[locals_base + n as usize];
                *slot = slot.wrapping_add(d as i64);
                let x = locals[locals_base + m as usize];
                let next = if cond.eval(x, v as i64) {
                    t as usize
                } else {
                    rel + 4
                };
                branch_event!(rel + 3, next);
                pc = base + next;
            }
            COp::GotoLoadConstIfCmp { m, cond, t, tt, v } => {
                charge!(3);
                let hdr = t as usize;
                let x = locals[locals_base + m as usize];
                let next = if cond.eval(x, v as i64) {
                    tt as usize
                } else {
                    hdr + 3
                };
                branch_event!(hdr + 2, next);
                pc = base + next;
            }
            COp::IincGotoLoad2IfCmp {
                n,
                d,
                a,
                b,
                cond,
                t,
                tt,
            } => {
                charge!(4);
                let hdr = t as usize;
                let slot = &mut locals[locals_base + n as usize];
                *slot = slot.wrapping_add(d as i64);
                let x = locals[locals_base + a as usize];
                let y = locals[locals_base + b as usize];
                let next = if cond.eval(x, y) {
                    tt as usize
                } else {
                    hdr + 3
                };
                branch_event!(hdr + 2, next);
                pc = base + next;
            }
            COp::LoadSwitch(m, table) => {
                charge!(1);
                let v = locals[locals_base + m as usize];
                let t = compiled.switches[table as usize].target_for(v);
                pc = base + t as usize;
            }
            COp::IincLoadConstIfCmpW(idx) => {
                charge!(3);
                let rel = pc - base;
                let w = &compiled.wides[idx as usize];
                let slot = &mut locals[locals_base + w.n as usize];
                *slot = slot.wrapping_add(w.d as i64);
                let x = locals[locals_base + w.m as usize];
                let next = if w.cond.eval(x, w.v) {
                    w.t as usize
                } else {
                    rel + 4
                };
                branch_event!(rel + 3, next);
                pc = base + next;
            }
            COp::GotoLoadConstIfCmpW(idx) => {
                charge!(3);
                let w = &compiled.wides[idx as usize];
                let hdr = w.t as usize;
                let x = locals[locals_base + w.m as usize];
                let next = if w.cond.eval(x, w.v) {
                    w.tt as usize
                } else {
                    hdr + 3
                };
                branch_event!(hdr + 2, next);
                pc = base + next;
            }
            COp::KernelExprIf(idx) => {
                // Ten original ops: the pure bit-extract body plus the
                // `Load` + `If` exit test; the branch event at the end
                // is the only observable effect.
                charge!(9);
                let rel = pc - base;
                let k = &compiled.expr_ifs[idx as usize];
                let x = locals[locals_base + k.a as usize];
                let y = locals[locals_base + k.b as usize];
                let r1 = binop!(k.o1, y, k.c1 as i64, rel + 3);
                let r2 = binop!(k.o2, x, r1, rel + 4);
                let r3 = binop!(k.o3, r2, k.c2 as i64, rel + 6);
                locals[locals_base + k.d as usize] = r3;
                let v = locals[locals_base + k.n as usize];
                let next = if k.cond.eval(v, 0) {
                    k.t as usize
                } else {
                    rel + 10
                };
                branch_event!(rel + 9, next);
                pc = base + next;
            }
            COp::Kernel(idx) => {
                // Thirteen original ops: the pure reduction body plus
                // the threaded back edge; one combined charge is
                // equivalent because nothing observable happens before
                // the single branch event at the end.
                charge!(12);
                let rel = pc - base;
                let k = &compiled.kernels[idx as usize];
                let x = locals[locals_base + k.a as usize];
                let y = locals[locals_base + k.b as usize];
                let z = locals[locals_base + k.c as usize];
                let r1 = binop!(k.o1, y, z, rel + 3);
                let r2 = binop!(k.o2, r1, k.v as i64, rel + 5);
                let r3 = binop!(k.o3, x, r2, rel + 6);
                locals[locals_base + k.d as usize] = r3;
                let slot = &mut locals[locals_base + k.n as usize];
                *slot = slot.wrapping_add(k.dd as i64);
                let cx = locals[locals_base + k.ca as usize];
                let cy = locals[locals_base + k.cb as usize];
                let hdr = k.t as usize;
                let next = if k.cond.eval(cx, cy) {
                    k.tt as usize
                } else {
                    hdr + 3
                };
                branch_event!(hdr + 2, next);
                pc = base + next;
            }
        }
    }
}

fn array(heap: &[Vec<i64>], handle: i64, func: u32, pc: usize) -> Result<&Vec<i64>, VmError> {
    usize::try_from(handle)
        .ok()
        .and_then(|h| heap.get(h))
        .ok_or(VmError::BadArrayAccess {
            func: FuncId(func),
            pc,
            value: handle,
        })
}

fn array_mut(
    heap: &mut [Vec<i64>],
    handle: i64,
    func: u32,
    pc: usize,
) -> Result<&mut Vec<i64>, VmError> {
    usize::try_from(handle)
        .ok()
        .and_then(|h| heap.get_mut(h))
        .ok_or(VmError::BadArrayAccess {
            func: FuncId(func),
            pc,
            value: handle,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_ops_stay_16_bytes() {
        // Same discipline as the predecoded form: the flattened array's
        // cache traffic is the dispatch loop's memory bound.
        assert!(std::mem::size_of::<COp>() <= 16);
    }

    #[test]
    fn oversized_programs_decline_to_compile() {
        use crate::builder::{FunctionBuilder, ProgramBuilder};
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 0);
        for _ in 0..64 {
            f.raw(crate::insn::Insn::Nop);
        }
        f.ret_void();
        let main = pb.add_function(f.finish().unwrap());
        let p = pb.finish(main).unwrap();
        let pre = Predecoded::build(&p);
        assert!(Compiled::build(&pre, 16).is_none(), "past the budget");
        assert!(Compiled::build(&pre, 1 << 10).is_some(), "within it");
    }

    #[test]
    fn fused_expr_matches_the_embedder_bit_extract_shape() {
        use crate::builder::{FunctionBuilder, ProgramBuilder};
        // t = (x >> (i - 1)) & 1 — the loop_snippet body shape. The
        // body head is a branch target (as in the embedder's loop), so
        // the preceding store can't fuse across into the first load.
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 3); // x, i, t
        f.push(0b1010).store(0).push(2).store(1);
        let body = f.new_label();
        f.goto(body);
        f.bind(body);
        f.load(0).load(1);
        f.push(1).sub();
        f.bin(BinOp::UShr);
        f.push(1).bin(BinOp::And);
        f.store(2);
        f.load(2).print().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        let p = pb.finish(main).unwrap();
        let pre = Predecoded::build(&p);
        let compiled = Compiled::build(&pre, DEFAULT_COMPILE_BUDGET).unwrap();
        assert!(
            compiled
                .code
                .iter()
                .any(|op| matches!(op, COp::FusedExpr { .. })),
            "the bit-extract body fused: {:?}",
            compiled.code
        );
        let mut sink = crate::trace::Trace::new();
        let r = run_compiled::<_, false>(&compiled, &p, &[], 1000, &mut sink).unwrap();
        assert_eq!(r.output, vec![(0b1010 >> 1) & 1]);
    }
}
