//! Decode-once program representation for the interpreter hot loop.
//!
//! Recognition re-traces every suspect copy (Section 4.3: recognition
//! cost is dominated by running the program), so per-dynamic-step work in
//! [`crate::interp::Vm`] is the throughput limit of the whole recognizer.
//! [`Predecoded`] flattens a [`Program`] into a dense internal form once,
//! so the dispatch loop never touches the source enum again:
//!
//! * ops are a fixed 16 bytes (switch case tables are stored out of
//!   line), halving the cache traffic of the 40-byte [`Insn`] vector;
//! * call arity and callee frame size are resolved into the call site,
//!   removing the per-call function-table lookup;
//! * operand indices (locals, statics, callees) and branch targets are
//!   validated while building — out-of-range branch targets are clamped
//!   to the function length (any such target means [`VmError::FellOffEnd`]
//!   at the next fetch, exactly as the reference interpreter behaves),
//!   and a call site that cannot be resolved falls back to [`Op::BadCall`]
//!   so the slow path reproduces reference semantics faithfully;
//! * block-leader flags are precomputed per pc, so the embedding-phase
//!   block/snapshot recording needs no CFG lookup either.
//!
//! [`VmError::FellOffEnd`]: crate::VmError::FellOffEnd

use crate::insn::{BinOp, Cond, Insn};
use crate::program::{Function, Program};

/// A dense, pre-validated instruction. Branch targets are absolute
/// instruction indices (already clamped into `0..=code.len()`), and the
/// call variant carries the callee's resolved arity and frame size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    Const(i64),
    Load(u32),
    Store(u32),
    Iinc(u32, i32),
    Bin(BinOp),
    Neg,
    Dup,
    Pop,
    Swap,
    GetStatic(u32),
    PutStatic(u32),
    NewArray,
    ALoad,
    AStore,
    ArrayLen,
    Goto(u32),
    If(Cond, u32),
    IfCmp(Cond, u32),
    /// Index into [`PreFunction::switches`].
    Switch(u32),
    Call {
        callee: u32,
        argc: u32,
        num_locals: u32,
    },
    /// A call whose callee could not be resolved while predecoding (bad
    /// function id, or arity exceeding the callee frame). Executed on the
    /// slow path so hand-built broken programs keep reference behavior.
    BadCall(u32),
    Return(bool),
    Print,
    ReadInput,
    Nop,

    // ---- fused superinstructions (peephole, see `fuse_pairs`) ----
    // Each replaces the op at its own pc and consumes the following
    // one (or two); the consumed slots keep their original ops but
    // become unreachable, so pc numbering — branch targets, trace
    // sites, leader flags — is untouched. A fused op reports the
    // consumed branch's site at its *original* pc.
    /// `Load a; Load b`.
    Load2(u32, u32),
    /// `Load n; Const v`.
    LoadConst(u32, i64),
    /// `Store a; Load b` (an assignment whose value is used next).
    StoreLoad(u32, u32),
    /// `Store n; Goto t` (a loop-body tail).
    StoreGoto(u32, u32),
    /// `Load n; If(c, t)`.
    LoadIf(u32, Cond, u32),
    /// `Load n; IfCmp(c, t)` — the loaded value is the *second* operand.
    LoadIfCmp(u32, Cond, u32),
    /// `Const v; IfCmp(c, t)` — the constant is the *second* operand.
    ConstIfCmp(i64, Cond, u32),
    /// `Iinc(n, d); Goto t` — a counted loop's back edge.
    IincGoto(u32, i32, u32),
    /// `Load a; Load b; IfCmp(c, t)` — the canonical `i < limit` loop
    /// head, compressed to one stack-free dispatch.
    Load2IfCmp(u16, u16, Cond, u16),
    /// `Load n; Const v; IfCmp(c, t)` — `i < 10`, likewise stack-free.
    LoadConstIfCmp(u16, Cond, u16, i64),
    /// `Const v; Bin op` — the constant is the *right* operand.
    ConstBin(i64, BinOp),
    /// `Load n; Bin op` — the loaded value is the *right* operand.
    LoadBin(u32, BinOp),
    /// `Bin op; Const v`.
    BinConst(BinOp, i64),
    /// `Bin op1; Bin op2` — `op1`'s result is `op2`'s *right* operand.
    Bin2(BinOp, BinOp),
    /// `Bin op; Store n`.
    BinStore(BinOp, u32),
    /// `Store n; Iinc(m, d)`.
    StoreIinc(u32, u32, i32),
    /// `Iinc(n, d); Load m`.
    IincLoad(u32, i32, u32),
    /// `Load a; Load b; Bin op` — push `locals[a] op locals[b]`.
    Load2Bin(u16, u16, BinOp),
    /// `Load n; Const v; Bin op` — push `locals[n] op v`.
    LoadConstBin(u16, BinOp, i64),
    /// `Load a; Load b; Bin op; Store dst` — the whole statement
    /// `dst = a op b` in one stack-free dispatch.
    Load2BinStore(u16, u16, BinOp, u16),
    /// `Load src; Const v; Bin op; Store dst` — `dst = src op v`,
    /// likewise stack-free.
    LoadConstBinStore(u16, BinOp, u16, i64),
}

/// Number of original instruction slots a dense op occupies: 1 for a
/// plain op, 2/3/4 for fused superinstructions. Stepping a function's
/// code by these widths visits exactly the reachable op heads (consumed
/// slots are never leaders, so no control flow lands between a head and
/// the next) — the compile tier's translator walks heads this way.
pub(crate) fn op_width(op: Op) -> usize {
    match op {
        Op::Load2(..)
        | Op::LoadConst(..)
        | Op::StoreLoad(..)
        | Op::StoreGoto(..)
        | Op::LoadIf(..)
        | Op::LoadIfCmp(..)
        | Op::ConstIfCmp(..)
        | Op::IincGoto(..)
        | Op::ConstBin(..)
        | Op::LoadBin(..)
        | Op::BinConst(..)
        | Op::Bin2(..)
        | Op::BinStore(..)
        | Op::StoreIinc(..)
        | Op::IincLoad(..) => 2,
        Op::Load2IfCmp(..) | Op::LoadConstIfCmp(..) | Op::Load2Bin(..) | Op::LoadConstBin(..) => 3,
        Op::Load2BinStore(..) | Op::LoadConstBinStore(..) => 4,
        _ => 1,
    }
}

/// One switch's out-of-line dispatch table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SwitchTable {
    pub(crate) cases: Vec<(i64, u32)>,
    pub(crate) default: u32,
}

/// One function in dense form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PreFunction {
    pub(crate) num_locals: u32,
    pub(crate) code: Vec<Op>,
    /// `leaders[pc]` — whether `pc` starts a basic block (same defini-
    /// tion as [`crate::cfg::Cfg::is_leader`], computed without building
    /// blocks or successor lists).
    pub(crate) leaders: Vec<bool>,
    pub(crate) switches: Vec<SwitchTable>,
}

/// A whole program in dense form, built once per [`Program`] and
/// dispatched over by [`crate::interp::Vm::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predecoded {
    pub(crate) funcs: Vec<PreFunction>,
}

impl Predecoded {
    /// Flattens every function of `program`. Linear in static code size.
    pub fn build(program: &Program) -> Predecoded {
        Predecoded {
            funcs: program
                .functions
                .iter()
                .map(|f| predecode_function(f, program))
                .collect(),
        }
    }
}

fn predecode_function(func: &Function, program: &Program) -> PreFunction {
    let n = func.code.len();
    // Any target >= n faults with FellOffEnd at the next fetch; clamping
    // to n keeps that behavior while letting targets live in a u32.
    let clamp = |t: usize| -> u32 { t.min(n) as u32 };

    let mut leaders = vec![false; n];
    if n > 0 {
        leaders[0] = true;
    }
    for (pc, insn) in func.code.iter().enumerate() {
        for t in insn.targets() {
            if t < n {
                leaders[t] = true;
            }
        }
        let ends_block = insn.is_branch() || matches!(insn, Insn::Return(_));
        if ends_block && pc + 1 < n {
            leaders[pc + 1] = true;
        }
    }

    let mut switches = Vec::new();
    let mut code: Vec<Op> = func
        .code
        .iter()
        .map(|insn| match insn {
            Insn::Const(v) => Op::Const(*v),
            Insn::Load(i) => Op::Load(u32::from(*i)),
            Insn::Store(i) => Op::Store(u32::from(*i)),
            Insn::Iinc(i, d) => Op::Iinc(u32::from(*i), *d),
            Insn::Bin(op) => Op::Bin(*op),
            Insn::Neg => Op::Neg,
            Insn::Dup => Op::Dup,
            Insn::Pop => Op::Pop,
            Insn::Swap => Op::Swap,
            Insn::GetStatic(s) => Op::GetStatic(*s),
            Insn::PutStatic(s) => Op::PutStatic(*s),
            Insn::NewArray => Op::NewArray,
            Insn::ALoad => Op::ALoad,
            Insn::AStore => Op::AStore,
            Insn::ArrayLen => Op::ArrayLen,
            Insn::Goto(t) => Op::Goto(clamp(*t)),
            Insn::If(c, t) => Op::If(*c, clamp(*t)),
            Insn::IfCmp(c, t) => Op::IfCmp(*c, clamp(*t)),
            Insn::Switch { cases, default } => {
                switches.push(SwitchTable {
                    cases: cases.iter().map(|&(k, t)| (k, clamp(t))).collect(),
                    default: clamp(*default),
                });
                Op::Switch(switches.len() as u32 - 1)
            }
            Insn::Call(f) => match program.functions.get(*f as usize) {
                Some(callee) if callee.num_params <= callee.num_locals => Op::Call {
                    callee: *f,
                    argc: u32::from(callee.num_params),
                    num_locals: u32::from(callee.num_locals),
                },
                _ => Op::BadCall(*f),
            },
            Insn::Return(v) => Op::Return(*v),
            Insn::Print => Op::Print,
            Insn::ReadInput => Op::ReadInput,
            Insn::Nop => Op::Nop,
        })
        .collect();
    fuse_pairs(&mut code, &leaders);

    PreFunction {
        num_locals: u32::from(func.num_locals),
        code,
        leaders,
        switches,
    }
}

/// Peephole superinstruction pass: fuses hot adjacent op sequences into
/// one dispatch when no control flow can land between them (the
/// consumed slots are not block leaders, so no branch, switch, or
/// call-return resume targets them — returns resume at `call_pc + 1`,
/// and `Call` is never a fusion head). The consumed slots keep their
/// original ops but become unreachable; pc numbering is untouched, so
/// branch targets, leader flags, and trace sites stay valid. The
/// interpreter charges a fused op the same instruction count the
/// originals would have cost, keeping budget semantics identical.
fn fuse_pairs(code: &mut [Op], leaders: &[bool]) {
    let mut pc = 0;
    while pc + 1 < code.len() {
        if leaders[pc + 1] {
            pc += 1;
            continue;
        }
        // Longest first. Quads: whole `dst = a op b` statements.
        // Operands of the multi-word forms must fit u16 to keep every
        // fused op at two words; longer functions simply fall back to
        // the shorter forms.
        if pc + 3 < code.len() && !leaders[pc + 2] && !leaders[pc + 3] {
            let fused = match (code[pc], code[pc + 1], code[pc + 2], code[pc + 3]) {
                (Op::Load(a), Op::Load(b), Op::Bin(op), Op::Store(d)) => {
                    match (u16::try_from(a), u16::try_from(b), u16::try_from(d)) {
                        (Ok(a), Ok(b), Ok(d)) => Some(Op::Load2BinStore(a, b, op, d)),
                        _ => None,
                    }
                }
                (Op::Load(n), Op::Const(v), Op::Bin(op), Op::Store(d)) => {
                    match (u16::try_from(n), u16::try_from(d)) {
                        (Ok(n), Ok(d)) => Some(Op::LoadConstBinStore(n, op, d, v)),
                        _ => None,
                    }
                }
                _ => None,
            };
            if let Some(op) = fused {
                code[pc] = op;
                pc += 4;
                continue;
            }
        }
        // Triples: loop heads and two-operand expressions.
        if pc + 2 < code.len() && !leaders[pc + 2] {
            let fused = match (code[pc], code[pc + 1], code[pc + 2]) {
                (Op::Load(a), Op::Load(b), Op::IfCmp(c, t)) => {
                    match (u16::try_from(a), u16::try_from(b), u16::try_from(t)) {
                        (Ok(a), Ok(b), Ok(t)) => Some(Op::Load2IfCmp(a, b, c, t)),
                        _ => None,
                    }
                }
                (Op::Load(n), Op::Const(v), Op::IfCmp(c, t)) => {
                    match (u16::try_from(n), u16::try_from(t)) {
                        (Ok(n), Ok(t)) => Some(Op::LoadConstIfCmp(n, c, t, v)),
                        _ => None,
                    }
                }
                (Op::Load(a), Op::Load(b), Op::Bin(op)) => {
                    match (u16::try_from(a), u16::try_from(b)) {
                        (Ok(a), Ok(b)) => Some(Op::Load2Bin(a, b, op)),
                        _ => None,
                    }
                }
                (Op::Load(n), Op::Const(v), Op::Bin(op)) => match u16::try_from(n) {
                    Ok(n) => Some(Op::LoadConstBin(n, op, v)),
                    _ => None,
                },
                _ => None,
            };
            if let Some(op) = fused {
                code[pc] = op;
                pc += 3;
                continue;
            }
        }
        let fused = match (code[pc], code[pc + 1]) {
            (Op::Load(a), Op::Load(b)) => Some(Op::Load2(a, b)),
            (Op::Load(n), Op::Const(v)) => Some(Op::LoadConst(n, v)),
            (Op::Store(a), Op::Load(b)) => Some(Op::StoreLoad(a, b)),
            (Op::Store(n), Op::Goto(t)) => Some(Op::StoreGoto(n, t)),
            (Op::Load(n), Op::If(c, t)) => Some(Op::LoadIf(n, c, t)),
            (Op::Load(n), Op::IfCmp(c, t)) => Some(Op::LoadIfCmp(n, c, t)),
            (Op::Const(v), Op::IfCmp(c, t)) => Some(Op::ConstIfCmp(v, c, t)),
            (Op::Iinc(n, d), Op::Goto(t)) => Some(Op::IincGoto(n, d, t)),
            (Op::Const(v), Op::Bin(op)) => Some(Op::ConstBin(v, op)),
            (Op::Load(n), Op::Bin(op)) => Some(Op::LoadBin(n, op)),
            (Op::Bin(op), Op::Const(v)) => Some(Op::BinConst(op, v)),
            (Op::Bin(op1), Op::Bin(op2)) => Some(Op::Bin2(op1, op2)),
            (Op::Bin(op), Op::Store(n)) => Some(Op::BinStore(op, n)),
            (Op::Store(n), Op::Iinc(m, d)) => Some(Op::StoreIinc(n, m, d)),
            (Op::Iinc(n, d), Op::Load(m)) => Some(Op::IincLoad(n, d, m)),
            _ => None,
        };
        match fused {
            Some(op) => {
                code[pc] = op;
                pc += 2;
            }
            None => pc += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ProgramBuilder};
    use crate::cfg::Cfg;

    #[test]
    fn dense_ops_stay_16_bytes() {
        // The whole point of the flattening: Insn is heap-headed and
        // ~40 bytes; the dense form must stay at two words.
        assert!(std::mem::size_of::<Op>() <= 16);
    }

    #[test]
    fn leaders_match_cfg_is_leader() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 1);
        let head = f.new_label();
        let out = f.new_label();
        f.bind(head);
        f.load(0).push(10).if_cmp(crate::insn::Cond::Ge, out);
        f.load(0).print().iinc(0, 1).goto(head);
        f.bind(out);
        f.ret_void();
        let main = pb.add_function(f.finish().unwrap());
        let p = pb.finish(main).unwrap();
        let pre = Predecoded::build(&p);
        let cfg = Cfg::build(p.function(p.entry));
        assert_eq!(pre.funcs[p.entry.0 as usize].leaders, cfg.is_leader);
    }

    #[test]
    fn calls_resolve_arity_and_bad_ids_fall_back() {
        let mut pb = ProgramBuilder::new();
        let mut callee = FunctionBuilder::new("sub", 2, 1);
        callee.load(0).load(1).sub().ret();
        let callee_id = pb.add_function(callee.finish().unwrap());
        let mut main = FunctionBuilder::new("main", 0, 0);
        main.push(1).push(2).call(callee_id).print().ret_void();
        let main_id = pb.add_function(main.finish().unwrap());
        let mut p = pb.finish(main_id).unwrap();
        let pre = Predecoded::build(&p);
        let main_code = &pre.funcs[main_id.0 as usize].code;
        assert!(main_code.contains(&Op::Call {
            callee: callee_id.0,
            argc: 2,
            num_locals: 3,
        }));

        // Point the call at a nonexistent function: predecode must keep
        // it executable (as the panicking slow path), not reject it.
        p.function_mut(main_id).code[2] = Insn::Call(99);
        let pre = Predecoded::build(&p);
        assert!(pre.funcs[main_id.0 as usize]
            .code
            .contains(&Op::BadCall(99)));
    }

    #[test]
    fn out_of_range_targets_clamp_to_function_length() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 0);
        f.ret_void();
        let id = pb.add_function(f.finish().unwrap());
        let mut p = pb.finish_unverified(id);
        p.function_mut(id).code.insert(0, Insn::Goto(usize::MAX));
        let pre = Predecoded::build(&p);
        // code.len() == 2, so the clamped target (2) still faults as
        // FellOffEnd on fetch, like the unclamped original.
        assert_eq!(pre.funcs[0].code[0], Op::Goto(2));
    }

    #[test]
    fn switch_tables_move_out_of_line() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 0);
        let a = f.new_label();
        let d = f.new_label();
        f.push(1);
        f.switch(&[(1, a), (2, a)], d);
        f.bind(a);
        f.ret_void();
        f.bind(d);
        f.ret_void();
        let id = pb.add_function(f.finish().unwrap());
        let p = pb.finish(id).unwrap();
        let pre = Predecoded::build(&p);
        let pf = &pre.funcs[0];
        assert_eq!(pf.code[1], Op::Switch(0));
        assert_eq!(pf.switches.len(), 1);
        assert_eq!(pf.switches[0].cases, vec![(1, 2), (2, 2)]);
        assert_eq!(pf.switches[0].default, 3);
    }
}
