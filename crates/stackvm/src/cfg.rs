//! Control-flow graph construction over a [`Function`].
//!
//! Basic-block identity is what the paper's trace records (Figure 2) and
//! what the bit-string decoder keys on: a conditional branch occurrence is
//! "followed by" the block that executes next. The interpreter consults a
//! [`Cfg`] to know which program counters start blocks.

use crate::insn::Insn;
use crate::program::Function;

/// A basic block: the half-open instruction range `start..end`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
    /// Successor blocks (indices into [`Cfg::blocks`]).
    pub succs: Vec<usize>,
}

/// The control-flow graph of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// Blocks in ascending `start` order.
    pub blocks: Vec<Block>,
    /// `block_of[pc]` = index of the block containing `pc`.
    pub block_of: Vec<usize>,
    /// `is_leader[pc]` = whether `pc` starts a block.
    pub is_leader: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG of a function. An empty function yields an empty
    /// graph.
    pub fn build(func: &Function) -> Cfg {
        let n = func.code.len();
        if n == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
                is_leader: Vec::new(),
            };
        }
        let mut is_leader = vec![false; n];
        is_leader[0] = true;
        for (pc, insn) in func.code.iter().enumerate() {
            for t in insn.targets() {
                if t < n {
                    is_leader[t] = true;
                }
            }
            let ends_block = insn.is_branch() || matches!(insn, Insn::Return(_));
            if ends_block && pc + 1 < n {
                is_leader[pc + 1] = true;
            }
        }
        let starts: Vec<usize> = (0..n).filter(|&pc| is_leader[pc]).collect();
        let mut block_of = vec![0usize; n];
        let mut blocks = Vec::with_capacity(starts.len());
        for (b, &start) in starts.iter().enumerate() {
            let end = starts.get(b + 1).copied().unwrap_or(n);
            block_of[start..end].fill(b);
            blocks.push(Block {
                start,
                end,
                succs: Vec::new(),
            });
        }
        // Successors from each block's final instruction.
        for block in &mut blocks {
            let last_pc = block.end - 1;
            let insn = &func.code[last_pc];
            let mut succs = Vec::new();
            match insn {
                Insn::Return(_) => {}
                Insn::Goto(t) => succs.push(block_of[*t]),
                Insn::Switch { cases, default } => {
                    for &(_, t) in cases {
                        succs.push(block_of[t]);
                    }
                    succs.push(block_of[*default]);
                }
                Insn::If(_, t) | Insn::IfCmp(_, t) => {
                    succs.push(block_of[*t]);
                    if last_pc + 1 < func.code.len() {
                        succs.push(block_of[last_pc + 1]);
                    }
                }
                _ => {
                    if last_pc + 1 < func.code.len() {
                        succs.push(block_of[last_pc + 1]);
                    }
                }
            }
            succs.sort_unstable();
            succs.dedup();
            block.succs = succs;
        }
        Cfg {
            blocks,
            block_of,
            is_leader,
        }
    }

    /// Number of basic blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the function had no code.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Blocks reachable from the entry block, as a bitmap.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::insn::Cond;

    fn loop_function() -> Function {
        // 0: load 0        <- leader (entry)
        // 1: const 10
        // 2: ifcmp ge -> 7 <- ends block
        // 3: load 0        <- leader (fallthrough)
        // 4: print
        // 5: iinc 0, 1
        // 6: goto 0        <- ends block
        // 7: return        <- leader (target)
        let mut f = FunctionBuilder::new("loop", 0, 1);
        let top = f.new_label();
        let out = f.new_label();
        f.bind(top);
        f.load(0).push(10).if_cmp(Cond::Ge, out);
        f.load(0).print().iinc(0, 1).goto(top);
        f.bind(out);
        f.ret_void();
        f.finish().unwrap()
    }

    #[test]
    fn loop_blocks_and_successors() {
        let cfg = Cfg::build(&loop_function());
        assert_eq!(cfg.len(), 3);
        assert_eq!(cfg.blocks[0].start, 0);
        assert_eq!(cfg.blocks[0].end, 3);
        assert_eq!(cfg.blocks[0].succs, vec![1, 2]); // fallthrough + target
        assert_eq!(cfg.blocks[1].succs, vec![0]); // back edge
        assert!(cfg.blocks[2].succs.is_empty()); // return
        assert_eq!(cfg.block_of[4], 1);
        assert!(cfg.is_leader[0] && cfg.is_leader[3] && cfg.is_leader[7]);
        assert!(!cfg.is_leader[4]);
    }

    #[test]
    fn empty_function_is_empty_cfg() {
        let f = Function {
            name: "e".into(),
            num_params: 0,
            num_locals: 0,
            returns_value: false,
            code: vec![],
        };
        let cfg = Cfg::build(&f);
        assert!(cfg.is_empty());
        assert_eq!(cfg.reachable(), Vec::<bool>::new());
    }

    #[test]
    fn switch_successors_deduplicated() {
        let mut f = FunctionBuilder::new("sw", 1, 0);
        let a = f.new_label();
        let d = f.new_label();
        f.load(0);
        f.switch(&[(1, a), (2, a)], d);
        f.bind(a);
        f.ret_void();
        f.bind(d);
        f.ret_void();
        let cfg = Cfg::build(&f.finish().unwrap());
        // Block 0 = [load, switch]; succs {a, d} deduplicated.
        assert_eq!(cfg.blocks[0].succs.len(), 2);
    }

    #[test]
    fn reachability_marks_dead_blocks() {
        let mut f = FunctionBuilder::new("dead", 0, 0);
        let live = f.new_label();
        f.goto(live);
        f.push(0).print().ret_void(); // unreachable block
        f.bind(live);
        f.ret_void();
        let cfg = Cfg::build(&f.finish().unwrap());
        let reach = cfg.reachable();
        assert_eq!(reach.iter().filter(|&&r| r).count(), 2);
        assert!(!reach[1], "the middle block is dead");
    }

    #[test]
    fn call_does_not_end_a_block() {
        let mut f = FunctionBuilder::new("c", 0, 0);
        f.call(crate::program::FuncId(0)).push(1).print().ret_void();
        let cfg = Cfg::build(&f.finish().unwrap());
        assert_eq!(cfg.len(), 1, "calls are not block terminators");
    }
}
