//! A Java-bytecode-like stack virtual machine.
//!
//! This crate is the bytecode substrate for the Java-side realization of
//! dynamic path-based watermarking (Collberg et al., PLDI 2004, Section 3).
//! The real system was built on a JVM plus the SandMark instrumentation
//! framework; neither is available here, so this VM models exactly the
//! properties the watermarking algorithm depends on:
//!
//! * a **stack-based instruction set** with conditional branches
//!   ([`insn::Insn::If`], [`insn::Insn::IfCmp`]), an unconditional
//!   [`insn::Insn::Goto`], and a [`insn::Insn::Switch`] that is *not* a
//!   conditional branch (mirroring the JVM's `lookupswitch`) — the
//!   embedder uses it for loop control so inserted loops contribute only
//!   the intended conditional-branch bits to the trace;
//! * an **instrumenting interpreter** ([`interp::Vm`]) that can record
//!   the executed basic-block sequence, every dynamic conditional branch
//!   with the block that follows it, and snapshots of local-variable
//!   values — the exact trace content Section 3.1 collects;
//! * **control-flow graphs** ([`mod@cfg`]) and **code editing with branch
//!   fix-up** ([`edit`]) so that watermark code can be inserted (and
//!   attacks applied) at any program point;
//! * a structural **verifier** ([`verify`]) to catch malformed programs
//!   early, standing in for the JVM bytecode verifier.
//!
//! Values are untyped 64-bit integers; arrays live on a managed heap and
//! are referenced by handle. Static fields model the per-class state the
//! paper snapshots during tracing. Instance fields and objects are not
//! modeled — no part of the algorithm or the workloads requires them (the
//! trade-off is recorded in `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use stackvm::builder::{FunctionBuilder, ProgramBuilder};
//! use stackvm::insn::Cond;
//! use stackvm::interp::Vm;
//!
//! // fn main() { let mut i = 0; while i < 5 { print(i); i += 1; } }
//! let mut program = ProgramBuilder::new();
//! let mut f = FunctionBuilder::new("main", 0, 1);
//! let head = f.new_label();
//! let exit = f.new_label();
//! f.bind(head);
//! f.load(0).push(5).if_cmp(Cond::Ge, exit);
//! f.load(0).print();
//! f.iinc(0, 1).goto(head);
//! f.bind(exit);
//! f.ret_void();
//! let main = program.add_function(f.finish()?);
//! let program = program.finish(main)?;
//!
//! let outcome = Vm::new(&program).run()?;
//! assert_eq!(outcome.output, vec![0, 1, 2, 3, 4]);
//! # Ok::<(), stackvm::VmError>(())
//! ```

pub mod builder;
pub mod cfg;
pub mod codec;
pub mod compile;
pub mod edit;
pub mod insn;
pub mod interp;
pub mod predecode;
pub mod pretty;
pub mod program;
pub mod trace;
pub mod verify;

mod error;

pub use error::VmError;
pub use interp::ExecTier;
pub use program::{FuncId, Function, Program, StaticId};
