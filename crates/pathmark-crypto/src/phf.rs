//! Displacement-based perfect hashing over 32-bit keys.
//!
//! Section 4.1 of the paper: the branch function maps each call-site
//! return address `a_i` through a perfect hash `h` into a table `T` with
//! `T[h(a_i)] = a_i ⊕ b_i`. The paper cites FKS \[12\]; we implement the
//! closely related *hash-and-displace* construction (the shape visible in
//! the paper's Figure 7 disassembly: a multiply, shifts, a displacement-
//! table load, an xor), because its evaluation is a handful of
//! straight-line 32-bit ALU operations that the simulated branch function
//! executes literally:
//!
//! ```text
//! h(x) = ( (x·MUL1) >> SHIFT1 ) ^ disp[ (x·MUL2) >> SHIFT2 ]   &  MASK
//! ```
//!
//! All arithmetic is wrapping `u32` — the word size of the simulated
//! machine — so the in-Rust evaluator and the machine-code evaluator
//! agree bit-for-bit.

use crate::prng::Prng;
use std::error::Error;
use std::fmt;

/// Error returned when a perfect hash cannot be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PhfError {
    /// The key set contained a duplicate, which no injective map allows.
    DuplicateKey {
        /// The duplicated key.
        key: u32,
    },
    /// Construction failed after exhausting its retry budget (extremely
    /// unlikely for sane load factors; indicates adversarial keys).
    RetriesExhausted,
}

impl fmt::Display for PhfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhfError::DuplicateKey { key } => {
                write!(f, "duplicate key {key:#x} in perfect hash input")
            }
            PhfError::RetriesExhausted => {
                write!(f, "perfect hash construction exhausted retries")
            }
        }
    }
}

impl Error for PhfError {}

/// A perfect hash over a fixed 32-bit key set, evaluable with six ALU
/// operations.
///
/// Slot indices are in `0..table_len()`; the table is at most 4× the key
/// count. Unlisted keys hash to arbitrary slots (exactly as in the paper,
/// where only watermark call sites ever enter the branch function).
///
/// # Example
///
/// ```
/// use pathmark_crypto::DisplacementHash;
///
/// let keys = [0x0804_9000u32, 0x0804_9234, 0x0804_A020, 0x0804_B456];
/// let h = DisplacementHash::build(&keys, 99)?;
/// let mut slots: Vec<usize> = keys.iter().map(|&k| h.eval(k)).collect();
/// slots.sort_unstable();
/// slots.dedup();
/// assert_eq!(slots.len(), keys.len(), "h is injective on the keys");
/// # Ok::<(), pathmark_crypto::phf::PhfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisplacementHash {
    mul1: u32,
    shift1: u32,
    mul2: u32,
    shift2: u32,
    table_mask: u32,
    disp: Vec<u32>,
}

impl DisplacementHash {
    /// Builds a perfect hash for `keys`, seeded from `seed` so that
    /// construction is deterministic per watermark key.
    ///
    /// # Errors
    ///
    /// * [`PhfError::DuplicateKey`] if `keys` contains duplicates.
    /// * [`PhfError::RetriesExhausted`] if no parameter choice works
    ///   within the retry budget.
    pub fn build(keys: &[u32], seed: u64) -> Result<Self, PhfError> {
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
            return Err(PhfError::DuplicateKey { key: w[0] });
        }
        if keys.is_empty() {
            return Ok(DisplacementHash {
                mul1: 1,
                shift1: 0,
                mul2: 1,
                shift2: 31,
                table_mask: 0,
                disp: vec![0, 0],
            });
        }
        let mut rng = Prng::from_seed(seed ^ 0x5DEE_CE66_D1CE_4E5B);
        // Table of 2n..4n slots and n..2n displacement buckets keep the
        // greedy search fast and reliable.
        let table_len = (keys.len() * 2).next_power_of_two().max(2);
        let bucket_count = keys.len().next_power_of_two().max(2);
        for _attempt in 0..256 {
            let mul1 = rng.next_u32() | 1;
            let mul2 = rng.next_u32() | 1;
            // Take hash bits from the top of the 32-bit product.
            let shift1 = 32 - (table_len.trailing_zeros() + 4).min(31);
            let shift2 = 32 - bucket_count.trailing_zeros();
            let candidate = Self::try_build(
                keys,
                mul1,
                shift1,
                mul2,
                shift2,
                table_len,
                bucket_count,
                &mut rng,
            );
            if let Some(h) = candidate {
                return Ok(h);
            }
        }
        Err(PhfError::RetriesExhausted)
    }

    #[allow(clippy::too_many_arguments)]
    fn try_build(
        keys: &[u32],
        mul1: u32,
        shift1: u32,
        mul2: u32,
        shift2: u32,
        table_len: usize,
        bucket_count: usize,
        rng: &mut Prng,
    ) -> Option<DisplacementHash> {
        let table_mask = (table_len - 1) as u32;
        // Bucket keys by their displacement index.
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); bucket_count];
        for &k in keys {
            buckets[(k.wrapping_mul(mul2) >> shift2) as usize].push(k);
        }
        // Largest buckets first: they are the hardest to place.
        let mut order: Vec<usize> = (0..bucket_count).collect();
        order.sort_by_key(|&b| std::cmp::Reverse(buckets[b].len()));
        let mut occupied = vec![false; table_len];
        let mut disp = vec![0u32; bucket_count];
        for &b in &order {
            let bucket = &buckets[b];
            if bucket.is_empty() {
                continue;
            }
            let mut placed = false;
            'displacement: for trial in 0..(table_len as u32 * 16) {
                let d = if trial < table_len as u32 * 4 {
                    trial
                } else {
                    rng.next_u32()
                };
                let mut slots = Vec::with_capacity(bucket.len());
                for &k in bucket {
                    let slot = (((k.wrapping_mul(mul1) >> shift1) ^ d) & table_mask) as usize;
                    if occupied[slot] || slots.contains(&slot) {
                        continue 'displacement;
                    }
                    slots.push(slot);
                }
                for &s in &slots {
                    occupied[s] = true;
                }
                disp[b] = d;
                placed = true;
                break;
            }
            if !placed {
                return None;
            }
        }
        Some(DisplacementHash {
            mul1,
            shift1,
            mul2,
            shift2,
            table_mask,
            disp,
        })
    }

    /// Evaluates the hash. Injective on the construction key set; an
    /// arbitrary slot for anything else.
    pub fn eval(&self, key: u32) -> usize {
        let bucket = (key.wrapping_mul(self.mul2) >> self.shift2) as usize;
        let d = self.disp[bucket];
        (((key.wrapping_mul(self.mul1) >> self.shift1) ^ d) & self.table_mask) as usize
    }

    /// Number of slots in the target table (a power of two).
    pub fn table_len(&self) -> usize {
        self.table_mask as usize + 1
    }

    /// The evaluation parameters `(mul1, shift1, mul2, shift2,
    /// table_mask)` — everything the simulated branch-function machine
    /// code needs, alongside [`Self::displacements`].
    pub fn params(&self) -> (u32, u32, u32, u32, u32) {
        (
            self.mul1,
            self.shift1,
            self.mul2,
            self.shift2,
            self.table_mask,
        )
    }

    /// The displacement array (length is a power of two).
    pub fn displacements(&self) -> &[u32] {
        &self.disp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_perfect(keys: &[u32], h: &DisplacementHash) {
        let mut slots: Vec<usize> = keys.iter().map(|&k| h.eval(k)).collect();
        slots.sort_unstable();
        let before = slots.len();
        slots.dedup();
        assert_eq!(slots.len(), before, "hash collides on its key set");
        assert!(slots.iter().all(|&s| s < h.table_len()));
    }

    #[test]
    fn small_key_sets() {
        for n in [1usize, 2, 3, 5, 8, 16] {
            let keys: Vec<u32> = (0..n as u32).map(|i| 0x0804_8000 + i * 7).collect();
            let h = DisplacementHash::build(&keys, 42).unwrap();
            assert_perfect(&keys, &h);
        }
    }

    #[test]
    fn empty_key_set() {
        let h = DisplacementHash::build(&[], 1).unwrap();
        // eval on anything is in range.
        assert!(h.eval(123) <= h.table_mask as usize);
    }

    #[test]
    fn dense_address_like_keys() {
        // Consecutive instruction addresses — the real workload shape.
        let keys: Vec<u32> = (0..512u32).map(|i| 0x0804_8000 + i * 5).collect();
        let h = DisplacementHash::build(&keys, 7).unwrap();
        assert_perfect(&keys, &h);
        assert!(h.table_len() <= 2048);
    }

    #[test]
    fn adversarial_clustered_keys() {
        let mut keys: Vec<u32> = (0..64u32).map(|i| i << 24).collect();
        keys.extend((0..64u32).map(|i| 0xFFFF_0000 + i));
        let h = DisplacementHash::build(&keys, 3).unwrap();
        assert_perfect(&keys, &h);
    }

    #[test]
    fn duplicate_keys_rejected() {
        assert_eq!(
            DisplacementHash::build(&[5, 9, 5], 1),
            Err(PhfError::DuplicateKey { key: 5 })
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let keys: Vec<u32> = (0..100u32).map(|i| 1000 + i * 13).collect();
        let a = DisplacementHash::build(&keys, 11).unwrap();
        let b = DisplacementHash::build(&keys, 11).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn params_reconstruct_eval() {
        // The simulated machine code recomputes eval from params() and
        // displacements(); verify that recomputation matches.
        let keys: Vec<u32> = (0..50u32).map(|i| 0x400000 + i * 9).collect();
        let h = DisplacementHash::build(&keys, 2).unwrap();
        let (mul1, shift1, mul2, shift2, mask) = h.params();
        for &k in &keys {
            let bucket = (k.wrapping_mul(mul2) >> shift2) as usize;
            let manual =
                (((k.wrapping_mul(mul1) >> shift1) ^ h.displacements()[bucket]) & mask) as usize;
            assert_eq!(manual, h.eval(k));
        }
    }

    #[test]
    fn larger_key_sets_build() {
        let keys: Vec<u32> = (0..4096u32).map(|i| i.wrapping_mul(0x9E37) + 3).collect();
        let h = DisplacementHash::build(&keys, 5).unwrap();
        assert_perfect(&keys, &h);
    }

    #[test]
    fn many_seeds_build_for_typical_watermark_sizes() {
        // 129 call sites = a 128-bit watermark chain.
        for seed in 0..20u64 {
            let keys: Vec<u32> = (0..129u32).map(|i| 0x0804_8000 + i * 11 + (i * i) % 7).collect();
            let h = DisplacementHash::build(&keys, seed).unwrap();
            assert_perfect(&keys, &h);
        }
    }
}
