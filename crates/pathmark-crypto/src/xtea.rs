//! The XTEA block cipher (Needham & Wheeler, 1997).
//!
//! A 64-bit block cipher with a 128-bit key and 32 Feistel-like rounds.
//! The watermark embedder encrypts every enumerated piece before encoding
//! it into branch behavior; the recognizer decrypts every 64-bit sliding
//! window of the trace bit-string. XTEA is used because the paper's only
//! requirement is "randomness assumptions about any corrupted data when
//! decoding" — any keyed 64-bit permutation qualifies — and XTEA is tiny,
//! public-domain, and implementable without external crates.

const DELTA: u32 = 0x9E37_79B9;
const ROUNDS: u32 = 32;

/// Independent blocks decrypted per step by [`Xtea::decrypt_batch`].
///
/// Eight 32-bit lanes fill a 256-bit vector register, and the two lane
/// arrays of a batch fit comfortably in the register file, so the
/// compiler can keep the whole working set out of memory.
pub const BATCH_LANES: usize = 16;

/// XTEA cipher instance holding an expanded 128-bit key.
///
/// # Example
///
/// ```
/// use pathmark_crypto::Xtea;
///
/// let cipher = Xtea::new([0x0123_4567, 0x89AB_CDEF, 0xFEDC_BA98, 0x7654_3210]);
/// let plaintext = 0xDEAD_BEEF_CAFE_F00Du64;
/// let ciphertext = cipher.encrypt(plaintext);
/// assert_ne!(ciphertext, plaintext);
/// assert_eq!(cipher.decrypt(ciphertext), plaintext);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xtea {
    key: [u32; 4],
}

impl Xtea {
    /// Creates a cipher from four 32-bit key words.
    pub fn new(key: [u32; 4]) -> Self {
        Xtea { key }
    }

    /// Creates a cipher from a 128-bit key.
    pub fn from_u128(key: u128) -> Self {
        Xtea {
            key: [
                key as u32,
                (key >> 32) as u32,
                (key >> 64) as u32,
                (key >> 96) as u32,
            ],
        }
    }

    /// Derives a cipher from a 64-bit watermark key by SplitMix64
    /// expansion, so the whole watermarking pipeline can be driven from a
    /// single secret.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let a = next();
        let b = next();
        Xtea::from_u128((a as u128) << 64 | b as u128)
    }

    /// Encrypts one 64-bit block.
    pub fn encrypt(&self, block: u64) -> u64 {
        let mut v0 = block as u32;
        let mut v1 = (block >> 32) as u32;
        let mut sum: u32 = 0;
        for _ in 0..ROUNDS {
            v0 = v0.wrapping_add(
                (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                    ^ (sum.wrapping_add(self.key[(sum & 3) as usize])),
            );
            sum = sum.wrapping_add(DELTA);
            v1 = v1.wrapping_add(
                (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                    ^ (sum.wrapping_add(self.key[((sum >> 11) & 3) as usize])),
            );
        }
        (v1 as u64) << 32 | v0 as u64
    }

    /// Decrypts one 64-bit block.
    pub fn decrypt(&self, block: u64) -> u64 {
        let mut v0 = block as u32;
        let mut v1 = (block >> 32) as u32;
        let mut sum: u32 = DELTA.wrapping_mul(ROUNDS);
        for _ in 0..ROUNDS {
            v1 = v1.wrapping_sub(
                (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                    ^ (sum.wrapping_add(self.key[((sum >> 11) & 3) as usize])),
            );
            sum = sum.wrapping_sub(DELTA);
            v0 = v0.wrapping_sub(
                (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                    ^ (sum.wrapping_add(self.key[(sum & 3) as usize])),
            );
        }
        (v1 as u64) << 32 | v0 as u64
    }

    /// Decrypts every block in place, [`BATCH_LANES`] independent blocks
    /// at a time.
    ///
    /// Bit-identical to calling [`Xtea::decrypt`] on each block (the
    /// serial form stays the property-tested oracle); the batched form
    /// exists because the 32-round Feistel loop has a serial dependency
    /// *within* a block but none *across* blocks. With the round loop
    /// outermost and the lane loop innermost over structure-of-lanes
    /// `u32` arrays, each half-round is 8 independent shift/xor/add
    /// chains — exactly the shape auto-vectorization turns into vector
    /// instructions. The key-schedule terms depend only on `sum`, never
    /// on lane state, so they are hoisted out of the lane loop and
    /// broadcast.
    ///
    /// Any remainder shorter than a full batch falls back to the serial
    /// oracle, so every slice length is supported.
    pub fn decrypt_batch(&self, blocks: &mut [u64]) {
        let mut chunks = blocks.chunks_exact_mut(BATCH_LANES);
        for chunk in &mut chunks {
            let mut v0 = [0u32; BATCH_LANES];
            let mut v1 = [0u32; BATCH_LANES];
            for (lane, &block) in chunk.iter().enumerate() {
                v0[lane] = block as u32;
                v1[lane] = (block >> 32) as u32;
            }
            let mut sum: u32 = DELTA.wrapping_mul(ROUNDS);
            for _ in 0..ROUNDS {
                let k1 = sum.wrapping_add(self.key[((sum >> 11) & 3) as usize]);
                for lane in 0..BATCH_LANES {
                    v1[lane] = v1[lane].wrapping_sub(
                        (((v0[lane] << 4) ^ (v0[lane] >> 5)).wrapping_add(v0[lane])) ^ k1,
                    );
                }
                sum = sum.wrapping_sub(DELTA);
                let k0 = sum.wrapping_add(self.key[(sum & 3) as usize]);
                for lane in 0..BATCH_LANES {
                    v0[lane] = v0[lane].wrapping_sub(
                        (((v1[lane] << 4) ^ (v1[lane] >> 5)).wrapping_add(v1[lane])) ^ k0,
                    );
                }
            }
            for (lane, block) in chunk.iter_mut().enumerate() {
                *block = (v1[lane] as u64) << 32 | v0[lane] as u64;
            }
        }
        for block in chunks.into_remainder() {
            *block = self.decrypt(*block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector_zero_key() {
        // Reference C implementation with key = {0,0,0,0}, v = {0,0}
        // yields v[0] = 0xDEE9D4D8, v[1] = 0xF7131ED9. Our packing puts
        // v[0] in the low 32 bits of the block.
        let cipher = Xtea::new([0, 0, 0, 0]);
        assert_eq!(cipher.encrypt(0), 0xF713_1ED9_DEE9_D4D8);
        assert_eq!(cipher.decrypt(0xF713_1ED9_DEE9_D4D8), 0);
    }

    #[test]
    fn round_trip_many_blocks() {
        let cipher = Xtea::from_u128(0x0011_2233_4455_6677_8899_AABB_CCDD_EEFF);
        let mut block = 1u64;
        for _ in 0..1000 {
            let ct = cipher.encrypt(block);
            assert_eq!(cipher.decrypt(ct), block);
            block = block.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Xtea::from_seed(1).encrypt(42);
        let b = Xtea::from_seed(2).encrypt(42);
        assert_ne!(a, b);
    }

    #[test]
    fn from_seed_is_deterministic() {
        assert_eq!(Xtea::from_seed(99), Xtea::from_seed(99));
        assert_ne!(Xtea::from_seed(99), Xtea::from_seed(100));
    }

    #[test]
    fn encryption_is_a_permutation_on_samples() {
        // No collisions among many distinct plaintexts.
        let cipher = Xtea::from_seed(7);
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..4096 {
            assert!(seen.insert(cipher.encrypt(i)), "collision at {i}");
        }
    }

    #[test]
    fn batch_decrypt_matches_serial_oracle() {
        // The CI equivalence gate for the batched cipher: over random
        // keys and every slice length around the lane width (full
        // batches, empty, and each possible remainder), decrypt_batch
        // must be bit-identical to the serial decrypt oracle.
        let mut rng = crate::Prng::from_seed(0xBA7C);
        for round in 0..32 {
            let cipher = Xtea::from_seed(rng.next_u64());
            let len = (round * 7 + rng.index(3 * BATCH_LANES + 1)) % 61;
            let blocks: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
            let mut batched = blocks.clone();
            cipher.decrypt_batch(&mut batched);
            let serial: Vec<u64> = blocks.iter().map(|&b| cipher.decrypt(b)).collect();
            assert_eq!(batched, serial, "round {round}, len {len}");
        }
    }

    #[test]
    fn batch_decrypt_inverts_encrypt() {
        let mut rng = crate::Prng::from_seed(0x1A7E5);
        let cipher = Xtea::from_seed(0xFEED);
        let plain: Vec<u64> = (0..3 * BATCH_LANES + 5).map(|_| rng.next_u64()).collect();
        let mut blocks: Vec<u64> = plain.iter().map(|&p| cipher.encrypt(p)).collect();
        cipher.decrypt_batch(&mut blocks);
        assert_eq!(blocks, plain);
    }

    #[test]
    fn avalanche_effect() {
        // Flipping one plaintext bit should flip roughly half the
        // ciphertext bits (we accept a generous 16..48 window).
        let cipher = Xtea::from_seed(1234);
        let base = cipher.encrypt(0x0F0F_0F0F_0F0F_0F0F);
        for bit in 0..64 {
            let flipped = cipher.encrypt(0x0F0F_0F0F_0F0F_0F0F ^ (1u64 << bit));
            let distance = (base ^ flipped).count_ones();
            assert!(
                (16..=48).contains(&distance),
                "weak diffusion at bit {bit}: {distance}"
            );
        }
    }
}
