//! Deterministic keyed pseudo-random generation (xoshiro256**).
//!
//! Everything random in the watermarking pipeline — insertion-point
//! selection weighted by trace frequency (Section 3.2), helper-function
//! stack-frame sizes (Section 4.1), attack fuzzing, Monte-Carlo trials —
//! must be reproducible from a seed so that experiments are deterministic
//! and embed/recognize runs can be replayed. This module implements
//! xoshiro256** seeded through SplitMix64, with the handful of
//! distribution helpers the rest of the system needs.

/// A seedable xoshiro256** generator.
///
/// # Example
///
/// ```
/// use pathmark_crypto::Prng;
///
/// let mut a = Prng::from_seed(42);
/// let mut b = Prng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let roll = a.range(6) + 1;
/// assert!((1..=6).contains(&roll));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    state: [u64; 4],
}

impl Prng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        Prng { state }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random value in `0..bound` (Lemire-style rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range bound must be positive");
        // Rejection sampling over the top bits to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// A uniformly random `usize` in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        self.range(bound as u64) as usize
    }

    /// A Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        // 53 random bits give a uniform double in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples an index according to non-negative weights. Used for the
    /// paper's "random location weighted inversely with respect to its
    /// frequency in the trace" insertion policy.
    ///
    /// Returns `None` if the weights are empty or sum to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) * total;
        for (i, &w) in weights.iter().enumerate() {
            if !(w.is_finite() && w > 0.0) {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|&w| w.is_finite() && w > 0.0)
    }

    /// Forks an independent generator (e.g. one per embedded piece) while
    /// advancing this one.
    pub fn fork(&mut self) -> Prng {
        Prng::from_seed(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Prng::from_seed(7);
        let mut b = Prng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::from_seed(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_respects_bound() {
        let mut rng = Prng::from_seed(1);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.range(bound) < bound);
            }
        }
    }

    #[test]
    fn range_hits_every_small_value() {
        let mut rng = Prng::from_seed(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.range(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "range bound must be positive")]
    fn range_zero_panics() {
        Prng::from_seed(1).range(0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Prng::from_seed(3);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
        let heads = (0..10_000).filter(|_| rng.chance(0.5)).count();
        assert!((4500..5500).contains(&heads), "biased coin: {heads}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Prng::from_seed(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "13 zero bytes is implausible");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Prng::from_seed(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements left them sorted");
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = Prng::from_seed(6);
        let weights = [1.0, 0.0, 98.0, 1.0];
        let mut counts = [0usize; 4];
        for _ in 0..5000 {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight must never be chosen");
        assert!(counts[2] > 4500, "heavy weight undersampled: {counts:?}");
    }

    #[test]
    fn weighted_index_degenerate_cases() {
        let mut rng = Prng::from_seed(7);
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(rng.weighted_index(&[f64::NAN, 1.0]), Some(1));
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Prng::from_seed(8);
        let mut child = parent.fork();
        // The two streams should diverge immediately.
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }
}
