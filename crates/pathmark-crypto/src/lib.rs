//! Cryptographic substrate for dynamic path-based software watermarking.
//!
//! Three primitives from the paper, implemented from scratch (no
//! cryptography crate is available offline, and none is needed — the
//! watermarking protocol only requires a keyed 64-bit permutation, a
//! reproducible random stream, and an O(1) perfect hash):
//!
//! * [`xtea`] — the XTEA block cipher. Section 3.2 step 2 passes every
//!   watermark piece through a 64-bit block cipher so that corrupted trace
//!   windows decrypt to uniformly random values, which the recognition
//!   algorithm can then reject statistically.
//! * [`prng`] — a deterministic, seedable xoshiro256** generator. Both
//!   embedding (random insertion points, random watermark values in
//!   benches) and the Monte-Carlo experiments need reproducible
//!   randomness derived from the watermark key.
//! * [`phf`] — displacement-based perfect hashing. Section 4.1 uses a
//!   perfect hash `h: {a_1, …, a_n} → {1, …, n}` inside the branch
//!   function to map return addresses to their XOR-table entries; the
//!   evaluation form chosen here (`multiply / shift / displace / mask`)
//!   is exactly what the simulated branch-function machine code computes
//!   (compare the paper's Figure 7).

pub mod phf;
pub mod prng;
pub mod xtea;

pub use phf::DisplacementHash;
pub use prng::Prng;
pub use xtea::{Xtea, BATCH_LANES};
