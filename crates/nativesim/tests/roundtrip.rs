//! Randomized-property tests on the binary encoding and the rewriting
//! unit: generated instructions round-trip through encode/decode, and
//! lifted units re-encode to the identical image. Randomness comes from
//! a hand-rolled deterministic xorshift generator, so every run tests
//! the identical case set (no external property-testing crates).

use nativesim::encode::{decode, disassemble_all, encode};
use nativesim::insn::Insn;
use nativesim::reg::{AluOp, Cc, Mem, Operand, Reg};
use nativesim::rewrite::Unit;

/// Deterministic xorshift generator (same recurrence as the stackvm
/// random-program tests).
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn i32(&mut self) -> i32 {
        self.next() as i32
    }

    fn reg(&mut self) -> Reg {
        Reg::from_byte(self.below(8) as u8).expect("0..8 are registers")
    }

    fn cc(&mut self) -> Cc {
        Cc::from_byte(self.below(8) as u8).expect("0..8 are condition codes")
    }

    fn alu(&mut self) -> AluOp {
        AluOp::from_byte(self.below(9) as u8).expect("0..9 are ALU ops")
    }

    fn mem(&mut self) -> Mem {
        let base = (self.below(2) == 0).then(|| self.reg());
        let index = (self.below(2) == 0).then(|| {
            let r = self.reg();
            let scale = [1u8, 2, 4, 8][self.below(4) as usize];
            (r, scale)
        });
        Mem {
            base,
            index,
            disp: self.i32(),
        }
    }

    fn operand(&mut self) -> Operand {
        match self.below(3) {
            0 => Operand::Reg(self.reg()),
            1 => Operand::Imm(self.i32()),
            _ => Operand::Mem(self.mem()),
        }
    }

    fn writable_operand(&mut self) -> Operand {
        match self.below(2) {
            0 => Operand::Reg(self.reg()),
            _ => Operand::Mem(self.mem()),
        }
    }

    fn insn(&mut self) -> Insn {
        match self.below(19) {
            0 => Insn::Nop,
            1 => Insn::Halt,
            2 => Insn::Ret,
            3 => Insn::Pushf,
            4 => Insn::Popf,
            5 => Insn::Mov(self.writable_operand(), self.operand()),
            6 => Insn::Lea(self.reg(), self.mem()),
            7 => Insn::Alu(self.alu(), self.writable_operand(), self.operand()),
            8 => Insn::Cmp(self.operand(), self.operand()),
            9 => Insn::Test(self.operand(), self.operand()),
            10 => Insn::Jmp(self.i32()),
            11 => Insn::Jcc(self.cc(), self.i32()),
            12 => Insn::Call(self.i32()),
            13 => Insn::JmpInd(self.operand()),
            14 => Insn::CallInd(self.operand()),
            15 => Insn::Push(self.operand()),
            16 => Insn::Pop(self.reg()),
            17 => Insn::Out(self.operand()),
            _ => Insn::In(self.reg()),
        }
    }

    fn position_independent_insn(&mut self) -> Insn {
        loop {
            let i = self.insn();
            if !matches!(i, Insn::Jmp(_) | Insn::Jcc(..) | Insn::Call(_)) {
                return i;
            }
        }
    }
}

#[test]
fn encode_decode_identity() {
    let mut g = Gen::new(1);
    for case in 0..256 {
        let insn = g.insn();
        let mut bytes = Vec::new();
        encode(&insn, &mut bytes);
        assert_eq!(bytes.len(), insn.len(), "case {case}: length model agrees");
        let (decoded, len) = decode(&bytes, 0x8048000).expect("decodes");
        assert_eq!(decoded, insn, "case {case}");
        assert_eq!(len, bytes.len(), "case {case}");
    }
}

#[test]
fn stream_decoding_is_self_synchronizing_from_starts() {
    let mut g = Gen::new(2);
    for case in 0..64 {
        let insns: Vec<Insn> = (0..1 + g.below(39)).map(|_| g.insn()).collect();
        let mut bytes = Vec::new();
        for i in &insns {
            encode(i, &mut bytes);
        }
        let listing = disassemble_all(&bytes, 0x8048000).expect("stream decodes");
        assert_eq!(listing.len(), insns.len(), "case {case}");
        for ((_, got), want) in listing.iter().zip(&insns) {
            assert_eq!(got, want, "case {case}");
        }
    }
}

#[test]
fn truncated_streams_error_not_panic() {
    let mut g = Gen::new(3);
    for _ in 0..256 {
        let insns: Vec<Insn> = (0..1 + g.below(9)).map(|_| g.insn()).collect();
        let mut bytes = Vec::new();
        for i in &insns {
            encode(i, &mut bytes);
        }
        let cut = g.below(bytes.len() as u64) as usize;
        // Any prefix either decodes as some instruction stream or
        // reports an error; never panics.
        let _ = disassemble_all(&bytes[..cut], 0x8048000);
    }
}

/// Lift → encode is the identity on any image assembled from
/// *position-independent* instructions (no direct branches: their
/// displacements are relinked, everything else must be copied
/// verbatim).
#[test]
fn unit_lift_encode_identity() {
    let mut g = Gen::new(4);
    for case in 0..64 {
        let insns: Vec<Insn> = (0..1 + g.below(29))
            .map(|_| g.position_independent_insn())
            .collect();
        let mut b = nativesim::asm::ImageBuilder::new();
        let a = b.text();
        for i in &insns {
            a.insn(*i);
        }
        a.halt();
        let image = b.finish().expect("builds");
        let unit = Unit::from_image(&image).expect("lifts");
        let re = unit.encode().expect("re-encodes");
        assert_eq!(re, image, "case {case}");
    }
}
