//! Property tests on the binary encoding and the rewriting unit:
//! arbitrary instructions round-trip through encode/decode, and lifted
//! units re-encode to the identical image.

use proptest::prelude::*;

use nativesim::encode::{decode, disassemble_all, encode};
use nativesim::insn::Insn;
use nativesim::reg::{AluOp, Cc, Mem, Operand, Reg};
use nativesim::rewrite::Unit;

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..8).prop_map(|b| Reg::from_byte(b).expect("0..8 are registers"))
}

fn cc_strategy() -> impl Strategy<Value = Cc> {
    (0u8..8).prop_map(|b| Cc::from_byte(b).expect("0..8 are condition codes"))
}

fn alu_strategy() -> impl Strategy<Value = AluOp> {
    (0u8..9).prop_map(|b| AluOp::from_byte(b).expect("0..9 are ALU ops"))
}

fn mem_strategy() -> impl Strategy<Value = Mem> {
    (
        proptest::option::of(reg_strategy()),
        proptest::option::of((reg_strategy(), prop_oneof![Just(1u8), Just(2), Just(4), Just(8)])),
        any::<i32>(),
    )
        .prop_map(|(base, index, disp)| Mem { base, index, disp })
}

fn operand_strategy() -> impl Strategy<Value = Operand> {
    prop_oneof![
        reg_strategy().prop_map(Operand::Reg),
        any::<i32>().prop_map(Operand::Imm),
        mem_strategy().prop_map(Operand::Mem),
    ]
}

fn writable_operand_strategy() -> impl Strategy<Value = Operand> {
    prop_oneof![
        reg_strategy().prop_map(Operand::Reg),
        mem_strategy().prop_map(Operand::Mem),
    ]
}

fn insn_strategy() -> impl Strategy<Value = Insn> {
    prop_oneof![
        Just(Insn::Nop),
        Just(Insn::Halt),
        Just(Insn::Ret),
        Just(Insn::Pushf),
        Just(Insn::Popf),
        (writable_operand_strategy(), operand_strategy()).prop_map(|(d, s)| Insn::Mov(d, s)),
        (reg_strategy(), mem_strategy()).prop_map(|(r, m)| Insn::Lea(r, m)),
        (alu_strategy(), writable_operand_strategy(), operand_strategy())
            .prop_map(|(op, d, s)| Insn::Alu(op, d, s)),
        (operand_strategy(), operand_strategy()).prop_map(|(a, b)| Insn::Cmp(a, b)),
        (operand_strategy(), operand_strategy()).prop_map(|(a, b)| Insn::Test(a, b)),
        any::<i32>().prop_map(Insn::Jmp),
        (cc_strategy(), any::<i32>()).prop_map(|(cc, d)| Insn::Jcc(cc, d)),
        any::<i32>().prop_map(Insn::Call),
        operand_strategy().prop_map(Insn::JmpInd),
        operand_strategy().prop_map(Insn::CallInd),
        operand_strategy().prop_map(Insn::Push),
        reg_strategy().prop_map(Insn::Pop),
        operand_strategy().prop_map(Insn::Out),
        reg_strategy().prop_map(Insn::In),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_identity(insn in insn_strategy()) {
        let mut bytes = Vec::new();
        encode(&insn, &mut bytes);
        prop_assert_eq!(bytes.len(), insn.len(), "length model agrees");
        let (decoded, len) = decode(&bytes, 0x8048000).expect("decodes");
        prop_assert_eq!(decoded, insn);
        prop_assert_eq!(len, bytes.len());
    }

    #[test]
    fn stream_decoding_is_self_synchronizing_from_starts(
        insns in proptest::collection::vec(insn_strategy(), 1..40)
    ) {
        let mut bytes = Vec::new();
        for i in &insns {
            encode(i, &mut bytes);
        }
        let listing = disassemble_all(&bytes, 0x8048000).expect("stream decodes");
        prop_assert_eq!(listing.len(), insns.len());
        for ((_, got), want) in listing.iter().zip(&insns) {
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn truncated_streams_error_not_panic(
        insns in proptest::collection::vec(insn_strategy(), 1..10),
        cut in any::<prop::sample::Index>()
    ) {
        let mut bytes = Vec::new();
        for i in &insns {
            encode(i, &mut bytes);
        }
        let cut = cut.index(bytes.len());
        // Any prefix either decodes as some instruction stream or
        // reports an error; never panics.
        let _ = disassemble_all(&bytes[..cut], 0x8048000);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lift → encode is the identity on any image assembled from
    /// *position-independent* instructions (no direct branches: their
    /// displacements are relinked, everything else must be copied
    /// verbatim).
    #[test]
    fn unit_lift_encode_identity(
        insns in proptest::collection::vec(
            insn_strategy().prop_filter("no direct branches", |i| {
                !matches!(i, Insn::Jmp(_) | Insn::Jcc(..) | Insn::Call(_))
            }),
            1..30
        )
    ) {
        let mut b = nativesim::asm::ImageBuilder::new();
        let a = b.text();
        for i in &insns {
            a.insn(*i);
        }
        a.halt();
        let image = b.finish().expect("builds");
        let unit = Unit::from_image(&image).expect("lifts");
        let re = unit.encode().expect("re-encodes");
        prop_assert_eq!(re, image);
    }
}
