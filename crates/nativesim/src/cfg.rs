//! Control-flow graphs and dominators over a rewriting [`Unit`].
//!
//! Section 4.3 of the paper picks tamper-proofing candidates among
//! unconditional branches ℓ such that *begin dominates ℓ*: the branch
//! function (entered at `begin`) must have initialized ℓ's indirect
//! target cell before ℓ can possibly execute. This module provides the
//! static side of that check: block-level CFG construction and the
//! classic iterative dominator computation (Cooper–Harvey–Kennedy).
//!
//! Indirect control transfers have statically unknown targets. If a unit
//! contains any *indirect jump*, dominance claims would be unsound, and
//! [`Cfg::build`] reports it via [`Cfg::has_indirect_jumps`] so callers
//! can fall back to dynamic validation (as the embedder does). Indirect
//! *calls* are treated like direct calls — control returns to the next
//! instruction — which matches the simulator's semantics for any callee
//! that returns normally.

use crate::insn::Insn;
use crate::rewrite::Unit;

/// A basic block over unit items: the half-open item range
/// `start..end`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Index of the first item.
    pub start: usize,
    /// One past the last item.
    pub end: usize,
    /// Successor blocks.
    pub succs: Vec<usize>,
    /// Predecessor blocks.
    pub preds: Vec<usize>,
}

/// The control-flow graph of a unit's text section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// Blocks in ascending `start` order; block 0 contains the entry.
    pub blocks: Vec<Block>,
    /// `block_of[item]` = containing block.
    pub block_of: Vec<usize>,
    /// Whether the unit contains indirect jumps (targets unknown; see
    /// module docs).
    has_indirect_jumps: bool,
    /// Index of the entry block.
    pub entry_block: usize,
}

impl Cfg {
    /// Builds the CFG of a unit.
    pub fn build(unit: &Unit) -> Cfg {
        let n = unit.items.len();
        if n == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
                has_indirect_jumps: false,
                entry_block: 0,
            };
        }
        let mut is_leader = vec![false; n];
        is_leader[unit.entry_index] = true;
        is_leader[0] = true;
        let mut has_indirect_jumps = false;
        for (k, item) in unit.items.iter().enumerate() {
            if let Some(t) = item.target {
                is_leader[t] = true;
            }
            let ends_block = matches!(
                item.insn,
                Insn::Jmp(_)
                    | Insn::Jcc(..)
                    | Insn::JmpInd(_)
                    | Insn::Ret
                    | Insn::Halt
            );
            if matches!(item.insn, Insn::JmpInd(_)) {
                has_indirect_jumps = true;
            }
            if ends_block && k + 1 < n {
                is_leader[k + 1] = true;
            }
        }
        let starts: Vec<usize> = (0..n).filter(|&k| is_leader[k]).collect();
        let mut block_of = vec![0usize; n];
        let mut blocks: Vec<Block> = Vec::with_capacity(starts.len());
        for (b, &start) in starts.iter().enumerate() {
            let end = starts.get(b + 1).copied().unwrap_or(n);
            block_of[start..end].fill(b);
            blocks.push(Block {
                start,
                end,
                succs: Vec::new(),
                preds: Vec::new(),
            });
        }
        for b in 0..blocks.len() {
            let last = blocks[b].end - 1;
            let item = &unit.items[last];
            let mut succs = Vec::new();
            match item.insn {
                Insn::Ret | Insn::Halt | Insn::JmpInd(_) => {}
                Insn::Jmp(_) => {
                    if let Some(t) = item.target {
                        succs.push(block_of[t]);
                    }
                }
                Insn::Jcc(..) => {
                    if let Some(t) = item.target {
                        succs.push(block_of[t]);
                    }
                    if last + 1 < n {
                        succs.push(block_of[last + 1]);
                    }
                }
                // Calls (direct or indirect) fall through on return.
                _ => {
                    if last + 1 < n {
                        succs.push(block_of[last + 1]);
                    }
                }
            }
            succs.sort_unstable();
            succs.dedup();
            blocks[b].succs = succs.clone();
            for s in succs {
                blocks[s].preds.push(b);
            }
        }
        Cfg {
            entry_block: block_of[unit.entry_index],
            blocks,
            block_of,
            has_indirect_jumps,
        }
    }

    /// Whether the unit contains indirect jumps, making dominance claims
    /// unsound.
    pub fn has_indirect_jumps(&self) -> bool {
        self.has_indirect_jumps
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the unit had no items.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Immediate dominators, `idom[b]` for every block (entry's idom is
    /// itself; unreachable blocks get `None`). Cooper–Harvey–Kennedy
    /// iterative algorithm over a reverse-postorder.
    pub fn immediate_dominators(&self) -> Vec<Option<usize>> {
        let n = self.blocks.len();
        let mut idom: Vec<Option<usize>> = vec![None; n];
        if n == 0 {
            return idom;
        }
        // Reverse postorder from the entry.
        let mut order = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 in-progress, 2 done
        let mut stack = vec![(self.entry_block, 0usize)];
        state[self.entry_block] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < self.blocks[b].succs.len() {
                let s = self.blocks[b].succs[*next];
                *next += 1;
                if state[s] == 0 {
                    state[s] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b] = 2;
                order.push(b);
                stack.pop();
            }
        }
        order.reverse(); // now reverse postorder
        let mut rpo_number = vec![usize::MAX; n];
        for (i, &b) in order.iter().enumerate() {
            rpo_number[b] = i;
        }
        idom[self.entry_block] = Some(self.entry_block);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                if b == self.entry_block {
                    continue;
                }
                let mut new_idom: Option<usize> = None;
                for &p in &self.blocks[b].preds {
                    if idom[p].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_number, p, cur),
                    });
                }
                if new_idom.is_some() && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        idom
    }

    /// Whether block `a` dominates block `b` (every path from the entry
    /// to `b` passes through `a`). Unreachable `b` is dominated by
    /// nothing (returns `false` unless `a == b`).
    ///
    /// # Panics
    ///
    /// Panics if either block index is out of range.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        let idom = self.immediate_dominators();
        let mut cur = b;
        loop {
            match idom[cur] {
                None => return false,
                Some(d) if d == cur => return false, // reached the entry
                Some(d) if d == a => return true,
                Some(d) => cur = d,
            }
        }
    }

    /// Item-level dominance: does the instruction at item index `a`
    /// dominate the one at `b`? Uses block dominance plus intra-block
    /// ordering. Returns `false` whenever the unit contains indirect
    /// jumps (the analysis would be unsound).
    pub fn item_dominates(&self, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        if self.has_indirect_jumps {
            return false;
        }
        let (ba, bb) = (self.block_of[a], self.block_of[b]);
        if ba == bb {
            return a <= b;
        }
        self.dominates(ba, bb)
    }
}

fn intersect(
    idom: &[Option<usize>],
    rpo_number: &[usize],
    mut a: usize,
    mut b: usize,
) -> usize {
    while a != b {
        while rpo_number[a] > rpo_number[b] {
            a = idom[a].expect("processed block has an idom");
        }
        while rpo_number[b] > rpo_number[a] {
            b = idom[b].expect("processed block has an idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ImageBuilder;
    use crate::reg::{Cc, Operand, Reg};

    /// Diamond: entry -> (left | right) -> join -> exit.
    fn diamond_unit() -> Unit {
        let mut b = ImageBuilder::new();
        let a = b.text();
        let left = a.label();
        let join = a.label();
        a.cmp(Operand::Reg(Reg::Eax), Operand::Imm(0)); // B0
        a.jcc(Cc::E, left);
        a.out(Operand::Imm(1)); // B1 (right)
        a.jmp(join);
        a.bind(left);
        a.out(Operand::Imm(2)); // B2 (left)
        a.bind(join);
        a.out(Operand::Imm(3)); // B3 (join; left falls through)
        a.halt();
        crate::rewrite::Unit::from_image(&b.finish().unwrap()).unwrap()
    }

    #[test]
    fn diamond_blocks_and_dominators() {
        let unit = diamond_unit();
        let cfg = Cfg::build(&unit);
        assert_eq!(cfg.len(), 4);
        assert!(!cfg.has_indirect_jumps());
        let idom = cfg.immediate_dominators();
        assert_eq!(idom[0], Some(0));
        assert_eq!(idom[1], Some(0));
        assert_eq!(idom[2], Some(0));
        assert_eq!(idom[3], Some(0), "join is dominated only by the entry");
        assert!(cfg.dominates(0, 3));
        assert!(!cfg.dominates(1, 3));
        assert!(!cfg.dominates(2, 3));
        assert!(cfg.dominates(0, 0));
    }

    #[test]
    fn item_dominance_within_and_across_blocks() {
        let unit = diamond_unit();
        let cfg = Cfg::build(&unit);
        // Item 0 (cmp) dominates everything reachable.
        for k in 0..unit.items.len() {
            assert!(cfg.item_dominates(0, k), "entry dominates item {k}");
        }
        // Within block 0: cmp (0) dominates jcc (1), not vice versa.
        assert!(cfg.item_dominates(0, 1));
        assert!(!cfg.item_dominates(1, 0));
        // The right-arm out (item 2) does not dominate the join (item 6).
        assert!(!cfg.item_dominates(2, 6));
    }

    #[test]
    fn straight_line_chain_of_dominators() {
        let mut b = ImageBuilder::new();
        let a = b.text();
        let next = a.label();
        a.out(Operand::Imm(1));
        a.jmp(next);
        a.bind(next);
        a.out(Operand::Imm(2));
        a.halt();
        let unit = crate::rewrite::Unit::from_image(&b.finish().unwrap()).unwrap();
        let cfg = Cfg::build(&unit);
        assert_eq!(cfg.len(), 2);
        assert!(cfg.dominates(0, 1));
        assert!(!cfg.dominates(1, 0));
    }

    #[test]
    fn unreachable_blocks_have_no_dominators() {
        let mut b = ImageBuilder::new();
        let a = b.text();
        let over = a.label();
        a.jmp(over);
        a.out(Operand::Imm(9)); // dead block
        a.bind(over);
        a.halt();
        let unit = crate::rewrite::Unit::from_image(&b.finish().unwrap()).unwrap();
        let cfg = Cfg::build(&unit);
        let idom = cfg.immediate_dominators();
        // The dead block (index 1) is unreachable.
        assert_eq!(idom[1], None);
        assert!(!cfg.dominates(0, 1));
        assert!(cfg.dominates(1, 1), "reflexive even when unreachable");
    }

    #[test]
    fn loops_keep_header_dominating_body() {
        let mut b = ImageBuilder::new();
        let a = b.text();
        let top = a.label();
        let done = a.label();
        a.mov_ri(Reg::Ecx, 5); // B0
        a.bind(top); // B1 header
        a.cmp(Operand::Reg(Reg::Ecx), Operand::Imm(0));
        a.jcc(Cc::Le, done);
        a.alu_ri(crate::reg::AluOp::Sub, Reg::Ecx, 1); // B2 body
        a.jmp(top);
        a.bind(done); // B3
        a.halt();
        let unit = crate::rewrite::Unit::from_image(&b.finish().unwrap()).unwrap();
        let cfg = Cfg::build(&unit);
        // items: mov(0) cmp(1) jcc(2) sub(3) jmp(4) halt(5)
        let header = cfg.block_of[1];
        let body = cfg.block_of[3];
        let exit = cfg.block_of[5];
        assert!(cfg.dominates(header, body));
        assert!(cfg.dominates(header, exit));
        assert!(!cfg.dominates(body, exit));
    }

    #[test]
    fn indirect_jumps_disable_item_dominance() {
        let mut b = ImageBuilder::new();
        let cell = b.data_u32(0);
        let a = b.text();
        a.mov_ri(Reg::Eax, 1);
        a.jmp_ind(Operand::Mem(crate::reg::Mem::abs(cell)));
        a.out(Operand::Imm(1));
        a.halt();
        let unit = crate::rewrite::Unit::from_image(&b.finish().unwrap()).unwrap();
        let cfg = Cfg::build(&unit);
        assert!(cfg.has_indirect_jumps());
        assert!(!cfg.item_dominates(0, 2), "unsound claims are refused");
        assert!(cfg.item_dominates(0, 0), "same item is still fine");
    }

    #[test]
    fn empty_unit() {
        let cfg = Cfg::build(&Unit::new());
        assert!(cfg.is_empty());
        assert!(cfg.immediate_dominators().is_empty());
    }
}
