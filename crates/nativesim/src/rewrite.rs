//! A link-time-style rewriting unit (the PLTO analogue).
//!
//! A [`Unit`] is a fully disassembled text section whose direct branch
//! targets have been lifted to *item indices*, plus the data section.
//! Inserting or replacing instructions re-lays-out the text and re-links
//! every direct `jmp`/`jcc`/`call` — exactly what a binary rewriter can
//! do. What it *cannot* do, just like a real rewriter, is fix absolute
//! code addresses hidden inside data (the branch function's XOR tables)
//! or address-valued immediates it cannot prove are code pointers: those
//! are represented by [`ImmFix::None`] after [`Unit::from_image`], and
//! the tamper-proofing of Section 4.3 exploits precisely this gap.

use std::collections::HashMap;

use crate::encode::{disassemble_all, encode};
use crate::image::{Image, DATA_BASE, TEXT_BASE};
use crate::insn::Insn;
use crate::reg::Operand;
use crate::SimError;

/// A deferred address-valued immediate, resolved at encode time.
///
/// Only the assembler creates non-`None` fixes; a unit lifted from an
/// existing image has no way to recover them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImmFix {
    /// The immediate is an ordinary constant; leave it alone.
    None,
    /// Write the final address of item `i` into the instruction's
    /// address slot.
    AbsAddr(usize),
    /// Write `addr(a) - addr(b)` into the instruction's address slot.
    DiffAddr(usize, usize),
}

/// One instruction in a unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// The instruction. For direct branches the encoded displacement is
    /// recomputed from `target` at encode time.
    pub insn: Insn,
    /// Item index this direct branch targets (`Some` exactly for `Jmp`,
    /// `Jcc`, `Call`).
    pub target: Option<usize>,
    /// Deferred address-valued immediate, if any.
    pub imm_fix: ImmFix,
}

impl Item {
    /// A plain item with no link-time references.
    pub fn plain(insn: Insn) -> Item {
        Item {
            insn,
            target: None,
            imm_fix: ImmFix::None,
        }
    }
}

/// A rewritable program: disassembled text plus raw data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unit {
    /// Instructions in layout order.
    pub items: Vec<Item>,
    /// The data section (absolute addresses inside are *not* modeled —
    /// that is the attack surface).
    pub data: Vec<u8>,
    /// Base address of the text section.
    pub text_base: u32,
    /// Base address of the data section (fixed; never moves when text
    /// grows).
    pub data_base: u32,
    /// Index of the entry instruction.
    pub entry_index: usize,
}

impl Unit {
    /// An empty unit at the standard bases.
    pub fn new() -> Unit {
        Unit {
            items: Vec::new(),
            data: Vec::new(),
            text_base: TEXT_BASE,
            data_base: DATA_BASE,
            entry_index: 0,
        }
    }

    /// Lifts an image into a rewritable unit: full linear disassembly,
    /// then direct-branch displacements become item indices.
    ///
    /// # Errors
    ///
    /// * decode errors from malformed text;
    /// * [`SimError::BadBranchTarget`] if a direct branch targets a
    ///   non-instruction address;
    /// * [`SimError::BadImage`] if the entry is not an instruction start.
    pub fn from_image(image: &Image) -> Result<Unit, SimError> {
        let listing = disassemble_all(&image.text, image.text_base)?;
        let addr_to_index: HashMap<u32, usize> = listing
            .iter()
            .enumerate()
            .map(|(i, &(addr, _))| (addr, i))
            .collect();
        let mut items = Vec::with_capacity(listing.len());
        for (k, &(addr, insn)) in listing.iter().enumerate() {
            let next_addr = listing
                .get(k + 1)
                .map(|&(a, _)| a)
                .unwrap_or(image.text_base + image.text.len() as u32);
            let target = match insn {
                Insn::Jmp(d) | Insn::Call(d) | Insn::Jcc(_, d) => {
                    let t = next_addr.wrapping_add(d as u32);
                    Some(*addr_to_index.get(&t).ok_or(SimError::BadBranchTarget {
                        from: addr,
                        target: t,
                    })?)
                }
                _ => None,
            };
            items.push(Item {
                insn,
                target,
                imm_fix: ImmFix::None,
            });
        }
        let entry_index = *addr_to_index
            .get(&image.entry)
            .ok_or(SimError::BadImage {
                reason: format!("entry {:#010x} is not an instruction start", image.entry),
            })?;
        Ok(Unit {
            items,
            data: image.data.clone(),
            text_base: image.text_base,
            data_base: image.data_base,
            entry_index,
        })
    }

    /// Final address of every item under the current layout.
    pub fn addresses(&self) -> Vec<u32> {
        let mut addrs = Vec::with_capacity(self.items.len());
        let mut addr = self.text_base;
        for item in &self.items {
            addrs.push(addr);
            addr += item.insn.len() as u32;
        }
        addrs
    }

    /// Inserts an item before position `at`. Direct-branch targets and
    /// fixups pointing at or beyond `at` shift by one, so existing jumps
    /// keep pointing at the instruction they pointed at (the inserted
    /// item is *skipped* by control flow into `at` — a rewriter inserting
    /// a no-op "between" instructions).
    ///
    /// # Panics
    ///
    /// Panics if `at > items.len()`.
    pub fn insert(&mut self, at: usize, item: Item) {
        assert!(at <= self.items.len(), "insertion point out of range");
        let shift = |t: usize| if t >= at { t + 1 } else { t };
        for existing in &mut self.items {
            if let Some(t) = existing.target.as_mut() {
                *t = shift(*t);
            }
            existing.imm_fix = match existing.imm_fix {
                ImmFix::None => ImmFix::None,
                ImmFix::AbsAddr(i) => ImmFix::AbsAddr(shift(i)),
                ImmFix::DiffAddr(a, b) => ImmFix::DiffAddr(shift(a), shift(b)),
            };
        }
        // The inserted item's own references are taken as final indices
        // (post-insertion); the caller computes them against the
        // post-insertion layout.
        if self.entry_index >= at {
            self.entry_index += 1;
        }
        self.items.insert(at, item);
    }

    /// Appends an item at the end of the text, returning its index.
    pub fn push(&mut self, item: Item) -> usize {
        self.items.push(item);
        self.items.len() - 1
    }

    /// Appends raw bytes to the data section, returning their absolute
    /// address.
    pub fn push_data(&mut self, bytes: &[u8]) -> u32 {
        let addr = self.data_base + self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Appends a little-endian u32 to the data section, returning its
    /// absolute address.
    pub fn push_data_u32(&mut self, v: u32) -> u32 {
        self.push_data(&v.to_le_bytes())
    }

    /// Encodes the unit back into an executable image, recomputing every
    /// direct-branch displacement and resolving address fixups.
    ///
    /// # Errors
    ///
    /// [`SimError::BadImage`] for layout violations (e.g. text grown past
    /// the data base).
    pub fn encode(&self) -> Result<Image, SimError> {
        let addrs = self.addresses();
        let text_end = self
            .text_base
            .wrapping_add(self.items.iter().map(|i| i.insn.len() as u32).sum::<u32>());
        let mut text = Vec::new();
        for (k, item) in self.items.iter().enumerate() {
            let mut insn = item.insn;
            if let Some(t) = item.target {
                let next = addrs.get(k + 1).copied().unwrap_or(text_end);
                let disp = addrs[t].wrapping_sub(next) as i32;
                match &mut insn {
                    Insn::Jmp(d) | Insn::Call(d) | Insn::Jcc(_, d) => *d = disp,
                    other => {
                        return Err(SimError::BadImage {
                            reason: format!("target set on non-branch {other}"),
                        })
                    }
                }
            }
            match item.imm_fix {
                ImmFix::None => {}
                ImmFix::AbsAddr(i) => set_addr_slot(&mut insn, addrs[i])?,
                ImmFix::DiffAddr(a, b) => {
                    set_addr_slot(&mut insn, addrs[a].wrapping_sub(addrs[b]))?
                }
            }
            encode(&insn, &mut text);
        }
        let image = Image {
            text_base: self.text_base,
            text,
            data_base: self.data_base,
            data: self.data.clone(),
            entry: addrs.get(self.entry_index).copied().ok_or_else(|| {
                SimError::BadImage {
                    reason: "entry index out of range".into(),
                }
            })?,
        };
        image.validate()?;
        Ok(image)
    }
}

impl Default for Unit {
    fn default() -> Self {
        Unit::new()
    }
}

/// Writes an address-valued constant into the instruction's address slot
/// (the immediate source operand, or the displacement of a `lea`).
fn set_addr_slot(insn: &mut Insn, value: u32) -> Result<(), SimError> {
    let slot: Option<&mut i32> = match insn {
        Insn::Mov(_, Operand::Imm(v))
        | Insn::Alu(_, _, Operand::Imm(v))
        | Insn::Cmp(_, Operand::Imm(v))
        | Insn::Push(Operand::Imm(v))
        | Insn::Out(Operand::Imm(v)) => Some(v),
        Insn::Lea(_, m) => Some(&mut m.disp),
        _ => None,
    };
    match slot {
        Some(s) => {
            *s = value as i32;
            Ok(())
        }
        None => Err(SimError::BadImage {
            reason: format!("no address slot in {insn}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ImageBuilder;
    use crate::cpu::Machine;
    use crate::reg::{AluOp, Cc, Operand, Reg};

    fn looping_image() -> Image {
        let mut b = ImageBuilder::new();
        let a = b.text();
        let top = a.label();
        a.mov_ri(Reg::Ecx, 3);
        a.bind(top);
        a.out(Operand::Reg(Reg::Ecx));
        a.alu_ri(AluOp::Sub, Reg::Ecx, 1);
        a.cmp(Operand::Reg(Reg::Ecx), Operand::Imm(0));
        a.jcc(Cc::G, top);
        a.halt();
        b.finish().unwrap()
    }

    #[test]
    fn lift_encode_round_trip_is_identity() {
        let img = looping_image();
        let unit = Unit::from_image(&img).unwrap();
        let re = unit.encode().unwrap();
        assert_eq!(re, img);
    }

    #[test]
    fn nop_insertion_preserves_direct_control_flow() {
        let img = looping_image();
        let mut unit = Unit::from_image(&img).unwrap();
        // Insert no-ops before every original instruction.
        let n = unit.items.len();
        for k in (0..n).rev() {
            unit.insert(k, Item::plain(Insn::Nop));
        }
        let re = unit.encode().unwrap();
        assert_ne!(re.text.len(), img.text.len());
        let out = Machine::load(&re).run(10_000).unwrap();
        assert_eq!(out.output, vec![3, 2, 1], "plain program survives no-ops");
    }

    #[test]
    fn addresses_shift_after_insertion() {
        let img = looping_image();
        let mut unit = Unit::from_image(&img).unwrap();
        let before = unit.addresses();
        unit.insert(1, Item::plain(Insn::Nop));
        let after = unit.addresses();
        assert_eq!(before[0], after[0]);
        assert_eq!(after[2], before[1] + 1, "everything after the nop shifts");
    }

    #[test]
    fn branch_into_middle_of_instruction_rejected() {
        // Build an image whose jmp lands inside an instruction encoding.
        let mut b = ImageBuilder::new();
        let a = b.text();
        a.mov_ri(Reg::Eax, 1); // 7 bytes
        a.halt();
        let mut img = b.finish().unwrap();
        // Append a jmp whose displacement targets text_base + 3.
        let jmp_addr = img.text_base + img.text.len() as u32;
        let disp = (img.text_base + 3).wrapping_sub(jmp_addr + 5) as i32;
        crate::encode::encode(&Insn::Jmp(disp), &mut img.text);
        assert!(matches!(
            Unit::from_image(&img),
            Err(SimError::BadBranchTarget { .. })
        ));
    }

    #[test]
    fn data_section_is_copied_verbatim() {
        let mut b = ImageBuilder::new();
        b.data_u32(0xDEAD_BEEF);
        let a = b.text();
        a.halt();
        let img = b.finish().unwrap();
        let mut unit = Unit::from_image(&img).unwrap();
        let addr = unit.push_data_u32(0x1234_5678);
        assert_eq!(addr, img.data_base + 4);
        let re = unit.encode().unwrap();
        assert_eq!(re.data.len(), 8);
        assert_eq!(&re.data[..4], &0xDEAD_BEEFu32.to_le_bytes());
    }

    #[test]
    fn entry_index_tracks_insertions() {
        let img = looping_image();
        let mut unit = Unit::from_image(&img).unwrap();
        unit.insert(0, Item::plain(Insn::Nop));
        assert_eq!(unit.entry_index, 1);
        let re = unit.encode().unwrap();
        // Entry skips the inserted nop; program still works.
        let out = Machine::load(&re).run(10_000).unwrap();
        assert_eq!(out.output, vec![3, 2, 1]);
    }
}
