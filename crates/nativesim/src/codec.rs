//! Compact binary serialization of executable images.
//!
//! A self-contained byte codec in the same style as `stackvm::codec`
//! (no external format crates): magic, little-endian fixed-width
//! integers, length-prefixed sections.

use std::error::Error;
use std::fmt;

use crate::image::Image;

const MAGIC: &[u8; 4] = b"PMIM";

/// Error decoding a serialized image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "image decode failed at byte {}: {}",
            self.offset, self.reason
        )
    }
}

impl Error for DecodeError {}

/// Serializes an image to bytes.
pub fn encode_image(image: &Image) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    write_u32(&mut out, image.text_base);
    write_u32(&mut out, image.text.len() as u32);
    out.extend_from_slice(&image.text);
    write_u32(&mut out, image.data_base);
    write_u32(&mut out, image.data.len() as u32);
    out.extend_from_slice(&image.data);
    write_u32(&mut out, image.entry);
    out
}

/// Deserializes an image from bytes (structure only; call
/// [`Image::validate`] afterwards for layout checks).
///
/// # Errors
///
/// [`DecodeError`] on truncation or a bad magic.
pub fn decode_image(bytes: &[u8]) -> Result<Image, DecodeError> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(r.err("bad magic"));
    }
    let text_base = r.u32()?;
    let text_len = r.u32()? as usize;
    let text = r.take(text_len)?.to_vec();
    let data_base = r.u32()?;
    let data_len = r.u32()? as usize;
    let data = r.take(data_len)?.to_vec();
    let entry = r.u32()?;
    Ok(Image {
        text_base,
        text,
        data_base,
        data,
        entry,
    })
}

fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, reason: &'static str) -> DecodeError {
        DecodeError {
            offset: self.pos,
            reason,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.err("truncated input"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{DATA_BASE, TEXT_BASE};

    fn sample() -> Image {
        Image {
            text_base: TEXT_BASE,
            text: vec![0x90, 0x01, 0x02, 0xFF],
            data_base: DATA_BASE,
            data: vec![1, 2, 3],
            entry: TEXT_BASE + 1,
        }
    }

    #[test]
    fn round_trip_preserves_image() {
        let image = sample();
        let bytes = encode_image(&image);
        assert_eq!(decode_image(&bytes).unwrap(), image);
    }

    #[test]
    fn empty_sections_round_trip() {
        let image = Image {
            text_base: TEXT_BASE,
            text: vec![],
            data_base: DATA_BASE,
            data: vec![],
            entry: TEXT_BASE,
        };
        assert_eq!(decode_image(&encode_image(&image)).unwrap(), image);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            decode_image(b"NOPE"),
            Err(DecodeError {
                offset: 4,
                reason: "bad magic"
            })
        );
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode_image(&sample());
        for cut in [0usize, 3, 7, 11, bytes.len() - 1] {
            assert!(decode_image(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
