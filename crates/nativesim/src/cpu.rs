//! The CPU: registers, flags, segmented memory, and single-step
//! execution.
//!
//! [`Machine::step`] executes exactly one instruction and reports what
//! happened — this is the "hardware single-stepping" interface the
//! watermark extraction tracer of Section 4.2.3 is built on. Callers that
//! only want program behavior use [`Machine::run`].

use crate::encode::decode;
use crate::image::{Image, STACK_SIZE, STACK_TOP};
use crate::insn::Insn;
use crate::reg::{AluOp, Cc, Mem, Operand, Reg};
use crate::SimError;

/// Arithmetic flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Carry flag (unsigned borrow/carry).
    pub cf: bool,
    /// Overflow flag (signed overflow).
    pub of: bool,
}

impl Flags {
    /// Packs the flags into a word for `pushf`.
    pub fn to_word(self) -> u32 {
        u32::from(self.zf)
            | u32::from(self.sf) << 1
            | u32::from(self.cf) << 2
            | u32::from(self.of) << 3
    }

    /// Unpacks a `popf` word.
    pub fn from_word(w: u32) -> Flags {
        Flags {
            zf: w & 1 != 0,
            sf: w & 2 != 0,
            cf: w & 4 != 0,
            of: w & 8 != 0,
        }
    }

    /// Evaluates a condition code against the flags.
    pub fn cond(self, cc: Cc) -> bool {
        match cc {
            Cc::E => self.zf,
            Cc::Ne => !self.zf,
            Cc::L => self.sf != self.of,
            Cc::Le => self.zf || self.sf != self.of,
            Cc::G => !self.zf && self.sf == self.of,
            Cc::Ge => self.sf == self.of,
            Cc::B => self.cf,
            Cc::Ae => !self.cf,
        }
    }
}

enum Seg {
    Text,
    Data,
    Stack,
}

/// Segmented memory: read-only text, writable data, writable stack.
#[derive(Debug, Clone)]
pub struct Memory {
    text_base: u32,
    text: Vec<u8>,
    data_base: u32,
    data: Vec<u8>,
    stack: Vec<u8>,
}

impl Memory {
    /// Builds memory from an image, with a zeroed stack segment.
    pub fn from_image(image: &Image) -> Memory {
        Memory {
            text_base: image.text_base,
            text: image.text.clone(),
            data_base: image.data_base,
            data: image.data.clone(),
            stack: vec![0u8; STACK_SIZE as usize],
        }
    }

    /// Offset of `addr` inside the text section, if it maps there (the
    /// decode cache of [`Machine::step`] is indexed by this).
    fn text_offset(&self, addr: u32) -> Option<usize> {
        if addr >= self.text_base {
            let off = (addr - self.text_base) as usize;
            if off < self.text.len() {
                return Some(off);
            }
        }
        None
    }

    fn locate(&self, addr: u32) -> Result<(Seg, usize), SimError> {
        if addr >= self.text_base {
            let off = (addr - self.text_base) as usize;
            if off < self.text.len() {
                return Ok((Seg::Text, off));
            }
        }
        if addr >= self.data_base {
            let off = (addr - self.data_base) as usize;
            if off < self.data.len() {
                return Ok((Seg::Data, off));
            }
        }
        let stack_lo = STACK_TOP - STACK_SIZE;
        if addr >= stack_lo && addr < STACK_TOP {
            return Ok((Seg::Stack, (addr - stack_lo) as usize));
        }
        Err(SimError::MemFault { addr })
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SimError::MemFault`] on unmapped addresses.
    pub fn read_u8(&self, addr: u32) -> Result<u8, SimError> {
        let (seg, off) = self.locate(addr)?;
        Ok(match seg {
            Seg::Text => self.text[off],
            Seg::Data => self.data[off],
            Seg::Stack => self.stack[off],
        })
    }

    /// Reads a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// [`SimError::MemFault`] on unmapped addresses.
    pub fn read_u32(&self, addr: u32) -> Result<u32, SimError> {
        // Fast path: the whole word lives in one segment (the
        // overwhelmingly common case for stack and data traffic), so one
        // locate and one 4-byte slice read replace four byte reads.
        let (seg, off) = self.locate(addr)?;
        let seg_bytes = match seg {
            Seg::Text => &self.text,
            Seg::Data => &self.data,
            Seg::Stack => &self.stack,
        };
        if let Some(word) = seg_bytes.get(off..off + 4) {
            return Ok(u32::from_le_bytes(word.try_into().expect("4-byte slice")));
        }
        // Segment boundary: fall back to byte-at-a-time, which preserves
        // the semantics of words straddling adjacently-mapped segments
        // (and of partial faults).
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u32))?;
        }
        Ok(u32::from_le_bytes(bytes))
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// [`SimError::TextWrite`] for text addresses (the text section is
    /// read-only at runtime); [`SimError::MemFault`] when unmapped.
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), SimError> {
        let (seg, off) = self.locate(addr)?;
        match seg {
            Seg::Text => return Err(SimError::TextWrite { addr }),
            Seg::Data => self.data[off] = value,
            Seg::Stack => self.stack[off] = value,
        }
        Ok(())
    }

    /// Writes a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// As for [`Memory::write_u8`].
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), SimError> {
        // Fast path mirror of `read_u32`: one locate, one 4-byte copy.
        let (seg, off) = self.locate(addr)?;
        let seg_bytes = match seg {
            Seg::Text => return Err(SimError::TextWrite { addr }),
            Seg::Data => &mut self.data,
            Seg::Stack => &mut self.stack,
        };
        if let Some(word) = seg_bytes.get_mut(off..off + 4) {
            word.copy_from_slice(&value.to_le_bytes());
            return Ok(());
        }
        // Segment boundary: byte-at-a-time keeps the partial-write
        // semantics (bytes before the faulting one land).
        for (i, b) in value.to_le_bytes().into_iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b)?;
        }
        Ok(())
    }

    /// Borrows up to `max` contiguous bytes starting at `addr`, for
    /// instruction fetch.
    ///
    /// # Errors
    ///
    /// [`SimError::MemFault`] when `addr` is unmapped.
    pub fn fetch_slice(&self, addr: u32, max: usize) -> Result<&[u8], SimError> {
        let (seg, off) = self.locate(addr)?;
        let seg_bytes = match seg {
            Seg::Text => &self.text,
            Seg::Data => &self.data,
            Seg::Stack => &self.stack,
        };
        let end = (off + max).min(seg_bytes.len());
        Ok(&seg_bytes[off..end])
    }
}

/// What one [`Machine::step`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Address of the executed instruction.
    pub pc: u32,
    /// The executed instruction.
    pub insn: Insn,
    /// Address of the next instruction to execute.
    pub next_pc: u32,
    /// Whether the instruction was `halt`.
    pub halted: bool,
}

/// Result of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Values written by `out`, in order — the observable output.
    pub output: Vec<u32>,
    /// Number of instructions executed — the deterministic cost metric
    /// for the slowdown experiments (Figure 9(b)).
    pub instructions: u64,
}

/// A CPU wired to a memory: the unit of execution.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Machine {
    /// General-purpose registers, indexed by [`Reg`] encoding.
    pub regs: [u32; 8],
    /// Instruction pointer.
    pub eip: u32,
    /// Arithmetic flags.
    pub flags: Flags,
    /// The memory.
    pub mem: Memory,
    /// Remaining input values for `in`.
    pub input: Vec<u32>,
    input_pos: usize,
    /// Accumulated `out` values.
    pub output: Vec<u32>,
    /// Per-image predecode table over the text section, indexed by text
    /// offset: each pc decodes at most once per load. Sound because the
    /// text section is read-only at runtime ([`SimError::TextWrite`]), so
    /// a cached decode can never go stale. Decode *errors* are not
    /// cached — they propagate, and a faulted machine is dead anyway.
    decoded: Vec<Option<(Insn, u8)>>,
}

impl Machine {
    /// Loads an image: memory initialized, `esp` at the stack top, `eip`
    /// at the entry point.
    pub fn load(image: &Image) -> Machine {
        let mut m = Machine {
            regs: [0; 8],
            eip: image.entry,
            flags: Flags::default(),
            mem: Memory::from_image(image),
            input: Vec::new(),
            input_pos: 0,
            output: Vec::new(),
            decoded: vec![None; image.text.len()],
        };
        m.regs[Reg::Esp as usize] = STACK_TOP - 16;
        m
    }

    /// Sets the input sequence consumed by `in` (the secret watermark
    /// input for native programs).
    pub fn with_input(mut self, input: Vec<u32>) -> Machine {
        self.input = input;
        self
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r as usize]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        self.regs[r as usize] = v;
    }

    /// Effective address of a memory operand.
    pub fn effective_addr(&self, m: &Mem) -> u32 {
        let mut addr = m.disp as u32;
        if let Some(b) = m.base {
            addr = addr.wrapping_add(self.reg(b));
        }
        if let Some((i, scale)) = m.index {
            addr = addr.wrapping_add(self.reg(i).wrapping_mul(scale as u32));
        }
        addr
    }

    fn read_operand(&self, op: &Operand) -> Result<u32, SimError> {
        match op {
            Operand::Reg(r) => Ok(self.reg(*r)),
            Operand::Imm(v) => Ok(*v as u32),
            Operand::Mem(m) => self.mem.read_u32(self.effective_addr(m)),
        }
    }

    fn write_operand(&mut self, op: &Operand, value: u32, pc: u32) -> Result<(), SimError> {
        match op {
            Operand::Reg(r) => {
                self.set_reg(*r, value);
                Ok(())
            }
            Operand::Mem(m) => self.mem.write_u32(self.effective_addr(m), value),
            Operand::Imm(_) => Err(SimError::BadDestination { addr: pc }),
        }
    }

    fn push(&mut self, value: u32) -> Result<(), SimError> {
        let esp = self.reg(Reg::Esp).wrapping_sub(4);
        self.mem.write_u32(esp, value)?;
        self.set_reg(Reg::Esp, esp);
        Ok(())
    }

    fn pop(&mut self) -> Result<u32, SimError> {
        let esp = self.reg(Reg::Esp);
        let v = self.mem.read_u32(esp)?;
        self.set_reg(Reg::Esp, esp.wrapping_add(4));
        Ok(v)
    }

    fn set_zf_sf(&mut self, r: u32) {
        self.flags.zf = r == 0;
        self.flags.sf = (r as i32) < 0;
    }

    fn sub_flags(&mut self, a: u32, b: u32) -> u32 {
        let r = a.wrapping_sub(b);
        self.set_zf_sf(r);
        self.flags.cf = a < b;
        self.flags.of = ((a ^ b) & (a ^ r)) & 0x8000_0000 != 0;
        r
    }

    /// Executes exactly one instruction.
    ///
    /// # Errors
    ///
    /// Decode and memory faults propagate; a faulted machine should be
    /// considered dead (the resilience experiments treat any fault as
    /// "the program broke").
    pub fn step(&mut self) -> Result<Step, SimError> {
        let pc = self.eip;
        let (insn, len) = self.fetch_decode(pc)?;
        let fall = pc.wrapping_add(len as u32);
        let mut next = fall;
        let mut halted = false;
        match &insn {
            Insn::Nop => {}
            Insn::Halt => {
                halted = true;
                next = pc;
            }
            Insn::Mov(d, s) => {
                let v = self.read_operand(s)?;
                self.write_operand(d, v, pc)?;
            }
            Insn::Lea(r, m) => {
                let addr = self.effective_addr(m);
                self.set_reg(*r, addr);
            }
            Insn::Alu(op, d, s) => {
                let a = self.read_operand(d)?;
                let b = self.read_operand(s)?;
                let r = match op {
                    AluOp::Add => {
                        let (r, carry) = a.overflowing_add(b);
                        self.flags.cf = carry;
                        self.flags.of = ((a ^ r) & (b ^ r)) & 0x8000_0000 != 0;
                        self.set_zf_sf(r);
                        r
                    }
                    AluOp::Sub => self.sub_flags(a, b),
                    AluOp::And => {
                        let r = a & b;
                        self.flags.cf = false;
                        self.flags.of = false;
                        self.set_zf_sf(r);
                        r
                    }
                    AluOp::Or => {
                        let r = a | b;
                        self.flags.cf = false;
                        self.flags.of = false;
                        self.set_zf_sf(r);
                        r
                    }
                    AluOp::Xor => {
                        let r = a ^ b;
                        self.flags.cf = false;
                        self.flags.of = false;
                        self.set_zf_sf(r);
                        r
                    }
                    AluOp::Shl => {
                        let r = a.wrapping_shl(b & 31);
                        self.flags.cf = false;
                        self.flags.of = false;
                        self.set_zf_sf(r);
                        r
                    }
                    AluOp::Shr => {
                        let r = a.wrapping_shr(b & 31);
                        self.flags.cf = false;
                        self.flags.of = false;
                        self.set_zf_sf(r);
                        r
                    }
                    AluOp::Sar => {
                        let r = ((a as i32).wrapping_shr(b & 31)) as u32;
                        self.flags.cf = false;
                        self.flags.of = false;
                        self.set_zf_sf(r);
                        r
                    }
                    AluOp::Imul => {
                        let wide = (a as i32 as i64).wrapping_mul(b as i32 as i64);
                        let r = wide as u32;
                        let overflow = wide != (r as i32 as i64);
                        self.flags.cf = overflow;
                        self.flags.of = overflow;
                        self.set_zf_sf(r);
                        r
                    }
                };
                self.write_operand(d, r, pc)?;
            }
            Insn::Cmp(a, b) => {
                let av = self.read_operand(a)?;
                let bv = self.read_operand(b)?;
                self.sub_flags(av, bv);
            }
            Insn::Test(a, b) => {
                let r = self.read_operand(a)? & self.read_operand(b)?;
                self.flags.cf = false;
                self.flags.of = false;
                self.set_zf_sf(r);
            }
            Insn::Jmp(d) => next = fall.wrapping_add(*d as u32),
            Insn::Jcc(cc, d) => {
                if self.flags.cond(*cc) {
                    next = fall.wrapping_add(*d as u32);
                }
            }
            Insn::Call(d) => {
                self.push(fall)?;
                next = fall.wrapping_add(*d as u32);
            }
            Insn::JmpInd(op) => next = self.read_operand(op)?,
            Insn::CallInd(op) => {
                let target = self.read_operand(op)?;
                self.push(fall)?;
                next = target;
            }
            Insn::Ret => next = self.pop()?,
            Insn::Push(op) => {
                let v = self.read_operand(op)?;
                self.push(v)?;
            }
            Insn::Pop(r) => {
                let v = self.pop()?;
                self.set_reg(*r, v);
            }
            Insn::Pushf => {
                let w = self.flags.to_word();
                self.push(w)?;
            }
            Insn::Popf => {
                let w = self.pop()?;
                self.flags = Flags::from_word(w);
            }
            Insn::Out(op) => {
                let v = self.read_operand(op)?;
                self.output.push(v);
            }
            Insn::In(r) => {
                let v = self.input.get(self.input_pos).copied().unwrap_or(0);
                self.input_pos += 1;
                self.set_reg(*r, v);
            }
        }
        self.eip = next;
        Ok(Step {
            pc,
            insn,
            next_pc: next,
            halted,
        })
    }

    /// Fetches and decodes the instruction at `pc`, consulting the text
    /// predecode cache first: on the run/single-step hot path each text
    /// pc reaches [`decode`] exactly once per [`Machine::load`]. A pc
    /// outside text (executing from data or the stack is legal here)
    /// decodes live every time.
    fn fetch_decode(&mut self, pc: u32) -> Result<(Insn, usize), SimError> {
        if let Some(off) = self.mem.text_offset(pc) {
            if let Some((insn, len)) = self.decoded[off] {
                return Ok((insn, len as usize));
            }
            let window = self.mem.fetch_slice(pc, 16)?;
            let (insn, len) = decode(window, pc)?;
            self.decoded[off] = Some((insn, len as u8));
            return Ok((insn, len));
        }
        let window = self.mem.fetch_slice(pc, 16)?;
        decode(window, pc)
    }

    /// Runs until `halt` or the instruction budget is exhausted.
    ///
    /// # Errors
    ///
    /// Any fault from [`Machine::step`], or
    /// [`SimError::BudgetExhausted`].
    pub fn run(&mut self, budget: u64) -> Result<Outcome, SimError> {
        let mut executed = 0u64;
        loop {
            if executed >= budget {
                return Err(SimError::BudgetExhausted { budget });
            }
            let step = self.step()?;
            executed += 1;
            if step.halted {
                return Ok(Outcome {
                    output: std::mem::take(&mut self.output),
                    instructions: executed,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ImageBuilder;
    use crate::reg::Operand::{Imm, Reg as R};

    fn run_image(image: &Image, input: Vec<u32>) -> Outcome {
        Machine::load(image)
            .with_input(input)
            .run(100_000)
            .expect("program runs")
    }

    #[test]
    fn mov_alu_out() {
        let mut b = ImageBuilder::new();
        let a = b.text();
        a.mov_ri(Reg::Eax, 10);
        a.mov_ri(Reg::Ebx, 32);
        a.alu_rr(AluOp::Add, Reg::Eax, Reg::Ebx);
        a.out(R(Reg::Eax));
        a.halt();
        let img = b.finish().unwrap();
        assert_eq!(run_image(&img, vec![]).output, vec![42]);
    }

    #[test]
    fn flags_and_conditional_jumps() {
        // Count down from 3, emitting each value.
        let mut b = ImageBuilder::new();
        let a = b.text();
        let top = a.label();
        a.mov_ri(Reg::Ecx, 3);
        a.bind(top);
        a.out(R(Reg::Ecx));
        a.alu_ri(AluOp::Sub, Reg::Ecx, 1);
        a.cmp(R(Reg::Ecx), Imm(0));
        a.jcc(Cc::G, top);
        a.halt();
        let img = b.finish().unwrap();
        assert_eq!(run_image(&img, vec![]).output, vec![3, 2, 1]);
    }

    #[test]
    fn signed_vs_unsigned_comparisons() {
        // -1 < 1 signed, but 0xFFFFFFFF > 1 unsigned.
        let mut b = ImageBuilder::new();
        let a = b.text();
        let signed_lt = a.label();
        let after = a.label();
        a.mov_ri(Reg::Eax, -1);
        a.cmp(R(Reg::Eax), Imm(1));
        a.jcc(Cc::L, signed_lt);
        a.out(Imm(0));
        a.jmp(after);
        a.bind(signed_lt);
        a.out(Imm(1));
        a.bind(after);
        a.cmp(R(Reg::Eax), Imm(1));
        // unsigned: 0xFFFFFFFF is above 1, so B (below) must NOT be taken
        let below = a.label();
        let done = a.label();
        a.jcc(Cc::B, below);
        a.out(Imm(2));
        a.jmp(done);
        a.bind(below);
        a.out(Imm(3));
        a.bind(done);
        a.halt();
        let img = b.finish().unwrap();
        assert_eq!(run_image(&img, vec![]).output, vec![1, 2]);
    }

    #[test]
    fn call_ret_and_stack() {
        let mut b = ImageBuilder::new();
        let a = b.text();
        let func = a.label();
        a.call(func);
        a.out(Imm(2));
        a.halt();
        a.bind(func);
        a.out(Imm(1));
        a.ret();
        let img = b.finish().unwrap();
        assert_eq!(run_image(&img, vec![]).output, vec![1, 2]);
    }

    #[test]
    fn return_address_is_modifiable_on_stack() {
        // The branch-function primitive: the callee adds a displacement
        // to its own return address.
        let mut b = ImageBuilder::new();
        let a = b.text();
        let f = a.label();
        let skipped = a.label();
        let target = a.label();
        a.call(f);
        a.bind(skipped);
        a.out(Imm(99)); // must be skipped
        a.bind(target);
        a.out(Imm(7));
        a.halt();
        // f: add (target - skipped) to the return address, then ret.
        a.bind(f);
        a.alu_label_diff(Reg::Esp, 0, target, skipped);
        a.ret();
        let img = b.finish().unwrap();
        assert_eq!(run_image(&img, vec![]).output, vec![7]);
    }

    #[test]
    fn indirect_jump_through_data_cell() {
        let mut b = ImageBuilder::new();
        let cell = b.data_u32(0); // patched below via mov
        let a = b.text();
        let dest = a.label();
        a.lea_label(Reg::Eax, dest);
        a.mov_mr(Mem::abs(cell), Reg::Eax);
        a.jmp_ind(Operand::Mem(Mem::abs(cell)));
        a.out(Imm(0)); // skipped
        a.bind(dest);
        a.out(Imm(5));
        a.halt();
        let img = b.finish().unwrap();
        assert_eq!(run_image(&img, vec![]).output, vec![5]);
    }

    #[test]
    fn input_consumed_then_zero() {
        let mut b = ImageBuilder::new();
        let a = b.text();
        a.in_(Reg::Eax);
        a.out(R(Reg::Eax));
        a.in_(Reg::Eax);
        a.out(R(Reg::Eax));
        a.halt();
        let img = b.finish().unwrap();
        assert_eq!(run_image(&img, vec![11]).output, vec![11, 0]);
    }

    #[test]
    fn text_write_faults() {
        let mut b = ImageBuilder::new();
        let a = b.text();
        a.mov_mi(Mem::abs(crate::image::TEXT_BASE), 0);
        a.halt();
        let img = b.finish().unwrap();
        let err = Machine::load(&img).run(1000).unwrap_err();
        assert!(matches!(err, SimError::TextWrite { .. }));
    }

    #[test]
    fn unmapped_access_faults() {
        let mut b = ImageBuilder::new();
        let a = b.text();
        a.mov_rm(Reg::Eax, Mem::abs(0x10));
        a.halt();
        let img = b.finish().unwrap();
        let err = Machine::load(&img).run(1000).unwrap_err();
        assert_eq!(err, SimError::MemFault { addr: 0x10 });
    }

    #[test]
    fn budget_exhaustion() {
        let mut b = ImageBuilder::new();
        let a = b.text();
        let top = a.label();
        a.bind(top);
        a.jmp(top);
        let img = b.finish().unwrap();
        let err = Machine::load(&img).run(100).unwrap_err();
        assert_eq!(err, SimError::BudgetExhausted { budget: 100 });
    }

    #[test]
    fn pushf_popf_round_trip() {
        let mut b = ImageBuilder::new();
        let a = b.text();
        let t = a.label();
        a.cmp(Imm(1), Imm(1)); // zf set
        a.pushf();
        a.cmp(Imm(1), Imm(2)); // zf cleared
        a.popf(); // zf restored
        a.jcc(Cc::E, t);
        a.out(Imm(0));
        a.halt();
        a.bind(t);
        a.out(Imm(1));
        a.halt();
        let img = b.finish().unwrap();
        assert_eq!(run_image(&img, vec![]).output, vec![1]);
    }

    #[test]
    fn word_access_at_segment_boundary_matches_byte_semantics() {
        let mut b = ImageBuilder::new();
        let c0 = b.data_u32(0x0403_0201);
        let c1 = b.data_u32(0x0807_0605);
        let a = b.text();
        a.halt();
        let img = b.finish().unwrap();
        let mut m = Machine::load(&img);

        // Aligned and misaligned in-segment reads take the fast path.
        assert_eq!(m.mem.read_u32(c0).unwrap(), 0x0403_0201);
        assert_eq!(m.mem.read_u32(c0 + 2).unwrap(), 0x0605_0403);

        // A word straddling the end of data falls back to byte-at-a-time
        // and faults on the first unmapped byte, as before.
        assert_eq!(
            m.mem.read_u32(c1 + 2).unwrap_err(),
            SimError::MemFault { addr: c1 + 4 }
        );
        assert_eq!(
            m.mem.write_u32(c1 + 2, 0x0403_0201).unwrap_err(),
            SimError::MemFault { addr: c1 + 4 }
        );
        // ... with the in-bounds prefix of the write landed (the
        // byte-loop partial-write semantics).
        assert_eq!(m.mem.read_u8(c1 + 2).unwrap(), 0x01);
        assert_eq!(m.mem.read_u8(c1 + 3).unwrap(), 0x02);

        // In-segment word write round-trips through the fast path.
        m.mem.write_u32(c0, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.mem.read_u32(c0).unwrap(), 0xDEAD_BEEF);

        // Text stays write-protected on the word fast path.
        assert!(matches!(
            m.mem.write_u32(img.text_base, 0),
            Err(SimError::TextWrite { .. })
        ));
    }

    #[test]
    fn executes_from_writable_memory_via_live_decode() {
        // `halt` encodes as a single 0x01 byte; plant it in the data
        // segment and jump there. Non-text pcs bypass the predecode
        // cache (which only spans the text section) and decode live.
        let mut b = ImageBuilder::new();
        let cell = b.data_u32(u32::from(crate::insn::opcode::HALT));
        let a = b.text();
        a.out(Imm(1));
        a.jmp_ind(Operand::Imm(cell as i32));
        let img = b.finish().unwrap();
        let out = run_image(&img, vec![]);
        assert_eq!(out.output, vec![1]);
        assert_eq!(out.instructions, 3, "out, jmp, then the planted halt");
    }

    #[test]
    fn imul_and_shifts() {
        let mut b = ImageBuilder::new();
        let a = b.text();
        a.mov_ri(Reg::Eax, 0x1a);
        a.alu_ri(AluOp::Shl, Reg::Eax, 12);
        a.alu_ri(AluOp::Shr, Reg::Eax, 21);
        a.out(R(Reg::Eax));
        a.mov_ri(Reg::Ebx, -3);
        a.alu_ri(AluOp::Imul, Reg::Ebx, 14);
        a.out(R(Reg::Ebx));
        a.mov_ri(Reg::Ecx, -16);
        a.alu_ri(AluOp::Sar, Reg::Ecx, 2);
        a.out(R(Reg::Ecx));
        a.halt();
        let img = b.finish().unwrap();
        let out = run_image(&img, vec![]);
        assert_eq!(out.output, vec![(0x1au32 << 12) >> 21, (-42i32) as u32, (-4i32) as u32]);
    }
}
