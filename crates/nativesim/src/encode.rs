//! Binary encoding and decoding of instructions.
//!
//! The encoding is deliberately variable-length (1–13 bytes): address
//! arithmetic — forward/backward call sites encoding watermark bits,
//! no-op insertion shifting everything downstream — is the whole point of
//! the native scheme.

use crate::insn::{opcode, Insn};
use crate::reg::{AluOp, Cc, Mem, Operand, Reg};
use crate::SimError;

/// Encodes one instruction, appending to `out`.
pub fn encode(insn: &Insn, out: &mut Vec<u8>) {
    let start = out.len();
    match insn {
        Insn::Nop => out.push(opcode::NOP),
        Insn::Halt => out.push(opcode::HALT),
        Insn::Ret => out.push(opcode::RET),
        Insn::Pushf => out.push(opcode::PUSHF),
        Insn::Popf => out.push(opcode::POPF),
        Insn::Mov(d, s) => {
            out.push(opcode::MOV);
            encode_operand(d, out);
            encode_operand(s, out);
        }
        Insn::Lea(r, m) => {
            out.push(opcode::LEA);
            out.push(r.to_byte());
            encode_mem(m, out);
        }
        Insn::Alu(op, d, s) => {
            out.push(opcode::ALU);
            out.push(*op as u8);
            encode_operand(d, out);
            encode_operand(s, out);
        }
        Insn::Cmp(a, b) => {
            out.push(opcode::CMP);
            encode_operand(a, out);
            encode_operand(b, out);
        }
        Insn::Test(a, b) => {
            out.push(opcode::TEST);
            encode_operand(a, out);
            encode_operand(b, out);
        }
        Insn::Jmp(d) => {
            out.push(opcode::JMP);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Insn::Jcc(cc, d) => {
            out.push(opcode::JCC);
            out.push(*cc as u8);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Insn::Call(d) => {
            out.push(opcode::CALL);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Insn::JmpInd(op) => {
            out.push(opcode::JMP_IND);
            encode_operand(op, out);
        }
        Insn::CallInd(op) => {
            out.push(opcode::CALL_IND);
            encode_operand(op, out);
        }
        Insn::Push(op) => {
            out.push(opcode::PUSH);
            encode_operand(op, out);
        }
        Insn::Pop(r) => {
            out.push(opcode::POP);
            out.push(r.to_byte());
        }
        Insn::Out(op) => {
            out.push(opcode::OUT);
            encode_operand(op, out);
        }
        Insn::In(r) => {
            out.push(opcode::IN);
            out.push(r.to_byte());
        }
    }
    debug_assert_eq!(out.len() - start, insn.len(), "length model out of sync");
}

const TAG_REG: u8 = 0;
const TAG_IMM: u8 = 1;
const TAG_MEM: u8 = 2;

fn encode_operand(op: &Operand, out: &mut Vec<u8>) {
    match op {
        Operand::Reg(r) => {
            out.push(TAG_REG);
            out.push(r.to_byte());
        }
        Operand::Imm(v) => {
            out.push(TAG_IMM);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Operand::Mem(m) => {
            out.push(TAG_MEM);
            encode_mem(m, out);
        }
    }
}

fn encode_mem(m: &Mem, out: &mut Vec<u8>) {
    // flags: bit0 = has base, bit1 = has index, bits 2-3 = log2(scale)
    let mut flags = 0u8;
    if m.base.is_some() {
        flags |= 1;
    }
    if let Some((_, scale)) = m.index {
        flags |= 2;
        flags |= (scale.trailing_zeros() as u8) << 2;
    }
    out.push(flags);
    if let Some(b) = m.base {
        out.push(b.to_byte());
    }
    if let Some((i, _)) = m.index {
        out.push(i.to_byte());
    }
    out.extend_from_slice(&m.disp.to_le_bytes());
}

/// A decoding cursor over raw bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    base_addr: u32,
}

impl Cursor<'_> {
    fn fault(&self) -> SimError {
        SimError::MemFault {
            addr: self.base_addr.wrapping_add(self.pos as u32),
        }
    }

    fn u8(&mut self) -> Result<u8, SimError> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| self.fault())?;
        self.pos += 1;
        Ok(b)
    }

    fn i32(&mut self) -> Result<i32, SimError> {
        let end = self.pos + 4;
        let slice = self.bytes.get(self.pos..end).ok_or_else(|| self.fault())?;
        self.pos = end;
        Ok(i32::from_le_bytes(slice.try_into().expect("4-byte slice")))
    }

    fn reg(&mut self) -> Result<Reg, SimError> {
        let b = self.u8()?;
        Reg::from_byte(b).ok_or(SimError::BadOpcode {
            addr: self.base_addr.wrapping_add(self.pos as u32 - 1),
            byte: b,
        })
    }

    fn mem(&mut self) -> Result<Mem, SimError> {
        let flags = self.u8()?;
        let base = if flags & 1 != 0 {
            Some(self.reg()?)
        } else {
            None
        };
        let index = if flags & 2 != 0 {
            let r = self.reg()?;
            Some((r, 1u8 << ((flags >> 2) & 3)))
        } else {
            None
        };
        let disp = self.i32()?;
        Ok(Mem { base, index, disp })
    }

    fn operand(&mut self) -> Result<Operand, SimError> {
        let tag = self.u8()?;
        match tag {
            TAG_REG => Ok(Operand::Reg(self.reg()?)),
            TAG_IMM => Ok(Operand::Imm(self.i32()?)),
            TAG_MEM => Ok(Operand::Mem(self.mem()?)),
            other => Err(SimError::BadOpcode {
                addr: self.base_addr.wrapping_add(self.pos as u32 - 1),
                byte: other,
            }),
        }
    }
}

/// Decodes the instruction starting at `bytes[0]`, returning it and its
/// encoded length. `addr` is the address of `bytes[0]`, used only for
/// error reporting.
///
/// # Errors
///
/// [`SimError::BadOpcode`] on an unknown opcode or malformed operand;
/// [`SimError::MemFault`] if the encoding is truncated.
pub fn decode(bytes: &[u8], addr: u32) -> Result<(Insn, usize), SimError> {
    let mut c = Cursor {
        bytes,
        pos: 0,
        base_addr: addr,
    };
    let op = c.u8()?;
    let insn = match op {
        opcode::NOP => Insn::Nop,
        opcode::HALT => Insn::Halt,
        opcode::RET => Insn::Ret,
        opcode::PUSHF => Insn::Pushf,
        opcode::POPF => Insn::Popf,
        opcode::MOV => Insn::Mov(c.operand()?, c.operand()?),
        opcode::LEA => Insn::Lea(c.reg()?, c.mem()?),
        opcode::ALU => {
            let ob = c.u8()?;
            let alu = AluOp::from_byte(ob).ok_or(SimError::BadOpcode { addr, byte: ob })?;
            Insn::Alu(alu, c.operand()?, c.operand()?)
        }
        opcode::CMP => Insn::Cmp(c.operand()?, c.operand()?),
        opcode::TEST => Insn::Test(c.operand()?, c.operand()?),
        opcode::JMP => Insn::Jmp(c.i32()?),
        opcode::JCC => {
            let cb = c.u8()?;
            let cc = Cc::from_byte(cb).ok_or(SimError::BadOpcode { addr, byte: cb })?;
            Insn::Jcc(cc, c.i32()?)
        }
        opcode::CALL => Insn::Call(c.i32()?),
        opcode::JMP_IND => Insn::JmpInd(c.operand()?),
        opcode::CALL_IND => Insn::CallInd(c.operand()?),
        opcode::PUSH => Insn::Push(c.operand()?),
        opcode::POP => Insn::Pop(c.reg()?),
        opcode::OUT => Insn::Out(c.operand()?),
        opcode::IN => Insn::In(c.reg()?),
        byte => return Err(SimError::BadOpcode { addr, byte }),
    };
    Ok((insn, c.pos))
}

/// Disassembles an entire byte region into `(address, instruction)`
/// pairs.
///
/// # Errors
///
/// Propagates decode failures (the region must contain only code).
pub fn disassemble_all(bytes: &[u8], base: u32) -> Result<Vec<(u32, Insn)>, SimError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let addr = base + pos as u32;
        let (insn, len) = decode(&bytes[pos..], addr)?;
        out.push((addr, insn));
        pos += len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_instruction_shapes() -> Vec<Insn> {
        use Operand::*;
        vec![
            Insn::Nop,
            Insn::Halt,
            Insn::Ret,
            Insn::Pushf,
            Insn::Popf,
            Insn::Mov(Reg(crate::reg::Reg::Eax), Imm(-7)),
            Insn::Mov(
                Mem(crate::reg::Mem::base_disp(crate::reg::Reg::Esp, 16)),
                Reg(crate::reg::Reg::Edx),
            ),
            Insn::Mov(
                Reg(crate::reg::Reg::Ecx),
                Mem(crate::reg::Mem::indexed(0x80d2bb0, crate::reg::Reg::Edx, 2)),
            ),
            Insn::Lea(
                crate::reg::Reg::Eax,
                crate::reg::Mem::base_disp(crate::reg::Reg::Edx, 0x80c3c08u32 as i32),
            ),
            Insn::Alu(AluOp::Xor, Reg(crate::reg::Reg::Eax), Reg(crate::reg::Reg::Ecx)),
            Insn::Alu(AluOp::Imul, Reg(crate::reg::Reg::Eax), Imm(12)),
            Insn::Alu(
                AluOp::Add,
                Mem(crate::reg::Mem::abs(0x1234)),
                Imm(1),
            ),
            Insn::Cmp(Reg(crate::reg::Reg::Eax), Imm(0)),
            Insn::Test(Reg(crate::reg::Reg::Ebx), Reg(crate::reg::Reg::Ebx)),
            Insn::Jmp(-1234),
            Insn::Jcc(Cc::Le, 99),
            Insn::Call(0x7FFF_0000),
            Insn::JmpInd(Mem(crate::reg::Mem::abs(0x2000))),
            Insn::CallInd(Reg(crate::reg::Reg::Esi)),
            Insn::Push(Imm(42)),
            Insn::Push(Reg(crate::reg::Reg::Ebp)),
            Insn::Pop(crate::reg::Reg::Edi),
            Insn::Out(Reg(crate::reg::Reg::Eax)),
            Insn::In(crate::reg::Reg::Eax),
        ]
    }

    #[test]
    fn encode_decode_round_trip_every_shape() {
        for insn in all_instruction_shapes() {
            let mut bytes = Vec::new();
            encode(&insn, &mut bytes);
            assert_eq!(bytes.len(), insn.len(), "length model for {insn}");
            let (decoded, len) = decode(&bytes, 0x8048000).unwrap();
            assert_eq!(decoded, insn);
            assert_eq!(len, bytes.len());
        }
    }

    #[test]
    fn stream_disassembly_round_trips() {
        let insns = all_instruction_shapes();
        let mut bytes = Vec::new();
        for i in &insns {
            encode(i, &mut bytes);
        }
        let listing = disassemble_all(&bytes, 0x8048000).unwrap();
        assert_eq!(listing.len(), insns.len());
        assert_eq!(listing[0].0, 0x8048000);
        for ((_, got), want) in listing.iter().zip(&insns) {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(
            decode(&[0xFF], 0x1000),
            Err(SimError::BadOpcode {
                addr: 0x1000,
                byte: 0xFF
            })
        );
    }

    #[test]
    fn truncated_encoding_faults() {
        let mut bytes = Vec::new();
        encode(&Insn::Call(12345), &mut bytes);
        bytes.truncate(3);
        assert!(matches!(
            decode(&bytes, 0x1000),
            Err(SimError::MemFault { .. })
        ));
    }

    #[test]
    fn bad_register_byte_rejected() {
        // mov with reg tag then invalid register 9
        let bytes = [opcode::MOV, TAG_REG, 9];
        assert!(matches!(
            decode(&bytes, 0),
            Err(SimError::BadOpcode { byte: 9, .. })
        ));
    }

    #[test]
    fn scale_encodings_round_trip() {
        for scale in [1u8, 2, 4, 8] {
            let m = Mem {
                base: Some(Reg::Ebx),
                index: Some((Reg::Ecx, scale)),
                disp: -8,
            };
            let insn = Insn::Lea(Reg::Eax, m);
            let mut bytes = Vec::new();
            encode(&insn, &mut bytes);
            let (decoded, _) = decode(&bytes, 0).unwrap();
            assert_eq!(decoded, insn);
        }
    }
}
