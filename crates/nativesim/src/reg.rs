//! Registers, condition codes, ALU operators, and operands.

use std::fmt;

/// The eight general-purpose 32-bit registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Reg {
    /// Accumulator.
    Eax = 0,
    /// Counter.
    Ecx = 1,
    /// Data.
    Edx = 2,
    /// Base.
    Ebx = 3,
    /// Stack pointer.
    Esp = 4,
    /// Frame pointer.
    Ebp = 5,
    /// Source index.
    Esi = 6,
    /// Destination index.
    Edi = 7,
}

impl Reg {
    /// All registers, in encoding order.
    pub const ALL: [Reg; 8] = [
        Reg::Eax,
        Reg::Ecx,
        Reg::Edx,
        Reg::Ebx,
        Reg::Esp,
        Reg::Ebp,
        Reg::Esi,
        Reg::Edi,
    ];

    /// Decodes a register from its encoding byte.
    pub fn from_byte(b: u8) -> Option<Reg> {
        Reg::ALL.get(b as usize).copied()
    }

    /// The encoding byte.
    pub fn to_byte(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Reg::Eax => "%eax",
            Reg::Ecx => "%ecx",
            Reg::Edx => "%edx",
            Reg::Ebx => "%ebx",
            Reg::Esp => "%esp",
            Reg::Ebp => "%ebp",
            Reg::Esi => "%esi",
            Reg::Edi => "%edi",
        };
        f.write_str(s)
    }
}

/// Condition codes for `jcc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cc {
    /// Equal (ZF).
    E = 0,
    /// Not equal (!ZF).
    Ne = 1,
    /// Signed less (SF ≠ OF).
    L = 2,
    /// Signed less-or-equal (ZF or SF ≠ OF).
    Le = 3,
    /// Signed greater (!ZF and SF = OF).
    G = 4,
    /// Signed greater-or-equal (SF = OF).
    Ge = 5,
    /// Unsigned below (CF).
    B = 6,
    /// Unsigned above-or-equal (!CF).
    Ae = 7,
}

impl Cc {
    /// Decodes a condition code from its byte.
    pub fn from_byte(b: u8) -> Option<Cc> {
        [Cc::E, Cc::Ne, Cc::L, Cc::Le, Cc::G, Cc::Ge, Cc::B, Cc::Ae]
            .get(b as usize)
            .copied()
    }

    /// The condition with taken/not-taken roles exchanged.
    pub fn negate(self) -> Cc {
        match self {
            Cc::E => Cc::Ne,
            Cc::Ne => Cc::E,
            Cc::L => Cc::Ge,
            Cc::Le => Cc::G,
            Cc::G => Cc::Le,
            Cc::Ge => Cc::L,
            Cc::B => Cc::Ae,
            Cc::Ae => Cc::B,
        }
    }
}

impl fmt::Display for Cc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cc::E => "e",
            Cc::Ne => "ne",
            Cc::L => "l",
            Cc::Le => "le",
            Cc::G => "g",
            Cc::Ge => "ge",
            Cc::B => "b",
            Cc::Ae => "ae",
        };
        f.write_str(s)
    }
}

/// ALU operators for the two-operand `alu` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AluOp {
    /// Wrapping addition.
    Add = 0,
    /// Wrapping subtraction.
    Sub = 1,
    /// Bitwise and.
    And = 2,
    /// Bitwise or.
    Or = 3,
    /// Bitwise xor.
    Xor = 4,
    /// Logical shift left.
    Shl = 5,
    /// Logical shift right.
    Shr = 6,
    /// Arithmetic shift right.
    Sar = 7,
    /// Wrapping signed multiplication.
    Imul = 8,
}

impl AluOp {
    /// Decodes an operator from its byte.
    pub fn from_byte(b: u8) -> Option<AluOp> {
        [
            AluOp::Add,
            AluOp::Sub,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Shl,
            AluOp::Shr,
            AluOp::Sar,
            AluOp::Imul,
        ]
        .get(b as usize)
        .copied()
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Imul => "imul",
        };
        f.write_str(s)
    }
}

/// A memory reference: `disp(base, index, scale)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mem {
    /// Optional base register.
    pub base: Option<Reg>,
    /// Optional `(index register, scale ∈ {1,2,4,8})`.
    pub index: Option<(Reg, u8)>,
    /// Signed displacement.
    pub disp: i32,
}

impl Mem {
    /// Absolute address `disp`.
    pub fn abs(disp: u32) -> Mem {
        Mem {
            base: None,
            index: None,
            disp: disp as i32,
        }
    }

    /// `disp(base)`.
    pub fn base_disp(base: Reg, disp: i32) -> Mem {
        Mem {
            base: Some(base),
            index: None,
            disp,
        }
    }

    /// `disp(, index, scale)` — table indexing from an absolute base.
    pub fn indexed(disp: u32, index: Reg, scale: u8) -> Mem {
        debug_assert!(matches!(scale, 1 | 2 | 4 | 8));
        Mem {
            base: None,
            index: Some((index, scale)),
            disp: disp as i32,
        }
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}(", self.disp)?;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
        }
        if let Some((i, s)) = self.index {
            write!(f, ",{i},{s}")?;
        }
        f.write_str(")")
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register.
    Reg(Reg),
    /// An immediate (source positions only).
    Imm(i32),
    /// A memory reference.
    Mem(Mem),
}

impl Operand {
    /// Whether this operand can be written.
    pub fn is_writable(&self) -> bool {
        !matches!(self, Operand::Imm(_))
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "${v:#x}"),
            Operand::Mem(m) => write!(f, "{m}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Operand {
        Operand::Imm(v)
    }
}

impl From<Mem> for Operand {
    fn from(m: Mem) -> Operand {
        Operand::Mem(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_byte_round_trip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_byte(r.to_byte()), Some(r));
        }
        assert_eq!(Reg::from_byte(8), None);
    }

    #[test]
    fn cc_negation_is_involutive() {
        for b in 0..8u8 {
            let cc = Cc::from_byte(b).unwrap();
            assert_eq!(cc.negate().negate(), cc);
            assert_ne!(cc.negate(), cc);
        }
        assert_eq!(Cc::from_byte(8), None);
    }

    #[test]
    fn aluop_round_trip() {
        for b in 0..9u8 {
            let op = AluOp::from_byte(b).unwrap();
            assert_eq!(op as u8, b);
        }
        assert_eq!(AluOp::from_byte(9), None);
    }

    #[test]
    fn operand_writability() {
        assert!(Operand::Reg(Reg::Eax).is_writable());
        assert!(Operand::Mem(Mem::abs(0x1000)).is_writable());
        assert!(!Operand::Imm(5).is_writable());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg::Eax.to_string(), "%eax");
        assert_eq!(Operand::Imm(16).to_string(), "$0x10");
        let m = Mem::indexed(0x80d2bb0, Reg::Edx, 2);
        assert_eq!(m.to_string(), "0x80d2bb0(,%edx,2)");
    }
}
