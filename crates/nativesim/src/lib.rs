//! An IA-32-like native-code simulator.
//!
//! The native realization of path-based watermarking (Collberg et al.,
//! PLDI 2004, Section 4) was built on real Intel IA-32 executables and the
//! PLTO link-time rewriter. Neither is available here, so this crate
//! models the exact machine properties the branch-function scheme
//! depends on:
//!
//! * **byte-addressed code with variable-length instruction encoding**
//!   ([`encode`]) — inserting a single no-op shifts every later address,
//!   which is what the tamper-proofing of Section 4.3 punishes;
//! * a **return address on the stack** that called code can read *and
//!   modify* — the essence of a branch function ([`cpu`]);
//! * **indirect jumps through data memory** — the lock-down cells that
//!   make the branch function's side effects essential;
//! * a **single-steppable CPU** ([`cpu::Machine::step`]) — the hardware
//!   single-stepping tracer of Section 4.2.3;
//! * a **link-time-style rewriter** ([`rewrite`]) that disassembles the
//!   text section, transforms it, reassigns addresses, and fixes up the
//!   direct control transfers it can see — but, like any real rewriter,
//!   cannot fix hashed absolute addresses hidden in data tables.
//!
//! The instruction set is a compact subset of IA-32 (moves, ALU ops with
//! flags, `cmp`/`test`, conditional jumps, `call`/`ret`, `push`/`pop`,
//! indirect jumps, `pushf`/`popf`) plus `in`/`out` instructions standing
//! in for system-call I/O. Encodings are 1–11 bytes; direct `call` and
//! `jmp` are exactly 5 bytes, so the paper's "overwrite a call with a
//! same-size jump" subtractive attack is expressible byte-for-byte.
//!
//! # Example
//!
//! ```
//! use nativesim::asm::ImageBuilder;
//! use nativesim::cpu::Machine;
//! use nativesim::reg::{Operand, Reg};
//!
//! let mut b = ImageBuilder::new();
//! let asm = b.text();
//! asm.mov_ri(Reg::Eax, 6);
//! asm.alu_ri(nativesim::reg::AluOp::Imul, Reg::Eax, 7);
//! asm.out(Operand::Reg(Reg::Eax));
//! asm.halt();
//! let image = b.finish()?;
//!
//! let mut machine = Machine::load(&image);
//! let outcome = machine.run(1_000)?;
//! assert_eq!(outcome.output, vec![42]);
//! # Ok::<(), nativesim::SimError>(())
//! ```

pub mod asm;
pub mod cfg;
pub mod codec;
pub mod cpu;
pub mod encode;
pub mod image;
pub mod insn;
pub mod pretty;
pub mod reg;
pub mod rewrite;

mod error;

pub use error::SimError;
pub use image::Image;
