//! Label-based assembler and image builder.
//!
//! The assembler produces a [`Unit`], so hand-built
//! programs and rewritten binaries share one layout/encode path.

use crate::insn::Insn;
use crate::reg::{AluOp, Cc, Mem, Operand, Reg};
use crate::rewrite::{ImmFix, Item, Unit};
use crate::{Image, SimError};

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Emits instructions into a text section.
///
/// See the [crate-level example](crate).
#[derive(Debug, Default)]
pub struct Assembler {
    items: Vec<Item>,
    /// `labels[l]` = item index, once bound.
    labels: Vec<Option<usize>>,
    /// Direct-branch fixups: `(item, label)`.
    branch_fixups: Vec<(usize, Label)>,
    /// Address-immediate fixups.
    imm_fixups: Vec<(usize, ImmUse)>,
}

#[derive(Debug, Clone, Copy)]
enum ImmUse {
    Abs(Label),
    Diff(Label, Label),
}

impl Assembler {
    /// A fresh assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Allocates an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.items.len());
    }

    /// Emits a raw instruction with no link-time references.
    pub fn insn(&mut self, insn: Insn) {
        self.items.push(Item::plain(insn));
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    // ---- moves -----------------------------------------------------

    /// `mov reg, reg`.
    pub fn mov_rr(&mut self, dst: Reg, src: Reg) {
        self.insn(Insn::Mov(Operand::Reg(dst), Operand::Reg(src)));
    }

    /// `mov reg, $imm`.
    pub fn mov_ri(&mut self, dst: Reg, imm: i32) {
        self.insn(Insn::Mov(Operand::Reg(dst), Operand::Imm(imm)));
    }

    /// `mov reg, mem`.
    pub fn mov_rm(&mut self, dst: Reg, src: Mem) {
        self.insn(Insn::Mov(Operand::Reg(dst), Operand::Mem(src)));
    }

    /// `mov mem, reg`.
    pub fn mov_mr(&mut self, dst: Mem, src: Reg) {
        self.insn(Insn::Mov(Operand::Mem(dst), Operand::Reg(src)));
    }

    /// `mov mem, $imm`.
    pub fn mov_mi(&mut self, dst: Mem, imm: i32) {
        self.insn(Insn::Mov(Operand::Mem(dst), Operand::Imm(imm)));
    }

    /// `mov reg, $addr_of(label)` — materialize a code address.
    pub fn mov_r_label(&mut self, dst: Reg, label: Label) {
        self.imm_fixups.push((self.items.len(), ImmUse::Abs(label)));
        self.insn(Insn::Mov(Operand::Reg(dst), Operand::Imm(0)));
    }

    /// `lea reg, mem`.
    pub fn lea(&mut self, dst: Reg, mem: Mem) {
        self.insn(Insn::Lea(dst, mem));
    }

    /// `lea reg, label` — materialize a code address via `lea`.
    pub fn lea_label(&mut self, dst: Reg, label: Label) {
        self.imm_fixups.push((self.items.len(), ImmUse::Abs(label)));
        self.insn(Insn::Lea(dst, Mem::abs(0)));
    }

    // ---- arithmetic ------------------------------------------------

    /// `op reg, reg`.
    pub fn alu_rr(&mut self, op: AluOp, dst: Reg, src: Reg) {
        self.insn(Insn::Alu(op, Operand::Reg(dst), Operand::Reg(src)));
    }

    /// `op reg, $imm`.
    pub fn alu_ri(&mut self, op: AluOp, dst: Reg, imm: i32) {
        self.insn(Insn::Alu(op, Operand::Reg(dst), Operand::Imm(imm)));
    }

    /// `op reg, mem`.
    pub fn alu_rm(&mut self, op: AluOp, dst: Reg, src: Mem) {
        self.insn(Insn::Alu(op, Operand::Reg(dst), Operand::Mem(src)));
    }

    /// `op mem, reg`.
    pub fn alu_mr(&mut self, op: AluOp, dst: Mem, src: Reg) {
        self.insn(Insn::Alu(op, Operand::Mem(dst), Operand::Reg(src)));
    }

    /// `op mem, $imm`.
    pub fn alu_mi(&mut self, op: AluOp, dst: Mem, imm: i32) {
        self.insn(Insn::Alu(op, Operand::Mem(dst), Operand::Imm(imm)));
    }

    /// `add disp(base), $(addr(a) - addr(b))` — the branch-function
    /// return-address adjustment, with the displacement between two
    /// labels as the immediate.
    pub fn alu_label_diff(&mut self, base: Reg, disp: i32, a: Label, b: Label) {
        self.imm_fixups
            .push((self.items.len(), ImmUse::Diff(a, b)));
        self.insn(Insn::Alu(
            AluOp::Add,
            Operand::Mem(Mem::base_disp(base, disp)),
            Operand::Imm(0),
        ));
    }

    /// `cmp a, b`.
    pub fn cmp(&mut self, a: Operand, b: Operand) {
        self.insn(Insn::Cmp(a, b));
    }

    /// `test a, b`.
    pub fn test(&mut self, a: Operand, b: Operand) {
        self.insn(Insn::Test(a, b));
    }

    // ---- control flow ----------------------------------------------

    /// `jmp label`.
    pub fn jmp(&mut self, label: Label) {
        self.branch_fixups.push((self.items.len(), label));
        self.insn(Insn::Jmp(0));
    }

    /// `jcc label`.
    pub fn jcc(&mut self, cc: Cc, label: Label) {
        self.branch_fixups.push((self.items.len(), label));
        self.insn(Insn::Jcc(cc, 0));
    }

    /// `call label`.
    pub fn call(&mut self, label: Label) {
        self.branch_fixups.push((self.items.len(), label));
        self.insn(Insn::Call(0));
    }

    /// `jmp *operand`.
    pub fn jmp_ind(&mut self, op: Operand) {
        self.insn(Insn::JmpInd(op));
    }

    /// `call *operand`.
    pub fn call_ind(&mut self, op: Operand) {
        self.insn(Insn::CallInd(op));
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.insn(Insn::Ret);
    }

    // ---- stack, I/O, misc -------------------------------------------

    /// `push operand`.
    pub fn push(&mut self, op: Operand) {
        self.insn(Insn::Push(op));
    }

    /// `pop reg`.
    pub fn pop(&mut self, r: Reg) {
        self.insn(Insn::Pop(r));
    }

    /// `pushf`.
    pub fn pushf(&mut self) {
        self.insn(Insn::Pushf);
    }

    /// `popf`.
    pub fn popf(&mut self) {
        self.insn(Insn::Popf);
    }

    /// `out operand`.
    pub fn out(&mut self, op: Operand) {
        self.insn(Insn::Out(op));
    }

    /// `in reg`.
    pub fn in_(&mut self, r: Reg) {
        self.insn(Insn::In(r));
    }

    /// `nop`.
    pub fn nop(&mut self) {
        self.insn(Insn::Nop);
    }

    /// `halt`.
    pub fn halt(&mut self) {
        self.insn(Insn::Halt);
    }

    fn resolve(&self, label: Label) -> Result<usize, SimError> {
        self.labels[label.0].ok_or(SimError::UnboundLabel)
    }

    /// Resolves all fixups into items.
    fn into_items(self) -> Result<Vec<Item>, SimError> {
        let mut items = self.items.clone();
        for &(idx, label) in &self.branch_fixups {
            items[idx].target = Some(self.resolve(label)?);
        }
        for &(idx, use_) in &self.imm_fixups {
            items[idx].imm_fix = match use_ {
                ImmUse::Abs(l) => ImmFix::AbsAddr(self.resolve(l)?),
                ImmUse::Diff(a, b) => ImmFix::DiffAddr(self.resolve(a)?, self.resolve(b)?),
            };
        }
        Ok(items)
    }
}

/// Builds a complete [`Image`]: one text assembler plus a data section.
#[derive(Debug, Default)]
pub struct ImageBuilder {
    asm: Assembler,
    data: Vec<u8>,
}

impl ImageBuilder {
    /// A fresh builder. Execution will start at the first emitted
    /// instruction.
    pub fn new() -> ImageBuilder {
        ImageBuilder::default()
    }

    /// The text-section assembler.
    pub fn text(&mut self) -> &mut Assembler {
        &mut self.asm
    }

    /// Appends raw bytes to the data section, returning their absolute
    /// address.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> u32 {
        let addr = crate::image::DATA_BASE + self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Appends a little-endian u32 to the data section, returning its
    /// absolute address.
    pub fn data_u32(&mut self, v: u32) -> u32 {
        self.data_bytes(&v.to_le_bytes())
    }

    /// Reserves `n` zeroed data bytes, returning their absolute address.
    pub fn data_zeroed(&mut self, n: usize) -> u32 {
        let addr = crate::image::DATA_BASE + self.data.len() as u32;
        self.data.resize(self.data.len() + n, 0);
        addr
    }

    /// Finishes into a rewritable [`Unit`].
    ///
    /// # Errors
    ///
    /// [`SimError::UnboundLabel`] if any referenced label was never
    /// bound.
    pub fn finish_unit(self) -> Result<Unit, SimError> {
        let items = self.asm.into_items()?;
        Ok(Unit {
            items,
            data: self.data,
            text_base: crate::image::TEXT_BASE,
            data_base: crate::image::DATA_BASE,
            entry_index: 0,
        })
    }

    /// Finishes into an encoded, validated [`Image`].
    ///
    /// # Errors
    ///
    /// [`SimError::UnboundLabel`] or any layout error from
    /// [`Unit::encode`].
    pub fn finish(self) -> Result<Image, SimError> {
        self.finish_unit()?.encode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Machine;

    #[test]
    fn forward_and_backward_labels() {
        let mut b = ImageBuilder::new();
        let a = b.text();
        let fwd = a.label();
        a.jmp(fwd);
        a.out(Operand::Imm(0)); // skipped
        a.bind(fwd);
        a.out(Operand::Imm(1));
        a.halt();
        let img = b.finish().unwrap();
        let out = Machine::load(&img).run(100).unwrap();
        assert_eq!(out.output, vec![1]);
    }

    #[test]
    fn unbound_label_errors() {
        let mut b = ImageBuilder::new();
        let a = b.text();
        let l = a.label();
        a.jmp(l);
        assert_eq!(b.finish().unwrap_err(), SimError::UnboundLabel);
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = ImageBuilder::new();
        let a = b.text();
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn data_addresses_are_sequential() {
        let mut b = ImageBuilder::new();
        let first = b.data_u32(7);
        let second = b.data_bytes(&[1, 2, 3]);
        let third = b.data_zeroed(5);
        assert_eq!(first, crate::image::DATA_BASE);
        assert_eq!(second, crate::image::DATA_BASE + 4);
        assert_eq!(third, crate::image::DATA_BASE + 7);
    }

    #[test]
    fn mov_r_label_materializes_code_address() {
        let mut b = ImageBuilder::new();
        let a = b.text();
        let dest = a.label();
        a.mov_r_label(Reg::Eax, dest);
        a.jmp_ind(Operand::Reg(Reg::Eax));
        a.out(Operand::Imm(0));
        a.bind(dest);
        a.out(Operand::Imm(9));
        a.halt();
        let img = b.finish().unwrap();
        let out = Machine::load(&img).run(100).unwrap();
        assert_eq!(out.output, vec![9]);
    }
}
