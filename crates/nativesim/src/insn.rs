//! The instruction set and its encoded lengths.

use std::fmt;

use crate::reg::{AluOp, Cc, Mem, Operand, Reg};

/// One machine instruction. Relative displacements (`Jmp`, `Jcc`, `Call`)
/// are measured from the address of the *next* instruction, as on IA-32.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Insn {
    /// No operation (1 byte, like IA-32 `nop`).
    Nop,
    /// Stop the machine.
    Halt,
    /// `mov dst, src`.
    Mov(Operand, Operand),
    /// `lea reg, mem` — compute the effective address without loading.
    Lea(Reg, Mem),
    /// Two-operand ALU operation `op dst, src` (sets flags).
    Alu(AluOp, Operand, Operand),
    /// Compare: compute `a - b`, set flags, discard the result.
    Cmp(Operand, Operand),
    /// Test: compute `a & b`, set flags, discard the result.
    Test(Operand, Operand),
    /// Direct relative jump (5 bytes, same size as `Call`).
    Jmp(i32),
    /// Conditional relative jump.
    Jcc(Cc, i32),
    /// Direct relative call: pushes the return address (5 bytes).
    Call(i32),
    /// Indirect jump through a register or memory cell.
    JmpInd(Operand),
    /// Indirect call through a register or memory cell.
    CallInd(Operand),
    /// Return: pop the return address and jump to it.
    Ret,
    /// Push a value.
    Push(Operand),
    /// Pop into a register.
    Pop(Reg),
    /// Push the flags word.
    Pushf,
    /// Pop the flags word.
    Popf,
    /// Write a value to the output port (stand-in for a write syscall).
    Out(Operand),
    /// Read the next input value into a register (0 once exhausted).
    In(Reg),
}

/// Opcode bytes (first byte of every encoding).
pub mod opcode {
    /// `nop`
    pub const NOP: u8 = 0x00;
    /// `halt`
    pub const HALT: u8 = 0x01;
    /// `ret`
    pub const RET: u8 = 0x02;
    /// `pushf`
    pub const PUSHF: u8 = 0x03;
    /// `popf`
    pub const POPF: u8 = 0x04;
    /// `mov`
    pub const MOV: u8 = 0x10;
    /// `lea`
    pub const LEA: u8 = 0x11;
    /// `alu`
    pub const ALU: u8 = 0x12;
    /// `cmp`
    pub const CMP: u8 = 0x13;
    /// `test`
    pub const TEST: u8 = 0x14;
    /// `jmp rel32`
    pub const JMP: u8 = 0x20;
    /// `jcc rel32`
    pub const JCC: u8 = 0x21;
    /// `call rel32`
    pub const CALL: u8 = 0x22;
    /// `jmp *operand`
    pub const JMP_IND: u8 = 0x23;
    /// `call *operand`
    pub const CALL_IND: u8 = 0x24;
    /// `push`
    pub const PUSH: u8 = 0x30;
    /// `pop`
    pub const POP: u8 = 0x31;
    /// `out`
    pub const OUT: u8 = 0x40;
    /// `in`
    pub const IN: u8 = 0x41;
}

/// Encoded size of an operand: tag byte plus payload.
pub fn operand_len(op: &Operand) -> usize {
    1 + match op {
        Operand::Reg(_) => 1,
        Operand::Imm(_) => 4,
        Operand::Mem(m) => mem_len(m),
    }
}

/// Encoded size of a memory reference payload.
pub fn mem_len(m: &Mem) -> usize {
    1 + usize::from(m.base.is_some()) + usize::from(m.index.is_some()) + 4
}

impl Insn {
    /// Encoded length in bytes (never zero — there is no `is_empty`
    /// counterpart). Direct `jmp` and `call` are both exactly
    /// 5 bytes — the paper's bypass attack overwrites one with the other
    /// "of exactly the same size".
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        match self {
            Insn::Nop | Insn::Halt | Insn::Ret | Insn::Pushf | Insn::Popf => 1,
            Insn::Mov(d, s) => 1 + operand_len(d) + operand_len(s),
            Insn::Lea(_, m) => 1 + 1 + mem_len(m),
            Insn::Alu(_, d, s) => 1 + 1 + operand_len(d) + operand_len(s),
            Insn::Cmp(a, b) | Insn::Test(a, b) => 1 + operand_len(a) + operand_len(b),
            Insn::Jmp(_) | Insn::Call(_) => 5,
            Insn::Jcc(..) => 6,
            Insn::JmpInd(op) | Insn::CallInd(op) | Insn::Push(op) | Insn::Out(op) => {
                1 + operand_len(op)
            }
            Insn::Pop(_) | Insn::In(_) => 2,
        }
    }

    /// Whether this instruction never falls through to its successor.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Insn::Jmp(_) | Insn::JmpInd(_) | Insn::Ret | Insn::Halt
        )
    }

    /// Whether this is any control-transfer instruction.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Insn::Jmp(_)
                | Insn::Jcc(..)
                | Insn::Call(_)
                | Insn::JmpInd(_)
                | Insn::CallInd(_)
                | Insn::Ret
        )
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Insn::Nop => f.write_str("nop"),
            Insn::Halt => f.write_str("halt"),
            Insn::Mov(d, s) => write!(f, "mov {d}, {s}"),
            Insn::Lea(r, m) => write!(f, "lea {r}, {m}"),
            Insn::Alu(op, d, s) => write!(f, "{op} {d}, {s}"),
            Insn::Cmp(a, b) => write!(f, "cmp {a}, {b}"),
            Insn::Test(a, b) => write!(f, "test {a}, {b}"),
            Insn::Jmp(d) => write!(f, "jmp {d:+}"),
            Insn::Jcc(cc, d) => write!(f, "j{cc} {d:+}"),
            Insn::Call(d) => write!(f, "call {d:+}"),
            Insn::JmpInd(op) => write!(f, "jmp *{op}"),
            Insn::CallInd(op) => write!(f, "call *{op}"),
            Insn::Ret => f.write_str("ret"),
            Insn::Push(op) => write!(f, "push {op}"),
            Insn::Pop(r) => write!(f, "pop {r}"),
            Insn::Pushf => f.write_str("pushf"),
            Insn::Popf => f.write_str("popf"),
            Insn::Out(op) => write!(f, "out {op}"),
            Insn::In(r) => write!(f, "in {r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_and_jmp_are_same_size() {
        assert_eq!(Insn::Call(0).len(), 5);
        assert_eq!(Insn::Jmp(0).len(), 5);
        assert_eq!(Insn::Jcc(Cc::E, 0).len(), 6);
        assert_eq!(Insn::Nop.len(), 1);
        assert_eq!(Insn::Ret.len(), 1);
    }

    #[test]
    fn operand_lengths_vary() {
        assert_eq!(operand_len(&Operand::Reg(Reg::Eax)), 2);
        assert_eq!(operand_len(&Operand::Imm(7)), 5);
        assert_eq!(operand_len(&Operand::Mem(Mem::abs(0x1000))), 6);
        assert_eq!(
            operand_len(&Operand::Mem(Mem::base_disp(Reg::Esp, 16))),
            7
        );
        assert_eq!(
            operand_len(&Operand::Mem(Mem::indexed(0x1000, Reg::Edx, 4))),
            7
        );
    }

    #[test]
    fn terminator_classification() {
        assert!(Insn::Jmp(0).is_terminator());
        assert!(Insn::Ret.is_terminator());
        assert!(Insn::Halt.is_terminator());
        assert!(Insn::JmpInd(Operand::Reg(Reg::Eax)).is_terminator());
        assert!(!Insn::Call(0).is_terminator());
        assert!(!Insn::Jcc(Cc::E, 0).is_terminator());
        assert!(Insn::Call(0).is_control());
        assert!(!Insn::Nop.is_control());
    }

    #[test]
    fn display_smoke() {
        let i = Insn::Alu(
            AluOp::Xor,
            Operand::Reg(Reg::Eax),
            Operand::Mem(Mem::indexed(0x80c3c04, Reg::Eax, 1)),
        );
        assert_eq!(i.to_string(), "xor %eax, 0x80c3c04(,%eax,1)");
    }
}
