use std::error::Error;
use std::fmt;

/// Errors raised by the assembler, decoder, CPU, or rewriter.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An undecodable byte sequence was fetched or disassembled.
    BadOpcode {
        /// Address of the offending byte.
        addr: u32,
        /// The byte that failed to decode.
        byte: u8,
    },
    /// A memory access touched an unmapped address or crossed a segment.
    MemFault {
        /// The faulting address.
        addr: u32,
    },
    /// A write targeted the read-only text section at runtime.
    TextWrite {
        /// The faulting address.
        addr: u32,
    },
    /// The CPU executed its full instruction budget without halting.
    BudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// `ret` executed with the stack pointer outside the stack segment.
    StackFault {
        /// Stack-pointer value at the fault.
        esp: u32,
    },
    /// An assembler label was referenced but never bound.
    UnboundLabel,
    /// The rewriter found a direct branch whose target is not an
    /// instruction boundary.
    BadBranchTarget {
        /// Address of the branch instruction.
        from: u32,
        /// The non-boundary target.
        target: u32,
    },
    /// A destination operand was an immediate.
    BadDestination {
        /// Address of the offending instruction.
        addr: u32,
    },
    /// The image layout is invalid (overlapping sections, empty text…).
    BadImage {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadOpcode { addr, byte } => {
                write!(f, "undecodable opcode {byte:#04x} at {addr:#010x}")
            }
            SimError::MemFault { addr } => write!(f, "memory fault at {addr:#010x}"),
            SimError::TextWrite { addr } => {
                write!(f, "write to read-only text at {addr:#010x}")
            }
            SimError::BudgetExhausted { budget } => {
                write!(f, "instruction budget of {budget} exhausted")
            }
            SimError::StackFault { esp } => {
                write!(f, "stack fault with esp = {esp:#010x}")
            }
            SimError::UnboundLabel => write!(f, "assembler label never bound"),
            SimError::BadBranchTarget { from, target } => write!(
                f,
                "branch at {from:#010x} targets non-instruction address {target:#010x}"
            ),
            SimError::BadDestination { addr } => {
                write!(f, "immediate used as destination at {addr:#010x}")
            }
            SimError::BadImage { reason } => write!(f, "bad image: {reason}"),
        }
    }
}

impl Error for SimError {}
