//! Human-readable disassembly listings.

use std::fmt::Write as _;

use crate::encode::disassemble_all;
use crate::insn::Insn;
use crate::{Image, SimError};

/// Renders an `objdump`-style listing of an image's text section:
/// address, raw bytes, mnemonic, and resolved targets for direct
/// branches.
///
/// # Errors
///
/// Propagates decode failures from malformed text.
pub fn disassemble(image: &Image) -> Result<String, SimError> {
    let listing = disassemble_all(&image.text, image.text_base)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "text @ {:#010x} ({} bytes), data @ {:#010x} ({} bytes), entry {:#010x}",
        image.text_base,
        image.text.len(),
        image.data_base,
        image.data.len(),
        image.entry
    );
    for (k, &(addr, insn)) in listing.iter().enumerate() {
        let len = insn.len();
        let off = (addr - image.text_base) as usize;
        let bytes: Vec<String> = image.text[off..off + len]
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        let next = listing
            .get(k + 1)
            .map(|&(a, _)| a)
            .unwrap_or(image.text_base + image.text.len() as u32);
        let resolved = match insn {
            Insn::Jmp(d) | Insn::Call(d) | Insn::Jcc(_, d) => {
                format!("   ; -> {:#010x}", next.wrapping_add(d as u32))
            }
            _ => String::new(),
        };
        let marker = if addr == image.entry { ">" } else { " " };
        let _ = writeln!(
            out,
            "{marker}{addr:#010x}:  {:<24} {insn}{resolved}",
            bytes.join(" ")
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ImageBuilder;
    use crate::reg::{Cc, Operand, Reg};

    #[test]
    fn listing_shows_addresses_bytes_and_targets() {
        let mut b = ImageBuilder::new();
        let a = b.text();
        let dest = a.label();
        a.mov_ri(Reg::Eax, 0x42);
        a.jcc(Cc::E, dest);
        a.out(Operand::Imm(1));
        a.bind(dest);
        a.halt();
        let image = b.finish().unwrap();
        let text = disassemble(&image).unwrap();
        assert!(text.contains("mov %eax, $0x42"));
        assert!(text.contains("je "));
        assert!(text.contains("; -> 0x"), "direct targets are resolved");
        assert!(text.contains(">0x08048000"), "entry is marked");
        assert!(text.contains("halt"));
    }

    #[test]
    fn listing_covers_every_byte() {
        let w = crate::rewrite::Unit::new();
        drop(w);
        let mut b = ImageBuilder::new();
        let a = b.text();
        a.nop();
        a.ret();
        let image = b.finish().unwrap();
        let text = disassemble(&image).unwrap();
        // one header + two instruction lines
        assert_eq!(text.lines().count(), 3);
    }
}
