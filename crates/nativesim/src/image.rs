//! Executable images: text + data sections at fixed virtual addresses.
//!
//! Layout follows the convention of IA-32 Linux executables: text at a
//! low fixed base, data at a *fixed* higher base (so that growing the
//! text section during rewriting never moves data — exactly the situation
//! a link-time rewriter like PLTO maintains), and the stack far above
//! both.


use crate::SimError;

/// Base virtual address of the text section.
pub const TEXT_BASE: u32 = 0x0804_8000;
/// Base virtual address of the data section (fixed; text may grow up to
/// here).
pub const DATA_BASE: u32 = 0x0A00_0000;
/// Top of the stack (exclusive); the stack grows downward.
pub const STACK_TOP: u32 = 0x0C00_0000;
/// Size of the stack segment in bytes.
pub const STACK_SIZE: u32 = 1 << 20;

/// A loaded executable: encoded text, initialized data, entry address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Base address of `text`.
    pub text_base: u32,
    /// Encoded instructions.
    pub text: Vec<u8>,
    /// Base address of `data`.
    pub data_base: u32,
    /// Initialized data bytes.
    pub data: Vec<u8>,
    /// Address of the first instruction to execute.
    pub entry: u32,
}

impl Image {
    /// Validates section layout.
    ///
    /// # Errors
    ///
    /// [`SimError::BadImage`] if the text is empty, sections overlap, or
    /// the entry is outside the text section.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |reason: String| Err(SimError::BadImage { reason });
        if self.text.is_empty() {
            return bad("empty text section".into());
        }
        let text_end = self.text_base as u64 + self.text.len() as u64;
        if text_end > self.data_base as u64 {
            return bad(format!(
                "text section ({} bytes) overlaps data base {:#010x}",
                self.text.len(),
                self.data_base
            ));
        }
        let data_end = self.data_base as u64 + self.data.len() as u64;
        if data_end > (STACK_TOP - STACK_SIZE) as u64 {
            return bad("data section overlaps stack".into());
        }
        if (self.entry as u64) < self.text_base as u64 || self.entry as u64 >= text_end {
            return bad(format!("entry {:#010x} outside text", self.entry));
        }
        Ok(())
    }

    /// Total image size in bytes (text + data) — the quantity Figure 9(a)
    /// reports the relative growth of.
    pub fn size(&self) -> usize {
        self.text.len() + self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> Image {
        Image {
            text_base: TEXT_BASE,
            text: vec![0x01], // halt
            data_base: DATA_BASE,
            data: vec![],
            entry: TEXT_BASE,
        }
    }

    #[test]
    fn minimal_image_validates() {
        minimal().validate().unwrap();
        assert_eq!(minimal().size(), 1);
    }

    #[test]
    fn empty_text_rejected() {
        let mut img = minimal();
        img.text.clear();
        assert!(matches!(img.validate(), Err(SimError::BadImage { .. })));
    }

    #[test]
    fn oversized_text_rejected() {
        let mut img = minimal();
        img.text = vec![0; (DATA_BASE - TEXT_BASE + 1) as usize];
        assert!(matches!(img.validate(), Err(SimError::BadImage { .. })));
    }

    #[test]
    fn entry_outside_text_rejected() {
        let mut img = minimal();
        img.entry = DATA_BASE;
        assert!(matches!(img.validate(), Err(SimError::BadImage { .. })));
    }
}
