//! Number-theoretic substrate for dynamic path-based software watermarking.
//!
//! This crate implements the mathematical machinery of Collberg et al.,
//! *Dynamic Path-Based Software Watermarking* (PLDI 2004), Section 3:
//!
//! * [`bigint`] — arbitrary-precision integers ([`bigint::BigUint`],
//!   [`bigint::BigInt`]), built from scratch because watermarks range up to
//!   768 bits (Figure 5 of the paper) and no big-integer crate is available
//!   offline.
//! * [`primes`] — deterministic Miller–Rabin primality testing and
//!   key-derived generation of the pairwise relatively prime set
//!   `p_1, …, p_r` used to split the watermark.
//! * [`crt`] — Chinese remaindering, including the *Generalized* CRT over
//!   non-coprime moduli used to recombine watermark pieces (Figure 4).
//! * [`enumeration`] — the bijection between statements
//!   `W ≡ x (mod p_i·p_j)` and 64-bit integers (step B of Figure 3), sized
//!   so every statement fits in one 64-bit cipher block.
//! * [`recovery`] — the analytic success-probability model of equation (1)
//!   and a Monte-Carlo counterpart (Figure 5).
//!
//! # Example
//!
//! Splitting and recombining the watermark `W = 17` with
//! `p = {2, 3, 5}`, exactly as in Figures 3 and 4 of the paper:
//!
//! ```
//! use pathmark_math::bigint::BigUint;
//! use pathmark_math::crt::Statement;
//! use pathmark_math::enumeration::PairEnumeration;
//!
//! let primes = vec![2u64, 3, 5];
//! let enumeration = PairEnumeration::new(&primes)?;
//! let w = BigUint::from(17u64);
//! let pieces = enumeration.split(&w);
//! // W mod p1*p2 = 17 mod 6 = 5, mod p1*p3 = 17 mod 10 = 7,
//! // mod p2*p3 = 17 mod 15 = 2 — the exact values of Figure 3.
//! assert_eq!(pieces, vec![
//!     Statement { i: 0, j: 1, x: 5 },
//!     Statement { i: 0, j: 2, x: 7 },
//!     Statement { i: 1, j: 2, x: 2 },
//! ]);
//! let (recovered, modulus) = pathmark_math::crt::combine_statements(&pieces, &primes)?;
//! assert_eq!(recovered, w);
//! assert_eq!(modulus, BigUint::from(30u64));
//! # Ok::<(), pathmark_math::MathError>(())
//! ```

pub mod bigint;
pub mod crt;
pub mod enumeration;
pub mod primes;
pub mod recovery;

mod error;

pub use error::MathError;
