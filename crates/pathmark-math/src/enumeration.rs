//! The pair-enumeration scheme of Section 3.2, step 2.
//!
//! Each statement `W ≡ x (mod p_i·p_j)` is turned into a single integer
//!
//! ```text
//! w  =  x  +  Σ (products of all pairs that precede (i, j))
//! ```
//!
//! with pairs ordered lexicographically. The mapping is a bijection
//! between valid statements and the interval `[0, Σ_{i<j} p_i·p_j)`, so a
//! decrypted 64-bit block either decodes to exactly one statement or is
//! recognizably garbage. [`PairEnumeration::new`] checks at construction
//! that the whole interval fits in 64 bits — one cipher block.

use crate::bigint::BigUint;
use crate::crt::{statement_for_pair, Statement};
use crate::MathError;

/// The bijection between watermark statements and 64-bit integers for a
/// fixed prime set.
///
/// # Example
///
/// ```
/// use pathmark_math::enumeration::PairEnumeration;
/// use pathmark_math::crt::Statement;
///
/// let enumeration = PairEnumeration::new(&[2, 3, 5])?;
/// // Pair order: (0,1) block [0,6), (0,2) block [6,16), (1,2) block [16,31).
/// let s = Statement { i: 0, j: 2, x: 7 };
/// let w = enumeration.encode(&s)?;
/// assert_eq!(w, 6 + 7);
/// assert_eq!(enumeration.decode(w)?, s);
/// assert_eq!(enumeration.range(), 6 + 10 + 15);
/// # Ok::<(), pathmark_math::MathError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairEnumeration {
    primes: Vec<u64>,
    /// `pairs[k] = (i, j)` in lexicographic order.
    pairs: Vec<(usize, usize)>,
    /// `offsets[k]` = sum of pair products strictly before pair `k`;
    /// `offsets[pairs.len()]` = total range.
    offsets: Vec<u64>,
    /// `offsets[pairs.len()]`, denormalized: [`PairEnumeration::decode`]
    /// rejects almost every decrypted garbage window on this one
    /// compare, so the recognition scan wants it in a register, not
    /// behind a bounds-checked `last()`.
    range: u64,
}

impl PairEnumeration {
    /// Builds the enumeration for a prime set.
    ///
    /// # Errors
    ///
    /// * [`MathError::TooFewPrimes`] if fewer than two primes are given.
    /// * [`MathError::NotCoprime`] if the values are not pairwise
    ///   relatively prime.
    /// * [`MathError::EnumerationOverflow`] if any pair product or the
    ///   total `Σ p_i·p_j` does not fit in `u64` (the cipher block width).
    pub fn new(primes: &[u64]) -> Result<Self, MathError> {
        if primes.len() < 2 {
            return Err(MathError::TooFewPrimes { got: primes.len() });
        }
        for a in 0..primes.len() {
            for b in (a + 1)..primes.len() {
                if crate::primes::gcd_u64(primes[a], primes[b]) != 1 {
                    return Err(MathError::NotCoprime {
                        m: primes[a],
                        n: primes[b],
                    });
                }
            }
        }
        let mut pairs = Vec::new();
        let mut offsets = vec![0u64];
        let mut total: u64 = 0;
        for i in 0..primes.len() {
            for j in (i + 1)..primes.len() {
                let product = primes[i]
                    .checked_mul(primes[j])
                    .ok_or(MathError::EnumerationOverflow)?;
                total = total
                    .checked_add(product)
                    .ok_or(MathError::EnumerationOverflow)?;
                pairs.push((i, j));
                offsets.push(total);
            }
        }
        Ok(PairEnumeration {
            primes: primes.to_vec(),
            pairs,
            offsets,
            range: total,
        })
    }

    /// The prime set this enumeration is defined over.
    pub fn primes(&self) -> &[u64] {
        &self.primes
    }

    /// Number of pairs, `r(r-1)/2` — the maximum number of watermark
    /// pieces (Section 3.2, step 1).
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// The exclusive upper bound of the encoding range, `Σ_{i<j} p_i·p_j`.
    ///
    /// The probability that a uniformly random 64-bit block decodes as a
    /// valid statement is `range() / 2^64`; recognition relies on this
    /// being comfortably below 1.
    pub fn range(&self) -> u64 {
        self.range
    }

    /// Encodes a statement as a single integer (step B of Figure 3).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidEncoding`] if the statement's indices
    /// are out of range, unordered, or `x` exceeds its pair modulus.
    pub fn encode(&self, statement: &Statement) -> Result<u64, MathError> {
        let k = self
            .pairs
            .binary_search(&(statement.i, statement.j))
            .map_err(|_| MathError::InvalidEncoding { value: statement.x })?;
        let product = self.offsets[k + 1] - self.offsets[k];
        if statement.x >= product {
            return Err(MathError::InvalidEncoding { value: statement.x });
        }
        Ok(self.offsets[k] + statement.x)
    }

    /// Decodes an integer back into a statement (step A of Figure 4).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidEncoding`] if `w >= range()`; this is
    /// how garbage trace windows are rejected.
    pub fn decode(&self, w: u64) -> Result<Statement, MathError> {
        if w >= self.range() {
            return Err(MathError::InvalidEncoding { value: w });
        }
        // partition_point: first pair whose block starts after w.
        let k = self.offsets.partition_point(|&off| off <= w) - 1;
        let (i, j) = self.pairs[k];
        Ok(Statement {
            i,
            j,
            x: w - self.offsets[k],
        })
    }

    /// Splits a watermark into all `r(r-1)/2` statements (step A of
    /// Figure 3 taken to full redundancy).
    pub fn split(&self, w: &BigUint) -> Vec<Statement> {
        self.pairs
            .iter()
            .map(|&(i, j)| statement_for_pair(w, i, j, &self.primes))
            .collect()
    }

    /// The product of all primes: the modulus below which a watermark is
    /// uniquely reconstructible from a covering statement set.
    pub fn watermark_bound(&self) -> BigUint {
        self.primes
            .iter()
            .fold(BigUint::one(), |acc, &p| &acc * &BigUint::from(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::generate_primes;

    #[test]
    fn paper_prime_set_blocks() {
        let e = PairEnumeration::new(&[2, 3, 5]).unwrap();
        assert_eq!(e.pair_count(), 3);
        assert_eq!(e.range(), 6 + 10 + 15);
        // Exhaustive round-trip over the whole range.
        for w in 0..e.range() {
            let s = e.decode(w).unwrap();
            assert_eq!(e.encode(&s).unwrap(), w);
            assert!(s.i < s.j);
            assert!(s.x < s.modulus(&[2, 3, 5]));
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let e = PairEnumeration::new(&[2, 3, 5]).unwrap();
        assert_eq!(
            e.decode(31),
            Err(MathError::InvalidEncoding { value: 31 })
        );
        assert_eq!(
            e.decode(u64::MAX),
            Err(MathError::InvalidEncoding { value: u64::MAX })
        );
    }

    #[test]
    fn encode_rejects_bad_statements() {
        let e = PairEnumeration::new(&[2, 3, 5]).unwrap();
        // x too large for pair (0,1): modulus 6.
        assert!(e.encode(&Statement { i: 0, j: 1, x: 6 }).is_err());
        // unordered indices
        assert!(e.encode(&Statement { i: 1, j: 0, x: 1 }).is_err());
        // index out of range
        assert!(e.encode(&Statement { i: 0, j: 9, x: 1 }).is_err());
    }

    #[test]
    fn non_coprime_rejected() {
        assert_eq!(
            PairEnumeration::new(&[4, 6]),
            Err(MathError::NotCoprime { m: 4, n: 6 })
        );
    }

    #[test]
    fn too_few_primes_rejected() {
        assert_eq!(
            PairEnumeration::new(&[7]),
            Err(MathError::TooFewPrimes { got: 1 })
        );
    }

    #[test]
    fn overflow_rejected() {
        // Two 33-bit primes multiply past u64? No — 66 bits do overflow.
        let p1 = (1u64 << 33) - 9; // prime
        let p2 = (1u64 << 33) - 25;
        assert_eq!(
            PairEnumeration::new(&[p1, p2]),
            Err(MathError::EnumerationOverflow)
        );
    }

    #[test]
    fn realistic_watermark_configuration_fits_one_block() {
        // 29 primes of 27 bits support 768-bit watermarks (Figure 5)
        // while Σ p_i·p_j stays below 2^64.
        let primes = generate_primes(0xFEED, 27, 29);
        let e = PairEnumeration::new(&primes).unwrap();
        assert_eq!(e.pair_count(), 29 * 28 / 2);
        assert!(e.watermark_bound().bits() > 768);
        // range() fitting in u64 is proven by construction succeeding.
        assert!(e.range() > 0);
    }

    #[test]
    fn split_produces_all_consistent_pieces() {
        let primes = generate_primes(3, 20, 6);
        let e = PairEnumeration::new(&primes).unwrap();
        let w = BigUint::from(0xABCD_EF01_2345u64);
        let pieces = e.split(&w);
        assert_eq!(pieces.len(), e.pair_count());
        for a in &pieces {
            for b in &pieces {
                assert!(!a.inconsistent_with(b, &primes));
            }
        }
        let (value, _) = crate::crt::combine_statements(&pieces, &primes).unwrap();
        assert_eq!(value, w);
    }

    #[test]
    fn encode_decode_round_trip_through_split() {
        let primes = generate_primes(11, 24, 8);
        let e = PairEnumeration::new(&primes).unwrap();
        let w = BigUint::from(u128::MAX / 3);
        for piece in e.split(&w) {
            let encoded = e.encode(&piece).unwrap();
            assert_eq!(e.decode(encoded).unwrap(), piece);
        }
    }
}
