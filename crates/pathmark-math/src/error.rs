use std::error::Error;
use std::fmt;

/// Errors produced by the number-theoretic routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MathError {
    /// Division or reduction by zero was requested.
    DivisionByZero,
    /// A set of congruences was mutually inconsistent and cannot be
    /// combined by the (generalized) Chinese Remainder Theorem.
    InconsistentCongruences {
        /// Residue of the first offending congruence.
        a: u64,
        /// Modulus of the first offending congruence.
        m: u64,
        /// Residue of the second offending congruence.
        b: u64,
        /// Modulus of the second offending congruence.
        n: u64,
    },
    /// A system of big-integer congruences was mutually inconsistent.
    InconsistentSystem,
    /// The supplied moduli were not pairwise relatively prime where the
    /// algorithm requires them to be.
    NotCoprime {
        /// First offending modulus.
        m: u64,
        /// Second offending modulus.
        n: u64,
    },
    /// Fewer than two primes were supplied, so no pair `p_i·p_j` exists.
    TooFewPrimes {
        /// Number of primes supplied.
        got: usize,
    },
    /// The enumeration range `Σ p_i·p_j` does not fit in 64 bits, so
    /// statements cannot be packed into one cipher block.
    EnumerationOverflow,
    /// A value was outside the domain of the enumeration scheme.
    InvalidEncoding {
        /// The value that failed to decode.
        value: u64,
    },
    /// A modular inverse does not exist.
    NoInverse,
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::DivisionByZero => write!(f, "division by zero"),
            MathError::InconsistentCongruences { a, m, b, n } => write!(
                f,
                "congruences W = {a} (mod {m}) and W = {b} (mod {n}) are inconsistent"
            ),
            MathError::InconsistentSystem => {
                write!(f, "system of congruences is inconsistent")
            }
            MathError::NotCoprime { m, n } => {
                write!(f, "moduli {m} and {n} are not relatively prime")
            }
            MathError::TooFewPrimes { got } => {
                write!(f, "need at least 2 primes to form pairs, got {got}")
            }
            MathError::EnumerationOverflow => {
                write!(f, "sum of pairwise prime products overflows 64 bits")
            }
            MathError::InvalidEncoding { value } => {
                write!(f, "value {value} is outside the enumeration range")
            }
            MathError::NoInverse => write!(f, "modular inverse does not exist"),
        }
    }
}

impl Error for MathError {}
