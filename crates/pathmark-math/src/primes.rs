//! Primality testing and generation of the watermark prime set.
//!
//! Section 3.2 of the paper splits the watermark `W` into statements
//! `W ≡ x (mod p_i·p_j)` over pairwise relatively prime `p_1, …, p_r`.
//! Both embedder and recognizer must derive the *same* set, so generation
//! is a deterministic function of the watermark key.


/// Deterministic Miller–Rabin primality test for `u64`.
///
/// Uses the witness set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}`,
/// which is known to be exact for all 64-bit integers.
///
/// # Example
///
/// ```
/// use pathmark_math::primes::is_prime;
///
/// assert!(is_prime(2));
/// assert!(is_prime(1_000_000_007));
/// assert!(!is_prime(1));
/// assert!(!is_prime(561)); // Carmichael number
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = mod_pow(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mod_mul(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Modular multiplication `a·b mod m` without overflow.
pub fn mod_mul(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation `a^e mod m`.
pub fn mod_pow(mut a: u64, mut e: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut acc = 1u64;
    a %= m;
    while e > 0 {
        if e & 1 == 1 {
            acc = mod_mul(acc, a, m);
        }
        a = mod_mul(a, a, m);
        e >>= 1;
    }
    acc
}

/// Greatest common divisor of two machine integers.
pub fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// SplitMix64 step, used to derive candidate primes from the key.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministically generates `count` distinct primes of exactly
/// `bits` bits from `seed` (the watermark key).
///
/// Both the embedder and the recognizer call this with the same key and
/// obtain the same `p_1, …, p_r`, as the protocol requires (the scheme is
/// *blind*: only the key and the watermarked program are available at
/// recognition time).
///
/// # Panics
///
/// Panics if `bits` is not in `2..=31` — the enumeration scheme requires
/// every pairwise product `p_i·p_j` and their sum to fit in 64 bits, which
/// caps usable primes at 31 bits (see
/// [`PairEnumeration`](crate::enumeration::PairEnumeration)).
///
/// # Example
///
/// ```
/// use pathmark_math::primes::{generate_primes, is_prime};
///
/// let ps = generate_primes(0xC0FFEE, 27, 10);
/// assert_eq!(ps.len(), 10);
/// assert!(ps.iter().all(|&p| is_prime(p)));
/// assert!(ps.windows(2).all(|w| w[0] < w[1]));
/// ```
pub fn generate_primes(seed: u64, bits: u32, count: usize) -> Vec<u64> {
    assert!(
        (2..=31).contains(&bits),
        "prime size must be 2..=31 bits, got {bits}"
    );
    let lo = 1u64 << (bits - 1);
    let hi = (1u64 << bits) - 1;
    let mut state = seed ^ 0xA076_1D64_78BD_642F;
    let mut primes = Vec::with_capacity(count);
    while primes.len() < count {
        let mut candidate = lo + splitmix64(&mut state) % (hi - lo + 1);
        candidate |= 1; // odd
        // Walk upward (wrapping within the band) until prime.
        loop {
            if candidate > hi {
                candidate = lo | 1;
            }
            if is_prime(candidate) && !primes.contains(&candidate) {
                primes.push(candidate);
                break;
            }
            candidate += 2;
        }
    }
    primes.sort_unstable();
    primes
}

/// The number of `bits`-bit primes needed so the product `Π p_k` exceeds
/// `2^watermark_bits`, i.e. so a watermark of that width is reconstructible
/// (`W < Π p_k`, Section 3.2 step 1).
pub fn primes_needed(watermark_bits: usize, prime_bits: u32) -> usize {
    // Each prime contributes at least `prime_bits - 1` bits to the product.
    watermark_bits / (prime_bits as usize - 1) + 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_classified() {
        let known = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43];
        for n in 0..45u64 {
            assert_eq!(is_prime(n), known.contains(&n), "misclassified {n}");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        for n in [561u64, 1105, 1729, 2465, 2821, 6601, 8911] {
            assert!(!is_prime(n), "{n} is Carmichael, not prime");
        }
    }

    #[test]
    fn large_primes_accepted() {
        for n in [
            2_147_483_647u64,          // 2^31 - 1 (Mersenne)
            67_280_421_310_721,        // factor of 2^128 + 1
            18_446_744_073_709_551_557, // largest u64 prime
        ] {
            assert!(is_prime(n), "{n} is prime");
        }
        assert!(!is_prime(18_446_744_073_709_551_615)); // u64::MAX = 3·5·17·257·…
    }

    #[test]
    fn mod_pow_fermat() {
        // Fermat: a^(p-1) ≡ 1 (mod p)
        let p = 1_000_000_007u64;
        for a in [2u64, 3, 99999] {
            assert_eq!(mod_pow(a, p - 1, p), 1);
        }
        assert_eq!(mod_pow(5, 3, 1), 0);
    }

    #[test]
    fn mod_mul_no_overflow() {
        let m = u64::MAX - 58; // large prime
        assert_eq!(mod_mul(m - 1, m - 1, m), 1); // (-1)·(-1) = 1
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_primes(42, 27, 8);
        let b = generate_primes(42, 27, 8);
        assert_eq!(a, b);
        let c = generate_primes(43, 27, 8);
        assert_ne!(a, c, "different keys should give different prime sets");
    }

    #[test]
    fn generated_primes_have_exact_width_and_distinct() {
        let ps = generate_primes(7, 20, 12);
        for &p in &ps {
            assert!(is_prime(p));
            assert_eq!(64 - p.leading_zeros(), 20, "{p} is not 20 bits");
        }
        let mut dedup = ps.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), ps.len());
    }

    #[test]
    #[should_panic(expected = "prime size must be")]
    fn oversized_prime_request_panics() {
        generate_primes(1, 32, 1);
    }

    #[test]
    fn primes_needed_covers_watermark() {
        use crate::bigint::BigUint;
        for (wm_bits, prime_bits) in [(128usize, 27u32), (256, 27), (512, 27), (768, 27)] {
            let r = primes_needed(wm_bits, prime_bits);
            let ps = generate_primes(1, prime_bits, r);
            let product: BigUint = ps
                .iter()
                .fold(BigUint::one(), |acc, &p| &acc * &BigUint::from(p));
            assert!(
                product.bits() > wm_bits,
                "product of {r} {prime_bits}-bit primes must exceed 2^{wm_bits}"
            );
        }
    }

    #[test]
    fn gcd_u64_basic() {
        assert_eq!(gcd_u64(12, 18), 6);
        assert_eq!(gcd_u64(0, 5), 5);
        assert_eq!(gcd_u64(17, 13), 1);
    }
}
