//! (Generalized) Chinese remaindering over watermark statements.
//!
//! The embedding phase (Section 3.2, Figure 3) splits the watermark `W`
//! into statements of the form `W ≡ x_k (mod p_{i_k}·p_{j_k})`. The
//! recognition phase (Section 3.3, Figure 4) recombines a *consistent*
//! subset of recovered statements with the Generalized Chinese Remainder
//! Theorem: moduli `p_i·p_j` are not pairwise coprime (they share primes),
//! so combination must check agreement on shared factors.

use crate::bigint::{ext_gcd, BigInt, BigUint};
use crate::MathError;

/// One watermark piece: the claim `W ≡ x (mod primes[i]·primes[j])`.
///
/// Indices refer to positions in the shared prime set `p_1, …, p_r`
/// (0-based here). The invariant `i < j` is maintained by all constructors
/// in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Statement {
    /// Index of the first prime of the pair.
    pub i: usize,
    /// Index of the second prime of the pair (`i < j`).
    pub j: usize,
    /// The residue, `0 <= x < primes[i]·primes[j]`.
    pub x: u64,
}

impl Statement {
    /// The modulus `primes[i]·primes[j]` of this statement.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range for `primes`.
    pub fn modulus(&self, primes: &[u64]) -> u64 {
        primes[self.i]
            .checked_mul(primes[self.j])
            .expect("pair products are validated to fit u64")
    }

    /// The residue this statement implies for `W mod primes[k]`, if the
    /// statement involves prime `k`.
    pub fn residue_mod_prime(&self, k: usize, primes: &[u64]) -> Option<u64> {
        (self.i == k || self.j == k).then(|| self.x % primes[k])
    }

    /// Whether two statements are *inconsistent*: they share a prime on
    /// whose residue they disagree. (Edges of graph `G` in Section 3.3.)
    pub fn inconsistent_with(&self, other: &Statement, primes: &[u64]) -> bool {
        for k in [self.i, self.j] {
            if let (Some(a), Some(b)) = (
                self.residue_mod_prime(k, primes),
                other.residue_mod_prime(k, primes),
            ) {
                if a != b {
                    return true;
                }
            }
        }
        false
    }

    /// Whether two statements *agree mod some shared prime* — consistent
    /// because the `x`s agree mod `p_k`, not merely by CRT over disjoint
    /// primes. (Edges of graph `H` in Section 3.3.)
    pub fn agrees_with(&self, other: &Statement, primes: &[u64]) -> bool {
        for k in [self.i, self.j] {
            if let (Some(a), Some(b)) = (
                self.residue_mod_prime(k, primes),
                other.residue_mod_prime(k, primes),
            ) {
                if a == b {
                    return true;
                }
            }
        }
        false
    }
}

/// Combines two congruences `x ≡ a (mod m)` and `x ≡ b (mod n)` with
/// possibly non-coprime moduli, returning `(residue, lcm(m, n))`.
///
/// # Errors
///
/// * [`MathError::DivisionByZero`] if either modulus is zero.
/// * [`MathError::InconsistentSystem`] if `a ≢ b (mod gcd(m, n))`.
pub fn combine_pair(
    a: &BigUint,
    m: &BigUint,
    b: &BigUint,
    n: &BigUint,
) -> Result<(BigUint, BigUint), MathError> {
    if m.is_zero() || n.is_zero() {
        return Err(MathError::DivisionByZero);
    }
    let (g, s, _) = ext_gcd(m, n);
    // Consistency: g must divide (b - a).
    let (hi, lo, flipped) = if b >= a { (b, a, false) } else { (a, b, true) };
    let diff = hi - lo;
    let (diff_over_g, rem) = diff.divrem(&g)?;
    if !rem.is_zero() {
        return Err(MathError::InconsistentSystem);
    }
    let lcm = &m.divrem(&g)?.0 * n;
    // x = a + m·t with t = s·(b-a)/g  (mod n/g), since m·s ≡ g (mod n).
    let n_over_g = n.divrem(&g)?.0;
    if n_over_g.is_one() {
        // n divides m: the first congruence subsumes the second.
        return Ok((a.divrem(&lcm)?.1, lcm));
    }
    let diff_int = if flipped {
        BigInt::from(diff_over_g).neg()
    } else {
        BigInt::from(diff_over_g)
    };
    let t = (&s * &diff_int).rem_euclid(&n_over_g)?;
    let x = &(a % &lcm) + &(&(m * &t) % &lcm);
    Ok((x.divrem(&lcm)?.1, lcm))
}

/// Combines a system of congruences `(residue, modulus)` by the
/// Generalized CRT (step D of Figure 4).
///
/// # Errors
///
/// * [`MathError::InconsistentSystem`] if the system has no solution.
/// * [`MathError::DivisionByZero`] if any modulus is zero.
///
/// An empty system yields `(0, 1)`.
pub fn combine_system(
    congruences: &[(BigUint, BigUint)],
) -> Result<(BigUint, BigUint), MathError> {
    let mut acc = (BigUint::zero(), BigUint::one());
    for (b, n) in congruences {
        acc = combine_pair(&acc.0, &acc.1, b, n)?;
    }
    Ok(acc)
}

/// Recombines watermark statements over the prime set into
/// `(W mod M, M)` where `M` is the product of all primes mentioned.
///
/// This is the full step D of Figure 4: the statements must already be
/// mutually consistent (the recognition algorithm guarantees this).
///
/// # Errors
///
/// * [`MathError::InconsistentSystem`] if the statements conflict.
/// * [`MathError::TooFewPrimes`] if `primes.len() < 2`.
pub fn combine_statements(
    statements: &[Statement],
    primes: &[u64],
) -> Result<(BigUint, BigUint), MathError> {
    if primes.len() < 2 {
        return Err(MathError::TooFewPrimes { got: primes.len() });
    }
    let congruences: Vec<(BigUint, BigUint)> = statements
        .iter()
        .map(|s| {
            (
                BigUint::from(s.x),
                BigUint::from(s.modulus(primes)),
            )
        })
        .collect();
    combine_system(&congruences)
}

/// Builds the statement `W ≡ x (mod p_i·p_j)` for a watermark value.
///
/// # Panics
///
/// Panics if `i >= j` or either index is out of range.
pub fn statement_for_pair(w: &BigUint, i: usize, j: usize, primes: &[u64]) -> Statement {
    assert!(i < j && j < primes.len(), "invalid prime pair ({i}, {j})");
    let m = primes[i]
        .checked_mul(primes[j])
        .expect("pair products are validated to fit u64");
    let x = w.rem_u64(m).expect("pair modulus is non-zero");
    Statement { i, j, x }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn paper_figure_3_and_4_example() {
        // W = 17, p = {2, 3, 5}: statements are 5 mod 6, 7 mod 10, 2 mod 15.
        let primes = [2u64, 3, 5];
        let w = big(17);
        let s01 = statement_for_pair(&w, 0, 1, &primes);
        let s02 = statement_for_pair(&w, 0, 2, &primes);
        let s12 = statement_for_pair(&w, 1, 2, &primes);
        assert_eq!(s01, Statement { i: 0, j: 1, x: 5 });
        assert_eq!(s02, Statement { i: 0, j: 2, x: 7 });
        assert_eq!(s12, Statement { i: 1, j: 2, x: 2 });
        let (value, modulus) = combine_statements(&[s01, s02, s12], &primes).unwrap();
        assert_eq!(value, big(17));
        assert_eq!(modulus, big(30));
    }

    #[test]
    fn two_statements_suffice_when_they_cover_all_primes() {
        // As in Figure 4: 5 mod 6 and 7 mod 10 cover p1, p2, p3 — wait, they
        // cover {2,3} and {2,5}: all three primes, so W mod 30 is determined.
        let primes = [2u64, 3, 5];
        let stmts = [
            Statement { i: 0, j: 1, x: 5 },
            Statement { i: 0, j: 2, x: 7 },
        ];
        let (value, modulus) = combine_statements(&stmts, &primes).unwrap();
        assert_eq!(value, big(17));
        assert_eq!(modulus, big(30));
    }

    #[test]
    fn inconsistent_statements_error() {
        let primes = [2u64, 3, 5];
        let stmts = [
            Statement { i: 0, j: 1, x: 5 }, // W odd
            Statement { i: 0, j: 2, x: 4 }, // W even — conflict mod 2
        ];
        assert_eq!(
            combine_statements(&stmts, &primes),
            Err(MathError::InconsistentSystem)
        );
    }

    #[test]
    fn inconsistency_predicate_matches_paper_graph_g() {
        let primes = [2u64, 3, 5];
        let s_a = Statement { i: 0, j: 1, x: 5 }; // 17 mod 6
        let s_b = Statement { i: 0, j: 2, x: 4 }; // even residue
        let s_c = Statement { i: 1, j: 2, x: 2 }; // 17 mod 15
        assert!(s_a.inconsistent_with(&s_b, &primes)); // conflict mod p1 = 2
        assert!(!s_a.inconsistent_with(&s_c, &primes)); // both derive from W = 17
        assert!(s_b.inconsistent_with(&s_c, &primes)); // conflict mod p3 = 5 (4 vs 2)
        // Inconsistency is symmetric.
        assert!(s_b.inconsistent_with(&s_a, &primes));
    }

    #[test]
    fn agreement_predicate_matches_paper_graph_h() {
        let primes = [2u64, 3, 5];
        let s_a = Statement { i: 0, j: 1, x: 5 };
        let s_c = Statement { i: 1, j: 2, x: 2 };
        // share p2=3: 5 mod 3 = 2, 2 mod 3 = 2 — agree.
        assert!(s_a.agrees_with(&s_c, &primes));
        // disjoint prime pairs never "agree mod a prime".
        let primes4 = [2u64, 3, 5, 7];
        let s_d = Statement { i: 2, j: 3, x: 17 };
        assert!(!s_a.agrees_with(&s_d, &primes4));
        assert!(!s_a.inconsistent_with(&s_d, &primes4));
    }

    #[test]
    fn combine_pair_non_coprime_consistent() {
        // x ≡ 5 (mod 6), x ≡ 11 (mod 15): gcd 3, 5 ≡ 11 ≡ 2 (mod 3) — OK.
        // Solutions: 11, 41, 71 … mod lcm=30 → 11.
        let (x, m) = combine_pair(&big(5), &big(6), &big(11), &big(15)).unwrap();
        assert_eq!(m, big(30));
        assert_eq!(x, big(11));
    }

    #[test]
    fn combine_pair_subsumed_modulus() {
        // x ≡ 7 (mod 12), x ≡ 1 (mod 3): consistent; lcm is 12.
        let (x, m) = combine_pair(&big(7), &big(12), &big(1), &big(3)).unwrap();
        assert_eq!((x, m), (big(7), big(12)));
    }

    #[test]
    fn combine_pair_flipped_difference() {
        // Larger residue first, to exercise the sign handling.
        let (x, m) = combine_pair(&big(11), &big(15), &big(5), &big(6)).unwrap();
        assert_eq!((x, m), (big(11), big(30)));
    }

    #[test]
    fn combine_system_empty_is_identity() {
        let (x, m) = combine_system(&[]).unwrap();
        assert_eq!((x, m), (BigUint::zero(), BigUint::one()));
    }

    #[test]
    fn combine_zero_modulus_errors() {
        assert_eq!(
            combine_pair(&big(1), &BigUint::zero(), &big(0), &big(3)),
            Err(MathError::DivisionByZero)
        );
    }

    #[test]
    fn large_watermark_round_trip() {
        use crate::primes::generate_primes;
        let primes = generate_primes(99, 27, 12);
        // Build a ~300-bit watermark from fixed bytes.
        let w = BigUint::from_bytes_le(&[0xAB; 38]);
        let mut stmts = Vec::new();
        for i in 0..primes.len() {
            for j in (i + 1)..primes.len() {
                stmts.push(statement_for_pair(&w, i, j, &primes));
            }
        }
        let (value, modulus) = combine_statements(&stmts, &primes).unwrap();
        assert!(w < modulus, "watermark must be below the prime product");
        assert_eq!(value, w);
    }

    #[test]
    fn partial_statement_subset_recovers_partial_modulus() {
        use crate::primes::generate_primes;
        let primes = generate_primes(5, 20, 6);
        let w = BigUint::from(0xDEAD_BEEF_CAFEu64);
        // A spanning set of pairs touching all primes: (0,1),(2,3),(4,5).
        let stmts = [
            statement_for_pair(&w, 0, 1, &primes),
            statement_for_pair(&w, 2, 3, &primes),
            statement_for_pair(&w, 4, 5, &primes),
        ];
        let (value, modulus) = combine_statements(&stmts, &primes).unwrap();
        let product: BigUint = primes
            .iter()
            .fold(BigUint::one(), |acc, &p| &acc * &BigUint::from(p));
        assert_eq!(modulus, product);
        assert_eq!(value, w.divrem(&modulus).unwrap().1);
    }

    #[test]
    fn too_few_primes_rejected() {
        assert_eq!(
            combine_statements(&[], &[7]),
            Err(MathError::TooFewPrimes { got: 1 })
        );
    }
}
