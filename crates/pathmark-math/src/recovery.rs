//! The watermark-recovery probability model of Section 3.3, equation (1).
//!
//! Model each prime `p_i` as a node and each statement
//! `W ≡ x (mod p_i·p_j)` as an edge between `p_i` and `p_j`. Attacks
//! delete edges independently with probability `q`. `W` is reconstructible
//! iff every node retains at least one incident edge (every prime residue
//! `W mod p_i` is still pinned down). The paper approximates the success
//! probability by inclusion–exclusion over isolated-node sets:
//!
//! ```text
//! P(n, q) = Σ_{j=0}^{n} (-1)^j C(n, j) q^{ j(n-j) + C(j,2) }
//! ```
//!
//! (the exponent counts the edges that must all be deleted for a fixed set
//! of `j` nodes to be isolated: `j(n-j)` to the outside plus `C(j,2)`
//! inside). This module evaluates the formula and provides the Monte-Carlo
//! counterpart used for the empirical curve of Figure 5.

/// Analytic probability that every one of `n` nodes of the complete graph
/// `K_n` keeps at least one incident edge when edges are deleted
/// independently with probability `q` — the paper's equation (1).
///
/// # Panics
///
/// Panics if `q` is not in `[0, 1]`.
///
/// # Example
///
/// ```
/// use pathmark_math::recovery::success_probability;
///
/// assert_eq!(success_probability(5, 0.0), 1.0);
/// assert_eq!(success_probability(5, 1.0), 0.0);
/// let p = success_probability(10, 0.5);
/// assert!(p > 0.97 && p < 1.0);
/// ```
pub fn success_probability(n: usize, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    if n == 0 {
        return 1.0;
    }
    if n == 1 {
        // A single node has no edges; define success as 0 unless q = 0
        // never applies — with one prime there are no pairs at all.
        return if q == 0.0 { 1.0 } else { 0.0 };
    }
    let mut sum = 0.0f64;
    let mut binom = 1.0f64; // C(n, j), updated incrementally
    for j in 0..=n {
        let exponent = (j * (n - j) + j * j.saturating_sub(1) / 2) as f64;
        let term = binom * q.powf(exponent);
        if j % 2 == 0 {
            sum += term;
        } else {
            sum -= term;
        }
        binom = binom * (n - j) as f64 / (j + 1) as f64;
    }
    sum.clamp(0.0, 1.0)
}

/// Converts "number of statements left intact" (the x-axis of Figure 5)
/// into the equivalent edge-deletion probability `q` for `n` primes.
///
/// With `C(n,2)` total pieces and `intact` surviving, `q = 1 - intact/C(n,2)`.
///
/// # Panics
///
/// Panics if `n < 2` or `intact` exceeds the pair count.
pub fn deletion_probability(n: usize, intact: usize) -> f64 {
    assert!(n >= 2, "need at least two primes");
    let pairs = n * (n - 1) / 2;
    assert!(intact <= pairs, "cannot keep more pieces than exist");
    1.0 - intact as f64 / pairs as f64
}

/// One Monte-Carlo trial: keep exactly `intact` random edges of `K_n` and
/// report whether every node is still covered.
///
/// `rng` supplies raw 64-bit randomness (any keyed generator works; the
/// benches use the crate-local PRNG so runs are reproducible).
pub fn trial_all_covered(n: usize, intact: usize, mut rng: impl FnMut() -> u64) -> bool {
    let mut edges: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect();
    // Partial Fisher–Yates: select `intact` edges uniformly.
    let total = edges.len();
    let keep = intact.min(total);
    for k in 0..keep {
        let pick = k + (rng() % (total - k) as u64) as usize;
        edges.swap(k, pick);
    }
    let mut covered = vec![false; n];
    for &(i, j) in &edges[..keep] {
        covered[i] = true;
        covered[j] = true;
    }
    covered.iter().all(|&c| c)
}

/// Monte-Carlo estimate of the probability that `intact` surviving pieces
/// cover all `n` primes — the empirical curve of Figure 5.
pub fn empirical_success_probability(
    n: usize,
    intact: usize,
    trials: usize,
    mut rng: impl FnMut() -> u64,
) -> f64 {
    if trials == 0 {
        return 0.0;
    }
    let successes = (0..trials)
        .filter(|_| trial_all_covered(n, intact, &mut rng))
        .count();
    successes as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed.max(1);
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    #[test]
    fn boundary_probabilities() {
        for n in [2usize, 5, 10, 25] {
            assert!((success_probability(n, 0.0) - 1.0).abs() < 1e-12);
            assert!(success_probability(n, 1.0).abs() < 1e-12);
        }
        assert_eq!(success_probability(0, 0.5), 1.0);
        assert_eq!(success_probability(1, 0.5), 0.0);
    }

    #[test]
    fn two_nodes_closed_form() {
        // K_2 has one edge; success iff it survives: P = 1 - q.
        for q in [0.0, 0.25, 0.5, 0.9] {
            assert!((success_probability(2, q) - (1.0 - q)).abs() < 1e-9);
        }
    }

    #[test]
    fn three_nodes_closed_form() {
        // K_3: success = no isolated vertex. By inclusion–exclusion:
        // P = 1 - 3q^2 + 2q^3 (the j=3 term has exponent 3).
        for q in [0.1f64, 0.3, 0.7] {
            let expected = 1.0 - 3.0 * q.powi(2) + 2.0 * q.powi(3);
            assert!((success_probability(3, q) - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn monotone_in_q() {
        let mut last = 1.0;
        for step in 0..=10 {
            let q = step as f64 / 10.0;
            let p = success_probability(12, q);
            assert!(p <= last + 1e-9, "P must not increase with q");
            last = p;
        }
    }

    #[test]
    fn empirical_matches_analytic_for_small_graphs() {
        // The analytic formula treats edge deletions as independent; the
        // empirical trial keeps a fixed count. For K_6 with 9 of 15 edges
        // the two agree to a few percent — the comparison Figure 5 makes.
        let n = 6;
        let intact = 9;
        let q = deletion_probability(n, intact);
        let analytic = success_probability(n, q);
        let empirical = empirical_success_probability(n, intact, 4000, xorshift(7));
        assert!(
            (analytic - empirical).abs() < 0.06,
            "analytic {analytic} vs empirical {empirical}"
        );
    }

    #[test]
    fn trial_extremes() {
        // All edges kept: always covered. Zero edges: never covered (n>=2).
        assert!(trial_all_covered(5, 10, xorshift(1)));
        assert!(!trial_all_covered(5, 0, xorshift(1)));
        // One edge covers both nodes of K_2.
        assert!(trial_all_covered(2, 1, xorshift(1)));
    }

    #[test]
    fn deletion_probability_endpoints() {
        assert_eq!(deletion_probability(5, 10), 0.0);
        assert_eq!(deletion_probability(5, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot keep more pieces")]
    fn deletion_probability_rejects_excess() {
        deletion_probability(4, 7);
    }

    #[test]
    fn empirical_zero_trials_is_zero() {
        assert_eq!(empirical_success_probability(4, 3, 0, xorshift(2)), 0.0);
    }
}
